//! End-to-end functional equivalence across the whole workspace: for each
//! benchmark, the netlist, the MIG (before and after every optimization
//! algorithm), the compiled RRAM programs, the BDD, and the AIG must all
//! compute the same function.
//!
//! The second half is the **differential SAT harness**: seeded random
//! netlists drive all eight optimization algorithms (Algs. 1–4, cut
//! rewriting, and the fraig/resub sweep modes) through the pipeline, and
//! every result — plus the compiled array and PLiM programs — is
//! *proved* equivalent by the `rms-sat` miter engine, turning the
//! optimizer stack into its own oracle. The sweep runs sequentially and
//! on a thread pool and must be bit-identical (same gate counts, same
//! proof statistics).

use rram_mig::aig::Aig;
use rram_mig::bdd::build as bdd_build;
use rram_mig::flow::par::par_map_threads;
use rram_mig::flow::{check_netlists, Pipeline, VerifyMode, VerifyOutcome};
use rram_mig::logic::bench_suite;
use rram_mig::logic::random::random_netlist;
use rram_mig::logic::sim::{check_equivalence, random_patterns};
use rram_mig::mig::cost::Realization;
use rram_mig::mig::opt::{Algorithm, OptOptions};
use rram_mig::mig::Mig;
use rram_mig::rram::compile::compile;
use rram_mig::rram::machine::Machine;

/// Small-suite benchmarks are checked exhaustively via truth tables.
const EXHAUSTIVE: &[&str] = &[
    "exam1_d", "exam3_d", "rd53_f1", "rd53_f2", "rd53_f3", "con1_f1", "con2_f2", "newill_d",
    "newtag_d", "9sym_d", "sao2_f1", "sao2_f3", "max46_d", "xor5_d",
];

/// The exhaustive benchmarks, parsed once per process and shared by every
/// test case (BLIF parsing is cheap but not free, and five cases walk the
/// same list).
fn exhaustive_netlist(name: &str) -> &'static rram_mig::logic::Netlist {
    use std::sync::OnceLock;
    static SUITE: OnceLock<Vec<(&'static str, rram_mig::logic::Netlist)>> = OnceLock::new();
    let suite = SUITE.get_or_init(|| {
        EXHAUSTIVE
            .iter()
            .map(|&n| (n, bench_suite::build(n).expect("known benchmark")))
            .collect()
    });
    &suite.iter().find(|(n, _)| *n == name).expect("in suite").1
}

/// Large benchmarks are checked with bit-parallel random patterns.
const SAMPLED: &[&str] = &["apex7", "b9", "cm162a", "x2", "cordic", "misex1"];

#[test]
fn optimizers_preserve_functions_exhaustively() {
    let opts = OptOptions::with_effort(8);
    for name in EXHAUSTIVE {
        let nl = exhaustive_netlist(name);
        let reference = nl.truth_tables();
        let mig = Mig::from_netlist(nl);
        assert_eq!(mig.truth_tables(), reference, "{name}: initial MIG");
        for alg in Algorithm::ALL {
            for real in Realization::ALL {
                let opt = alg.run(&mig, real, &opts);
                assert_eq!(opt.truth_tables(), reference, "{name}: {alg} under {real}");
            }
        }
    }
}

#[test]
fn compiled_programs_match_optimized_migs() {
    let opts = OptOptions::with_effort(6);
    for name in EXHAUSTIVE {
        let nl = exhaustive_netlist(name);
        let reference = nl.truth_tables();
        let mig = Mig::from_netlist(nl);
        for alg in [Algorithm::RramCosts, Algorithm::Steps] {
            for real in Realization::ALL {
                let opt = alg.run(&mig, real, &opts);
                let circuit = compile(&opt, real);
                let got = Machine::truth_tables(&circuit.program).expect("valid program");
                assert_eq!(got, reference, "{name}: machine after {alg}/{real}");
            }
        }
    }
}

#[test]
fn large_benchmarks_survive_the_flow_sampled() {
    let opts = OptOptions::with_effort(6);
    for name in SAMPLED {
        let nl = bench_suite::build(name).expect("known benchmark");
        let mig = Mig::from_netlist(&nl);
        let opt = Algorithm::Steps.run(&mig, Realization::Maj, &opts);
        let res = check_equivalence(&nl, &opt.to_netlist());
        assert!(res.holds(), "{name}: optimized MIG vs netlist: {res:?}");

        // Machine vs netlist on random patterns.
        let circuit = compile(&opt, Realization::Maj);
        let mut machine = Machine::new();
        for pattern in random_patterns(nl.num_inputs(), 32, 0xC0FFEE) {
            let net_out = nl.simulate_words(&pattern);
            let mach_out = machine
                .run_words(&circuit.program, &pattern)
                .expect("valid program");
            assert_eq!(mach_out, net_out, "{name}: machine vs netlist");
        }
    }
}

#[test]
fn bdd_and_aig_agree_with_netlists() {
    for name in EXHAUSTIVE {
        let nl = exhaustive_netlist(name);
        let reference = nl.truth_tables();

        let circ = bdd_build::from_netlist(nl, bdd_build::Ordering::DfsFromOutputs);
        for m in 0..(1u64 << nl.num_inputs()) {
            for (o, root) in circ.roots.iter().enumerate() {
                assert_eq!(
                    circ.manager.eval(*root, m),
                    reference[o].bit(m),
                    "{name}: BDD output {o} at {m}"
                );
            }
        }

        let aig = Aig::from_netlist(nl).balance();
        assert_eq!(aig.truth_tables(), reference, "{name}: balanced AIG");
    }
}

#[test]
fn baseline_rram_programs_compute_the_right_functions() {
    for name in &EXHAUSTIVE[..8] {
        let nl = exhaustive_netlist(name);
        let reference = nl.truth_tables();

        let circ = bdd_build::from_netlist(nl, bdd_build::Ordering::Natural);
        let bdd = rram_mig::bdd::rram_synth::synthesize(&circ, &Default::default());
        assert_eq!(
            Machine::truth_tables(&bdd.program).expect("valid"),
            reference,
            "{name}: BDD baseline program"
        );

        let aig = Aig::from_netlist(nl).compact();
        let aig_circ = rram_mig::aig::rram_synth::synthesize(&aig);
        assert_eq!(
            Machine::truth_tables(&aig_circ.program).expect("valid"),
            reference,
            "{name}: AIG baseline program"
        );
    }
}

// ---------------------------------------------------------------------------
// Differential SAT harness
// ---------------------------------------------------------------------------

/// The eight optimization algorithms of the differential sweep: the
/// paper's Algs. 1–4, the cut-rewriting engine, and the three SAT-backed
/// sweep modes (fraig, resub, and their combination).
const DIFF_ALGORITHMS: [Algorithm; 8] = [
    Algorithm::Area,
    Algorithm::Depth,
    Algorithm::RramCosts,
    Algorithm::Steps,
    Algorithm::Cut,
    Algorithm::Sweep,
    Algorithm::Resub,
    Algorithm::SweepResub,
];

/// Everything one differential seed produces; compared across worker
/// counts, so it must be fully deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DiffRow {
    seed: u64,
    gates: Vec<u64>,
    /// (conflicts, decisions) of the SAT proof `algorithm result ≡
    /// source netlist`, per algorithm.
    proofs: Vec<(u64, u64)>,
    /// (conflicts, decisions) of the pipeline's own SAT verification of
    /// the compiled array + PLiM programs (one algorithm per seed).
    program_proof: (u64, u64),
}

/// Shapes a seed into a circuit spec: 4–8 inputs, 1–3 outputs, 10–30
/// gates over all gate kinds.
fn diff_netlist(seed: u64) -> rram_mig::logic::Netlist {
    let inputs = 4 + (seed % 5) as usize;
    let outputs = 1 + (seed % 3) as usize;
    let gates = 10 + (seed % 21) as usize;
    random_netlist("diff", seed, inputs, outputs, gates)
}

fn diff_row(seed: u64) -> DiffRow {
    let nl = diff_netlist(seed);
    let mut gates = Vec::with_capacity(DIFF_ALGORITHMS.len());
    let mut proofs = Vec::with_capacity(DIFF_ALGORITHMS.len());
    let mut optimized = Vec::with_capacity(DIFF_ALGORITHMS.len());
    for alg in DIFF_ALGORITHMS {
        let out = Pipeline::new(nl.clone())
            .algorithm(alg)
            .effort(4)
            .verify(false)
            .run()
            .unwrap_or_else(|e| panic!("seed {seed}, {alg}: {e}"));
        gates.push(out.mig.num_gates() as u64);
        let opt_nl = out.mig.to_netlist();
        // Force the SAT tier even below the exhaustive cutoff: this
        // harness is the solver's workout.
        match check_netlists(&nl, &opt_nl, VerifyMode::Sat, seed).unwrap() {
            VerifyOutcome::Proved {
                conflicts,
                decisions,
            } => proofs.push((conflicts, decisions)),
            other => panic!("seed {seed}, {alg}: expected proof, got {other:?}"),
        }
        optimized.push(opt_nl);
    }
    // Pairwise equivalence is implied by transitivity through the
    // source-netlist proofs above, so the O(n²) pairwise miters were
    // dropped; one rotating pair per seed is kept because the
    // result-vs-result miters exercise different sharing in the encoder
    // than the result-vs-source ones (over 50 seeds this still covers
    // many distinct algorithm pairs).
    let i = (seed as usize) % optimized.len();
    let j = (i + 1 + (seed as usize / optimized.len()) % (optimized.len() - 1)) % optimized.len();
    let outcome = rram_mig::sat::check_netlists(&optimized[i], &optimized[j]).unwrap();
    assert!(
        outcome.is_equivalent(),
        "seed {seed}: {} vs {}: {outcome:?}",
        DIFF_ALGORITHMS[i],
        DIFF_ALGORITHMS[j]
    );
    // One full pipeline run per seed with SAT-proved program verification
    // (netlist vs array and netlist vs PLiM miters).
    let out = Pipeline::new(nl)
        .algorithm(Algorithm::RramCosts)
        .effort(4)
        .verify_mode(VerifyMode::Sat)
        .run()
        .unwrap_or_else(|e| panic!("seed {seed}, program proof: {e}"));
    let program_proof = match out.report.verify {
        VerifyOutcome::Proved {
            conflicts,
            decisions,
        } => (conflicts, decisions),
        ref other => panic!("seed {seed}: expected program proof, got {other:?}"),
    };
    DiffRow {
        seed,
        gates,
        proofs,
        program_proof,
    }
}

#[test]
fn differential_eight_algorithms_sat_proved_on_50_random_netlists() {
    let seeds: Vec<u64> = (0..50).collect();
    // Sequential reference, then the thread pool — the sweep must be
    // bit-identical under `--jobs` parallelism.
    let sequential = par_map_threads(&seeds, 1, |&seed| diff_row(seed));
    let parallel = par_map_threads(&seeds, 4, |&seed| diff_row(seed));
    assert_eq!(sequential, parallel, "parallel sweep must be bit-identical");
    for row in &sequential {
        assert_eq!(row.gates.len(), DIFF_ALGORITHMS.len());
        assert_eq!(row.proofs.len(), DIFF_ALGORITHMS.len());
    }
    // The sweep must include real solver work, not just folded miters.
    let total_decisions: u64 = sequential
        .iter()
        .flat_map(|r| r.proofs.iter().map(|&(_, d)| d))
        .sum();
    assert!(total_decisions > 0, "miters should require search");
}

#[test]
fn roundtrip_blif_and_verilog_sat_proved() {
    use rram_mig::logic::{blif, verilog};
    for seed in 0..12u64 {
        let nl = diff_netlist(seed.wrapping_mul(31).wrapping_add(5));
        let blif_back = blif::parse(&blif::write(&nl)).expect("BLIF round trip parses");
        assert!(
            check_netlists(&nl, &blif_back, VerifyMode::Sat, seed)
                .unwrap()
                .is_proof(),
            "seed {seed}: BLIF round trip must be SAT-proved"
        );
        let v_back = verilog::parse(&verilog::write(&nl)).expect("Verilog round trip parses");
        assert!(
            check_netlists(&nl, &v_back, VerifyMode::Sat, seed)
                .unwrap()
                .is_proof(),
            "seed {seed}: Verilog round trip must be SAT-proved"
        );
    }
}

#[test]
fn above_cutoff_benchmarks_are_proved_not_sampled() {
    // Every small-suite benchmark wider than the exhaustive cutoff must
    // come back *proved* from a default pipeline run.
    let mut above_cutoff = 0;
    for info in bench_suite::SMALL_SUITE
        .iter()
        .filter(|i| i.inputs > rram_mig::flow::verify::EXHAUSTIVE_VERIFY_VARS)
    {
        let out = Pipeline::from_bench(info.name)
            .unwrap()
            .effort(6)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", info.name));
        assert!(
            matches!(out.report.verify, VerifyOutcome::Proved { .. }),
            "{}: {:?}",
            info.name,
            out.report.verify
        );
        above_cutoff += 1;
    }
    assert!(above_cutoff >= 1, "t481_d is above the cutoff");
    // And a spread of wide large-suite circuits for good measure.
    for name in ["cm150a", "parity", "cordic"] {
        let out = Pipeline::from_bench(name)
            .unwrap()
            .effort(6)
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            out.report.verify.is_proof(),
            "{name}: {:?}",
            out.report.verify
        );
    }
}
