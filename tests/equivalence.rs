//! End-to-end functional equivalence across the whole workspace: for each
//! benchmark, the netlist, the MIG (before and after every optimization
//! algorithm), the compiled RRAM programs, the BDD, and the AIG must all
//! compute the same function.

use rram_mig::aig::Aig;
use rram_mig::bdd::build as bdd_build;
use rram_mig::logic::bench_suite;
use rram_mig::logic::sim::{check_equivalence, random_patterns};
use rram_mig::mig::cost::Realization;
use rram_mig::mig::opt::{Algorithm, OptOptions};
use rram_mig::mig::Mig;
use rram_mig::rram::compile::compile;
use rram_mig::rram::machine::Machine;

/// Small-suite benchmarks are checked exhaustively via truth tables.
const EXHAUSTIVE: &[&str] = &[
    "exam1_d", "exam3_d", "rd53_f1", "rd53_f2", "rd53_f3", "con1_f1", "con2_f2", "newill_d",
    "newtag_d", "9sym_d", "sao2_f1", "sao2_f3", "max46_d", "xor5_d",
];

/// Large benchmarks are checked with bit-parallel random patterns.
const SAMPLED: &[&str] = &["apex7", "b9", "cm162a", "x2", "cordic", "misex1"];

#[test]
fn optimizers_preserve_functions_exhaustively() {
    let opts = OptOptions::with_effort(8);
    for name in EXHAUSTIVE {
        let nl = bench_suite::build(name).expect("known benchmark");
        let reference = nl.truth_tables();
        let mig = Mig::from_netlist(&nl);
        assert_eq!(mig.truth_tables(), reference, "{name}: initial MIG");
        for alg in Algorithm::ALL {
            for real in Realization::ALL {
                let opt = alg.run(&mig, real, &opts);
                assert_eq!(opt.truth_tables(), reference, "{name}: {alg} under {real}");
            }
        }
    }
}

#[test]
fn compiled_programs_match_optimized_migs() {
    let opts = OptOptions::with_effort(6);
    for name in EXHAUSTIVE {
        let nl = bench_suite::build(name).expect("known benchmark");
        let reference = nl.truth_tables();
        let mig = Mig::from_netlist(&nl);
        for alg in [Algorithm::RramCosts, Algorithm::Steps] {
            for real in Realization::ALL {
                let opt = alg.run(&mig, real, &opts);
                let circuit = compile(&opt, real);
                let got = Machine::truth_tables(&circuit.program).expect("valid program");
                assert_eq!(got, reference, "{name}: machine after {alg}/{real}");
            }
        }
    }
}

#[test]
fn large_benchmarks_survive_the_flow_sampled() {
    let opts = OptOptions::with_effort(6);
    for name in SAMPLED {
        let nl = bench_suite::build(name).expect("known benchmark");
        let mig = Mig::from_netlist(&nl);
        let opt = Algorithm::Steps.run(&mig, Realization::Maj, &opts);
        let res = check_equivalence(&nl, &opt.to_netlist());
        assert!(res.holds(), "{name}: optimized MIG vs netlist: {res:?}");

        // Machine vs netlist on random patterns.
        let circuit = compile(&opt, Realization::Maj);
        let mut machine = Machine::new();
        for pattern in random_patterns(nl.num_inputs(), 32, 0xC0FFEE) {
            let net_out = nl.simulate_words(&pattern);
            let mach_out = machine
                .run_words(&circuit.program, &pattern)
                .expect("valid program");
            assert_eq!(mach_out, net_out, "{name}: machine vs netlist");
        }
    }
}

#[test]
fn bdd_and_aig_agree_with_netlists() {
    for name in EXHAUSTIVE {
        let nl = bench_suite::build(name).expect("known benchmark");
        let reference = nl.truth_tables();

        let circ = bdd_build::from_netlist(&nl, bdd_build::Ordering::DfsFromOutputs);
        for m in 0..(1u64 << nl.num_inputs()) {
            for (o, root) in circ.roots.iter().enumerate() {
                assert_eq!(
                    circ.manager.eval(*root, m),
                    reference[o].bit(m),
                    "{name}: BDD output {o} at {m}"
                );
            }
        }

        let aig = Aig::from_netlist(&nl).balance();
        assert_eq!(aig.truth_tables(), reference, "{name}: balanced AIG");
    }
}

#[test]
fn baseline_rram_programs_compute_the_right_functions() {
    for name in &EXHAUSTIVE[..8] {
        let nl = bench_suite::build(name).expect("known benchmark");
        let reference = nl.truth_tables();

        let circ = bdd_build::from_netlist(&nl, bdd_build::Ordering::Natural);
        let bdd = rram_mig::bdd::rram_synth::synthesize(&circ, &Default::default());
        assert_eq!(
            Machine::truth_tables(&bdd.program).expect("valid"),
            reference,
            "{name}: BDD baseline program"
        );

        let aig = Aig::from_netlist(&nl).compact();
        let aig_circ = rram_mig::aig::rram_synth::synthesize(&aig);
        assert_eq!(
            Machine::truth_tables(&aig_circ.program).expect("valid"),
            reference,
            "{name}: AIG baseline program"
        );
    }
}
