//! End-to-end AIGER frontend tests: every netlist must survive the
//! netlist → AIGER → netlist round trip (ASCII and binary, in both
//! directions) with its function intact — proved by the equivalence
//! miter, not just sampled — and AIGER bytes must drive the full
//! pipeline exactly like the native formats.

use rram_mig::flow::{check_netlists, InputFormat, Pipeline, VerifyMode, VerifyOutcome};
use rram_mig::logic::{aiger, bench_suite, Netlist};
use rram_mig::mig::opt::Algorithm;

/// Benchmarks mixing every gate kind the AND-lowering has to handle
/// (XOR-heavy parities, MAJ-heavy symmetric functions, general covers).
const SAMPLES: &[&str] = &["rd53_f2", "9sym_d", "con1_f1", "sao2_f4", "xor5_d"];

const SEED: u64 = 0xA16E_2024;

fn assert_proved(a: &Netlist, b: &Netlist, mode: VerifyMode, what: &str) {
    let outcome = check_netlists(a, b, mode, SEED).unwrap_or_else(|e| panic!("{what}: {e}"));
    assert!(outcome.passed(), "{what}: {outcome:?}");
    assert!(outcome.is_proof(), "{what}: not a proof: {outcome:?}");
}

#[test]
fn ascii_round_trip_is_equivalence_proved() {
    for name in SAMPLES {
        let nl = bench_suite::build(name).unwrap();
        let text = aiger::write_ascii(&nl);
        assert!(text.starts_with("aag "), "{name}: {text:.20}");
        let back = aiger::parse_bytes(text.as_bytes()).unwrap();
        assert_eq!(back.num_inputs(), nl.num_inputs(), "{name}");
        assert_eq!(back.num_outputs(), nl.num_outputs(), "{name}");
        assert_proved(&nl, &back, VerifyMode::Auto, name);
    }
}

#[test]
fn binary_round_trip_is_equivalence_proved() {
    for name in SAMPLES {
        let nl = bench_suite::build(name).unwrap();
        let bytes = aiger::write_binary(&nl);
        assert!(aiger::looks_binary(&bytes), "{name}");
        let back = aiger::parse_bytes(&bytes).unwrap();
        assert_proved(&nl, &back, VerifyMode::Auto, name);
    }
}

#[test]
fn wide_round_trip_is_sat_proved() {
    // 16 inputs is past the exhaustive cutoff: force the SAT miter so
    // the round trip is covered by an actual proof at full width.
    let nl = bench_suite::build("parity").unwrap();
    let back = aiger::parse_bytes(&aiger::write_binary(&nl)).unwrap();
    let outcome = check_netlists(&nl, &back, VerifyMode::Sat, SEED).unwrap();
    assert!(
        matches!(outcome, VerifyOutcome::Proved { .. }),
        "{outcome:?}"
    );
}

#[test]
fn ascii_and_binary_forms_converge() {
    // ASCII → binary → ASCII must be a fixpoint after the first
    // lowering: an AND-only netlist re-encodes to identical bytes, which
    // pins both parsers and both writers to one canonical form.
    for name in SAMPLES {
        let nl = bench_suite::build(name).unwrap();
        let ascii1 = aiger::write_ascii(&nl);
        let from_ascii = aiger::parse_bytes(ascii1.as_bytes()).unwrap();
        let binary = aiger::write_binary(&from_ascii);
        let from_binary = aiger::parse_bytes(&binary).unwrap();
        let ascii2 = aiger::write_ascii(&from_binary);
        assert_eq!(ascii1, ascii2, "{name}: ASCII/binary forms diverge");
        assert_proved(&nl, &from_binary, VerifyMode::Auto, name);
    }
}

#[test]
fn pipeline_runs_binary_aiger_end_to_end() {
    let nl = bench_suite::build("9sym_d").unwrap();
    let bytes = aiger::write_binary(&nl);
    let out = Pipeline::from_bytes(InputFormat::Aiger, &bytes, "9sym_aig")
        .unwrap()
        .algorithm(Algorithm::Cut)
        .run()
        .unwrap();
    assert!(out.report.verify.passed(), "{:?}", out.report.verify);
    assert!(out.report.optimized.gates <= out.report.initial.gates);
}

#[test]
fn pipeline_accepts_ascii_aiger_as_text() {
    let nl = bench_suite::build("con1_f1").unwrap();
    let text = aiger::write_ascii(&nl);
    let out = Pipeline::from_str(InputFormat::Aiger, &text, "con1_aag")
        .unwrap()
        .run()
        .unwrap();
    assert!(out.report.verify.passed(), "{:?}", out.report.verify);
}

#[test]
fn large_suite_circuit_round_trips_through_binary_aiger() {
    // The generated large suite must survive AIGER export/import too —
    // this is the ingestion path for real benchmark files at scale.
    let nl = rram_mig::logic::large_suite::build("xl_mul32").unwrap();
    let bytes = aiger::write_binary(&nl);
    let back = aiger::parse_bytes(&bytes).unwrap();
    assert_eq!(back.num_inputs(), 64);
    assert_eq!(back.num_outputs(), 64);
    // 64 inputs: sampled equivalence only (a miter here would dominate
    // the whole suite's runtime); the small-circuit tests above carry
    // the proof obligation for the encoder/decoder pair.
    let outcome = check_netlists(&nl, &back, VerifyMode::Sampled, SEED).unwrap();
    assert!(outcome.passed(), "{outcome:?}");
}

#[test]
fn symbol_table_names_survive_the_round_trip() {
    let nl = bench_suite::build("con1_f1").unwrap();
    let text = aiger::write_ascii(&nl);
    let back = aiger::parse_bytes(text.as_bytes()).unwrap();
    assert_eq!(back.input_names(), nl.input_names());
    let names =
        |n: &Netlist| -> Vec<String> { n.outputs().iter().map(|(name, _)| name.clone()).collect() };
    assert_eq!(names(&back), names(&nl));
}
