//! Differential property tests of the incremental rewrite engine.
//!
//! Over seeded random netlists ([`rms_logic::random::random_netlist`]),
//! every optimization algorithm must produce **bit-identical** graphs on
//! the in-place incremental engine and on the from-scratch reference
//! (full cut recomputation every round): same nodes, same levels, same
//! RRAM costs, same truth tables. For the cut algorithm this pins the
//! cut-cache invalidation rule down as the engine's correctness
//! argument — a cached cut set that diverged from a recomputation would
//! change a rewrite decision and break node-for-node equality. The
//! paper's Algs. 1–4 are engine-independent and double as determinism
//! checks.

use rms_core::cost::{LevelProfile, Realization, RramCost};
use rms_core::opt::{Algorithm, OptOptions};
use rms_core::Mig;
use rms_flow::{run_algorithm_engine, Engine};
use rms_logic::random::random_netlist;

/// Node-for-node structural equality (indices, children, complement
/// attributes, outputs, levels).
fn assert_bit_identical(a: &Mig, b: &Mig, what: &str) {
    assert_eq!(a.num_gates(), b.num_gates(), "{what}: gate counts");
    assert_eq!(a.depth(), b.depth(), "{what}: depths");
    assert_eq!(a.len(), b.len(), "{what}: node counts");
    for i in 0..a.len() {
        assert_eq!(a.node(i), b.node(i), "{what}: node {i}");
        assert_eq!(a.level(i), b.level(i), "{what}: level of node {i}");
    }
    assert_eq!(a.outputs(), b.outputs(), "{what}: outputs");
}

#[test]
fn incremental_engine_is_bit_identical_to_from_scratch() {
    let opts = OptOptions::with_effort(6);
    for seed in 0..10u64 {
        let nl = random_netlist("inc_prop", seed, 6, 2, 28);
        let mig = Mig::from_netlist(&nl);
        let reference = nl.truth_tables();
        for alg in Algorithm::ALL_WITH_CUT {
            let what = format!("seed {seed} / {alg}");
            let (inc, inc_stats) =
                run_algorithm_engine(&mig, alg, Realization::Maj, &opts, Engine::Incremental);
            let (scr, _) =
                run_algorithm_engine(&mig, alg, Realization::Maj, &opts, Engine::FromScratch);
            assert_bit_identical(&inc, &scr, &what);
            assert_eq!(
                LevelProfile::of(&inc),
                LevelProfile::of(&scr),
                "{what}: level profiles"
            );
            for real in Realization::ALL {
                assert_eq!(
                    RramCost::of(&inc, real),
                    RramCost::of(&scr, real),
                    "{what}: {real} cost"
                );
            }
            assert_eq!(
                inc.truth_tables(),
                reference,
                "{what}: function not preserved"
            );
            if alg == Algorithm::Cut {
                assert!(inc_stats.peak_nodes > 0, "{what}: peak nodes untracked");
            }
        }
    }
}

#[test]
fn incremental_engine_is_deterministic_across_runs() {
    let opts = OptOptions::with_effort(6);
    for seed in [3u64, 7] {
        let nl = random_netlist("inc_det", seed, 7, 3, 40);
        let mig = Mig::from_netlist(&nl);
        let (a, sa) = run_algorithm_engine(
            &mig,
            Algorithm::Cut,
            Realization::Maj,
            &opts,
            Engine::Incremental,
        );
        let (b, sb) = run_algorithm_engine(
            &mig,
            Algorithm::Cut,
            Realization::Maj,
            &opts,
            Engine::Incremental,
        );
        assert_bit_identical(&a, &b, &format!("seed {seed}"));
        // The phase timings are wall-clock and legitimately differ
        // between runs; every decision-bearing counter must not.
        let (mut sa, mut sb) = (sa, sb);
        for s in [&mut sa, &mut sb] {
            s.t_cut_enum_ns = 0;
            s.t_eval_ns = 0;
            s.t_commit_ns = 0;
            s.t_gc_ns = 0;
        }
        assert_eq!(sa, sb, "seed {seed}: stats diverged");
    }
}

#[test]
fn rebuild_engine_stays_available_as_baseline() {
    // The pre-incremental engine remains selectable (it is the measured
    // baseline of `rms bench --profile`) and functionally correct.
    let opts = OptOptions::with_effort(4);
    let nl = random_netlist("inc_base", 11, 6, 2, 24);
    let mig = Mig::from_netlist(&nl);
    let (out, _) = run_algorithm_engine(
        &mig,
        Algorithm::Cut,
        Realization::Maj,
        &opts,
        Engine::Rebuild,
    );
    assert_eq!(out.truth_tables(), nl.truth_tables());
    assert!(out.num_gates() <= mig.compact().num_gates());
}

/// Runs the cut script with the windowed partition-parallel round
/// forced on (threshold 1) at a given worker count.
fn run_windowed(mig: &Mig, effort: usize, jobs: usize) -> Mig {
    let mut opts = OptOptions::with_effort(effort);
    opts.par_threshold = 1;
    opts.jobs = jobs;
    run_algorithm_engine(
        mig,
        Algorithm::Cut,
        Realization::Maj,
        &opts,
        Engine::Incremental,
    )
    .0
}

#[test]
fn windowed_round_is_bit_identical_across_worker_counts() {
    // The tentpole determinism contract: the partition-parallel round
    // must produce the same final netlist — nodes, levels, fingerprint —
    // for every --jobs value. 50 seeded random netlists, workers 1/2/8.
    for seed in 0..50u64 {
        let nl = random_netlist("win_prop", seed, 8, 3, 120);
        let mig = Mig::from_netlist(&nl);
        let reference = nl.truth_tables();
        let j1 = run_windowed(&mig, 4, 1);
        let j2 = run_windowed(&mig, 4, 2);
        let j8 = run_windowed(&mig, 4, 8);
        assert_bit_identical(&j1, &j2, &format!("seed {seed}: jobs 1 vs 2"));
        assert_bit_identical(&j1, &j8, &format!("seed {seed}: jobs 1 vs 8"));
        assert_eq!(j1.truth_tables(), reference, "seed {seed}: function");
    }
}

#[test]
fn windowed_round_is_deterministic_across_multiple_windows() {
    // Above WINDOW_NODES (4096) gates the partition is no longer a
    // single window, so this is the case where worker scheduling could
    // actually interleave window evaluations — the commit order must
    // still make the result worker-count-independent. One generated
    // random control DAG, jobs 1 vs 4, plus a SAT-miter equivalence
    // spot-check of the optimized graph against its source netlist.
    // 16 inputs keeps the miter bounded-tractable (array multipliers
    // like xl_mul32 are SAT-hostile and blow the conflict budget).
    let nl = random_netlist("win_large", 3, 16, 8, 9000);
    let mig = Mig::from_netlist(&nl);
    assert!(
        mig.compact().num_gates() > rms_cut::WINDOW_NODES,
        "circuit no longer spans multiple windows: {} gates",
        mig.compact().num_gates()
    );
    let j1 = run_windowed(&mig, 1, 1);
    let j4 = run_windowed(&mig, 1, 4);
    assert_bit_identical(&j1, &j4, "win_large: jobs 1 vs 4");
    match rms_flow::check_netlists(
        &nl,
        &j1.to_netlist(),
        rms_flow::VerifyMode::Sat,
        rms_flow::DEFAULT_VERIFY_SEED,
    ) {
        Ok(outcome) => assert!(outcome.is_proof() && outcome.passed(), "{outcome:?}"),
        Err(e) => panic!("miter construction failed: {e}"),
    }
}

#[test]
fn windowed_and_cached_paths_agree_on_function() {
    // The windowed round sees strictly fewer cuts (none across window
    // boundaries), so gate counts may differ from the cached path — but
    // the function may not, and both paths must stay deterministic.
    for seed in [1u64, 5, 9] {
        let nl = random_netlist("win_vs_cache", seed, 7, 2, 90);
        let mig = Mig::from_netlist(&nl);
        let windowed = run_windowed(&mig, 4, 2);
        let cached = run_algorithm_engine(
            &mig,
            Algorithm::Cut,
            Realization::Maj,
            &OptOptions::with_effort(4),
            Engine::Incremental,
        )
        .0;
        assert_eq!(
            windowed.truth_tables(),
            cached.truth_tables(),
            "seed {seed}: windowed vs cached function"
        );
    }
}
