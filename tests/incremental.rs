//! Differential property tests of the incremental rewrite engine.
//!
//! Over seeded random netlists ([`rms_logic::random::random_netlist`]),
//! every optimization algorithm must produce **bit-identical** graphs on
//! the in-place incremental engine and on the from-scratch reference
//! (full cut recomputation every round): same nodes, same levels, same
//! RRAM costs, same truth tables. For the cut algorithm this pins the
//! cut-cache invalidation rule down as the engine's correctness
//! argument — a cached cut set that diverged from a recomputation would
//! change a rewrite decision and break node-for-node equality. The
//! paper's Algs. 1–4 are engine-independent and double as determinism
//! checks.

use rms_core::cost::{LevelProfile, Realization, RramCost};
use rms_core::opt::{Algorithm, OptOptions};
use rms_core::Mig;
use rms_flow::{run_algorithm_engine, Engine};
use rms_logic::random::random_netlist;

/// Node-for-node structural equality (indices, children, complement
/// attributes, outputs, levels).
fn assert_bit_identical(a: &Mig, b: &Mig, what: &str) {
    assert_eq!(a.num_gates(), b.num_gates(), "{what}: gate counts");
    assert_eq!(a.depth(), b.depth(), "{what}: depths");
    assert_eq!(a.len(), b.len(), "{what}: node counts");
    for i in 0..a.len() {
        assert_eq!(a.node(i), b.node(i), "{what}: node {i}");
        assert_eq!(a.level(i), b.level(i), "{what}: level of node {i}");
    }
    assert_eq!(a.outputs(), b.outputs(), "{what}: outputs");
}

#[test]
fn incremental_engine_is_bit_identical_to_from_scratch() {
    let opts = OptOptions::with_effort(6);
    for seed in 0..10u64 {
        let nl = random_netlist("inc_prop", seed, 6, 2, 28);
        let mig = Mig::from_netlist(&nl);
        let reference = nl.truth_tables();
        for alg in Algorithm::ALL_WITH_CUT {
            let what = format!("seed {seed} / {alg}");
            let (inc, inc_stats) =
                run_algorithm_engine(&mig, alg, Realization::Maj, &opts, Engine::Incremental);
            let (scr, _) =
                run_algorithm_engine(&mig, alg, Realization::Maj, &opts, Engine::FromScratch);
            assert_bit_identical(&inc, &scr, &what);
            assert_eq!(
                LevelProfile::of(&inc),
                LevelProfile::of(&scr),
                "{what}: level profiles"
            );
            for real in Realization::ALL {
                assert_eq!(
                    RramCost::of(&inc, real),
                    RramCost::of(&scr, real),
                    "{what}: {real} cost"
                );
            }
            assert_eq!(
                inc.truth_tables(),
                reference,
                "{what}: function not preserved"
            );
            if alg == Algorithm::Cut {
                assert!(inc_stats.peak_nodes > 0, "{what}: peak nodes untracked");
            }
        }
    }
}

#[test]
fn incremental_engine_is_deterministic_across_runs() {
    let opts = OptOptions::with_effort(6);
    for seed in [3u64, 7] {
        let nl = random_netlist("inc_det", seed, 7, 3, 40);
        let mig = Mig::from_netlist(&nl);
        let (a, sa) = run_algorithm_engine(
            &mig,
            Algorithm::Cut,
            Realization::Maj,
            &opts,
            Engine::Incremental,
        );
        let (b, sb) = run_algorithm_engine(
            &mig,
            Algorithm::Cut,
            Realization::Maj,
            &opts,
            Engine::Incremental,
        );
        assert_bit_identical(&a, &b, &format!("seed {seed}"));
        assert_eq!(sa, sb, "seed {seed}: stats diverged");
    }
}

#[test]
fn rebuild_engine_stays_available_as_baseline() {
    // The pre-incremental engine remains selectable (it is the measured
    // baseline of `rms bench --profile`) and functionally correct.
    let opts = OptOptions::with_effort(4);
    let nl = random_netlist("inc_base", 11, 6, 2, 24);
    let mig = Mig::from_netlist(&nl);
    let (out, _) = run_algorithm_engine(
        &mig,
        Algorithm::Cut,
        Realization::Maj,
        &opts,
        Engine::Rebuild,
    );
    assert_eq!(out.truth_tables(), nl.truth_tables());
    assert!(out.num_gates() <= mig.compact().num_gates());
}
