//! Property-based tests over randomly generated circuits: every rewrite,
//! optimization algorithm, compiler, and baseline must preserve functional
//! semantics on arbitrary inputs, and the cost formulas must always match
//! the machine.
//!
//! The generator is driven by the workspace's own deterministic
//! [`SplitMix64`] (the build is offline, so no `proptest`): every case is
//! reproducible from its printed seed.

use rram_mig::aig::Aig;
use rram_mig::bdd::build as bdd_build;
use rram_mig::logic::netlist::{Netlist, NetlistBuilder, Wire};
use rram_mig::logic::rng::SplitMix64;
use rram_mig::mig::cost::{Realization, RramCost};
use rram_mig::mig::opt::{Algorithm, OptOptions};
use rram_mig::mig::rewrite;
use rram_mig::mig::Mig;
use rram_mig::rram::compile::compile;
use rram_mig::rram::machine::Machine;

/// Number of random circuits per property.
const CASES: u64 = 64;

/// A random multi-output netlist over at most 6 inputs (small enough for
/// exhaustive truth tables at this volume).
fn random_netlist(seed: u64) -> Netlist {
    let mut rng = SplitMix64::new(seed);
    let inputs = 2 + rng.next_index(5); // 2..=6
    let gates = 1 + rng.next_index(39); // 1..=39
    let outputs = 1 + rng.next_index(3); // 1..=3
    let mut b = NetlistBuilder::new("prop");
    let mut wires: Vec<Wire> = (0..inputs).map(|i| b.input(format!("x{i}"))).collect();
    wires.push(b.const0());
    fn pick(rng: &mut SplitMix64, wires: &[Wire]) -> Wire {
        let w = wires[rng.next_index(wires.len())];
        if rng.next_bool() {
            w.complement()
        } else {
            w
        }
    }
    for _ in 0..gates {
        let a = pick(&mut rng, &wires);
        let c2 = pick(&mut rng, &wires);
        let c3 = pick(&mut rng, &wires);
        let w = match rng.next_index(5) {
            0 => b.and(a, c2),
            1 => b.or(a, c2),
            2 => b.xor(a, c2),
            3 => b.maj(a, c2, c3),
            _ => b.mux(a, c2, c3),
        };
        wires.push(w);
    }
    for o in 0..outputs {
        let w = wires[wires.len() - 1 - (o % wires.len().min(8))];
        let w = if o == 1 { w.complement() } else { w };
        b.output(format!("f{o}"), w);
    }
    b.build()
}

/// Runs `check` on `CASES` random netlists, reporting the failing seed.
fn for_random_netlists(base_seed: u64, check: impl Fn(&Netlist)) {
    for case in 0..CASES {
        let seed = base_seed ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let nl = random_netlist(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&nl)));
        if let Err(panic) = result {
            eprintln!("property failed for seed {seed:#x} (case {case})");
            std::panic::resume_unwind(panic);
        }
    }
}

#[test]
fn rewrite_passes_preserve_function() {
    for_random_netlists(0xA11C_E001, |nl| {
        let reference = nl.truth_tables();
        let mig = Mig::from_netlist(nl);
        assert_eq!(mig.truth_tables(), reference);

        let passes: Vec<(&str, Mig)> = vec![
            ("eliminate", rewrite::eliminate(&mig)),
            ("reshape_up", rewrite::reshape(&mig, false)),
            ("reshape_down", rewrite::reshape(&mig, true)),
            ("push_up", rewrite::push_up(&mig)),
            ("relevance", rewrite::relevance(&mig)),
            (
                "inv_base",
                rewrite::inverter_propagation(&mig, rewrite::InverterCases::BASE, false),
            ),
            (
                "inv_all",
                rewrite::inverter_propagation(&mig, rewrite::InverterCases::ALL, false),
            ),
            (
                "inv_guarded",
                rewrite::inverter_propagation(&mig, rewrite::InverterCases::ALL, true),
            ),
        ];
        for (name, out) in passes {
            assert_eq!(out.truth_tables(), reference, "pass {name}");
        }
    });
}

#[test]
fn optimization_algorithms_preserve_function() {
    for_random_netlists(0xA11C_E002, |nl| {
        let reference = nl.truth_tables();
        let mig = Mig::from_netlist(nl);
        let opts = OptOptions::with_effort(4);
        for alg in Algorithm::ALL {
            let out = alg.run(&mig, Realization::Maj, &opts);
            assert_eq!(out.truth_tables(), reference, "{alg}");
        }
    });
}

#[test]
fn compiler_matches_cost_model_and_function() {
    for_random_netlists(0xA11C_E003, |nl| {
        let mig = Mig::from_netlist(nl).compact();
        let reference = mig.truth_tables();
        for real in Realization::ALL {
            let cost = RramCost::of(&mig, real);
            let circuit = compile(&mig, real);
            // A program with no compute steps still needs one load step to
            // land pass-through outputs in devices (see compile.rs); that
            // is the only permitted divergence from S = K*D + L.
            let expected = if cost.steps == 0 && circuit.program.num_steps() > 0 {
                1
            } else {
                cost.steps
            };
            assert_eq!(circuit.program.num_steps(), expected, "steps {real}");
            assert_eq!(circuit.model_rrams, cost.rrams, "rrams {real}");
            let got = Machine::truth_tables(&circuit.program).expect("valid program");
            assert_eq!(got, reference, "function {real}");
        }
    });
}

#[test]
fn bdd_matches_netlist() {
    for_random_netlists(0xA11C_E004, |nl| {
        let reference = nl.truth_tables();
        let circ = bdd_build::from_netlist(nl, bdd_build::Ordering::Natural);
        for m in 0..(1u64 << nl.num_inputs()) {
            for (o, root) in circ.roots.iter().enumerate() {
                assert_eq!(
                    circ.manager.eval(*root, m),
                    reference[o].bit(m),
                    "output {o} minterm {m}"
                );
            }
        }
    });
}

#[test]
fn bdd_rram_synthesis_is_correct() {
    for_random_netlists(0xA11C_E005, |nl| {
        let reference = nl.truth_tables();
        let circ = bdd_build::from_netlist(nl, bdd_build::Ordering::DfsFromOutputs);
        let out = rram_mig::bdd::rram_synth::synthesize(&circ, &Default::default());
        let got = Machine::truth_tables(&out.program).expect("valid program");
        assert_eq!(got, reference);
    });
}

#[test]
fn aig_flows_are_correct() {
    for_random_netlists(0xA11C_E006, |nl| {
        let reference = nl.truth_tables();
        let aig = Aig::from_netlist(nl);
        assert_eq!(aig.truth_tables(), reference);
        let balanced = aig.balance();
        assert_eq!(balanced.truth_tables(), reference, "balance");
        let circuit = rram_mig::aig::rram_synth::synthesize(&balanced);
        let got = Machine::truth_tables(&circuit.program).expect("valid program");
        assert_eq!(got, reference, "machine");
    });
}

#[test]
fn blif_round_trip() {
    for_random_netlists(0xA11C_E007, |nl| {
        let text = rram_mig::logic::blif::write(nl);
        let back = rram_mig::logic::blif::parse(&text).expect("own output parses");
        assert_eq!(back.truth_tables(), nl.truth_tables());
    });
}

#[test]
fn pla_round_trip() {
    for_random_netlists(0xA11C_E008, |nl| {
        let text = rram_mig::logic::pla::write(nl);
        let back = rram_mig::logic::pla::parse(&text).expect("own output parses");
        assert_eq!(back.truth_tables(), nl.truth_tables());
    });
}

#[test]
fn pipeline_handles_random_circuits() {
    // The end-to-end pipeline (new in this workspace) on the same
    // generator: every random netlist must come out verified.
    for_random_netlists(0xA11C_E009, |nl| {
        let out = rram_mig::flow::Pipeline::new(nl.clone())
            .effort(2)
            .run()
            .expect("pipeline runs");
        assert_eq!(out.report.verify, rram_mig::flow::VerifyOutcome::Exhaustive);
        assert_eq!(out.mig.truth_tables(), nl.truth_tables());
    });
}

#[test]
fn verilog_round_trip() {
    for_random_netlists(0xA11C_E00A, |nl| {
        let text = rram_mig::logic::verilog::write(nl);
        let back = rram_mig::logic::verilog::parse(&text).expect("own output parses");
        assert_eq!(back.truth_tables(), nl.truth_tables());
    });
}

#[test]
fn npn_canonicalization_is_orbit_invariant_and_reconstructs() {
    // For random 4-input truth tables: every input permutation/negation
    // and output negation lands in the same NPN class, the reported
    // transform maps the function to the canonical representative, and
    // its inverse reconstructs the original function.
    use rram_mig::cut::npn;
    let mut rng = SplitMix64::new(0xA11C_E00B);
    for case in 0..CASES * 8 {
        let f = rng.next_u64() as u16;
        let (class, t) = npn::canonicalize(f);
        assert_eq!(npn::apply(t, f), class, "case {case}: f={f:#06x}");
        assert_eq!(
            npn::apply(npn::invert(t), class),
            f,
            "case {case}: f={f:#06x}"
        );
        for _ in 0..12 {
            let u = rng.next_index(npn::NUM_TRANSFORMS);
            let g = npn::apply(u, f);
            let (gclass, gt) = npn::canonicalize(g);
            assert_eq!(gclass, class, "case {case}: f={f:#06x} u={u}");
            assert_eq!(npn::apply(gt, g), gclass, "case {case}: g={g:#06x}");
        }
    }
}

#[test]
fn cut_rewriting_preserves_function() {
    use rram_mig::mig::Algorithm;
    for_random_netlists(0xA11C_E00C, |nl| {
        let reference = nl.truth_tables();
        let mig = Mig::from_netlist(nl);
        let opts = OptOptions::with_effort(3);
        let (round, _) = rram_mig::cut::rewrite_round(&mig, true);
        assert_eq!(round.truth_tables(), reference, "rewrite round");
        for alg in [Algorithm::Cut, Algorithm::CutRram] {
            let (out, stats) = rram_mig::flow::run_algorithm(&mig, alg, Realization::Maj, &opts);
            assert_eq!(out.truth_tables(), reference, "{alg}");
            assert_eq!(stats.gates_after, out.num_gates() as u64, "{alg}");
        }
    });
}
