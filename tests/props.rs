//! Property-based tests over randomly generated circuits: every rewrite,
//! optimization algorithm, compiler, and baseline must preserve functional
//! semantics on arbitrary inputs, and the cost formulas must always match
//! the machine.

use proptest::prelude::*;
use rram_mig::aig::Aig;
use rram_mig::bdd::build as bdd_build;
use rram_mig::logic::netlist::{Netlist, NetlistBuilder, Wire};
use rram_mig::mig::cost::{Realization, RramCost};
use rram_mig::mig::opt::{Algorithm, OptOptions};
use rram_mig::mig::rewrite;
use rram_mig::mig::Mig;
use rram_mig::rram::compile::compile;
use rram_mig::rram::machine::Machine;

/// A random multi-output netlist over at most 6 inputs (small enough for
/// exhaustive truth tables at proptest volume).
fn arb_netlist() -> impl Strategy<Value = Netlist> {
    let gate = (0u8..5, any::<u16>(), any::<u16>(), any::<u16>(), any::<u8>());
    (2usize..=6, prop::collection::vec(gate, 1..40), 1usize..=3).prop_map(
        |(inputs, gates, outputs)| {
            let mut b = NetlistBuilder::new("prop");
            let mut wires: Vec<Wire> = (0..inputs).map(|i| b.input(format!("x{i}"))).collect();
            wires.push(b.const0());
            for (kind, f0, f1, f2, compl) in gates {
                let pick = |sel: u16, wires: &[Wire], c: bool| -> Wire {
                    let w = wires[sel as usize % wires.len()];
                    if c {
                        w.complement()
                    } else {
                        w
                    }
                };
                let a = pick(f0, &wires, compl & 1 != 0);
                let c2 = pick(f1, &wires, compl & 2 != 0);
                let c3 = pick(f2, &wires, compl & 4 != 0);
                let w = match kind {
                    0 => b.and(a, c2),
                    1 => b.or(a, c2),
                    2 => b.xor(a, c2),
                    3 => b.maj(a, c2, c3),
                    _ => b.mux(a, c2, c3),
                };
                wires.push(w);
            }
            for o in 0..outputs {
                let w = wires[wires.len() - 1 - (o % wires.len().min(8))];
                let w = if o == 1 { w.complement() } else { w };
                b.output(format!("f{o}"), w);
            }
            b.build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rewrite_passes_preserve_function(nl in arb_netlist()) {
        let reference = nl.truth_tables();
        let mig = Mig::from_netlist(&nl);
        prop_assert_eq!(&mig.truth_tables(), &reference);

        let passes: Vec<(&str, Mig)> = vec![
            ("eliminate", rewrite::eliminate(&mig)),
            ("reshape_up", rewrite::reshape(&mig, false)),
            ("reshape_down", rewrite::reshape(&mig, true)),
            ("push_up", rewrite::push_up(&mig)),
            ("relevance", rewrite::relevance(&mig)),
            ("inv_base", rewrite::inverter_propagation(&mig, rewrite::InverterCases::BASE, false)),
            ("inv_all", rewrite::inverter_propagation(&mig, rewrite::InverterCases::ALL, false)),
            ("inv_guarded", rewrite::inverter_propagation(&mig, rewrite::InverterCases::ALL, true)),
        ];
        for (name, out) in passes {
            prop_assert_eq!(&out.truth_tables(), &reference, "pass {}", name);
        }
    }

    #[test]
    fn optimization_algorithms_preserve_function(nl in arb_netlist()) {
        let reference = nl.truth_tables();
        let mig = Mig::from_netlist(&nl);
        let opts = OptOptions::with_effort(4);
        for alg in Algorithm::ALL {
            let out = alg.run(&mig, Realization::Maj, &opts);
            prop_assert_eq!(&out.truth_tables(), &reference, "{}", alg);
        }
    }

    #[test]
    fn compiler_matches_cost_model_and_function(nl in arb_netlist()) {
        let mig = Mig::from_netlist(&nl).compact();
        let reference = mig.truth_tables();
        for real in Realization::ALL {
            let cost = RramCost::of(&mig, real);
            let circuit = compile(&mig, real);
            // A program with no compute steps still needs one load step to
            // land pass-through outputs in devices (see compile.rs); that
            // is the only permitted divergence from S = K*D + L.
            let expected = if cost.steps == 0 && circuit.program.num_steps() > 0 {
                1
            } else {
                cost.steps
            };
            prop_assert_eq!(circuit.program.num_steps(), expected, "steps {}", real);
            prop_assert_eq!(circuit.model_rrams, cost.rrams, "rrams {}", real);
            let got = Machine::truth_tables(&circuit.program).expect("valid program");
            prop_assert_eq!(&got, &reference, "function {}", real);
        }
    }

    #[test]
    fn bdd_matches_netlist(nl in arb_netlist()) {
        let reference = nl.truth_tables();
        let circ = bdd_build::from_netlist(&nl, bdd_build::Ordering::Natural);
        for m in 0..(1u64 << nl.num_inputs()) {
            for (o, root) in circ.roots.iter().enumerate() {
                prop_assert_eq!(circ.manager.eval(*root, m), reference[o].bit(m),
                    "output {} minterm {}", o, m);
            }
        }
    }

    #[test]
    fn bdd_rram_synthesis_is_correct(nl in arb_netlist()) {
        let reference = nl.truth_tables();
        let circ = bdd_build::from_netlist(&nl, bdd_build::Ordering::DfsFromOutputs);
        let out = rram_mig::bdd::rram_synth::synthesize(&circ, &Default::default());
        let got = Machine::truth_tables(&out.program).expect("valid program");
        prop_assert_eq!(&got, &reference);
    }

    #[test]
    fn aig_flows_are_correct(nl in arb_netlist()) {
        let reference = nl.truth_tables();
        let aig = Aig::from_netlist(&nl);
        prop_assert_eq!(&aig.truth_tables(), &reference);
        let balanced = aig.balance();
        prop_assert_eq!(&balanced.truth_tables(), &reference, "balance");
        let circuit = rram_mig::aig::rram_synth::synthesize(&balanced);
        let got = Machine::truth_tables(&circuit.program).expect("valid program");
        prop_assert_eq!(&got, &reference, "machine");
    }

    #[test]
    fn blif_round_trip(nl in arb_netlist()) {
        let text = rram_mig::logic::blif::write(&nl);
        let back = rram_mig::logic::blif::parse(&text).expect("own output parses");
        prop_assert_eq!(&back.truth_tables(), &nl.truth_tables());
    }

    #[test]
    fn pla_round_trip(nl in arb_netlist()) {
        let text = rram_mig::logic::pla::write(&nl);
        let back = rram_mig::logic::pla::parse(&text).expect("own output parses");
        prop_assert_eq!(&back.truth_tables(), &nl.truth_tables());
    }
}
