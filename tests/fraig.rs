//! Property tests of the fraig (SAT-sweeping) pass, from the outside:
//! every merge the pass commits is re-proved here by an *independent,
//! unbounded* SAT miter over a snapshot of the graph taken before the
//! pass ran — the pass's own bounded proofs are not trusted. Conversely,
//! every budget-exhausted candidate pair must be left unmerged: "the
//! solver ran out of budget" is never allowed to count as "equal".

use rram_mig::cut::{fraig_pass, prove_signals, FraigOptions, ProveOutcome};
use rram_mig::logic::random::random_netlist;
use rram_mig::mig::{IncrementalMig, Mig, MigSignal};

/// Builds a seeded random circuit dense enough to contain mergeable
/// structure (tight input counts force reconvergence).
fn fraig_subject(seed: u64) -> Mig {
    let inputs = 4 + (seed % 4) as usize;
    let outputs = 1 + (seed % 3) as usize;
    let gates = 15 + (seed % 26) as usize;
    let nl = random_netlist("fraig", seed, inputs, outputs, gates);
    Mig::from_netlist(&nl).compact()
}

#[test]
fn every_fraig_merge_is_reproved_by_an_unbounded_independent_miter() {
    let mut total_merges = 0u64;
    for seed in 0..30u64 {
        let mig = fraig_subject(seed);
        let reference = mig.truth_tables();
        let mut g = IncrementalMig::from_mig(&mig);
        // The pre-pass snapshot: merge log entries are (node, target)
        // pairs in the stable numbering, so they stay meaningful here.
        let snapshot = g.clone();
        let outcome = fraig_pass(&mut g, &FraigOptions::default());
        g.assert_consistent();
        for &(node, target) in &outcome.merges {
            match prove_signals(&snapshot, MigSignal::new(node, false), target, None) {
                ProveOutcome::Equal { .. } => {}
                other => panic!(
                    "seed {seed}: merge {node} -> {target:?} not independently provable: {other:?}"
                ),
            }
        }
        total_merges += outcome.merges.len() as u64;
        assert_eq!(
            outcome.stats.merges,
            outcome.merges.len() as u64,
            "seed {seed}"
        );
        // The merged graph must still compute the source function.
        assert_eq!(g.to_mig().truth_tables(), reference, "seed {seed}");
    }
    // The property is vacuous if the pass never merges anything.
    assert!(total_merges > 0, "no merges across 30 seeds");
}

#[test]
fn budget_exhausted_candidates_are_left_unmerged() {
    // A one-conflict budget forces Unknown outcomes on any pair whose
    // miter needs real search; the pass must retire those pairs, not
    // merge them.
    let opts = FraigOptions {
        conflict_budget: 1,
        ..FraigOptions::default()
    };
    let mut total_gave_up = 0u64;
    for seed in 0..30u64 {
        let mig = fraig_subject(seed);
        let reference = mig.truth_tables();
        let mut g = IncrementalMig::from_mig(&mig);
        let snapshot = g.clone();
        let outcome = fraig_pass(&mut g, &opts);
        assert_eq!(
            outcome.stats.budget_exhausted,
            outcome.gave_up.len() as u64,
            "seed {seed}"
        );
        for &(rep, member) in &outcome.gave_up {
            // Not merged: the member never appears in the merge log.
            assert!(
                outcome.merges.iter().all(|&(n, _)| n != member),
                "seed {seed}: budget-exhausted member {member} was merged"
            );
            // And the retired pair really was beyond a 1-conflict budget
            // (or at least well-formed): both ends exist in the snapshot.
            assert!(
                rep < snapshot.len() && member < snapshot.len(),
                "seed {seed}"
            );
        }
        total_gave_up += outcome.gave_up.len() as u64;
        // Starved of budget, the pass must still be sound.
        assert_eq!(g.to_mig().truth_tables(), reference, "seed {seed}");
    }
    assert!(
        total_gave_up > 0,
        "a 1-conflict budget should exhaust on some pair across 30 seeds"
    );
}

#[test]
fn fraig_is_deterministic_across_repeated_runs() {
    for seed in [3u64, 17, 29] {
        let mig = fraig_subject(seed);
        let mut a = IncrementalMig::from_mig(&mig);
        let mut b = IncrementalMig::from_mig(&mig);
        let oa = fraig_pass(&mut a, &FraigOptions::default());
        let ob = fraig_pass(&mut b, &FraigOptions::default());
        assert_eq!(oa.merges, ob.merges, "seed {seed}");
        assert_eq!(oa.stats, ob.stats, "seed {seed}");
        assert_eq!(a.fingerprint(), b.fingerprint(), "seed {seed}");
    }
}
