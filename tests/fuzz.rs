//! No-panic fuzz properties over every parser the tool exposes to
//! untrusted bytes: BLIF, PLA, Verilog, expression, truth-table, and
//! AIGER (ASCII and binary) frontends, format sniffing, the serve JSON
//! parser, and the serve request handler itself.
//!
//! Each case feeds seeded random bytes, truncated prefixes of valid
//! inputs, or byte-mutated valid inputs; the property is always the
//! same — the parser returns `Ok` or `Err`, it never panics. The
//! workspace's deterministic [`SplitMix64`] drives generation, so every
//! failure reproduces from the printed seed. Across all properties this
//! suite runs well over 10,000 cases.

use rram_mig::flow::input::{self, InputFormat};
use rram_mig::logic::rng::SplitMix64;
use rram_mig::logic::{aiger, bench_suite, blif, pla, verilog};
use std::panic::{catch_unwind, AssertUnwindSafe};

const FORMATS: [InputFormat; 6] = [
    InputFormat::Blif,
    InputFormat::Pla,
    InputFormat::Verilog,
    InputFormat::Expr,
    InputFormat::TruthTable,
    InputFormat::Aiger,
];

/// Asserts that parsing `bytes` as `format` does not panic; the result
/// (accept or reject) is irrelevant.
fn must_not_panic(format: InputFormat, bytes: &[u8], what: &str) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _ = input::parse_bytes(format, bytes, "fuzz");
    }));
    assert!(
        outcome.is_ok(),
        "{what}: parser for {format:?} panicked on {} bytes: {:?}",
        bytes.len(),
        preview(bytes),
    );
}

/// Asserts that sniffing + parsing `bytes` with no declared format does
/// not panic.
fn sniffed_must_not_panic(bytes: &[u8], what: &str) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Ok(format) = input::sniff_bytes(bytes) {
            let _ = input::parse_bytes(format, bytes, "fuzz");
        }
    }));
    assert!(
        outcome.is_ok(),
        "{what}: sniffed parse panicked on {} bytes: {:?}",
        bytes.len(),
        preview(bytes),
    );
}

/// First bytes of the offending input, escaped, for the failure message.
fn preview(bytes: &[u8]) -> String {
    let head: Vec<u8> = bytes.iter().copied().take(64).collect();
    format!("{}", String::from_utf8_lossy(&head).escape_debug())
}

/// One valid exemplar per concrete syntax, produced by the workspace's
/// own writers where they exist (so the corpus tracks the dialect the
/// parsers actually accept).
fn corpus() -> Vec<(InputFormat, Vec<u8>)> {
    let nl = bench_suite::build("rd53_f2").expect("exemplar benchmark");
    vec![
        (InputFormat::Blif, blif::write(&nl).into_bytes()),
        (InputFormat::Pla, pla::write(&nl).into_bytes()),
        (InputFormat::Verilog, verilog::write(&nl).into_bytes()),
        (
            InputFormat::Expr,
            b"f = maj(a, b, c) ^ !d\ng = a & b | c\n".to_vec(),
        ),
        (InputFormat::TruthTable, b"f = 0xe8\ng = 0x96\n".to_vec()),
        (InputFormat::Aiger, aiger::write_ascii(&nl).into_bytes()),
        (InputFormat::Aiger, aiger::write_binary(&nl)),
    ]
}

fn random_bytes(rng: &mut SplitMix64, max_len: usize) -> Vec<u8> {
    let len = rng.next_index(max_len + 1);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Random printable-ish ASCII, which gets deeper into line-oriented
/// parsers than raw bytes (fewer early UTF-8/keyword rejections).
fn random_text(rng: &mut SplitMix64, max_len: usize) -> Vec<u8> {
    const ALPHABET: &[u8] = b" \t\n.=()&|^!01-xfabcmj_;,[]#\\\"aig aag .i .o .names .model end";
    let len = rng.next_index(max_len + 1);
    (0..len)
        .map(|_| ALPHABET[rng.next_index(ALPHABET.len())])
        .collect()
}

#[test]
fn random_bytes_never_panic_any_parser() {
    // 6 formats x 2 generators x 200 cases = 2400, plus 400 sniffed.
    let mut rng = SplitMix64::new(0xF077_1234_5678_9ABC);
    for format in FORMATS {
        for case in 0..200 {
            let bytes = random_bytes(&mut rng, 256);
            must_not_panic(format, &bytes, &format!("random bytes case {case}"));
            let text = random_text(&mut rng, 256);
            must_not_panic(format, &text, &format!("random text case {case}"));
        }
    }
    for case in 0..400 {
        let bytes = random_bytes(&mut rng, 256);
        sniffed_must_not_panic(&bytes, &format!("sniffed random case {case}"));
    }
}

#[test]
fn truncated_valid_inputs_never_panic() {
    // 7 corpus entries x 300 truncations = 2100 cases.
    let mut rng = SplitMix64::new(0x7514_AC47_ED00_0001);
    for (format, valid) in corpus() {
        for case in 0..300 {
            let cut = rng.next_index(valid.len() + 1);
            must_not_panic(format, &valid[..cut], &format!("truncation case {case}"));
        }
    }
}

#[test]
fn byte_mutated_valid_inputs_never_panic() {
    // 7 corpus entries x 300 mutations = 2100 cases.
    let mut rng = SplitMix64::new(0x3117_A7ED_0000_0002);
    for (format, valid) in corpus() {
        for case in 0..300 {
            let mut bytes = valid.clone();
            let flips = 1 + rng.next_index(4);
            for _ in 0..flips {
                let at = rng.next_index(bytes.len());
                bytes[at] = rng.next_u64() as u8;
            }
            must_not_panic(format, &bytes, &format!("mutation case {case}"));
        }
    }
}

#[test]
fn serve_json_parser_never_panics() {
    // 2000 random + 2000 mutated = 4000 cases.
    use rms_serve::json::Value;
    let mut rng = SplitMix64::new(0x9E37_79B9_7F4A_7C15);
    const VALID: &str = r#"{"id":"r1","bench":"rd53_f2","opt":"cut","effort":12,
        "deadline_ms":100,"best_effort":true,"batch":[{"id":"x","expr":"f=a&b"}],
        "nested":{"a":[1,2.5,-3e4,true,false,null,"A\n"]}}"#;
    for case in 0..2000 {
        let bytes = random_text(&mut rng, 200);
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = Value::parse(&text);
        }));
        assert!(outcome.is_ok(), "random JSON case {case}: {text:?}");
    }
    for case in 0..2000 {
        let mut bytes = VALID.as_bytes().to_vec();
        let flips = 1 + rng.next_index(4);
        for _ in 0..flips {
            let at = rng.next_index(bytes.len());
            bytes[at] = rng.next_u64() as u8;
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = Value::parse(&text);
        }));
        assert!(outcome.is_ok(), "mutated JSON case {case}: {text:?}");
    }
}

#[test]
fn serve_request_handler_never_panics_on_mutated_requests() {
    // 500 cases through the full request path (parse, validate, answer
    // in-band) — kept cheap by pointing valid-after-mutation requests at
    // `op":"stats"` instead of a synthesis run.
    let service = rms_serve::Service::new(rms_serve::ServeConfig::default());
    let mut rng = SplitMix64::new(0x5E11_0000_0000_0003);
    const VALID: &str = r#"{"id":"s","op":"stats","deadline_ms":5,"best_effort":false}"#;
    for case in 0..500 {
        let mut bytes = VALID.as_bytes().to_vec();
        let flips = 1 + rng.next_index(3);
        for _ in 0..flips {
            let at = rng.next_index(bytes.len());
            bytes[at] = rng.next_u64() as u8;
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let outcome = catch_unwind(AssertUnwindSafe(|| service.handle_line(&text)));
        let response = outcome.unwrap_or_else(|_| panic!("handler case {case}: {text:?}"));
        assert!(
            response.starts_with("{\"protocol\":"),
            "case {case}: malformed envelope {response:?}"
        );
    }
}
