//! Table I cost-model validation: the closed-form `R` and `S` formulas must
//! equal what the cycle-accurate machine actually measures, for every
//! benchmark, every optimization algorithm, and both realizations.

use rram_mig::logic::bench_suite;
use rram_mig::mig::cost::{LevelProfile, Realization, RramCost};
use rram_mig::mig::opt::{Algorithm, OptOptions};
use rram_mig::mig::Mig;
use rram_mig::rram::compile::compile;

#[test]
fn formulas_match_machine_on_initial_migs() {
    for info in bench_suite::LARGE_SUITE
        .iter()
        .chain(bench_suite::SMALL_SUITE)
    {
        let mig = Mig::from_netlist(&bench_suite::build_info(info)).compact();
        for real in Realization::ALL {
            let cost = RramCost::of(&mig, real);
            let circuit = compile(&mig, real);
            assert_eq!(
                circuit.program.num_steps(),
                cost.steps,
                "{}/{real}: S = K*D + L",
                info.name
            );
            assert_eq!(
                circuit.model_rrams, cost.rrams,
                "{}/{real}: R = max(K*Ni + Ci)",
                info.name
            );
            assert!(
                circuit.physical_rrams >= circuit.model_rrams,
                "{}/{real}: physical devices must cover the model",
                info.name
            );
        }
    }
}

#[test]
fn formulas_match_machine_after_optimization() {
    let opts = OptOptions::with_effort(6);
    for name in ["x2", "cordic", "misex1", "9sym_d", "clip", "t481"] {
        let mig = Mig::from_netlist(&bench_suite::build(name).expect("known benchmark"));
        for alg in Algorithm::ALL {
            for real in Realization::ALL {
                let opt = alg.run(&mig, real, &opts);
                let cost = RramCost::of(&opt, real);
                let circuit = compile(&opt, real);
                assert_eq!(
                    circuit.program.num_steps(),
                    cost.steps,
                    "{name}/{alg}/{real}: steps"
                );
                assert_eq!(
                    circuit.model_rrams, cost.rrams,
                    "{name}/{alg}/{real}: rrams"
                );
            }
        }
    }
}

#[test]
fn s_decomposes_into_depth_and_complemented_levels() {
    for info in bench_suite::LARGE_SUITE {
        let mig = Mig::from_netlist(&bench_suite::build_info(info)).compact();
        let profile = LevelProfile::of(&mig);
        for real in Realization::ALL {
            let cost = RramCost::of(&mig, real);
            assert_eq!(
                cost.steps,
                real.steps_per_level() * profile.depth + profile.levels_with_compl,
                "{}/{real}",
                info.name
            );
        }
    }
}

#[test]
fn maj_realization_always_cheaper_in_steps() {
    // 3 steps/level vs 10 steps/level: MAJ strictly wins on any circuit
    // with at least one level.
    for info in bench_suite::SMALL_SUITE {
        let mig = Mig::from_netlist(&bench_suite::build_info(info)).compact();
        let imp = RramCost::of(&mig, Realization::Imp);
        let maj = RramCost::of(&mig, Realization::Maj);
        assert!(maj.steps < imp.steps, "{}", info.name);
        assert!(maj.rrams <= imp.rrams, "{}", info.name);
    }
}
