//! Integration tests for the `rms serve` subsystem: content-addressed
//! cache correctness across circuit spellings, byte-identity of cache
//! hits, concurrent clients, batch determinism across worker counts, and
//! the HTTP transport end to end.

use rms_serve::{spawn_http, ServeConfig, Service};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Four-input circuit `f = (a & b) & (c | d)` with the AND gate declared
/// first.
const BLIF_AND_FIRST: &str =
    ".model t\\n.inputs a b c d\\n.outputs f\\n.names a b w1\\n11 1\\n.names c d w2\\n1- 1\\n-1 1\\n.names w1 w2 f\\n11 1\\n.end\\n";

/// The same DAG with the OR gate declared first — every internal node id
/// is permuted relative to [`BLIF_AND_FIRST`].
const BLIF_OR_FIRST: &str =
    ".model t\\n.inputs a b c d\\n.outputs f\\n.names c d w2\\n1- 1\\n-1 1\\n.names a b w1\\n11 1\\n.names w1 w2 f\\n11 1\\n.end\\n";

/// The same DAG again, spelled as structural Verilog.
const VERILOG_SAME: &str =
    "module t(a, b, c, d, f);\\n  input a, b, c, d;\\n  output f;\\n  wire w1, w2;\\n  assign w1 = a & b;\\n  assign w2 = c | d;\\n  assign f = w1 & w2;\\nendmodule\\n";

fn service() -> Service {
    Service::new(ServeConfig::default())
}

fn request(id: &str, circuit: &str) -> String {
    format!(
        "{{\"id\":\"{id}\",\"circuit\":\"{circuit}\",\"opt\":\"cut\",\"effort\":4,\"deterministic\":true}}"
    )
}

/// The `"report":{…}` payload of a response envelope (the envelope
/// always ends with the report object).
fn report_of(response: &str) -> &str {
    let idx = response.find("\"report\":").expect("response has a report");
    &response[idx + "\"report\":".len()..response.len() - 1]
}

#[test]
fn permuted_node_ids_and_formats_share_one_cache_entry() {
    let s = service();
    let cold = s.handle_line(&request("first", BLIF_AND_FIRST));
    assert!(cold.contains("\"cache\":\"miss\""), "{cold}");

    let permuted = s.handle_line(&request("second", BLIF_OR_FIRST));
    assert!(
        permuted.contains("\"cache\":\"hit\""),
        "permuted gate declaration order must hit: {permuted}"
    );
    let verilog = s.handle_line(&request("third", VERILOG_SAME));
    assert!(
        verilog.contains("\"cache\":\"hit\""),
        "same DAG in Verilog must hit: {verilog}"
    );
    // All three spellings share one entry, and provenance names the
    // request that did the work.
    let stats = s.cache_stats();
    assert_eq!(stats.entries, 1, "one content-addressed entry");
    assert_eq!((stats.misses, stats.hits), (1, 2));
    assert!(permuted.contains("\"request_id\":\"first\""), "{permuted}");

    // Different options are a different address.
    let other =
        s.handle_line(&request("fourth", BLIF_AND_FIRST).replace("\"effort\":4", "\"effort\":5"));
    assert!(other.contains("\"cache\":\"miss\""), "{other}");
    assert_eq!(s.cache_stats().entries, 2);
}

#[test]
fn cache_hit_report_is_byte_identical_to_cold_run() {
    let s = service();
    let cold = s.handle_line(&request("cold", BLIF_AND_FIRST));
    let warm = s.handle_line(&request("warm", BLIF_OR_FIRST));
    assert!(cold.contains("\"cache\":\"miss\"") && warm.contains("\"cache\":\"hit\""));
    assert_eq!(
        report_of(&cold),
        report_of(&warm),
        "a hit must serve the memoized report byte for byte"
    );
    // The report carries the schema version stamp.
    assert!(
        report_of(&cold).starts_with("{\"schema\":\"rms-flow-report-v1\""),
        "{}",
        report_of(&cold)
    );
    // Only provenance and the envelope differ: swap the disposition and
    // ids and the rest matches.
    let normalized_warm = warm
        .replace("\"cache\":\"hit\"", "\"cache\":\"miss\"")
        .replace("\"id\":\"warm\"", "\"id\":\"cold\"")
        .replace("\"hits\":1", "\"hits\":0");
    assert_eq!(cold, normalized_warm);
}

#[test]
fn concurrent_clients_agree_and_share_entries() {
    let s = Arc::new(service());
    let circuits = [BLIF_AND_FIRST, BLIF_OR_FIRST, VERILOG_SAME];
    let mut handles = Vec::new();
    for t in 0..6 {
        let s = Arc::clone(&s);
        handles.push(std::thread::spawn(move || {
            let mut responses = Vec::new();
            for round in 0..3 {
                let circuit = circuits[(t + round) % circuits.len()];
                responses.push(s.handle_line(&request("c", circuit)));
            }
            responses
        }));
    }
    let all: Vec<String> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    assert_eq!(all.len(), 18);
    let reference = report_of(&all[0]).to_string();
    for response in &all {
        assert!(response.contains("\"status\":\"ok\""), "{response}");
        // All three spellings are one function — every response carries
        // the identical report bytes.
        assert_eq!(report_of(response), reference, "{response}");
    }
    // One content-addressed entry no matter how the 18 requests raced.
    assert_eq!(s.cache_stats().entries, 1);
}

#[test]
fn batch_responses_are_bit_identical_across_worker_counts() {
    let batch_for = |jobs: usize| {
        format!(
            "{{\"id\":\"b\",\"opt\":\"cut\",\"effort\":3,\"deterministic\":true,\"jobs\":{jobs},\
             \"batch\":[{{\"id\":\"i0\",\"bench\":\"rd53_f2\"}},\
             {{\"id\":\"i1\",\"circuit\":\"{BLIF_AND_FIRST}\"}},\
             {{\"id\":\"i2\",\"bench\":\"xor5_d\"}},\
             {{\"id\":\"i3\",\"circuit\":\"{BLIF_OR_FIRST}\"}},\
             {{\"id\":\"i4\",\"bench\":\"rd53_f2\"}}]}}"
        )
    };
    let sequential = service().handle_line(&batch_for(1));
    let parallel = service().handle_line(&batch_for(4));
    assert_eq!(
        sequential, parallel,
        "batch byte stream must not depend on the worker count"
    );
    // Within one batch, the first occurrence computes and later
    // duplicates (even under a different spelling) hit.
    let i3 = sequential.find("\"id\":\"i3\"").expect("item i3");
    assert!(
        sequential[i3..].contains("\"cache\":\"hit\""),
        "{sequential}"
    );
}

#[test]
fn http_transport_serves_cache_hits_end_to_end() {
    let addr = spawn_http(Arc::new(service()), "127.0.0.1:0").expect("bind ephemeral port");
    let post = |body: &str| -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "POST /synth HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("receive");
        response
    };
    let cold = post(&format!("{}\n", request("h1", BLIF_AND_FIRST)));
    assert!(cold.starts_with("HTTP/1.1 200 OK\r\n"), "{cold}");
    assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
    let warm = post(&format!("{}\n", request("h2", VERILOG_SAME)));
    assert!(
        warm.contains("\"cache\":\"hit\""),
        "Verilog spelling over HTTP must hit the BLIF entry: {warm}"
    );
    let cold_body = cold.split("\r\n\r\n").nth(1).expect("body");
    let warm_body = warm.split("\r\n\r\n").nth(1).expect("body");
    assert_eq!(
        report_of(cold_body.trim_end()),
        report_of(warm_body.trim_end()),
        "identical report bytes across transports"
    );
}
