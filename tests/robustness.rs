//! End-to-end robustness tests driving the real `rms` binary: the
//! documented exit-code taxonomy, panic isolation via the fault-injection
//! registry, deadline behavior, crash-safe cache persistence across
//! `kill -9`, torn-journal-tail recovery, and (on Unix) the SIGTERM
//! graceful-shutdown path of the HTTP server.

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

fn rms() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rms"))
}

fn exit_code(out: &std::process::Output) -> i32 {
    out.status.code().expect("process terminated by signal")
}

// ---------------------------------------------------------------- exit codes

#[test]
fn usage_error_exits_2() {
    let out = rms().args(["run", "--nope"]).output().unwrap();
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let out = rms().arg("frobnicate").output().unwrap();
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let out = rms().output().unwrap();
    assert_eq!(exit_code(&out), 2, "no subcommand: {out:?}");
}

#[test]
fn parse_error_exits_3() {
    let out = rms().args(["run", "--expr", "f = ("]).output().unwrap();
    assert_eq!(exit_code(&out), 3, "{out:?}");
    let out = rms()
        .args(["run", "--input", "/nonexistent/not-here.blif"])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 3, "{out:?}");
}

#[test]
fn verification_failure_exits_4() {
    // rd53 bit 0 vs bit 1: genuinely different functions.
    let out = rms()
        .args(["verify", "bench:rd53_f1", "bench:rd53_f2"])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 4, "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("NOT equivalent"), "{err}");
}

#[test]
fn expired_deadline_exits_5() {
    let out = rms()
        .args([
            "run",
            "--bench",
            "misex1",
            "--opt",
            "rram",
            "--timeout",
            "0",
        ])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 5, "{out:?}");
}

#[test]
fn expired_deadline_with_best_effort_succeeds() {
    let out = rms()
        .args([
            "run",
            "--bench",
            "rd53_f2",
            "--opt",
            "rram",
            "--timeout",
            "0",
            "--best-effort",
            "--json",
        ])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"cancelled\":true"), "{text}");
}

#[test]
fn injected_panic_exits_6() {
    let out = rms()
        .args(["run", "--expr", "f = a & b"])
        .env("RMS_FAULTS", "cli-panic:1")
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 6, "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("internal error"), "{err}");
}

#[test]
fn clean_run_exits_0() {
    let out = rms()
        .args([
            "run", "--bench", "rd53_f2", "--opt", "rram", "--effort", "2",
        ])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 0, "{out:?}");
}

// ------------------------------------------------------------- serve harness

struct ServeProc {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl ServeProc {
    fn spawn(cache_dir: &std::path::Path) -> ServeProc {
        let mut child = rms()
            .arg("serve")
            .arg("--cache-dir")
            .arg(cache_dir)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn rms serve");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        ServeProc {
            child,
            stdin,
            stdout,
        }
    }

    /// Sends one request line and reads one response line.
    fn round_trip(&mut self, request: &str) -> String {
        writeln!(self.stdin, "{request}").expect("write request");
        self.stdin.flush().expect("flush request");
        let mut line = String::new();
        self.stdout.read_line(&mut line).expect("read response");
        assert!(!line.is_empty(), "serve closed the stream unexpectedly");
        line.trim_end().to_string()
    }

    fn kill_hard(mut self) {
        // SIGKILL: no destructors, no shutdown hook — the journal had
        // better already be durable.
        self.child.kill().expect("kill -9");
        self.child.wait().expect("reap");
    }
}

/// Extracts the `"report":{...}` object (brace-matched) from a response
/// line, so hits can be compared byte-for-byte without the request id
/// and cache-disposition fields that legitimately differ.
fn extract_report(line: &str) -> &str {
    let start = line.find("\"report\":").expect("response has a report") + "\"report\":".len();
    let bytes = line.as_bytes();
    assert_eq!(bytes[start], b'{', "report is an object");
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escape = false;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        if escape {
            escape = false;
            continue;
        }
        match b {
            b'\\' if in_str => escape = true,
            b'"' => in_str = !in_str,
            b'{' if !in_str => depth += 1,
            b'}' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return &line[start..=i];
                }
            }
            _ => {}
        }
    }
    panic!("unterminated report object in {line}");
}

const WARM_REQUEST: &str = r#"{"id":"r1","bench":"rd53_f2","effort":2}"#;

// ------------------------------------------------------- restart durability

#[test]
fn warm_hits_survive_kill_dash_nine_byte_identical() {
    let dir = std::env::temp_dir().join(format!("rms-robust-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Cold miss, then a warm hit whose bytes we keep.
    let mut serve = ServeProc::spawn(&dir);
    let miss = serve.round_trip(WARM_REQUEST);
    assert!(miss.contains("\"cache\":\"miss\""), "{miss}");
    let hit_before = serve.round_trip(r#"{"id":"warm","bench":"rd53_f2","effort":2}"#);
    assert!(hit_before.contains("\"cache\":\"hit\""), "{hit_before}");

    // kill -9: no clean shutdown, no compaction.
    serve.kill_hard();
    assert!(
        dir.join("journal.rms").exists(),
        "journal file written before the crash"
    );

    // A fresh process must replay the journal and serve the same bytes.
    let mut serve = ServeProc::spawn(&dir);
    let hit_after = serve.round_trip(r#"{"id":"warm","bench":"rd53_f2","effort":2}"#);
    assert!(hit_after.contains("\"cache\":\"hit\""), "{hit_after}");
    assert!(
        hit_after.contains("\"request_id\":\"r1\""),
        "provenance preserved across the crash: {hit_after}"
    );
    assert_eq!(
        extract_report(&hit_before),
        extract_report(&hit_after),
        "warm hit must be byte-identical across kill -9"
    );
    assert_eq!(hit_before, hit_after, "entire response line is identical");
    serve.kill_hard();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_is_recovered() {
    let dir = std::env::temp_dir().join(format!("rms-robust-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut serve = ServeProc::spawn(&dir);
    let first = serve.round_trip(WARM_REQUEST);
    assert!(first.contains("\"cache\":\"miss\""), "{first}");
    let second = serve.round_trip(r#"{"id":"r2","bench":"rd53_f1","effort":2}"#);
    assert!(second.contains("\"cache\":\"miss\""), "{second}");
    serve.kill_hard();

    // Tear the tail: chop bytes off the last record, as a crash mid-write
    // would.
    let journal = dir.join("journal.rms");
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() - 7]).unwrap();

    // The surviving prefix must still replay: first entry hits, the torn
    // second entry recomputes as a miss, and new appends keep working.
    let mut serve = ServeProc::spawn(&dir);
    let hit = serve.round_trip(r#"{"id":"again","bench":"rd53_f2","effort":2}"#);
    assert!(hit.contains("\"cache\":\"hit\""), "{hit}");
    assert!(hit.contains("\"request_id\":\"r1\""), "{hit}");
    let recomputed = serve.round_trip(r#"{"id":"again2","bench":"rd53_f1","effort":2}"#);
    assert!(
        recomputed.contains("\"cache\":\"miss\""),
        "torn entry was discarded: {recomputed}"
    );
    serve.kill_hard();
    let _ = std::fs::remove_dir_all(&dir);
}

// --------------------------------------------- panic isolation over the wire

#[test]
fn serve_isolates_injected_panic_and_keeps_serving() {
    let dir = std::env::temp_dir().join(format!("rms-robust-panic-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut child = rms()
        .arg("serve")
        .arg("--cache-dir")
        .arg(&dir)
        .env("RMS_FAULTS", "request-panic-gate")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rms serve");
    let stdin = child.stdin.take().unwrap();
    let stdout = BufReader::new(child.stdout.take().unwrap());
    let mut serve = ServeProc {
        child,
        stdin,
        stdout,
    };

    let miss = serve.round_trip(WARM_REQUEST);
    assert!(miss.contains("\"cache\":\"miss\""), "{miss}");

    let boom = serve.round_trip(r#"{"id":"boom","bench":"rd53_f2","fault":"panic"}"#);
    assert!(boom.contains("\"status\":\"error\""), "{boom}");
    assert!(boom.contains("\"kind\":\"internal_error\""), "{boom}");
    assert!(boom.contains("\"id\":\"boom\""), "{boom}");

    // The process survived and the cache still answers.
    let hit = serve.round_trip(r#"{"id":"after","bench":"rd53_f2","effort":2}"#);
    assert!(hit.contains("\"cache\":\"hit\""), "{hit}");
    serve.kill_hard();
    let _ = std::fs::remove_dir_all(&dir);
}

// --------------------------------------------------- per-request deadlines

#[test]
fn serve_request_deadline_is_a_structured_timeout() {
    let dir = std::env::temp_dir().join(format!("rms-robust-deadline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut serve = ServeProc::spawn(&dir);

    let timed_out = serve.round_trip(r#"{"id":"slow","bench":"xl_ctrl10k","deadline_ms":1}"#);
    assert!(timed_out.contains("\"status\":\"error\""), "{timed_out}");
    assert!(timed_out.contains("\"kind\":\"timeout\""), "{timed_out}");

    // The same connection keeps serving: an untimed request completes.
    let ok = serve.round_trip(r#"{"id":"fast","bench":"rd53_f2","effort":2}"#);
    assert!(ok.contains("\"status\":\"ok\""), "{ok}");

    // Best-effort on an expired deadline: verified truncated result,
    // never cached.
    let best =
        serve.round_trip(r#"{"id":"be","bench":"rd53_f1","deadline_ms":0,"best_effort":true}"#);
    assert!(best.contains("\"status\":\"ok\""), "{best}");
    assert!(best.contains("\"cache\":\"bypass\""), "{best}");
    let again = serve.round_trip(r#"{"id":"be2","bench":"rd53_f1","effort":2}"#);
    assert!(
        again.contains("\"cache\":\"miss\""),
        "truncated result was not cached: {again}"
    );
    serve.kill_hard();
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------- SIGTERM graceful shutdown

#[cfg(unix)]
#[test]
fn sigterm_drains_http_server_and_compacts_journal() {
    let dir = std::env::temp_dir().join(format!("rms-robust-sigterm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut child = rms()
        .args(["serve", "--http", "127.0.0.1:0", "--cache-dir"])
        .arg(&dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rms serve --http");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());

    // The server prints its real bound address on stdout.
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("startup banner");
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner:?}"))
        .to_string();

    // One real request so there is something to journal and drain.
    let response = http_post(
        &addr,
        "/synth",
        r#"{"id":"h1","bench":"rd53_f2","effort":2}"#,
    );
    assert!(response.contains("\"cache\":\"miss\""), "{response}");

    // SIGTERM → accept loop stops, in-flight work drains, journal
    // compacts, process exits 0.
    let pid = child.id();
    let killed = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(killed.success());

    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "server did not exit on SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(0), "graceful shutdown exits 0");

    // The compacted journal replays in a fresh process: warm hit.
    let mut serve = ServeProc::spawn(&dir);
    let hit = serve.round_trip(r#"{"id":"h2","bench":"rd53_f2","effort":2}"#);
    assert!(hit.contains("\"cache\":\"hit\""), "{hit}");
    assert!(hit.contains("\"request_id\":\"h1\""), "{hit}");
    serve.kill_hard();
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
fn http_post(addr: &str, path: &str, body: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}
