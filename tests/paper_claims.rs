//! Shape assertions for the paper's evaluation claims, run at reduced
//! effort on the embedded suite (the `repro_*` binaries run the full
//! effort-40 configuration). "Shape" means: who wins, and in which
//! direction the trade-offs go — not absolute numbers, since the substrate
//! circuits are substitutes (see ARCHITECTURE.md).

use rms_bench::runner;
use rram_mig::bdd::BddSynthOptions;
use rram_mig::mig::opt::OptOptions;

fn opts() -> OptOptions {
    OptOptions::with_effort(10)
}

/// The Table II evaluation, computed once per process: five of the cases
/// below consume the identical sweep, and on a small CI box recomputing
/// it per test dominated the suite's wall time.
fn table2_rows() -> &'static [runner::Table2Measured] {
    use std::sync::OnceLock;
    static ROWS: OnceLock<Vec<runner::Table2Measured>> = OnceLock::new();
    ROWS.get_or_init(|| runner::run_table2(&opts()))
}

#[test]
fn maj_realization_beats_imp_by_about_3x_in_steps() {
    let rows = table2_rows();
    let step_imp = runner::sum_by(rows, |r| r.step_imp);
    let step_maj = runner::sum_by(rows, |r| r.step_maj);
    let ratio = step_imp.steps as f64 / step_maj.steps as f64;
    // The paper's sigma row gives 2594/953 = 2.72; with S = K*D + L the
    // ratio must land between 10/4 = 2.5 and 10/3 = 3.33.
    assert!(
        (2.3..=3.4).contains(&ratio),
        "Step-IMP/Step-MAJ ratio {ratio}"
    );
}

#[test]
fn step_optimization_minimizes_steps_per_realization() {
    let rows = table2_rows();
    let rram_maj = runner::sum_by(rows, |r| r.rram_maj);
    let step_maj = runner::sum_by(rows, |r| r.step_maj);
    let rram_imp = runner::sum_by(rows, |r| r.rram_imp);
    let step_imp = runner::sum_by(rows, |r| r.step_imp);
    assert!(
        step_maj.steps <= rram_maj.steps,
        "step-opt {} vs multi-objective {} (MAJ)",
        step_maj.steps,
        rram_maj.steps
    );
    assert!(
        step_imp.steps <= rram_imp.steps,
        "step-opt {} vs multi-objective {} (IMP)",
        step_imp.steps,
        rram_imp.steps
    );
}

#[test]
fn multi_objective_trades_devices_for_steps() {
    let rows = table2_rows();
    let rram_maj = runner::sum_by(rows, |r| r.rram_maj);
    let step_maj = runner::sum_by(rows, |r| r.step_maj);
    // The paper: RRAM-MAJ has ~19.8% fewer devices at ~21% more steps than
    // Step-MAJ; we assert the directions.
    assert!(
        rram_maj.rrams <= step_maj.rrams,
        "multi-objective devices {} vs step-opt {}",
        rram_maj.rrams,
        step_maj.rrams
    );
    assert!(
        rram_maj.steps >= step_maj.steps,
        "multi-objective steps {} vs step-opt {}",
        rram_maj.steps,
        step_maj.steps
    );
}

#[test]
fn proposed_algorithms_improve_steps_over_conventional_area_opt() {
    let rows = table2_rows();
    let area = runner::sum_by(rows, |r| r.area_imp);
    let rram = runner::sum_by(rows, |r| r.rram_imp);
    // Paper: 35.39% step reduction; assert a substantial one.
    let reduction = 1.0 - rram.steps as f64 / area.steps as f64;
    assert!(
        reduction > 0.15,
        "RRAM-IMP steps {} vs Area-IMP {} (reduction {reduction:.2})",
        rram.steps,
        area.steps
    );
}

#[test]
fn area_optimization_has_the_smallest_imp_device_count() {
    let rows = table2_rows();
    let area = runner::sum_by(rows, |r| r.area_imp);
    for (name, sum) in [
        ("Depth-IMP", runner::sum_by(rows, |r| r.depth_imp)),
        ("RRAM-IMP", runner::sum_by(rows, |r| r.rram_imp)),
        ("Step-IMP", runner::sum_by(rows, |r| r.step_imp)),
    ] {
        assert!(
            area.rrams <= sum.rrams,
            "Area-IMP devices {} vs {name} {}",
            area.rrams,
            sum.rrams
        );
    }
}

#[test]
fn mig_flow_beats_bdd_baseline_on_steps_especially_when_large() {
    let rows = runner::run_table3_bdd(&opts(), &BddSynthOptions::default());
    let bdd = runner::sum_by(&rows, |r| r.bdd);
    let maj = runner::sum_by(&rows, |r| r.mig_maj);
    let ratio = bdd.steps as f64 / maj.steps as f64;
    assert!(ratio > 3.0, "aggregate BDD/MIG-MAJ step ratio {ratio}");
    // The paper highlights the two 135-input benchmarks (factor ~26).
    for name in ["apex6", "x3"] {
        let row = rows.iter().find(|r| r.info.name == name).expect("row");
        let r = row.bdd.steps as f64 / row.mig_maj.steps as f64;
        assert!(r > 8.0, "{name}: BDD/MIG-MAJ ratio {r}");
    }
}

#[test]
fn mig_flow_beats_aig_baseline_on_steps() {
    let rows = runner::run_table3_aig(&opts());
    let aig: u64 = rows.iter().map(|r| r.aig_steps).sum();
    let maj = runner::sum_by(&rows, |r| r.mig_maj);
    let imp = runner::sum_by(&rows, |r| r.mig_imp);
    assert!(
        aig as f64 / maj.steps as f64 > 2.0,
        "AIG {} vs MIG-MAJ {}",
        aig,
        maj.steps
    );
    assert!(
        aig > imp.steps,
        "AIG {} should exceed MIG-IMP {}",
        aig,
        imp.steps
    );
    // The paper calls out the AIG blow-up on the two hardest functions.
    for name in ["sym10_d", "t481_d"] {
        let row = rows.iter().find(|r| r.info.name == name).expect("row");
        assert!(
            row.aig_steps > 4 * row.mig_maj.steps,
            "{name}: AIG {} vs MIG-MAJ {}",
            row.aig_steps,
            row.mig_maj.steps
        );
    }
}
