//! End-to-end tests of the `rms-flow` pipeline: a user-supplied (i.e. not
//! embedded) BLIF circuit must round-trip through parse → optimize → PLiM
//! compile → simulate, with the machine-level result matching
//! `rms-logic::sim` on random input vectors — and the parallel sweep
//! runners must reproduce the sequential runners bit for bit.

use rms_bench::runner;
use rram_mig::flow::{InputFormat, Pipeline, VerifyOutcome};
use rram_mig::logic::sim::random_patterns;
use rram_mig::mig::cost::{Realization, RramCost};
use rram_mig::mig::opt::{Algorithm, OptOptions};
use rram_mig::rram::machine::Machine;

/// A 9-input circuit that is not part of the embedded suites: a 3x3-bit
/// "population comparator" mixing carries, parities, and majorities.
const CUSTOM_BLIF: &str = "\
.model popcmp
.inputs a2 a1 a0 b2 b1 b0 c2 c1 c0
.outputs ge par maj
.names a2 a1 a0 s_a
11- 1
1-1 1
-11 1
.names b2 b1 b0 s_b
11- 1
1-1 1
-11 1
.names c2 c1 c0 s_c
11- 1
1-1 1
-11 1
.names s_a s_b s_c ge
11- 1
1-1 1
-11 1
.names a0 b0 c0 x0
100 1
010 1
001 1
111 1
.names a1 b1 c1 x1
100 1
010 1
001 1
111 1
.names x0 x1 par
10 1
01 1
.names a2 b2 c2 maj
11- 1
1-1 1
-11 1
.end
";

#[test]
fn blif_round_trips_through_the_whole_pipeline() {
    for (alg, real) in [
        (Algorithm::RramCosts, Realization::Imp),
        (Algorithm::RramCosts, Realization::Maj),
        (Algorithm::Steps, Realization::Maj),
        (Algorithm::Area, Realization::Imp),
    ] {
        let out = Pipeline::from_str(InputFormat::Blif, CUSTOM_BLIF, "popcmp")
            .unwrap()
            .algorithm(alg)
            .realization(real)
            .effort(8)
            .run()
            .unwrap();
        // The pipeline's own verification is exhaustive for 9 inputs and
        // covers both the array and the PLiM program.
        assert_eq!(out.report.verify, VerifyOutcome::Exhaustive, "{alg}/{real}");
        // Report invariants: the cost model matches the compiled program
        // and the optimized MIG.
        assert_eq!(
            out.report.cost,
            RramCost::of(&out.mig, real),
            "{alg}/{real}"
        );
        assert_eq!(
            out.report.array_steps, out.report.cost.steps,
            "{alg}/{real}"
        );
        assert_eq!(out.report.plim_instructions, out.plim.program.num_steps());
        // The optimized MIG still computes the parsed netlist's function.
        assert_eq!(out.mig.truth_tables(), out.netlist.truth_tables());
    }
}

#[test]
fn machine_matches_logic_sim_on_random_vectors() {
    let out = Pipeline::from_str(InputFormat::Blif, CUSTOM_BLIF, "popcmp")
        .unwrap()
        .algorithm(Algorithm::RramCosts)
        .realization(Realization::Maj)
        .effort(10)
        .verify(false) // this test *is* the verification
        .run()
        .unwrap();
    let mut machine = Machine::new();
    for pattern in random_patterns(out.netlist.num_inputs(), 64, 0xD1CE) {
        let reference = out.netlist.simulate_words(&pattern);
        let array = machine
            .run_words(&out.array.program, &pattern)
            .expect("valid array program");
        assert_eq!(array, reference, "array program vs rms-logic sim");
        let plim = machine
            .run_words(&out.plim.program, &pattern)
            .expect("valid plim program");
        assert_eq!(plim, reference, "plim program vs rms-logic sim");
    }
}

#[test]
fn expression_and_truth_table_inputs_agree() {
    // The same function through two different front doors must yield
    // functionally identical pipelines.
    let via_expr = Pipeline::from_str(InputFormat::Expr, "f = maj(x0, x1, x2)", "m")
        .unwrap()
        .effort(2)
        .run()
        .unwrap();
    let via_tt = Pipeline::from_str(InputFormat::TruthTable, "f = 0xe8", "m")
        .unwrap()
        .effort(2)
        .run()
        .unwrap();
    assert_eq!(via_expr.mig.truth_tables(), via_tt.mig.truth_tables());
}

#[test]
fn parallel_table2_sweep_matches_sequential() {
    // Acceptance criterion: the parallel Table II sweep produces the same
    // (R, S) values as the sequential runner.
    // One parallel worker count suffices: any jobs >= 2 exercises the
    // partition/merge path, and the row order is asserted identical.
    // (Re-running at several counts tripled an already slow sweep.)
    // Effort 2 is enough: this asserts determinism, not quality.
    let opts = OptOptions::with_effort(2);
    let seq = runner::run_table2(&opts);
    let jobs = 2;
    let par = runner::run_table2_jobs(&opts, jobs);
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.info.name, b.info.name, "jobs={jobs}");
        assert_eq!(a.columns(), b.columns(), "{}: jobs={jobs}", a.info.name);
    }
}

#[test]
fn parallel_table3_bdd_sweep_matches_sequential() {
    let opts = OptOptions::with_effort(2);
    let synth = rram_mig::bdd::BddSynthOptions::default();
    let seq = runner::run_table3_bdd(&opts, &synth);
    let par = runner::run_table3_bdd_jobs(&opts, &synth, 0);
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.info.name, b.info.name);
        assert_eq!(a.bdd, b.bdd);
        assert_eq!(a.mig_imp, b.mig_imp);
        assert_eq!(a.mig_maj, b.mig_maj);
        assert_eq!(a.bdd_nodes, b.bdd_nodes);
    }
}

#[test]
fn cut_rewriting_beats_area_and_never_worsens_rram_costs() {
    // Acceptance criteria of the cut engine: machine-verified like
    // Algs. 1-4, gate count <= Alg. 1 on at least half of the embedded
    // small suite, and the hybrid never increases the best known R*S.
    use rram_mig::logic::bench_suite;
    use rram_mig::mig::Mig;

    // Effort 6 keeps the claims intact (they are structural, not
    // effort-dependent) at roughly half the debug-mode wall time.
    let opts = OptOptions::with_effort(6);
    let mut wins = 0usize;
    let total = bench_suite::SMALL_SUITE.len();
    for info in bench_suite::SMALL_SUITE {
        let mig = Mig::from_netlist(&bench_suite::build_info(info));
        let (cut, _) = rram_mig::flow::run_algorithm(&mig, Algorithm::Cut, Realization::Maj, &opts);
        let (area, _) =
            rram_mig::flow::run_algorithm(&mig, Algorithm::Area, Realization::Maj, &opts);
        if cut.num_gates() <= area.num_gates() {
            wins += 1;
        }
        for real in Realization::ALL {
            let (hybrid, _) = rram_mig::flow::run_algorithm(&mig, Algorithm::CutRram, real, &opts);
            let (rram, _) = rram_mig::flow::run_algorithm(&mig, Algorithm::RramCosts, real, &opts);
            let ch = RramCost::of(&hybrid, real);
            let cr = RramCost::of(&rram, real);
            assert!(
                ch.rrams * ch.steps <= cr.rrams * cr.steps,
                "{}/{real}: hybrid {ch} vs rram {cr}",
                info.name
            );
        }
    }
    assert!(wins * 2 >= total, "cut beat area on only {wins}/{total}");
}

#[test]
fn cut_pipeline_is_machine_verified() {
    // The full pipeline (compile + machine-level verification) runs the
    // cut algorithms exactly like Algs. 1-4.
    for alg in [Algorithm::Cut, Algorithm::CutRram] {
        let out = Pipeline::from_str(InputFormat::Blif, CUSTOM_BLIF, "popcmp")
            .unwrap()
            .algorithm(alg)
            .effort(6)
            .run()
            .unwrap();
        assert_eq!(out.report.verify, VerifyOutcome::Exhaustive, "{alg}");
        assert!(out.report.opt.passes > 0);
    }
}

#[test]
fn parallel_algs_sweep_matches_sequential_at_integration_level() {
    let opts = OptOptions::with_effort(2);
    let seq = runner::run_algs(&opts);
    let par = runner::run_algs_jobs(&opts, 2);
    assert_eq!(seq, par, "jobs = 2");
}
