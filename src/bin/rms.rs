//! `rms` — command-line driver for the RRAM/MIG synthesis pipeline.
//!
//! Subcommands:
//!
//! - `rms run` — full pipeline on a user circuit: parse, optimize,
//!   compile (array + PLiM), verify, report (text or `--json`).
//! - `rms optimize` — run an optimization algorithm and emit the
//!   optimized circuit (`--emit blif|pla|verilog|aag|aig|dot`).
//! - `rms compile` — compile to an RRAM program and print its listing.
//! - `rms verify` — formally check two circuits for functional
//!   equivalence (SAT miter above the exhaustive cutoff).
//! - `rms bench` — regenerate the paper's tables over the embedded
//!   suites, in parallel across benchmarks by default.
//! - `rms serve` — persistent synthesis service (JSONL over stdio or
//!   HTTP/1.1) with a content-addressed, proof-carrying result cache.
//!
//! Run `rms help` (or any subcommand with `--help`) for the flag list.

use rms_bench::reports;
use rms_core::opt::{Algorithm, OptOptions};
use rms_core::Realization;
use rms_flow::{Engine, FlowError, Frontend, InputFormat, Pipeline, VerifyMode, VerifyOutcome};
use std::process::ExitCode;

const USAGE: &str = "\
rms - RRAM-aware MIG logic synthesis (DATE 2016 reproduction)

USAGE:
    rms <run|optimize|compile|verify|bench|serve|help> [flags]

INPUT (run / optimize / compile):
    --input FILE          circuit file (.blif, .pla, .v, .expr/.eqn, .tt,
                          .aig/.aag AIGER; sniffed otherwise); `-` reads the
                          circuit (text or binary AIGER) from stdin
    --bench NAME          embedded benchmark (see `rms bench --list`)
    --expr TEXT           inline expression, e.g. \"f = maj(a, b, c) ^ d\"
    --format FMT          override input format detection
                          (blif|pla|verilog|expr|tt|aiger)

FLOW:
    --opt ALG             area | depth | rram | steps | cut | cut-rram |
                          sweep | resub | sweep-resub        (default: rram, Alg. 3;
                          sweep/resub layer SAT sweeping and windowed
                          resubstitution on top of the cut script)
    --realization R       imp | maj                          (default: maj)
    --effort N            optimization cycles                (default: 40)
    --engine E            incremental | from-scratch | rebuild (--opt cut;
                          default: incremental — the in-place engine with
                          cached cuts; rebuild is the pre-incremental
                          baseline, and the only driver of --opt cut-rram)
    --frontend F          direct | aig | bdd                 (default: direct)
    --verify MODE         auto | sat | sampled | off         (default: auto —
                          exhaustive <= 14 inputs, SAT proof above; `sampled`
                          opts out of formal checking)
    --no-verify           alias for --verify off
    --seed N              sampled-verification RNG seed      (default: fixed)
    --cut-cache N         max resident cut sets in the incremental engine's
                          cache (memory bound; eviction costs recomputation,
                          never results; default: 262144, ~44 MiB)
    --jobs N              workers for the partition-parallel rewrite round
                          (applies *within* one circuit, on graphs >= the
                          --par-threshold gate count; results are bit-identical
                          for every N; default: all cores, RMS_THREADS also works)
    --par-threshold N     gate count at which the cut script switches to the
                          windowed partition-parallel round ('off' disables;
                          default: 20000)

OUTPUT:
    --json                machine-readable report (run, verify)
    --emit FMT            blif | pla | verilog | aag | aig | dot  (optimize)
    --output FILE         write emitted circuit to FILE instead of stdout
    --plim                compile the serial PLiM stream instead of the array (compile)
    --listing             print the program listing (compile)

VERIFY:
    rms verify A B        prove A and B functionally equivalent; each side is
                          a circuit file, `bench:NAME`, or `-` (stdin, one
                          side only). Inputs are matched
                          by name when both sides use the same names,
                          positionally otherwise. Prints a counterexample
                          assignment and exits non-zero on inequivalence.

BENCH:
    --table2 --table3 --summary --runtime --figures --algs
                          sections (default: summary); --algs sweeps
                          Algs. 1-4 vs the cut engine and verifies every
                          result (exhaustive or SAT-proved)
    --profile             profile the cut engines over the small suite and
                          write the machine-readable BENCH_5.json (rebuild
                          baseline vs incremental engine; exits non-zero on
                          any verification or differential regression)
    --sweep               run sweep+resub vs the cut baseline over the small
                          suite: verifies every row, checks gate count <= cut
                          on every benchmark and bit-identity across engines
                          and worker counts; exits non-zero on any regression
    --suite S             small | large — which suite --profile measures
                          (default: small; large is the generated 4k-70k-gate
                          suite, use a low --effort such as 2)
    --out FILE            where --profile writes its JSON (default:
                          BENCH_5.json, or BENCH_8.json with --suite large)
    --iters N             timing iterations per engine for --profile; the
                          median is recorded                 (default: 3)
    --list                list embedded benchmark names
    --sequential          disable the thread pool
    --jobs N              worker threads (default: all cores; RMS_THREADS also works)

SERVE:
    rms serve             persistent synthesis service: newline-delimited JSON
                          requests on stdin, one JSON response per line on
                          stdout. Results are memoized in a content-addressed
                          cache (structural circuit hash x canonical options)
                          with proof-carrying provenance on every hit.
    --http ADDR           serve the same protocol over HTTP/1.1 instead
                          (POST /synth, GET /stats, GET /health), e.g.
                          --http 127.0.0.1:8117
    --cache-mb N          result-cache LRU budget in MiB     (default: 64)
    --cache-bytes N       exact budget in bytes (overrides --cache-mb)
    --max-body-mb N       HTTP request-body cap in MiB       (default: 64;
                          oversized requests get 413 Payload Too Large)
    --jobs N              default batch fan-out workers      (default: all cores)

EXAMPLES:
    rms run --input adder.blif --opt rram --realization imp --json
    rms run --bench misex1 --opt cut
    rms optimize --bench misex1 --opt area --emit blif --output misex1_opt.blif
    rms optimize --input design.v --opt cut-rram --emit verilog
    rms compile --expr \"f = a & b | c\" --plim --listing
    rms verify bench:t481_d t481_optimized.blif
    rms verify a.blif b.v --verify sat
    rms bench --table2 --algs --effort 40
    cat design.v | rms run --input - --opt cut --json
    echo '{\"id\":\"r1\",\"bench\":\"misex1\",\"opt\":\"cut\"}' | rms serve
    rms serve --http 127.0.0.1:8117 --cache-mb 256
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = match cmd.as_str() {
        "run" => cmd_run(rest),
        "optimize" => cmd_optimize(rest),
        "compile" => cmd_compile(rest),
        "verify" => cmd_verify(rest),
        "bench" => cmd_bench(rest),
        "serve" => cmd_serve(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}; try `rms help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("rms: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Flags shared by `run`, `optimize`, and `compile`.
struct FlowArgs {
    input: Option<String>,
    bench: Option<String>,
    expr: Option<String>,
    format: Option<InputFormat>,
    algorithm: Algorithm,
    realization: Realization,
    effort: usize,
    engine: Engine,
    frontend: Frontend,
    verify: VerifyMode,
    seed: Option<u64>,
    cut_cache: Option<usize>,
    jobs: Option<usize>,
    par_threshold: Option<usize>,
    json: bool,
    emit: Option<String>,
    output: Option<String>,
    plim: bool,
    listing: bool,
}

impl FlowArgs {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut a = FlowArgs {
            input: None,
            bench: None,
            expr: None,
            format: None,
            algorithm: Algorithm::RramCosts,
            realization: Realization::Maj,
            effort: OptOptions::default().effort,
            engine: Engine::default(),
            frontend: Frontend::Direct,
            verify: VerifyMode::Auto,
            seed: None,
            cut_cache: None,
            jobs: None,
            par_threshold: None,
            json: false,
            emit: None,
            output: None,
            plim: false,
            listing: false,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--input" => a.input = Some(value("--input")?),
                "--bench" => a.bench = Some(value("--bench")?),
                "--expr" => a.expr = Some(value("--expr")?),
                "--format" => {
                    let v = value("--format")?;
                    a.format = Some(
                        InputFormat::from_name(&v)
                            .ok_or_else(|| format!("unknown format {v:?}"))?,
                    );
                }
                "--opt" => {
                    let v = value("--opt")?;
                    a.algorithm = Algorithm::from_name(&v)
                        .ok_or_else(|| format!("unknown algorithm {v:?}"))?;
                }
                "--realization" => {
                    let v = value("--realization")?;
                    a.realization = match v.to_ascii_lowercase().as_str() {
                        "imp" => Realization::Imp,
                        "maj" => Realization::Maj,
                        _ => return Err(format!("unknown realization {v:?}")),
                    };
                }
                "--effort" => {
                    let v = value("--effort")?;
                    a.effort = v
                        .parse()
                        .map_err(|_| format!("--effort expects a number, got {v:?}"))?;
                }
                "--engine" => {
                    let v = value("--engine")?;
                    a.engine =
                        Engine::from_name(&v).ok_or_else(|| format!("unknown engine {v:?}"))?;
                }
                "--frontend" => {
                    let v = value("--frontend")?;
                    a.frontend =
                        Frontend::from_name(&v).ok_or_else(|| format!("unknown frontend {v:?}"))?;
                }
                "--no-verify" => a.verify = VerifyMode::Off,
                "--verify" => {
                    let v = value("--verify")?;
                    a.verify = VerifyMode::from_name(&v)
                        .ok_or_else(|| format!("unknown verify mode {v:?}"))?;
                }
                "--seed" => {
                    let v = value("--seed")?;
                    a.seed = Some(
                        v.parse()
                            .map_err(|_| format!("--seed expects a u64, got {v:?}"))?,
                    );
                }
                "--cut-cache" => {
                    let v = value("--cut-cache")?;
                    a.cut_cache = Some(
                        v.parse()
                            .map_err(|_| format!("--cut-cache expects a list count, got {v:?}"))?,
                    );
                }
                "--jobs" => {
                    let v = value("--jobs")?;
                    a.jobs = Some(
                        v.parse()
                            .map_err(|_| format!("--jobs expects a number, got {v:?}"))?,
                    );
                }
                "--par-threshold" => {
                    let v = value("--par-threshold")?;
                    a.par_threshold = Some(if v == "off" {
                        usize::MAX
                    } else {
                        v.parse().map_err(|_| {
                            format!("--par-threshold expects a gate count or 'off', got {v:?}")
                        })?
                    });
                }
                "--json" => a.json = true,
                "--emit" => a.emit = Some(value("--emit")?),
                "--output" => a.output = Some(value("--output")?),
                "--plim" => a.plim = true,
                "--listing" => a.listing = true,
                other => return Err(format!("unknown flag {other:?}; try `rms help`")),
            }
        }
        Ok(a)
    }

    fn pipeline(&self) -> Result<Pipeline, String> {
        let sources =
            self.input.is_some() as u8 + self.bench.is_some() as u8 + self.expr.is_some() as u8;
        if sources != 1 {
            return Err("give exactly one of --input, --bench, --expr".into());
        }
        let pipeline = if let Some(path) = &self.input {
            if path == "-" {
                let netlist = rms_flow::input::load_stdin(self.format).map_err(err_str)?;
                Pipeline::new(netlist)
            } else {
                match self.format {
                    Some(format) => {
                        let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
                        let name = std::path::Path::new(path)
                            .file_stem()
                            .and_then(|s| s.to_str())
                            .unwrap_or("circuit")
                            .to_string();
                        Pipeline::from_bytes(format, &bytes, &name).map_err(err_str)?
                    }
                    None => Pipeline::from_path(path).map_err(err_str)?,
                }
            }
        } else if let Some(name) = &self.bench {
            Pipeline::from_bench(name).map_err(err_str)?
        } else {
            let text = self.expr.as_deref().unwrap();
            Pipeline::from_str(InputFormat::Expr, text, "expr").map_err(err_str)?
        };
        let mut pipeline = pipeline
            .algorithm(self.algorithm)
            .realization(self.realization)
            .effort(self.effort)
            .engine(self.engine)
            .frontend(self.frontend)
            .verify_mode(self.verify);
        if let Some(seed) = self.seed {
            pipeline = pipeline.seed(seed);
        }
        if let Some(bound) = self.cut_cache {
            pipeline = pipeline.cut_cache_bound(bound);
        }
        if let Some(jobs) = self.jobs {
            pipeline = pipeline.jobs(jobs);
        }
        if let Some(threshold) = self.par_threshold {
            pipeline = pipeline.par_threshold(threshold);
        }
        Ok(pipeline)
    }
}

fn err_str(e: FlowError) -> String {
    e.to_string()
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let a = FlowArgs::parse(args)?;
    let out = a.pipeline()?.run().map_err(err_str)?;
    if a.json {
        print!("{}", rms_flow::render_json(&out.report));
    } else {
        print!("{}", rms_flow::render_text(&out.report));
    }
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<(), String> {
    let a = FlowArgs::parse(args)?;
    let out = a.pipeline()?.run().map_err(err_str)?;
    let emitted: Option<Vec<u8>> = match a.emit.as_deref() {
        None => None,
        Some("blif") => Some(rms_logic::blif::write(&out.mig.to_netlist()).into_bytes()),
        Some("pla") => Some(rms_logic::pla::write(&out.mig.to_netlist()).into_bytes()),
        Some("verilog" | "v") => {
            Some(rms_logic::verilog::write(&out.mig.to_netlist()).into_bytes())
        }
        Some("aag" | "aiger") => {
            Some(rms_logic::aiger::write_ascii(&out.mig.to_netlist()).into_bytes())
        }
        Some("aig") => Some(rms_logic::aiger::write_binary(&out.mig.to_netlist())),
        Some("dot") => Some(out.mig.to_dot().into_bytes()),
        Some(other) => return Err(format!("unknown --emit format {other:?}")),
    };
    // When the emitted circuit occupies stdout, the report moves to
    // stderr so both streams stay parseable.
    let mut stdout_taken = false;
    match (emitted, &a.output) {
        (Some(bytes), Some(path)) => {
            std::fs::write(path, &bytes).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        (Some(bytes), None) => {
            use std::io::Write as _;
            std::io::stdout()
                .write_all(&bytes)
                .map_err(|e| format!("stdout: {e}"))?;
            stdout_taken = true;
        }
        (None, _) => {}
    }
    let report = if a.json {
        rms_flow::render_json(&out.report)
    } else {
        rms_flow::render_text(&out.report)
    };
    if a.json && !stdout_taken {
        print!("{report}");
    } else {
        eprint!("{report}");
    }
    Ok(())
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let a = FlowArgs::parse(args)?;
    let out = a.pipeline()?.run().map_err(err_str)?;
    let (what, program) = if a.plim {
        ("plim", &out.plim.program)
    } else {
        ("array", &out.array.program)
    };
    println!(
        "{what} program: {} steps, {} registers, {} inputs, {} outputs (verification: {})",
        program.num_steps(),
        program.num_regs,
        program.num_inputs,
        program.outputs.len(),
        out.report.verify.label()
    );
    if a.listing {
        print!("{}", program.listing());
    }
    Ok(())
}

/// Loads one side of an equivalence check: a circuit file path,
/// `bench:NAME` for an embedded benchmark, or `-` for stdin.
fn load_side(spec: &str) -> Result<rms_logic::Netlist, String> {
    if spec == "-" {
        return rms_flow::input::load_stdin(None).map_err(err_str);
    }
    if let Some(name) = spec.strip_prefix("bench:") {
        return rms_flow::input::load_bench(name).map_err(err_str);
    }
    rms_flow::input::load_path(std::path::Path::new(spec)).map_err(err_str)
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let mut sides: Vec<&String> = Vec::new();
    let mut mode = VerifyMode::Auto;
    let mut seed = rms_flow::DEFAULT_VERIFY_SEED;
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--verify" | "--mode" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("{flag} requires a value"))?;
                mode =
                    VerifyMode::from_name(v).ok_or_else(|| format!("unknown verify mode {v:?}"))?;
            }
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--seed requires a value".to_string())?;
                seed = v
                    .parse()
                    .map_err(|_| format!("--seed expects a u64, got {v:?}"))?;
            }
            "--json" => json = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}; try `rms help`"))
            }
            _ => sides.push(flag),
        }
    }
    let [a_spec, b_spec] = sides.as_slice() else {
        return Err("verify needs exactly two circuits (file path or bench:NAME)".into());
    };
    if mode == VerifyMode::Off {
        return Err("--verify off makes no sense for `rms verify`".into());
    }
    let a = load_side(a_spec)?;
    let b = load_side(b_spec)?;
    let t0 = std::time::Instant::now();
    let outcome = rms_flow::check_netlists(&a, &b, mode, seed).map_err(err_str)?;
    let elapsed = t0.elapsed();
    if json {
        let (conflicts, decisions) = match &outcome {
            VerifyOutcome::Proved {
                conflicts,
                decisions,
            } => (*conflicts, *decisions),
            _ => (0, 0),
        };
        let esc = rms_flow::escape_json;
        let counterexample = match &outcome {
            VerifyOutcome::Failed { counterexample, .. } => format!(
                "\"{}\"",
                esc(&rms_flow::format_assignment(
                    a.input_names(),
                    counterexample
                ))
            ),
            _ => "null".into(),
        };
        println!(
            "{{\"a\":\"{}\",\"b\":\"{}\",\"inputs\":{},\"outputs\":{},\"equivalent\":{},\"proof\":{},\"result\":\"{}\",\"counterexample\":{counterexample},\"sat_conflicts\":{conflicts},\"sat_decisions\":{decisions},\"time_ms\":{:.3}}}",
            esc(a.name()),
            esc(b.name()),
            a.num_inputs(),
            a.num_outputs(),
            outcome.passed(),
            outcome.is_proof(),
            esc(&outcome.label()),
            elapsed.as_secs_f64() * 1e3
        );
    } else {
        println!(
            "verify: {:?} vs {:?}: {} inputs, {} outputs",
            a.name(),
            b.name(),
            a.num_inputs(),
            a.num_outputs()
        );
        println!("result: {} in {elapsed:.2?}", outcome.label());
    }
    match outcome {
        VerifyOutcome::Failed {
            what,
            counterexample,
        } => {
            let assignment = rms_flow::format_assignment(a.input_names(), &counterexample);
            Err(format!(
                "NOT equivalent: {what}; counterexample: {assignment}"
            ))
        }
        _ => Ok(()),
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut http: Option<String> = None;
    let mut cache_bytes = rms_serve::DEFAULT_CACHE_BYTES;
    let mut max_body_bytes = rms_serve::DEFAULT_MAX_BODY_BYTES;
    let mut jobs = 0usize; // 0 = default thread pool
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--http" => http = Some(value("--http")?),
            "--cache-mb" => {
                let v = value("--cache-mb")?;
                let mb: usize = v
                    .parse()
                    .map_err(|_| format!("--cache-mb expects a number, got {v:?}"))?;
                cache_bytes = mb << 20;
            }
            "--cache-bytes" => {
                let v = value("--cache-bytes")?;
                cache_bytes = v
                    .parse()
                    .map_err(|_| format!("--cache-bytes expects a number, got {v:?}"))?;
            }
            "--jobs" => {
                let v = value("--jobs")?;
                jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs expects a number, got {v:?}"))?;
            }
            "--max-body-mb" => {
                let v = value("--max-body-mb")?;
                let mb: usize = v
                    .parse()
                    .map_err(|_| format!("--max-body-mb expects a number, got {v:?}"))?;
                max_body_bytes = mb << 20;
            }
            other => return Err(format!("unknown flag {other:?}; try `rms help`")),
        }
    }
    let service = std::sync::Arc::new(rms_serve::Service::new(rms_serve::ServeConfig {
        cache_bytes,
        jobs,
        max_body_bytes,
    }));
    match http {
        Some(addr) => {
            eprintln!(
                "rms serve: listening on http://{addr} (POST /synth, GET /stats, GET /health)"
            );
            rms_serve::serve_http(service, &addr).map_err(|e| format!("{addr}: {e}"))
        }
        None => {
            eprintln!("rms serve: reading JSONL requests from stdin (one object per line)");
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout().lock();
            rms_serve::run_stdio(&service, stdin.lock(), &mut stdout).map_err(|e| e.to_string())
        }
    }
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let mut sections: Vec<&str> = Vec::new();
    let mut effort = OptOptions::default().effort;
    let mut jobs = 0usize; // 0 = default thread pool
    let mut out_path: Option<String> = None;
    let mut iters = 3usize;
    let mut suite = "small".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--table2" => sections.push("table2"),
            "--algs" => sections.push("algs"),
            "--table3" => sections.push("table3"),
            "--summary" => sections.push("summary"),
            "--runtime" => sections.push("runtime"),
            "--figures" => sections.push("figures"),
            "--profile" => sections.push("profile"),
            "--sweep" => sections.push("sweep"),
            "--out" => {
                out_path = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| "--out requires a value".to_string())?,
                );
            }
            "--suite" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--suite requires a value".to_string())?;
                match v.as_str() {
                    "small" | "large" => suite = v.clone(),
                    other => return Err(format!("--suite expects small or large, got {other:?}")),
                }
            }
            "--iters" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--iters requires a value".to_string())?;
                iters = v
                    .parse()
                    .map_err(|_| format!("--iters expects a number, got {v:?}"))?;
                if iters == 0 {
                    return Err("--iters must be at least 1".into());
                }
            }
            "--list" => {
                for info in rms_logic::bench_suite::LARGE_SUITE {
                    println!("{:<12} {} inputs (Table II suite)", info.name, info.inputs);
                }
                for info in rms_logic::bench_suite::SMALL_SUITE {
                    println!("{:<12} {} inputs (Table III suite)", info.name, info.inputs);
                }
                for info in rms_logic::large_suite::SUITE {
                    println!(
                        "{:<12} ~{} gates (generated large suite: {})",
                        info.name, info.approx_gates, info.description
                    );
                }
                return Ok(());
            }
            "--sequential" => jobs = 1,
            "--jobs" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--jobs requires a value".to_string())?;
                jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs expects a number, got {v:?}"))?;
            }
            "--effort" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--effort requires a value".to_string())?;
                effort = v
                    .parse()
                    .map_err(|_| format!("--effort expects a number, got {v:?}"))?;
            }
            other => return Err(format!("unknown flag {other:?}; try `rms help`")),
        }
    }
    if sections.is_empty() {
        sections.push("summary");
    }
    let opts = OptOptions::with_effort(effort);
    for (i, section) in sections.iter().enumerate() {
        if i > 0 {
            println!();
        }
        match *section {
            "table2" => print!("{}", reports::table2_report(&opts, jobs)),
            "table3" => print!(
                "{}",
                reports::table3_report(&opts, &rms_bdd::BddSynthOptions::default(), jobs)
            ),
            "algs" => print!("{}", reports::algs_report(&opts, jobs)),
            "summary" => print!("{}", reports::summary_report(&opts, jobs)),
            "runtime" => print!("{}", reports::runtime_report(&opts)),
            "figures" => print!("{}", reports::figures_report()),
            "sweep" => {
                let report = rms_bench::runner::run_sweep(&opts, jobs);
                print!("{}", reports::sweep_report(&report));
                if !report.all_passed() {
                    return Err(
                        "sweep regression: a verification, baseline, or determinism check failed"
                            .into(),
                    );
                }
            }
            "profile" => {
                let report = if suite == "large" {
                    rms_bench::runner::run_profile_large(&opts, iters)
                } else {
                    rms_bench::runner::run_profile(&opts, iters)
                };
                let out_path = out_path.clone().unwrap_or_else(|| {
                    if suite == "large" {
                        "BENCH_8.json".to_string()
                    } else {
                        "BENCH_5.json".to_string()
                    }
                });
                print!("{}", reports::profile_report(&report));
                std::fs::write(&out_path, report.to_json())
                    .map_err(|e| format!("{out_path}: {e}"))?;
                println!("wrote {out_path}");
                if !report.all_passed() {
                    return Err("profile regression: a verification, differential, \
                                parallel-determinism, or quality (gates_delta) check failed"
                        .into());
                }
            }
            _ => unreachable!(),
        }
    }
    Ok(())
}
