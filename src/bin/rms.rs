//! `rms` — command-line driver for the RRAM/MIG synthesis pipeline.
//!
//! Subcommands:
//!
//! - `rms run` — full pipeline on a user circuit: parse, optimize,
//!   compile (array + PLiM), verify, report (text or `--json`).
//! - `rms optimize` — run an optimization algorithm and emit the
//!   optimized circuit (`--emit blif|pla|verilog|aag|aig|dot`).
//! - `rms compile` — compile to an RRAM program and print its listing.
//! - `rms verify` — formally check two circuits for functional
//!   equivalence (SAT miter above the exhaustive cutoff).
//! - `rms bench` — regenerate the paper's tables over the embedded
//!   suites, in parallel across benchmarks by default.
//! - `rms serve` — persistent synthesis service (JSONL over stdio or
//!   HTTP/1.1) with a content-addressed, proof-carrying result cache.
//!
//! Run `rms help` (or any subcommand with `--help`) for the flag list.
//!
//! # Exit codes
//!
//! The exit status is a small taxonomy scripts can branch on:
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | success |
//! | 1 | run failed (I/O on outputs, benchmark regression, transport error) |
//! | 2 | usage error (unknown flag/subcommand, bad flag value) |
//! | 3 | input error (unparsable or empty circuit, unknown benchmark) |
//! | 4 | verification failure (circuits proved inequivalent) |
//! | 5 | timeout (`--timeout` deadline expired before completion) |
//! | 6 | internal error (a panic was caught at the top level) |

use rms_bench::reports;
use rms_core::opt::{Algorithm, OptOptions};
use rms_core::{CancelToken, Realization};
use rms_flow::{Engine, FlowError, Frontend, InputFormat, Pipeline, VerifyMode, VerifyOutcome};
use std::process::ExitCode;
use std::time::Duration;

/// A classified CLI failure: the process exit code plus the diagnostic
/// printed to stderr.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    /// Exit 1: the run itself failed (output I/O, regressions).
    fn other(message: impl Into<String>) -> CliError {
        CliError {
            code: 1,
            message: message.into(),
        }
    }

    /// Exit 2: the command line was malformed.
    fn usage(message: impl Into<String>) -> CliError {
        CliError {
            code: 2,
            message: message.into(),
        }
    }

    /// Exit 3: the input circuit was unusable.
    fn input(message: impl Into<String>) -> CliError {
        CliError {
            code: 3,
            message: message.into(),
        }
    }

    /// Exit 4: verification proved the result wrong.
    fn verification(message: impl Into<String>) -> CliError {
        CliError {
            code: 4,
            message: message.into(),
        }
    }

    /// Classifies a pipeline error: input problems are exit 3,
    /// verification failures 4, deadline expiry 5.
    fn from_flow(e: FlowError) -> CliError {
        let code = match &e {
            FlowError::Verification(_) => 4,
            FlowError::Timeout(_) => 5,
            _ => 3,
        };
        CliError {
            code,
            message: e.to_string(),
        }
    }
}

const USAGE: &str = "\
rms - RRAM-aware MIG logic synthesis (DATE 2016 reproduction)

USAGE:
    rms <run|optimize|compile|verify|bench|serve|help> [flags]

INPUT (run / optimize / compile):
    --input FILE          circuit file (.blif, .pla, .v, .expr/.eqn, .tt,
                          .aig/.aag AIGER; sniffed otherwise); `-` reads the
                          circuit (text or binary AIGER) from stdin
    --bench NAME          embedded benchmark (see `rms bench --list`)
    --expr TEXT           inline expression, e.g. \"f = maj(a, b, c) ^ d\"
    --format FMT          override input format detection
                          (blif|pla|verilog|expr|tt|aiger)

FLOW:
    --opt ALG             area | depth | rram | steps | cut | cut-rram |
                          sweep | resub | sweep-resub        (default: rram, Alg. 3;
                          sweep/resub layer SAT sweeping and windowed
                          resubstitution on top of the cut script)
    --realization R       imp | maj                          (default: maj)
    --effort N            optimization cycles                (default: 40)
    --engine E            incremental | from-scratch | rebuild (--opt cut;
                          default: incremental — the in-place engine with
                          cached cuts; rebuild is the pre-incremental
                          baseline, and the only driver of --opt cut-rram)
    --frontend F          direct | aig | bdd                 (default: direct)
    --verify MODE         auto | sat | sampled | off         (default: auto —
                          exhaustive <= 14 inputs, SAT proof above; `sampled`
                          opts out of formal checking)
    --no-verify           alias for --verify off
    --seed N              sampled-verification RNG seed      (default: fixed)
    --cut-cache N         max resident cut sets in the incremental engine's
                          cache (memory bound; eviction costs recomputation,
                          never results; default: 262144, ~44 MiB)
    --jobs N              workers for the partition-parallel rewrite round
                          (applies *within* one circuit, on graphs >= the
                          --par-threshold gate count; results are bit-identical
                          for every N; default: all cores, RMS_THREADS also works)
    --par-threshold N     gate count at which the cut script switches to the
                          windowed partition-parallel round ('off' disables;
                          default: 20000)
    --timeout MS          deadline for the optimization in milliseconds; on
                          expiry the run exits 5 with a structured timeout
                          error (completed runs are unaffected and stay
                          bit-identical)
    --best-effort         with --timeout: instead of failing, return the best
                          verified iterate completed before the deadline

OUTPUT:
    --json                machine-readable report (run, verify)
    --emit FMT            blif | pla | verilog | aag | aig | dot  (optimize)
    --output FILE         write emitted circuit to FILE instead of stdout
    --plim                compile the serial PLiM stream instead of the array (compile)
    --listing             print the program listing (compile)

VERIFY:
    rms verify A B        prove A and B functionally equivalent; each side is
                          a circuit file, `bench:NAME`, or `-` (stdin, one
                          side only). Inputs are matched
                          by name when both sides use the same names,
                          positionally otherwise. Prints a counterexample
                          assignment and exits non-zero on inequivalence.

BENCH:
    --table2 --table3 --summary --runtime --figures --algs
                          sections (default: summary); --algs sweeps
                          Algs. 1-4 vs the cut engine and verifies every
                          result (exhaustive or SAT-proved)
    --profile             profile the cut engines over the small suite and
                          write the machine-readable BENCH_5.json (rebuild
                          baseline vs incremental engine; exits non-zero on
                          any verification or differential regression)
    --sweep               run sweep+resub vs the cut baseline over the small
                          suite: verifies every row, checks gate count <= cut
                          on every benchmark and bit-identity across engines
                          and worker counts; exits non-zero on any regression
    --suite S             small | large — which suite --profile measures
                          (default: small; large is the generated 4k-70k-gate
                          suite, use a low --effort such as 2)
    --out FILE            where --profile writes its JSON (default:
                          BENCH_5.json, or BENCH_8.json with --suite large)
    --iters N             timing iterations per engine for --profile; the
                          median is recorded                 (default: 3)
    --list                list embedded benchmark names
    --sequential          disable the thread pool
    --jobs N              worker threads (default: all cores; RMS_THREADS also works)

SERVE:
    rms serve             persistent synthesis service: newline-delimited JSON
                          requests on stdin, one JSON response per line on
                          stdout. Results are memoized in a content-addressed
                          cache (structural circuit hash x canonical options)
                          with proof-carrying provenance on every hit.
    --http ADDR           serve the same protocol over HTTP/1.1 instead
                          (POST /synth, GET /stats, GET /health), e.g.
                          --http 127.0.0.1:8117
    --cache-mb N          result-cache LRU budget in MiB     (default: 64)
    --cache-bytes N       exact budget in bytes (overrides --cache-mb)
    --max-body-mb N       HTTP request-body cap in MiB       (default: 64;
                          oversized requests get 413 Payload Too Large; also
                          caps stdio request lines)
    --cache-dir DIR       persist the result cache to an append-only journal
                          in DIR; entries survive restarts (and kill -9) and
                          warm hits after a restart are byte-identical
    --deadline-ms N       default per-request optimization deadline; expired
                          requests get a structured kind:\"timeout\" error
                          (requests may override with \"deadline_ms\")
    --best-effort         return the best verified iterate instead of a
                          timeout error when a deadline expires (the
                          truncated result is never cached)
    --max-conns N         concurrent HTTP connection cap     (default: 256;
                          excess connections are shed with 503)
    --jobs N              default batch fan-out workers      (default: all cores)
    On SIGTERM the HTTP server stops accepting, drains in-flight
    requests, compacts the journal, and exits 0. The stdio transport
    compacts on stdin EOF.

EXIT CODES:
    0  success
    1  run failure (output I/O, bench regression, server error)
    2  usage error (unknown flag/subcommand, malformed command line)
    3  input error (unreadable or unparsable circuit)
    4  verification failure (optimized circuit not equivalent)
    5  timeout (--timeout deadline expired without --best-effort)
    6  internal error (panic caught at top level)

EXAMPLES:
    rms run --input adder.blif --opt rram --realization imp --json
    rms run --bench misex1 --opt cut
    rms optimize --bench misex1 --opt area --emit blif --output misex1_opt.blif
    rms optimize --input design.v --opt cut-rram --emit verilog
    rms compile --expr \"f = a & b | c\" --plim --listing
    rms verify bench:t481_d t481_optimized.blif
    rms verify a.blif b.v --verify sat
    rms bench --table2 --algs --effort 40
    cat design.v | rms run --input - --opt cut --json
    echo '{\"id\":\"r1\",\"bench\":\"misex1\",\"opt\":\"cut\"}' | rms serve
    rms serve --http 127.0.0.1:8117 --cache-mb 256
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    // A panic anywhere below is caught and mapped to the dedicated
    // internal-error exit code, so scripts can tell a crash from a bad
    // input. The `cli-panic` fault point lets the robustness tests
    // exercise this path from outside the process.
    let dispatch = std::panic::catch_unwind(|| {
        if rms_serve::faults::fire("cli-panic") {
            panic!("injected fault: cli-panic");
        }
        match cmd.as_str() {
            "run" => cmd_run(rest),
            "optimize" => cmd_optimize(rest),
            "compile" => cmd_compile(rest),
            "verify" => cmd_verify(rest),
            "bench" => cmd_bench(rest),
            "serve" => cmd_serve(rest),
            "help" | "--help" | "-h" => {
                print!("{USAGE}");
                Ok(())
            }
            other => Err(CliError::usage(format!(
                "unknown subcommand {other:?}; try `rms help`"
            ))),
        }
    });
    match dispatch {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(e)) => {
            eprintln!("rms: {}", e.message);
            ExitCode::from(e.code)
        }
        Err(_) => {
            // The default panic hook already printed the panic message.
            eprintln!("rms: internal error (panic caught at top level)");
            ExitCode::from(6)
        }
    }
}

/// Flags shared by `run`, `optimize`, and `compile`.
struct FlowArgs {
    input: Option<String>,
    bench: Option<String>,
    expr: Option<String>,
    format: Option<InputFormat>,
    algorithm: Algorithm,
    realization: Realization,
    effort: usize,
    engine: Engine,
    frontend: Frontend,
    verify: VerifyMode,
    seed: Option<u64>,
    cut_cache: Option<usize>,
    jobs: Option<usize>,
    par_threshold: Option<usize>,
    timeout_ms: Option<u64>,
    best_effort: bool,
    json: bool,
    emit: Option<String>,
    output: Option<String>,
    plim: bool,
    listing: bool,
}

impl FlowArgs {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut a = FlowArgs {
            input: None,
            bench: None,
            expr: None,
            format: None,
            algorithm: Algorithm::RramCosts,
            realization: Realization::Maj,
            effort: OptOptions::default().effort,
            engine: Engine::default(),
            frontend: Frontend::Direct,
            verify: VerifyMode::Auto,
            seed: None,
            cut_cache: None,
            jobs: None,
            par_threshold: None,
            timeout_ms: None,
            best_effort: false,
            json: false,
            emit: None,
            output: None,
            plim: false,
            listing: false,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--input" => a.input = Some(value("--input")?),
                "--bench" => a.bench = Some(value("--bench")?),
                "--expr" => a.expr = Some(value("--expr")?),
                "--format" => {
                    let v = value("--format")?;
                    a.format = Some(
                        InputFormat::from_name(&v)
                            .ok_or_else(|| format!("unknown format {v:?}"))?,
                    );
                }
                "--opt" => {
                    let v = value("--opt")?;
                    a.algorithm = Algorithm::from_name(&v)
                        .ok_or_else(|| format!("unknown algorithm {v:?}"))?;
                }
                "--realization" => {
                    let v = value("--realization")?;
                    a.realization = match v.to_ascii_lowercase().as_str() {
                        "imp" => Realization::Imp,
                        "maj" => Realization::Maj,
                        _ => return Err(format!("unknown realization {v:?}")),
                    };
                }
                "--effort" => {
                    let v = value("--effort")?;
                    a.effort = v
                        .parse()
                        .map_err(|_| format!("--effort expects a number, got {v:?}"))?;
                }
                "--engine" => {
                    let v = value("--engine")?;
                    a.engine =
                        Engine::from_name(&v).ok_or_else(|| format!("unknown engine {v:?}"))?;
                }
                "--frontend" => {
                    let v = value("--frontend")?;
                    a.frontend =
                        Frontend::from_name(&v).ok_or_else(|| format!("unknown frontend {v:?}"))?;
                }
                "--no-verify" => a.verify = VerifyMode::Off,
                "--verify" => {
                    let v = value("--verify")?;
                    a.verify = VerifyMode::from_name(&v)
                        .ok_or_else(|| format!("unknown verify mode {v:?}"))?;
                }
                "--seed" => {
                    let v = value("--seed")?;
                    a.seed = Some(
                        v.parse()
                            .map_err(|_| format!("--seed expects a u64, got {v:?}"))?,
                    );
                }
                "--cut-cache" => {
                    let v = value("--cut-cache")?;
                    a.cut_cache = Some(
                        v.parse()
                            .map_err(|_| format!("--cut-cache expects a list count, got {v:?}"))?,
                    );
                }
                "--jobs" => {
                    let v = value("--jobs")?;
                    a.jobs = Some(
                        v.parse()
                            .map_err(|_| format!("--jobs expects a number, got {v:?}"))?,
                    );
                }
                "--par-threshold" => {
                    let v = value("--par-threshold")?;
                    a.par_threshold = Some(if v == "off" {
                        usize::MAX
                    } else {
                        v.parse().map_err(|_| {
                            format!("--par-threshold expects a gate count or 'off', got {v:?}")
                        })?
                    });
                }
                "--timeout" => {
                    let v = value("--timeout")?;
                    a.timeout_ms = Some(v.parse().map_err(|_| {
                        format!("--timeout expects a deadline in milliseconds, got {v:?}")
                    })?);
                }
                "--best-effort" => a.best_effort = true,
                "--json" => a.json = true,
                "--emit" => a.emit = Some(value("--emit")?),
                "--output" => a.output = Some(value("--output")?),
                "--plim" => a.plim = true,
                "--listing" => a.listing = true,
                other => return Err(format!("unknown flag {other:?}; try `rms help`")),
            }
        }
        Ok(a)
    }

    fn pipeline(&self) -> Result<Pipeline, CliError> {
        let sources =
            self.input.is_some() as u8 + self.bench.is_some() as u8 + self.expr.is_some() as u8;
        if sources != 1 {
            return Err(CliError::usage(
                "give exactly one of --input, --bench, --expr",
            ));
        }
        let flow = CliError::from_flow;
        let pipeline = if let Some(path) = &self.input {
            if path == "-" {
                let netlist = rms_flow::input::load_stdin(self.format).map_err(flow)?;
                Pipeline::new(netlist)
            } else {
                match self.format {
                    Some(format) => {
                        let bytes = std::fs::read(path)
                            .map_err(|e| CliError::input(format!("{path}: {e}")))?;
                        let name = std::path::Path::new(path)
                            .file_stem()
                            .and_then(|s| s.to_str())
                            .unwrap_or("circuit")
                            .to_string();
                        Pipeline::from_bytes(format, &bytes, &name).map_err(flow)?
                    }
                    None => Pipeline::from_path(path).map_err(flow)?,
                }
            }
        } else if let Some(name) = &self.bench {
            Pipeline::from_bench(name).map_err(flow)?
        } else {
            let text = self.expr.as_deref().unwrap();
            Pipeline::from_str(InputFormat::Expr, text, "expr").map_err(flow)?
        };
        let mut pipeline = pipeline
            .algorithm(self.algorithm)
            .realization(self.realization)
            .effort(self.effort)
            .engine(self.engine)
            .frontend(self.frontend)
            .verify_mode(self.verify)
            .best_effort(self.best_effort);
        if let Some(ms) = self.timeout_ms {
            pipeline = pipeline.cancel(CancelToken::with_deadline(Duration::from_millis(ms)));
        }
        if let Some(seed) = self.seed {
            pipeline = pipeline.seed(seed);
        }
        if let Some(bound) = self.cut_cache {
            pipeline = pipeline.cut_cache_bound(bound);
        }
        if let Some(jobs) = self.jobs {
            pipeline = pipeline.jobs(jobs);
        }
        if let Some(threshold) = self.par_threshold {
            pipeline = pipeline.par_threshold(threshold);
        }
        Ok(pipeline)
    }
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let a = FlowArgs::parse(args).map_err(CliError::usage)?;
    let out = a.pipeline()?.run().map_err(CliError::from_flow)?;
    if a.json {
        print!("{}", rms_flow::render_json(&out.report));
    } else {
        print!("{}", rms_flow::render_text(&out.report));
    }
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<(), CliError> {
    let a = FlowArgs::parse(args).map_err(CliError::usage)?;
    let out = a.pipeline()?.run().map_err(CliError::from_flow)?;
    let emitted: Option<Vec<u8>> = match a.emit.as_deref() {
        None => None,
        Some("blif") => Some(rms_logic::blif::write(&out.mig.to_netlist()).into_bytes()),
        Some("pla") => Some(rms_logic::pla::write(&out.mig.to_netlist()).into_bytes()),
        Some("verilog" | "v") => {
            Some(rms_logic::verilog::write(&out.mig.to_netlist()).into_bytes())
        }
        Some("aag" | "aiger") => {
            Some(rms_logic::aiger::write_ascii(&out.mig.to_netlist()).into_bytes())
        }
        Some("aig") => Some(rms_logic::aiger::write_binary(&out.mig.to_netlist())),
        Some("dot") => Some(out.mig.to_dot().into_bytes()),
        Some(other) => return Err(CliError::usage(format!("unknown --emit format {other:?}"))),
    };
    // When the emitted circuit occupies stdout, the report moves to
    // stderr so both streams stay parseable.
    let mut stdout_taken = false;
    match (emitted, &a.output) {
        (Some(bytes), Some(path)) => {
            std::fs::write(path, &bytes).map_err(|e| CliError::other(format!("{path}: {e}")))?;
            eprintln!("wrote {path}");
        }
        (Some(bytes), None) => {
            use std::io::Write as _;
            std::io::stdout()
                .write_all(&bytes)
                .map_err(|e| CliError::other(format!("stdout: {e}")))?;
            stdout_taken = true;
        }
        (None, _) => {}
    }
    let report = if a.json {
        rms_flow::render_json(&out.report)
    } else {
        rms_flow::render_text(&out.report)
    };
    if a.json && !stdout_taken {
        print!("{report}");
    } else {
        eprint!("{report}");
    }
    Ok(())
}

fn cmd_compile(args: &[String]) -> Result<(), CliError> {
    let a = FlowArgs::parse(args).map_err(CliError::usage)?;
    let out = a.pipeline()?.run().map_err(CliError::from_flow)?;
    let (what, program) = if a.plim {
        ("plim", &out.plim.program)
    } else {
        ("array", &out.array.program)
    };
    println!(
        "{what} program: {} steps, {} registers, {} inputs, {} outputs (verification: {})",
        program.num_steps(),
        program.num_regs,
        program.num_inputs,
        program.outputs.len(),
        out.report.verify.label()
    );
    if a.listing {
        print!("{}", program.listing());
    }
    Ok(())
}

/// Loads one side of an equivalence check: a circuit file path,
/// `bench:NAME` for an embedded benchmark, or `-` for stdin.
fn load_side(spec: &str) -> Result<rms_logic::Netlist, CliError> {
    if spec == "-" {
        return rms_flow::input::load_stdin(None).map_err(CliError::from_flow);
    }
    if let Some(name) = spec.strip_prefix("bench:") {
        return rms_flow::input::load_bench(name).map_err(CliError::from_flow);
    }
    rms_flow::input::load_path(std::path::Path::new(spec)).map_err(CliError::from_flow)
}

fn cmd_verify(args: &[String]) -> Result<(), CliError> {
    let mut sides: Vec<&String> = Vec::new();
    let mut mode = VerifyMode::Auto;
    let mut seed = rms_flow::DEFAULT_VERIFY_SEED;
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--verify" | "--mode" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::usage(format!("{flag} requires a value")))?;
                mode = VerifyMode::from_name(v)
                    .ok_or_else(|| CliError::usage(format!("unknown verify mode {v:?}")))?;
            }
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::usage("--seed requires a value"))?;
                seed = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("--seed expects a u64, got {v:?}")))?;
            }
            "--json" => json = true,
            other if other.starts_with("--") => {
                return Err(CliError::usage(format!(
                    "unknown flag {other:?}; try `rms help`"
                )))
            }
            _ => sides.push(flag),
        }
    }
    let [a_spec, b_spec] = sides.as_slice() else {
        return Err(CliError::usage(
            "verify needs exactly two circuits (file path or bench:NAME)",
        ));
    };
    if mode == VerifyMode::Off {
        return Err(CliError::usage(
            "--verify off makes no sense for `rms verify`",
        ));
    }
    let a = load_side(a_spec)?;
    let b = load_side(b_spec)?;
    let t0 = std::time::Instant::now();
    let outcome = rms_flow::check_netlists(&a, &b, mode, seed).map_err(CliError::from_flow)?;
    let elapsed = t0.elapsed();
    if json {
        let (conflicts, decisions) = match &outcome {
            VerifyOutcome::Proved {
                conflicts,
                decisions,
            } => (*conflicts, *decisions),
            _ => (0, 0),
        };
        let esc = rms_flow::escape_json;
        let counterexample = match &outcome {
            VerifyOutcome::Failed { counterexample, .. } => format!(
                "\"{}\"",
                esc(&rms_flow::format_assignment(
                    a.input_names(),
                    counterexample
                ))
            ),
            _ => "null".into(),
        };
        println!(
            "{{\"a\":\"{}\",\"b\":\"{}\",\"inputs\":{},\"outputs\":{},\"equivalent\":{},\"proof\":{},\"result\":\"{}\",\"counterexample\":{counterexample},\"sat_conflicts\":{conflicts},\"sat_decisions\":{decisions},\"time_ms\":{:.3}}}",
            esc(a.name()),
            esc(b.name()),
            a.num_inputs(),
            a.num_outputs(),
            outcome.passed(),
            outcome.is_proof(),
            esc(&outcome.label()),
            elapsed.as_secs_f64() * 1e3
        );
    } else {
        println!(
            "verify: {:?} vs {:?}: {} inputs, {} outputs",
            a.name(),
            b.name(),
            a.num_inputs(),
            a.num_outputs()
        );
        println!("result: {} in {elapsed:.2?}", outcome.label());
    }
    match outcome {
        VerifyOutcome::Failed {
            what,
            counterexample,
        } => {
            let assignment = rms_flow::format_assignment(a.input_names(), &counterexample);
            Err(CliError::verification(format!(
                "NOT equivalent: {what}; counterexample: {assignment}"
            )))
        }
        _ => Ok(()),
    }
}

/// SIGTERM plumbing for `rms serve --http`: a flag the handler raises
/// and the shutdown watcher polls. `signal(2)` is declared by hand —
/// the workspace links no libc crate — and only on Unix.
#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static RECEIVED: AtomicBool = AtomicBool::new(false);

    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: Option<extern "C" fn(i32)>) -> Option<extern "C" fn(i32)>;
    }

    extern "C" fn on_sigterm(_signum: i32) {
        // Only an atomic store: everything else (draining, compaction)
        // happens on the watcher thread, where it is async-signal-safe
        // to do real work.
        RECEIVED.store(true, Ordering::SeqCst);
    }

    /// Installs the handler; returns false if the registration failed
    /// (the process then keeps the default terminate-on-SIGTERM).
    pub fn install() -> bool {
        // SAFETY: `signal` with a non-capturing extern "C" handler that
        // only stores to an atomic is the textbook async-signal-safe
        // registration.
        unsafe { signal(SIGTERM, Some(on_sigterm)) }.is_some() || !RECEIVED.load(Ordering::SeqCst)
    }

    pub fn received() -> bool {
        RECEIVED.load(Ordering::SeqCst)
    }
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let mut http: Option<String> = None;
    let mut config = rms_serve::ServeConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, CliError> {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::usage(format!("{name} requires a value")))
        };
        let num = |name: &str, v: &str| -> Result<usize, CliError> {
            v.parse()
                .map_err(|_| CliError::usage(format!("{name} expects a number, got {v:?}")))
        };
        match flag.as_str() {
            "--http" => http = Some(value("--http")?),
            "--cache-mb" => {
                let v = value("--cache-mb")?;
                config.cache_bytes = num("--cache-mb", &v)? << 20;
            }
            "--cache-bytes" => {
                let v = value("--cache-bytes")?;
                config.cache_bytes = num("--cache-bytes", &v)?;
            }
            "--cache-dir" => {
                config.cache_dir = Some(std::path::PathBuf::from(value("--cache-dir")?));
            }
            "--jobs" => {
                let v = value("--jobs")?;
                config.jobs = num("--jobs", &v)?;
            }
            "--max-body-mb" => {
                let v = value("--max-body-mb")?;
                config.max_body_bytes = num("--max-body-mb", &v)? << 20;
            }
            "--max-conns" => {
                let v = value("--max-conns")?;
                config.max_conns = num("--max-conns", &v)?;
            }
            "--deadline-ms" => {
                let v = value("--deadline-ms")?;
                config.deadline_ms = Some(num("--deadline-ms", &v)? as u64);
            }
            "--best-effort" => config.best_effort = true,
            other => {
                return Err(CliError::usage(format!(
                    "unknown flag {other:?}; try `rms help`"
                )))
            }
        }
    }
    let service = std::sync::Arc::new(rms_serve::Service::new(config));
    if let Some(replay) = service.replay_stats() {
        eprintln!(
            "rms serve: cache journal replayed {} entr{} ({} torn byte{} discarded)",
            replay.replayed,
            if replay.replayed == 1 { "y" } else { "ies" },
            replay.truncated_bytes,
            if replay.truncated_bytes == 1 { "" } else { "s" }
        );
    }
    match http {
        Some(addr) => {
            let server = rms_serve::HttpServer::bind(std::sync::Arc::clone(&service), &addr)
                .map_err(|e| CliError::other(format!("{addr}: {e}")))?;
            let bound = server.local_addr();
            // The bound address goes to *stdout* (and is flushed) so
            // wrappers binding port 0 can parse the real port.
            {
                use std::io::Write as _;
                let mut out = std::io::stdout();
                let _ = writeln!(
                    out,
                    "rms serve: listening on http://{bound} (POST /synth, GET /stats, GET /health)"
                );
                let _ = out.flush();
            }
            let shutdown = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            #[cfg(unix)]
            {
                sigterm::install();
                let shutdown = std::sync::Arc::clone(&shutdown);
                std::thread::spawn(move || loop {
                    if sigterm::received() {
                        shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
                        // Wake the blocking accept with a self-connection.
                        let _ = std::net::TcpStream::connect(bound);
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(50));
                });
            }
            server
                .run(&shutdown)
                .map_err(|e| CliError::other(format!("{addr}: {e}")))?;
            // Graceful exit: in-flight requests drained by run();
            // compact the journal before leaving.
            service.shutdown();
            eprintln!("rms serve: shut down cleanly");
            Ok(())
        }
        None => {
            eprintln!("rms serve: reading JSONL requests from stdin (one object per line)");
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout().lock();
            rms_serve::run_stdio(&service, stdin.lock(), &mut stdout)
                .map_err(|e| CliError::other(e.to_string()))
        }
    }
}

fn cmd_bench(args: &[String]) -> Result<(), CliError> {
    let mut sections: Vec<&str> = Vec::new();
    let mut effort = OptOptions::default().effort;
    let mut jobs = 0usize; // 0 = default thread pool
    let mut out_path: Option<String> = None;
    let mut iters = 3usize;
    let mut suite = "small".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--table2" => sections.push("table2"),
            "--algs" => sections.push("algs"),
            "--table3" => sections.push("table3"),
            "--summary" => sections.push("summary"),
            "--runtime" => sections.push("runtime"),
            "--figures" => sections.push("figures"),
            "--profile" => sections.push("profile"),
            "--sweep" => sections.push("sweep"),
            "--out" => {
                out_path = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| CliError::usage("--out requires a value"))?,
                );
            }
            "--suite" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::usage("--suite requires a value"))?;
                match v.as_str() {
                    "small" | "large" => suite = v.clone(),
                    other => {
                        return Err(CliError::usage(format!(
                            "--suite expects small or large, got {other:?}"
                        )))
                    }
                }
            }
            "--iters" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::usage("--iters requires a value"))?;
                iters = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("--iters expects a number, got {v:?}")))?;
                if iters == 0 {
                    return Err(CliError::usage("--iters must be at least 1"));
                }
            }
            "--list" => {
                for info in rms_logic::bench_suite::LARGE_SUITE {
                    println!("{:<12} {} inputs (Table II suite)", info.name, info.inputs);
                }
                for info in rms_logic::bench_suite::SMALL_SUITE {
                    println!("{:<12} {} inputs (Table III suite)", info.name, info.inputs);
                }
                for info in rms_logic::large_suite::SUITE {
                    println!(
                        "{:<12} ~{} gates (generated large suite: {})",
                        info.name, info.approx_gates, info.description
                    );
                }
                return Ok(());
            }
            "--sequential" => jobs = 1,
            "--jobs" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::usage("--jobs requires a value"))?;
                jobs = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("--jobs expects a number, got {v:?}")))?;
            }
            "--effort" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::usage("--effort requires a value"))?;
                effort = v.parse().map_err(|_| {
                    CliError::usage(format!("--effort expects a number, got {v:?}"))
                })?;
            }
            other => {
                return Err(CliError::usage(format!(
                    "unknown flag {other:?}; try `rms help`"
                )))
            }
        }
    }
    if sections.is_empty() {
        sections.push("summary");
    }
    let opts = OptOptions::with_effort(effort);
    for (i, section) in sections.iter().enumerate() {
        if i > 0 {
            println!();
        }
        match *section {
            "table2" => print!("{}", reports::table2_report(&opts, jobs)),
            "table3" => print!(
                "{}",
                reports::table3_report(&opts, &rms_bdd::BddSynthOptions::default(), jobs)
            ),
            "algs" => print!("{}", reports::algs_report(&opts, jobs)),
            "summary" => print!("{}", reports::summary_report(&opts, jobs)),
            "runtime" => print!("{}", reports::runtime_report(&opts)),
            "figures" => print!("{}", reports::figures_report()),
            "sweep" => {
                let report = rms_bench::runner::run_sweep(&opts, jobs);
                print!("{}", reports::sweep_report(&report));
                if !report.all_passed() {
                    return Err(CliError::other(
                        "sweep regression: a verification, baseline, or determinism check failed",
                    ));
                }
            }
            "profile" => {
                let report = if suite == "large" {
                    rms_bench::runner::run_profile_large(&opts, iters)
                } else {
                    rms_bench::runner::run_profile(&opts, iters)
                };
                let out_path = out_path.clone().unwrap_or_else(|| {
                    if suite == "large" {
                        "BENCH_8.json".to_string()
                    } else {
                        "BENCH_5.json".to_string()
                    }
                });
                print!("{}", reports::profile_report(&report));
                std::fs::write(&out_path, report.to_json())
                    .map_err(|e| CliError::other(format!("{out_path}: {e}")))?;
                println!("wrote {out_path}");
                if !report.all_passed() {
                    return Err(CliError::other(
                        "profile regression: a verification, differential, \
                         parallel-determinism, or quality (gates_delta) check failed",
                    ));
                }
            }
            _ => unreachable!(),
        }
    }
    Ok(())
}
