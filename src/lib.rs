//! Reproduction of *"Fast Logic Synthesis for RRAM-based In-Memory
//! Computing using Majority-Inverter Graphs"* (Shirinzadeh, Soeken,
//! Gaillardon, Drechsler — DATE 2016), grown into a workspace with a
//! unified synthesis pipeline and a command-line driver.
//!
//! This crate is a facade: each module below re-exports one workspace
//! crate, so `rram_mig::mig::Mig` and `rms_core::Mig` are the same type.
//!
//! | Module | Crate | Layer |
//! |---|---|---|
//! | [`logic`] | `rms-logic` | truth tables, netlists, BLIF/PLA/expression I/O, simulation, benchmark suites |
//! | [`mig`]   | `rms-core`  | majority-inverter graphs, rewrite passes, Algs. 1–4, the (R, S) cost model |
//! | [`cut`]   | `rms-cut`   | k-cut enumeration, NPN canonicalization, the 4-input MIG database, Alg. 5 |
//! | [`rram`]  | `rms-rram`  | RRAM device model, micro-op ISA, level-parallel and PLiM compilers, machine |
//! | [`aig`]   | `rms-aig`   | and-inverter graphs and the node-serial baseline of Table III |
//! | [`bdd`]   | `rms-bdd`   | ROBDDs and the mux-per-node baseline of Table III |
//! | [`sat`]   | `rms-sat`   | CDCL SAT solver, Tseitin encoder, equivalence miters |
//! | [`flow`]  | `rms-flow`  | the end-to-end pipeline, tiered verification, reports, thread pool |
//!
//! The `rms` binary in this package drives [`flow::Pipeline`] from the
//! command line; the reproduction harness lives in the `rms-bench` crate.
//! See `README.md` for a quickstart and `ARCHITECTURE.md` for the stage
//! and data-structure documentation.
//!
//! # Example
//!
//! ```
//! use rram_mig::flow::{Pipeline, InputFormat};
//! use rram_mig::mig::{Algorithm, Realization};
//!
//! # fn main() -> Result<(), rram_mig::flow::FlowError> {
//! let out = Pipeline::from_str(InputFormat::Expr, "f = maj(a, b, c)", "demo")?
//!     .algorithm(Algorithm::RramCosts)
//!     .realization(Realization::Imp)
//!     .run()?;
//! assert_eq!(out.report.cost.rrams, 6); // one IMP majority gate
//! # Ok(())
//! # }
//! ```

pub use rms_aig as aig;
pub use rms_bdd as bdd;
pub use rms_core as mig;
pub use rms_cut as cut;
pub use rms_flow as flow;
pub use rms_logic as logic;
pub use rms_rram as rram;
pub use rms_sat as sat;
