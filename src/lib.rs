pub use rms_aig as aig; pub use rms_bdd as bdd; pub use rms_core as mig; pub use rms_logic as logic; pub use rms_rram as rram;
