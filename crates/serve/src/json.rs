//! A minimal JSON reader for the `rms serve` request protocol.
//!
//! The workspace is offline (no `serde`), and the *writers* in `rms-flow`
//! and this crate are hand-rolled appenders; this module adds the missing
//! direction — a small recursive-descent parser producing a [`Value`]
//! tree with the accessors the request decoder needs. It accepts strict
//! JSON (RFC 8259): objects, arrays, strings with escapes (including
//! `\uXXXX` and surrogate pairs), numbers, booleans, `null`.
//!
//! Requests are single-line documents of a few kilobytes, so the parser
//! optimizes for clarity over throughput; reports flowing the *other*
//! way never pass through it.
//!
//! # Example
//!
//! ```
//! use rms_serve::json::Value;
//!
//! let v = Value::parse(r#"{"id":"r1","effort":12,"batch":[true,null]}"#).unwrap();
//! assert_eq!(v.get("id").and_then(Value::as_str), Some("r1"));
//! assert_eq!(v.get("effort").and_then(Value::as_u64), Some(12));
//! assert_eq!(v.get("batch").and_then(Value::as_array).map(<[Value]>::len), Some(2));
//! ```

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`, like JavaScript).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved, duplicate keys keep the
    /// last occurrence (matching common JSON-library behaviour).
    Object(Vec<(String, Value)>),
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("-12.5e1").unwrap(), Value::Number(-125.0));
        assert_eq!(
            Value::parse("\"a\\n\\\"b\\u00e9\"").unwrap(),
            Value::String("a\n\"bé".into())
        );
    }

    #[test]
    fn nested_documents() {
        let v = Value::parse(r#"{"a":[1,{"b":null},"x"],"a2":{"c":false}}"#).unwrap();
        assert!(v.is_object());
        assert_eq!(v.get("a").and_then(Value::as_array).unwrap().len(), 3);
        assert_eq!(
            v.get("a2")
                .and_then(|x| x.get("c"))
                .and_then(Value::as_bool),
            Some(false)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips_the_flow_report() {
        // The parser must accept what rms-flow's writer emits.
        let out = rms_flow::Pipeline::from_str(
            rms_flow::InputFormat::Expr,
            "f = maj(a, b, c) ^ d",
            "demo",
        )
        .unwrap()
        .effort(2)
        .run()
        .unwrap();
        let text = rms_flow::render_json(&out.report);
        let v = Value::parse(&text).unwrap();
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some(rms_flow::REPORT_SCHEMA)
        );
        assert_eq!(v.get("name").and_then(Value::as_str), Some("demo"));
        assert!(v.get("cost").and_then(|c| c.get("rrams")).is_some());
    }

    #[test]
    fn surrogate_pairs_and_errors() {
        assert_eq!(
            Value::parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".into())
        );
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"\\x\"",
            "\"\\ud83d\"",
            "01x",
            "{}extra",
            "{\"a\"1}",
            "\"\u{1}\"",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Duplicate keys: last one wins.
        let v = Value::parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(2));
    }
}
