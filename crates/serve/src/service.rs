//! The synthesis service: request decoding, cache-aware execution, and
//! response rendering — transport-independent (stdio and HTTP both feed
//! [`Service::handle_line`]).
//!
//! # Protocol (`rms-serve-v1`)
//!
//! One JSON object per line in, one JSON object per line out.
//!
//! **Synthesis request** — a circuit plus pipeline options:
//!
//! ```json
//! {"id":"r1","circuit":".model t\n.inputs a b\n…","format":"blif",
//!  "opt":"cut","engine":"incremental","effort":40,"realization":"maj",
//!  "frontend":"direct","verify":"auto","seed":7,"deterministic":false}
//! ```
//!
//! `circuit` carries the text of any supported frontend format (sniffed
//! when `format` is omitted); `bench` names an embedded benchmark
//! instead. All option fields are optional and default to the CLI
//! defaults. `deterministic:true` zeroes the wall-clock timing fields of
//! the report so responses are byte-reproducible (the determinism bar
//! the batch tests enforce).
//!
//! **Batch request** — many circuits, one shared option set, fanned out
//! over the scoped-thread pool (`jobs` overrides the worker count):
//!
//! ```json
//! {"id":"b1","batch":[{"id":"x","bench":"misex1"},{"id":"y","circuit":"…"}],
//!  "opt":"cut","jobs":4}
//! ```
//!
//! Batch responses list per-item envelopes in **input order**, and are
//! bit-identical across worker counts: items are classified against the
//! cache up front, unique misses run in parallel, and cache insertion +
//! response assembly happen sequentially in input order.
//!
//! **Ops** — `{"op":"stats"}` returns cache counters,
//! `{"op":"ping"}` a liveness probe.
//!
//! Every response carries `"protocol":"rms-serve-v1"`, the echoed `id`,
//! a `status` (`ok` / `error`), and for synthesis results a `cache`
//! disposition (`hit` / `miss`), the content address (`structure` +
//! `options`), the proof-carrying [`Provenance`] record, and the full
//! `rms_flow` JSON report under `report` (schema-stamped, see
//! `rms_flow::REPORT_SCHEMA`).

use crate::cache::{CacheKey, CacheStats, Entry, Provenance, ResultCache};
use crate::faults;
use crate::json::Value;
use crate::persist::{Journal, ReplayStats};
use rms_core::netlist_structural_hash;
use rms_core::opt::{Algorithm, OptOptions};
use rms_core::{CancelToken, Realization};
use rms_flow::{
    escape_json, input, par, render_json, Engine, FlowError, Frontend, InputFormat, Pipeline,
    StageTimings, VerifyMode, VerifyOutcome,
};
use rms_logic::{bench_suite, Netlist};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Protocol identifier stamped into every response line.
pub const PROTOCOL: &str = "rms-serve-v1";

/// Default cache byte budget (64 MiB) — thousands of small-suite-sized
/// reports.
pub const DEFAULT_CACHE_BYTES: usize = 64 << 20;

/// Default upper bound on HTTP request bodies (64 MiB — a structural
/// netlist of millions of gates fits comfortably).
pub const DEFAULT_MAX_BODY_BYTES: usize = 64 << 20;

/// Default concurrent-connection cap for the HTTP transport; excess
/// connections are shed with `503 Service Unavailable` instead of
/// queuing without bound.
pub const DEFAULT_MAX_CONNS: usize = 256;

/// Default socket read/write timeout for the HTTP transport — a stalled
/// peer cannot pin a connection slot forever.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Machine-readable error kinds stamped into `status:"error"`
/// envelopes (the `kind` field).
pub mod kind {
    /// Malformed request: bad JSON, unknown options, unparsable circuit.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The run was abandoned at the request deadline.
    pub const TIMEOUT: &str = "timeout";
    /// The pipeline produced a result that failed verification.
    pub const VERIFICATION: &str = "verification_failed";
    /// The handler panicked or hit an invariant violation; the request
    /// was isolated and the server keeps serving.
    pub const INTERNAL: &str = "internal_error";
    /// The HTTP connection cap was reached; retry later.
    pub const OVERLOADED: &str = "overloaded";
}

/// Server-level configuration (one per [`Service`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Byte budget of the result cache.
    pub cache_bytes: usize,
    /// Default batch fan-out worker count (0 = all cores, the `par_map`
    /// default); a request's `jobs` field overrides it.
    pub jobs: usize,
    /// Upper bound on HTTP request bodies; larger requests are rejected
    /// with `413 Payload Too Large` before any body allocation.
    pub max_body_bytes: usize,
    /// Directory for the crash-safe cache journal (`--cache-dir`);
    /// `None` keeps the cache memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Default per-request deadline in milliseconds (`--deadline-ms`);
    /// a request's own `deadline_ms` field overrides it.
    pub deadline_ms: Option<u64>,
    /// Default best-effort mode (`--best-effort`): deadline-cancelled
    /// runs return their best verified iterate instead of a timeout
    /// error.
    pub best_effort: bool,
    /// Concurrent HTTP connection cap; excess connections get `503`.
    pub max_conns: usize,
    /// HTTP socket read/write timeout (`None` = unbounded).
    pub io_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache_bytes: DEFAULT_CACHE_BYTES,
            jobs: 0,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            cache_dir: None,
            deadline_ms: None,
            best_effort: false,
            max_conns: DEFAULT_MAX_CONNS,
            io_timeout: Some(DEFAULT_IO_TIMEOUT),
        }
    }
}

/// A classified service-level error: a machine-readable [`kind`] plus
/// a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// One of the [`kind`] constants.
    pub kind: &'static str,
    /// Human-readable diagnostic.
    pub message: String,
}

impl ServeError {
    fn bad_request(message: impl Into<String>) -> ServeError {
        ServeError {
            kind: kind::BAD_REQUEST,
            message: message.into(),
        }
    }

    fn internal(message: impl Into<String>) -> ServeError {
        ServeError {
            kind: kind::INTERNAL,
            message: message.into(),
        }
    }

    fn from_flow(e: &FlowError) -> ServeError {
        let kind = match e {
            FlowError::Timeout(_) => kind::TIMEOUT,
            FlowError::Verification(_) => kind::VERIFICATION,
            _ => kind::BAD_REQUEST,
        };
        ServeError {
            kind,
            message: e.to_string(),
        }
    }
}

/// The normalized pipeline options of a request — the second half of the
/// cache key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOptions {
    /// Optimization algorithm (default: Alg. 3, like the CLI).
    pub algorithm: Algorithm,
    /// Majority-gate realization.
    pub realization: Realization,
    /// Optimization effort (cycles).
    pub effort: usize,
    /// Cut-rewriting engine.
    pub engine: Engine,
    /// Initial MIG construction.
    pub frontend: Frontend,
    /// Verification policy.
    pub verify: VerifyMode,
    /// Sampled-verification seed.
    pub seed: u64,
    /// Zero the report's timing fields for byte-reproducible responses.
    pub deterministic: bool,
    /// Per-request deadline in milliseconds. **Not** part of the cache
    /// key: a completed run's result is identical whatever deadline it
    /// raced.
    pub deadline_ms: Option<u64>,
    /// On deadline expiry, return the best verified completed iterate
    /// instead of a timeout error. Also not part of the cache key —
    /// truncated results are never cached at all.
    pub best_effort: bool,
}

impl Default for RequestOptions {
    fn default() -> Self {
        RequestOptions {
            algorithm: Algorithm::RramCosts,
            realization: Realization::Maj,
            effort: OptOptions::default().effort,
            engine: Engine::default(),
            frontend: Frontend::Direct,
            verify: VerifyMode::Auto,
            seed: rms_flow::DEFAULT_VERIFY_SEED,
            deterministic: false,
            deadline_ms: None,
            best_effort: false,
        }
    }
}

impl RequestOptions {
    /// Decodes the option fields of a request object, leaving defaults
    /// for absent fields.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field on unknown values.
    pub fn from_json(v: &Value) -> Result<RequestOptions, String> {
        let mut o = RequestOptions::default();
        if let Some(f) = v.get("opt").or_else(|| v.get("algorithm")) {
            let name = f.as_str().ok_or("\"opt\" must be a string")?;
            o.algorithm =
                Algorithm::from_name(name).ok_or_else(|| format!("unknown algorithm {name:?}"))?;
        }
        if let Some(f) = v.get("realization") {
            let name = f.as_str().ok_or("\"realization\" must be a string")?;
            o.realization = match name.to_ascii_lowercase().as_str() {
                "imp" => Realization::Imp,
                "maj" => Realization::Maj,
                _ => return Err(format!("unknown realization {name:?}")),
            };
        }
        if let Some(f) = v.get("effort") {
            o.effort =
                f.as_u64()
                    .ok_or("\"effort\" must be a non-negative integer")? as usize;
        }
        if let Some(f) = v.get("engine") {
            let name = f.as_str().ok_or("\"engine\" must be a string")?;
            o.engine = Engine::from_name(name).ok_or_else(|| format!("unknown engine {name:?}"))?;
        }
        if let Some(f) = v.get("frontend") {
            let name = f.as_str().ok_or("\"frontend\" must be a string")?;
            o.frontend =
                Frontend::from_name(name).ok_or_else(|| format!("unknown frontend {name:?}"))?;
        }
        if let Some(f) = v.get("verify") {
            let name = f.as_str().ok_or("\"verify\" must be a string")?;
            o.verify = VerifyMode::from_name(name)
                .ok_or_else(|| format!("unknown verify mode {name:?}"))?;
        }
        if let Some(f) = v.get("seed") {
            o.seed = f
                .as_u64()
                .ok_or("\"seed\" must be a non-negative integer")?;
        }
        if let Some(f) = v.get("deterministic") {
            o.deterministic = f.as_bool().ok_or("\"deterministic\" must be a boolean")?;
        }
        if let Some(f) = v.get("deadline_ms") {
            o.deadline_ms = Some(
                f.as_u64()
                    .ok_or("\"deadline_ms\" must be a non-negative integer")?,
            );
        }
        if let Some(f) = v.get("best_effort") {
            o.best_effort = f.as_bool().ok_or("\"best_effort\" must be a boolean")?;
        }
        Ok(o)
    }

    /// The canonical option string: stable machine tokens in a fixed
    /// field order, *after* the same engine normalization the pipeline
    /// applies (`cut-rram` always runs on the rebuild driver, the
    /// sweep modes never do) — so every request spelling that produces
    /// the same flow produces the same cache key.
    pub fn canonical(&self) -> String {
        let engine = if self.algorithm == Algorithm::CutRram {
            Engine::Rebuild
        } else if matches!(
            self.algorithm,
            Algorithm::Sweep | Algorithm::Resub | Algorithm::SweepResub
        ) && self.engine == Engine::Rebuild
        {
            Engine::Incremental
        } else {
            self.engine
        };
        format!(
            "alg={};realization={};effort={};engine={};frontend={};verify={};seed={};det={}",
            self.algorithm.token(),
            self.realization,
            self.effort,
            engine,
            self.frontend,
            self.verify,
            self.seed,
            self.deterministic as u8
        )
    }
}

/// One circuit of a request (a single request is a batch of one).
#[derive(Debug, Clone)]
struct CircuitSpec {
    /// Echoed response id.
    id: String,
    /// Display name for formats that carry none.
    name: String,
    source: Source,
}

#[derive(Debug, Clone)]
enum Source {
    Text {
        format: Option<InputFormat>,
        text: String,
    },
    Bench(String),
}

impl CircuitSpec {
    fn from_json(v: &Value, default_id: String) -> Result<CircuitSpec, String> {
        let id = match v.get("id") {
            Some(f) => f.as_str().ok_or("\"id\" must be a string")?.to_string(),
            None => default_id,
        };
        let name = match v.get("name") {
            Some(f) => f.as_str().ok_or("\"name\" must be a string")?.to_string(),
            None => "request".to_string(),
        };
        let format = match v.get("format") {
            Some(f) => {
                let fname = f.as_str().ok_or("\"format\" must be a string")?;
                Some(
                    InputFormat::from_name(fname)
                        .ok_or_else(|| format!("unknown format {fname:?}"))?,
                )
            }
            None => None,
        };
        let source = match (v.get("circuit"), v.get("bench")) {
            (Some(c), None) => Source::Text {
                format,
                text: c
                    .as_str()
                    .ok_or("\"circuit\" must be a string")?
                    .to_string(),
            },
            (None, Some(b)) => {
                Source::Bench(b.as_str().ok_or("\"bench\" must be a string")?.to_string())
            }
            (Some(_), Some(_)) => return Err("give \"circuit\" or \"bench\", not both".into()),
            (None, None) => return Err("request needs a \"circuit\" or \"bench\" field".into()),
        };
        Ok(CircuitSpec { id, name, source })
    }

    fn resolve(&self) -> Result<Netlist, String> {
        match &self.source {
            Source::Bench(name) => bench_netlist(name)
                .cloned()
                // Generated large-suite circuits are built on demand
                // rather than held resident: at 4k-70k gates each they
                // would dominate the server's memory for requests most
                // deployments never make.
                .or_else(|| rms_logic::large_suite::build(name))
                .ok_or_else(|| format!("unknown benchmark {name:?} (see `rms bench --list`)")),
            Source::Text { format, text } => match format {
                Some(f) => input::parse_str(*f, text, &self.name),
                None => input::parse_sniffed(text, &self.name),
            }
            .map_err(|e| e.to_string()),
        }
    }
}

/// The embedded benchmark suites, parsed **once per process** and shared
/// by every request (the CLI parses per invocation; the server must
/// not).
fn bench_netlists() -> &'static BTreeMap<String, Netlist> {
    static SUITES: OnceLock<BTreeMap<String, Netlist>> = OnceLock::new();
    SUITES.get_or_init(|| {
        let mut map = BTreeMap::new();
        for nl in bench_suite::large_suite()
            .into_iter()
            .chain(bench_suite::small_suite())
        {
            map.insert(nl.name().to_string(), nl);
        }
        map
    })
}

/// A parsed benchmark by name, from the shared per-process map.
fn bench_netlist(name: &str) -> Option<&'static Netlist> {
    bench_netlists().get(name)
}

/// One completed pipeline run: the rendered report, the verification
/// outcome, and whether the optimizer was truncated at the deadline
/// (best-effort runs only — truncated results must never be cached).
#[derive(Debug, Clone)]
struct PipelineRun {
    report_json: String,
    verify: VerifyOutcome,
    cancelled: bool,
}

/// A pipeline run or a classified failure.
type RunResult = Result<PipelineRun, ServeError>;

/// The outcome of one circuit's execution, before response rendering.
enum ItemOutcome {
    Hit(Entry),
    Miss(Entry),
    /// A deadline-truncated best-effort result: verified, returned to
    /// the caller, but **not** cached (a completed run would produce a
    /// different, better report under the same key).
    BestEffort(Entry),
    Error(ServeError),
}

/// Mutable service state behind one mutex: the cache and its journal
/// move together so an insert and its journal append are atomic with
/// respect to other requests.
struct State {
    cache: ResultCache,
    journal: Option<Journal>,
}

/// The long-lived synthesis service.
///
/// Construction prewarms every piece of shared per-process state (the
/// NPN-222 tables and MIG database via [`rms_cut::prewarm`]) so the
/// one-time setup cost lands at startup, not inside the first request.
///
/// # Fault isolation
///
/// [`Service::handle_line`] wraps request handling in `catch_unwind`:
/// a panic anywhere in decoding or the pipeline becomes a structured
/// `internal_error` response and the server keeps serving. The state
/// mutex is recovered from poisoning (a panicked request cannot wedge
/// the cache for everyone else); this is sound because the cache's
/// invariants hold between method calls and no method is re-entered
/// after a panic.
pub struct Service {
    state: Mutex<State>,
    jobs: usize,
    max_body_bytes: usize,
    max_conns: usize,
    io_timeout: Option<Duration>,
    default_deadline_ms: Option<u64>,
    default_best_effort: bool,
    replay: Option<ReplayStats>,
}

impl Service {
    /// A fresh service with the given configuration. When
    /// `config.cache_dir` is set, the journal found there is replayed
    /// into the cache (see [`Service::replay_stats`]); an unusable
    /// cache directory degrades to a memory-only cache with a warning
    /// on stderr rather than refusing to serve.
    pub fn new(config: ServeConfig) -> Self {
        rms_cut::prewarm();
        let mut cache = ResultCache::new(config.cache_bytes);
        let mut replay = None;
        let journal =
            config
                .cache_dir
                .as_ref()
                .and_then(|dir| match Journal::open(dir, &mut cache) {
                    Ok((journal, stats)) => {
                        replay = Some(stats);
                        Some(journal)
                    }
                    Err(e) => {
                        eprintln!(
                            "rms serve: cache journal disabled ({} unusable: {e})",
                            dir.display()
                        );
                        None
                    }
                });
        Service {
            state: Mutex::new(State { cache, journal }),
            jobs: config.jobs,
            max_body_bytes: config.max_body_bytes,
            max_conns: config.max_conns.max(1),
            io_timeout: config.io_timeout,
            default_deadline_ms: config.deadline_ms,
            default_best_effort: config.best_effort,
            replay,
        }
    }

    /// The configured HTTP request-body cap, consulted by the HTTP
    /// transport before reading a body.
    pub fn max_body_bytes(&self) -> usize {
        self.max_body_bytes
    }

    /// The concurrent HTTP connection cap (excess connections are shed
    /// with `503`).
    pub fn max_conns(&self) -> usize {
        self.max_conns
    }

    /// The HTTP socket read/write timeout.
    pub fn io_timeout(&self) -> Option<Duration> {
        self.io_timeout
    }

    /// What journal replay restored at startup (`None` when no cache
    /// directory is configured or the journal was unusable).
    pub fn replay_stats(&self) -> Option<ReplayStats> {
        self.replay
    }

    /// The state lock, recovering from poisoning: a request that
    /// panicked while holding the lock must not wedge every later
    /// request (see the type-level docs for why recovery is sound).
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|poisoned| {
            self.state.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock_state().cache.stats()
    }

    /// Clean shutdown: compacts the journal down to the live cache
    /// contents (dropping evicted and superseded records) via an
    /// atomic temp-file rename. Call on EOF / SIGTERM; skipping it is
    /// safe — the append-only journal already has every entry — it
    /// just leaves the file larger than it needs to be.
    pub fn shutdown(&self) {
        let mut state = self.lock_state();
        let snapshot = state.cache.snapshot();
        if let Some(journal) = state.journal.as_mut() {
            if let Err(e) = journal.compact(&snapshot) {
                eprintln!("rms serve: cache journal compaction failed: {e}");
            }
        }
    }

    /// Handles one protocol line and returns one response line (no
    /// trailing newline). Never panics — malformed input becomes a
    /// `status:"error"` response, and a panic anywhere in the handler
    /// (a pipeline bug, an injected fault) is caught and mapped to a
    /// structured `internal_error` response so one poisoned request
    /// cannot take the server down.
    pub fn handle_line(&self, line: &str) -> String {
        match catch_unwind(AssertUnwindSafe(|| self.handle_line_inner(line))) {
            Ok(response) => response,
            Err(payload) => {
                let id = Value::parse(line)
                    .ok()
                    .and_then(|v| v.get("id").and_then(Value::as_str).map(str::to_string))
                    .unwrap_or_default();
                error_envelope(
                    &id,
                    kind::INTERNAL,
                    &format!("request handler panicked: {}", panic_message(&payload)),
                )
            }
        }
    }

    fn handle_line_inner(&self, line: &str) -> String {
        let v = match Value::parse(line) {
            Ok(v) if v.is_object() => v,
            Ok(_) => return error_envelope("", kind::BAD_REQUEST, "request must be a JSON object"),
            Err(e) => return error_envelope("", kind::BAD_REQUEST, &e.to_string()),
        };
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        if let Some(op) = v.get("op") {
            return match op.as_str() {
                Some("stats") => self.stats_envelope(&id),
                Some("ping") => format!(
                    "{{\"protocol\":\"{PROTOCOL}\",\"id\":\"{}\",\"status\":\"ok\",\"op\":\"ping\"}}",
                    escape_json(&id)
                ),
                _ => error_envelope(&id, kind::BAD_REQUEST, "unknown op (expected \"stats\" or \"ping\")"),
            };
        }
        // Injected request faults (the robustness harness): only honored
        // when fault injection is enabled for this process — a production
        // server ignores the field.
        if let Some(f) = v.get("fault").and_then(Value::as_str) {
            if f == "panic" && faults::enabled() {
                panic!("injected fault: request {id:?} asked for a panic");
            }
        }
        let mut opts = match RequestOptions::from_json(&v) {
            Ok(o) => o,
            Err(e) => return error_envelope(&id, kind::BAD_REQUEST, &e),
        };
        if opts.deadline_ms.is_none() {
            opts.deadline_ms = self.default_deadline_ms;
        }
        opts.best_effort |= self.default_best_effort;
        match v.get("batch") {
            None => {
                let spec = match CircuitSpec::from_json(&v, id.clone()) {
                    Ok(s) => s,
                    Err(e) => return error_envelope(&id, kind::BAD_REQUEST, &e),
                };
                let outcome = self.run_one(&spec, &opts);
                render_outcome(&spec.id, &opts, outcome)
            }
            Some(batch) => {
                let Some(items) = batch.as_array() else {
                    return error_envelope(&id, kind::BAD_REQUEST, "\"batch\" must be an array");
                };
                let jobs = match v.get("jobs") {
                    Some(j) => match j.as_u64() {
                        Some(n) => n as usize,
                        None => {
                            return error_envelope(
                                &id,
                                kind::BAD_REQUEST,
                                "\"jobs\" must be a non-negative integer",
                            )
                        }
                    },
                    None => self.jobs,
                };
                self.handle_batch(&id, items, &opts, jobs)
            }
        }
    }

    /// Runs one circuit against the cache: hit → memoized entry, miss →
    /// pipeline run (outside the cache lock) + insert. Deadline-
    /// truncated best-effort runs are returned but never inserted.
    fn run_one(&self, spec: &CircuitSpec, opts: &RequestOptions) -> ItemOutcome {
        let netlist = match spec.resolve() {
            Ok(nl) => nl,
            Err(e) => return ItemOutcome::Error(ServeError::bad_request(e)),
        };
        let key = cache_key(&netlist, opts);
        if let Some(entry) = self.lock_state().cache.lookup(&key) {
            return ItemOutcome::Hit(entry);
        }
        match run_pipeline(netlist, opts) {
            Err(e) => ItemOutcome::Error(e),
            Ok(run) if run.cancelled => ItemOutcome::BestEffort(uncached_entry(&spec.id, &run)),
            Ok(run) => ItemOutcome::Miss(self.insert(key, &spec.id, run.report_json, &run.verify)),
        }
    }

    /// Builds the provenance record, inserts the entry, and journals it
    /// (making it durable against `kill -9` before the response that
    /// announces it is written); returns the entry as stored (for the
    /// miss response). A journal append failure disables persistence
    /// for the rest of the process — the in-memory cache keeps working.
    fn insert(
        &self,
        key: CacheKey,
        request_id: &str,
        report_json: String,
        verify: &VerifyOutcome,
    ) -> Entry {
        let (conflicts, decisions) = match verify {
            VerifyOutcome::Proved {
                conflicts,
                decisions,
            } => (*conflicts, *decisions),
            _ => (0, 0),
        };
        let mut state = self.lock_state();
        let entry = Entry {
            report_json,
            provenance: Provenance {
                request_id: request_id.to_string(),
                verified: verify.label(),
                proof: verify.is_proof(),
                sat_conflicts: conflicts,
                sat_decisions: decisions,
                cached_at: state.cache.next_insert_tick(),
            },
            hits: 0,
        };
        state.cache.insert(key.clone(), entry.clone());
        if let Some(journal) = state.journal.as_mut() {
            if let Err(e) = journal.append(&key, &entry) {
                eprintln!("rms serve: cache journal disabled after append failure: {e}");
                state.journal = None;
            }
        }
        entry
    }

    /// Executes a batch: parse + resolve sequentially, fan the unique
    /// cache misses out over the thread pool, then insert + render
    /// **sequentially in input order** — which makes the response byte
    /// stream independent of the worker count.
    fn handle_batch(
        &self,
        id: &str,
        items: &[Value],
        opts: &RequestOptions,
        jobs: usize,
    ) -> String {
        // Phase 1 (sequential): decode and parse every item.
        enum Prep {
            Err(String, ServeError), // (item id, error)
            Ready(CircuitSpec, Netlist, CacheKey),
        }
        let prepared: Vec<Prep> = items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                if !item.is_object() {
                    return Prep::Err(
                        format!("{id}[{i}]"),
                        ServeError::bad_request("batch item must be an object"),
                    );
                }
                match CircuitSpec::from_json(item, format!("{id}[{i}]")) {
                    Err(e) => Prep::Err(format!("{id}[{i}]"), ServeError::bad_request(e)),
                    Ok(spec) => match spec.resolve() {
                        Err(e) => Prep::Err(spec.id.clone(), ServeError::bad_request(e)),
                        Ok(nl) => {
                            let key = cache_key(&nl, opts);
                            Prep::Ready(spec, nl, key)
                        }
                    },
                }
            })
            .collect();

        // Phase 2: find the unique keys that need a pipeline run (not
        // cached, first occurrence in this batch) and run them on the
        // pool. The cache is only *read* here.
        let mut to_compute: Vec<(&CacheKey, &Netlist)> = Vec::new();
        {
            let state = self.lock_state();
            for p in &prepared {
                if let Prep::Ready(_, nl, key) = p {
                    if !state.cache.contains(key) && !to_compute.iter().any(|(k, _)| *k == key) {
                        to_compute.push((key, nl));
                    }
                }
            }
        }
        let workers = if jobs == 0 { par::num_threads() } else { jobs };
        let computed: Vec<RunResult> = par::par_map_threads(&to_compute, workers, |(_, nl)| {
            run_pipeline((*nl).clone(), opts)
        });
        let by_key: Vec<(CacheKey, RunResult)> = to_compute
            .into_iter()
            .map(|(k, _)| k.clone())
            .zip(computed)
            .collect();

        // Phase 3 (sequential, input order): insert misses and render.
        // Best-effort truncated results are rendered but never inserted
        // — later occurrences of the same key re-read them from
        // `by_key` instead of the cache.
        let mut rendered: Vec<String> = Vec::with_capacity(prepared.len());
        for p in &prepared {
            let envelope = match p {
                Prep::Err(item_id, e) => error_envelope(item_id, e.kind, &e.message),
                Prep::Ready(spec, _, key) => {
                    let hit = self.lock_state().cache.lookup(key);
                    let outcome = match hit {
                        Some(entry) => ItemOutcome::Hit(entry),
                        None => match by_key.iter().find(|(k, _)| k == key) {
                            Some((_, Ok(run))) if run.cancelled => {
                                ItemOutcome::BestEffort(uncached_entry(&spec.id, run))
                            }
                            Some((_, Ok(run))) => ItemOutcome::Miss(self.insert(
                                key.clone(),
                                &spec.id,
                                run.report_json.clone(),
                                &run.verify,
                            )),
                            Some((_, Err(e))) => ItemOutcome::Error(e.clone()),
                            None => ItemOutcome::Error(ServeError::internal(
                                "batch item neither cached nor computed",
                            )),
                        },
                    };
                    render_outcome(&spec.id, opts, outcome)
                }
            };
            rendered.push(envelope);
        }
        let mut out = format!(
            "{{\"protocol\":\"{PROTOCOL}\",\"id\":\"{}\",\"status\":\"ok\",\"count\":{},\"results\":[",
            escape_json(id),
            rendered.len()
        );
        out.push_str(&rendered.join(","));
        out.push_str("]}");
        out
    }

    fn stats_envelope(&self, id: &str) -> String {
        let s = self.cache_stats();
        format!(
            "{{\"protocol\":\"{PROTOCOL}\",\"id\":\"{}\",\"status\":\"ok\",\"op\":\"stats\",\
             \"entries\":{},\"bytes\":{},\"budget\":{},\"hits\":{},\"misses\":{},\
             \"evictions\":{},\"jobs\":{}}}",
            escape_json(id),
            s.entries,
            s.bytes,
            s.budget,
            s.hits,
            s.misses,
            s.evictions,
            self.jobs
        )
    }
}

/// The content address of (circuit, options).
fn cache_key(netlist: &Netlist, opts: &RequestOptions) -> CacheKey {
    CacheKey {
        structure: netlist_structural_hash(netlist),
        inputs: netlist.num_inputs() as u32,
        outputs: netlist.num_outputs() as u32,
        gates: netlist.num_gates() as u32,
        options: opts.canonical(),
    }
}

/// Runs the pipeline on an owned netlist and renders the report (one
/// line, no trailing newline). `deterministic` zeroes the stage timings
/// first. The request deadline becomes a [`CancelToken`] armed for the
/// whole run; with `best_effort` a truncated-but-verified result comes
/// back with `cancelled: true`, otherwise expiry is a timeout error.
fn run_pipeline(netlist: Netlist, opts: &RequestOptions) -> RunResult {
    let cancel = match opts.deadline_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::default(),
    };
    let out = Pipeline::new(netlist)
        .algorithm(opts.algorithm)
        .realization(opts.realization)
        .effort(opts.effort)
        .engine(opts.engine)
        .frontend(opts.frontend)
        .verify_mode(opts.verify)
        .seed(opts.seed)
        .cancel(cancel)
        .best_effort(opts.best_effort)
        .run()
        .map_err(|e| ServeError::from_flow(&e))?;
    let mut report = out.report;
    if opts.deterministic {
        report.timings = StageTimings::default();
    }
    let verify = report.verify.clone();
    let cancelled = report.opt.cancelled;
    Ok(PipelineRun {
        report_json: render_json(&report).trim_end().to_string(),
        verify,
        cancelled,
    })
}

/// The response entry for a deadline-truncated best-effort run: carries
/// full provenance for the truncated run but is never stored, so
/// `cached_at` is 0 and the disposition renders as `bypass`.
fn uncached_entry(request_id: &str, run: &PipelineRun) -> Entry {
    let (conflicts, decisions) = match &run.verify {
        VerifyOutcome::Proved {
            conflicts,
            decisions,
        } => (*conflicts, *decisions),
        _ => (0, 0),
    };
    Entry {
        report_json: run.report_json.clone(),
        provenance: Provenance {
            request_id: request_id.to_string(),
            verified: run.verify.label(),
            proof: run.verify.is_proof(),
            sat_conflicts: conflicts,
            sat_decisions: decisions,
            cached_at: 0,
        },
        hits: 0,
    }
}

/// Best-effort description of a panic payload (the argument to
/// `panic!`, when it was a string).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Renders a protocol error envelope — the transports use this for
/// errors that never reach [`Service::handle_line`] (oversized lines,
/// invalid UTF-8, shed connections).
pub(crate) fn error_line(id: &str, kind: &str, message: &str) -> String {
    error_envelope(id, kind, message)
}

fn error_envelope(id: &str, kind: &str, message: &str) -> String {
    format!(
        "{{\"protocol\":\"{PROTOCOL}\",\"id\":\"{}\",\"status\":\"error\",\"kind\":\"{}\",\"error\":\"{}\"}}",
        escape_json(id),
        escape_json(kind),
        escape_json(message)
    )
}

/// Renders one synthesis outcome as a response envelope.
fn render_outcome(id: &str, opts: &RequestOptions, outcome: ItemOutcome) -> String {
    let (disposition, entry) = match outcome {
        ItemOutcome::Error(e) => return error_envelope(id, e.kind, &e.message),
        ItemOutcome::Hit(entry) => ("hit", entry),
        ItemOutcome::Miss(entry) => ("miss", entry),
        ItemOutcome::BestEffort(entry) => ("bypass", entry),
    };
    let p = &entry.provenance;
    format!(
        "{{\"protocol\":\"{PROTOCOL}\",\"id\":\"{}\",\"status\":\"ok\",\"cache\":\"{disposition}\",\
         \"options\":\"{}\",\"provenance\":{{\"request_id\":\"{}\",\"verified\":\"{}\",\
         \"proof\":{},\"sat_conflicts\":{},\"sat_decisions\":{},\"cached_at\":{},\"hits\":{}}},\
         \"report\":{}}}",
        escape_json(id),
        escape_json(&opts.canonical()),
        escape_json(&p.request_id),
        escape_json(&p.verified),
        p.proof,
        p.sat_conflicts,
        p.sat_decisions,
        p.cached_at,
        entry.hits,
        entry.report_json
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const BLIF: &str =
        ".model t\\n.inputs a b c\\n.outputs f\\n.names a b c f\\n11- 1\\n--1 1\\n.end\\n";

    fn service() -> Service {
        Service::new(ServeConfig::default())
    }

    #[test]
    fn canonical_options_are_normalized() {
        let a = RequestOptions {
            algorithm: Algorithm::CutRram,
            engine: Engine::Incremental,
            ..RequestOptions::default()
        };
        let b = RequestOptions {
            algorithm: Algorithm::CutRram,
            engine: Engine::Rebuild,
            ..RequestOptions::default()
        };
        assert_eq!(a.canonical(), b.canonical(), "cut-rram pins the engine");
        let c = RequestOptions {
            algorithm: Algorithm::Sweep,
            engine: Engine::Rebuild,
            ..RequestOptions::default()
        };
        assert!(c.canonical().contains("engine=incremental"));
    }

    #[test]
    fn single_request_misses_then_hits() {
        let s = service();
        let req = format!("{{\"id\":\"r1\",\"circuit\":\"{BLIF}\",\"opt\":\"cut\",\"effort\":4}}");
        let cold = s.handle_line(&req);
        assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
        assert!(cold.contains("\"status\":\"ok\""));
        let warm = s.handle_line(&req.replace("r1", "r2"));
        assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
        // Provenance names the *original* request.
        assert!(warm.contains("\"request_id\":\"r1\""), "{warm}");
        let stats = s.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn bench_and_format_fields_work() {
        let s = service();
        let r = s.handle_line("{\"id\":\"b\",\"bench\":\"rd53_f2\",\"effort\":2}");
        assert!(r.contains("\"status\":\"ok\""), "{r}");
        let r = s.handle_line(
            "{\"id\":\"e\",\"circuit\":\"f = maj(a, b, c)\",\"format\":\"expr\",\"effort\":2}",
        );
        assert!(r.contains("\"status\":\"ok\""), "{r}");
        // Sniffed expression without a format field.
        let r = s.handle_line("{\"id\":\"s\",\"circuit\":\"f = a & b\",\"effort\":2}");
        assert!(r.contains("\"status\":\"ok\""), "{r}");
    }

    #[test]
    fn protocol_errors_are_responses_not_panics() {
        let s = service();
        for bad in [
            "not json",
            "[1,2]",
            "{\"id\":\"x\"}",
            "{\"id\":\"x\",\"circuit\":\".model\",\"opt\":\"nope\"}",
            "{\"id\":\"x\",\"bench\":\"no_such_bench\"}",
            "{\"id\":\"x\",\"circuit\":\"f = (\"}",
            "{\"id\":\"x\",\"op\":\"launch\"}",
            "{\"id\":\"x\",\"circuit\":\"f = a\",\"bench\":\"misex1\"}",
        ] {
            let r = s.handle_line(bad);
            assert!(r.contains("\"status\":\"error\""), "{bad} -> {r}");
            assert!(r.starts_with(&format!("{{\"protocol\":\"{PROTOCOL}\"")));
        }
        let r = s.handle_line("{\"id\":\"p\",\"op\":\"ping\"}");
        assert!(r.contains("\"op\":\"ping\""), "{r}");
    }

    #[test]
    fn injected_panic_is_isolated_and_cache_survives() {
        let s = service();
        // Seed the cache.
        let req = format!("{{\"id\":\"r1\",\"circuit\":\"{BLIF}\",\"opt\":\"cut\",\"effort\":4}}");
        assert!(s.handle_line(&req).contains("\"cache\":\"miss\""));
        // A request that panics mid-handling becomes a structured
        // internal_error response...
        faults::arm("request-panic-gate", 0); // marks injection enabled
        let boom = s.handle_line("{\"id\":\"boom\",\"fault\":\"panic\",\"bench\":\"rd53_f2\"}");
        assert!(boom.contains("\"status\":\"error\""), "{boom}");
        assert!(boom.contains("\"kind\":\"internal_error\""), "{boom}");
        assert!(boom.contains("\"id\":\"boom\""), "{boom}");
        // ...and the next request is served from the intact cache.
        let warm = s.handle_line(&req.replace("r1", "r2"));
        assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
    }

    #[test]
    fn expired_deadline_is_a_structured_timeout() {
        let s = service();
        let req = format!(
            "{{\"id\":\"t\",\"circuit\":\"{BLIF}\",\"opt\":\"cut\",\"effort\":4,\"deadline_ms\":0}}"
        );
        let r = s.handle_line(&req);
        assert!(r.contains("\"status\":\"error\""), "{r}");
        assert!(r.contains("\"kind\":\"timeout\""), "{r}");
        // A timed-out run leaves nothing behind: the same request
        // without a deadline is a miss, not a hit.
        let full = s.handle_line(&req.replace(",\"deadline_ms\":0", ""));
        assert!(full.contains("\"cache\":\"miss\""), "{full}");
    }

    #[test]
    fn best_effort_returns_verified_truncated_result_uncached() {
        let s = service();
        let req = format!(
            "{{\"id\":\"b\",\"circuit\":\"{BLIF}\",\"opt\":\"cut\",\"effort\":4,\
             \"deadline_ms\":0,\"best_effort\":true}}"
        );
        let r = s.handle_line(&req);
        assert!(r.contains("\"status\":\"ok\""), "{r}");
        assert!(r.contains("\"cache\":\"bypass\""), "{r}");
        assert!(r.contains("\"cancelled\":true"), "{r}");
        // Truncated results are verified but never cached.
        assert_eq!(s.cache_stats().entries, 0);
        let again = s.handle_line(&req);
        assert!(again.contains("\"cache\":\"bypass\""), "{again}");
        // The deadline does not leak into the content address.
        let opts_with = RequestOptions {
            deadline_ms: Some(50),
            best_effort: true,
            ..RequestOptions::default()
        };
        assert_eq!(opts_with.canonical(), RequestOptions::default().canonical());
    }

    #[test]
    fn journal_persists_across_service_instances() {
        let dir = std::env::temp_dir().join(format!("rms-serve-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            cache_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let req = format!("{{\"id\":\"r1\",\"circuit\":\"{BLIF}\",\"opt\":\"cut\",\"effort\":4}}");
        let cold = {
            let s = Service::new(config.clone());
            assert_eq!(
                s.replay_stats(),
                Some(crate::persist::ReplayStats::default())
            );
            let cold = s.handle_line(&req);
            assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
            cold
            // Dropped WITHOUT shutdown(): the append alone must be
            // durable, like a `kill -9`.
        };
        let s = Service::new(config.clone());
        assert_eq!(s.replay_stats().map(|r| r.replayed), Some(1));
        let warm = s.handle_line(&req.replace("r1", "r2"));
        assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
        // The warm hit re-serves the original run's bytes: same report,
        // same provenance (request_id r1).
        assert!(warm.contains("\"request_id\":\"r1\""), "{warm}");
        let report = cold.split("\"report\":").nth(1).expect("cold report");
        assert!(warm.contains(report.trim_end_matches('}')), "{warm}");
        s.shutdown(); // compaction keeps the entry too
        let s2 = Service::new(config);
        assert_eq!(s2.replay_stats().map(|r| r.replayed), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_fans_out_and_dedups() {
        let s = service();
        let req = format!(
            "{{\"id\":\"b1\",\"opt\":\"cut\",\"effort\":3,\"deterministic\":true,\"batch\":[\
             {{\"id\":\"i0\",\"bench\":\"rd53_f2\"}},\
             {{\"id\":\"i1\",\"circuit\":\"{BLIF}\"}},\
             {{\"id\":\"i2\",\"bench\":\"rd53_f2\"}},\
             {{\"id\":\"i3\",\"circuit\":\"bad(\"}}]}}"
        );
        let r = s.handle_line(&req);
        assert!(r.contains("\"count\":4"), "{r}");
        // The duplicate benchmark is a hit inside the same batch.
        let hit_pos = r.find("\"id\":\"i2\"").unwrap();
        assert!(r[hit_pos..].contains("\"cache\":\"hit\""), "{r}");
        assert!(r.contains("\"id\":\"i3\",\"status\":\"error\""), "{r}");
        // Re-running the whole batch on a different worker count is
        // byte-identical except every item is now a hit... so compare a
        // fresh service at two worker counts instead.
        let s1 = service();
        let s4 = service();
        let req1 = req.replace(
            "\"deterministic\":true",
            "\"deterministic\":true,\"jobs\":1",
        );
        let req4 = req.replace(
            "\"deterministic\":true",
            "\"deterministic\":true,\"jobs\":4",
        );
        assert_eq!(
            s1.handle_line(&req1),
            s4.handle_line(&req4),
            "batch responses must be bit-identical across worker counts"
        );
    }
}
