//! The HTTP transport: a minimal, dependency-free HTTP/1.1 listener over
//! `std::net::TcpListener` with a hand-rolled request parser, serving
//! the same JSONL protocol as the stdio transport.
//!
//! Routes:
//!
//! - `POST /` or `POST /synth` — body is newline-delimited JSON requests
//!   (one or many); the response body is one response line per request
//!   line, `Content-Type: application/x-ndjson`.
//! - `GET /stats` — cache counters (the `stats` op).
//! - `GET /health` — liveness probe (the `ping` op).
//!
//! One thread per connection, `Connection: close` after each response —
//! deliberately simple; the synthesis work dwarfs connection setup.

use crate::service::Service;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

/// Upper bound on the request line and each header line.
const MAX_LINE_BYTES: usize = 64 << 10;

/// Incremental body-read chunk size: memory is committed as data
/// actually arrives, never from the client-claimed `Content-Length`.
const BODY_CHUNK_BYTES: usize = 64 << 10;

/// Binds `addr` and serves connections forever (the `rms serve --http`
/// entry point).
///
/// # Errors
///
/// Returns the bind error; per-connection errors are contained.
pub fn serve_http(service: Arc<Service>, addr: &str) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    accept_loop(service, listener)
}

/// Binds `addr` (use `127.0.0.1:0` for an ephemeral port), returns the
/// bound address, and serves on a background thread — the test and
/// embedding entry point.
///
/// # Errors
///
/// Returns the bind error.
pub fn spawn_http(service: Arc<Service>, addr: &str) -> io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    thread::spawn(move || {
        let _ = accept_loop(service, listener);
    });
    Ok(bound)
}

fn accept_loop(service: Arc<Service>, listener: TcpListener) -> io::Result<()> {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(&service);
        thread::spawn(move || handle_connection(&service, stream));
    }
    Ok(())
}

struct Request {
    method: String,
    path: String,
    body: String,
}

struct Response {
    status: u16,
    reason: &'static str,
    body: String,
}

impl Response {
    fn ok(body: String) -> Response {
        Response {
            status: 200,
            reason: "OK",
            body,
        }
    }

    fn error(status: u16, reason: &'static str, message: &str) -> Response {
        Response {
            status,
            reason,
            body: format!(
                "{{\"protocol\":\"{}\",\"status\":\"error\",\"error\":\"{}\"}}",
                crate::service::PROTOCOL,
                rms_flow::escape_json(message)
            ),
        }
    }
}

fn handle_connection(service: &Service, mut stream: TcpStream) {
    let response = match read_request(&mut stream, service.max_body_bytes()) {
        Ok(request) => route(service, &request),
        Err(response) => response,
    };
    let _ = write_response(&mut stream, &response);
}

/// Parses the request line, headers, and `Content-Length`-framed body.
/// Protocol violations come back as ready-made error responses.
///
/// Bodies over `max_body_bytes` are rejected with `413` straight from
/// the header, and the body buffer grows chunk by chunk as bytes
/// actually arrive — a hostile `Content-Length` never translates into a
/// large allocation.
fn read_request(stream: &mut TcpStream, max_body_bytes: usize) -> Result<Request, Response> {
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| Response::error(500, "Internal Server Error", &e.to_string()))?,
    );
    let request_line = read_header_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(Response::error(
            400,
            "Bad Request",
            "malformed request line",
        ));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(Response::error(400, "Bad Request", "expected HTTP/1.x"));
    }
    let mut content_length = 0usize;
    loop {
        let line = read_header_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(Response::error(400, "Bad Request", "malformed header line"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| Response::error(400, "Bad Request", "bad Content-Length"))?;
        }
    }
    if content_length > max_body_bytes {
        return Err(Response::error(
            413,
            "Payload Too Large",
            &format!(
                "request body of {content_length} bytes exceeds the {max_body_bytes}-byte limit"
            ),
        ));
    }
    let mut body = Vec::new();
    let mut remaining = content_length;
    while remaining > 0 {
        let chunk = remaining.min(BODY_CHUNK_BYTES);
        let start = body.len();
        body.resize(start + chunk, 0);
        reader
            .read_exact(&mut body[start..])
            .map_err(|_| Response::error(400, "Bad Request", "truncated request body"))?;
        remaining -= chunk;
    }
    let body = String::from_utf8(body)
        .map_err(|_| Response::error(400, "Bad Request", "request body is not UTF-8"))?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// One CRLF-terminated header line, size-capped.
fn read_header_line<R: BufRead>(reader: &mut R) -> Result<String, Response> {
    let mut line = String::new();
    let mut limited = reader.take(MAX_LINE_BYTES as u64);
    limited
        .read_line(&mut line)
        .map_err(|e| Response::error(400, "Bad Request", &e.to_string()))?;
    if !line.ends_with('\n') && line.len() >= MAX_LINE_BYTES {
        return Err(Response::error(
            431,
            "Request Header Fields Too Large",
            "header line too long",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn route(service: &Service, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => Response::ok(service.handle_line("{\"op\":\"ping\"}")),
        ("GET", "/stats") => Response::ok(service.handle_line("{\"op\":\"stats\"}")),
        ("POST", "/") | ("POST", "/synth") => {
            let mut lines = Vec::new();
            for line in request.body.lines() {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    lines.push(service.handle_line(trimmed));
                }
            }
            if lines.is_empty() {
                return Response::error(400, "Bad Request", "empty request body");
            }
            Response::ok(lines.join("\n"))
        }
        ("GET" | "POST", _) => Response::error(404, "Not Found", "no such route"),
        _ => Response::error(405, "Method Not Allowed", "use GET or POST"),
    }
}

fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut body = response.body.clone();
    if !body.ends_with('\n') {
        body.push('\n');
    }
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: application/x-ndjson\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        response.reason,
        body.len(),
        body
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;

    fn start() -> SocketAddr {
        start_with(ServeConfig::default())
    }

    fn start_with(config: ServeConfig) -> SocketAddr {
        let service = Arc::new(Service::new(config));
        spawn_http(service, "127.0.0.1:0").expect("bind ephemeral port")
    }

    fn exchange(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("receive");
        response
    }

    fn post(addr: SocketAddr, body: &str) -> String {
        exchange(
            addr,
            &format!(
                "POST /synth HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            ),
        )
    }

    #[test]
    fn http_round_trip_and_cache_hit() {
        let addr = start();
        let body = "{\"id\":\"h1\",\"bench\":\"rd53_f2\",\"effort\":2}\n";
        let cold = post(addr, body);
        assert!(cold.starts_with("HTTP/1.1 200 OK\r\n"), "{cold}");
        assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
        let warm = post(addr, body);
        assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
        // Two request lines in one POST → two response lines.
        let double = post(addr, &format!("{body}{body}"));
        assert_eq!(double.matches("\"cache\":\"hit\"").count(), 2, "{double}");
    }

    #[test]
    fn http_health_stats_and_errors() {
        let addr = start();
        let health = exchange(addr, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(health.contains("\"op\":\"ping\""), "{health}");
        let stats = exchange(addr, "GET /stats HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(stats.contains("\"op\":\"stats\""), "{stats}");
        let missing = exchange(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let bad = exchange(addr, "garbage\r\n\r\n");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let empty = post(addr, "");
        assert!(empty.starts_with("HTTP/1.1 400"), "{empty}");
        let wrong_method = exchange(addr, "DELETE / HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(wrong_method.starts_with("HTTP/1.1 405"), "{wrong_method}");
    }

    #[test]
    fn oversized_content_length_is_rejected_with_413() {
        // Regression: a client claiming a multi-GB body must be turned
        // away from the header alone — no body is ever sent here, so a
        // response at all proves the server did not try to read (or
        // allocate) the claimed length.
        let addr = start();
        let request = "POST /synth HTTP/1.1\r\nHost: t\r\nContent-Length: 109951162777600\r\n\r\n";
        let response = exchange(addr, request);
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        assert!(response.contains("exceeds"), "{response}");
    }

    #[test]
    fn configured_body_cap_is_enforced() {
        let addr = start_with(ServeConfig {
            max_body_bytes: 128,
            ..ServeConfig::default()
        });
        // An honest request over the configured cap: 413.
        let big = "x".repeat(256);
        let over = post(addr, &big);
        assert!(over.starts_with("HTTP/1.1 413"), "{over}");
        // Under the cap, the request reaches the router (bad JSON, but
        // transported fine → 200 with an error envelope per line).
        let ok = post(addr, "{\"op\":\"ping\"}");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
    }
}
