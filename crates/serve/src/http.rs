//! The HTTP transport: a minimal, dependency-free HTTP/1.1 listener over
//! `std::net::TcpListener` with a hand-rolled request parser, serving
//! the same JSONL protocol as the stdio transport.
//!
//! Routes:
//!
//! - `POST /` or `POST /synth` — body is newline-delimited JSON requests
//!   (one or many); the response body is one response line per request
//!   line, `Content-Type: application/x-ndjson`.
//! - `GET /stats` — cache counters (the `stats` op).
//! - `GET /health` — liveness probe (the `ping` op).
//!
//! One thread per connection, `Connection: close` after each response —
//! deliberately simple; the synthesis work dwarfs connection setup.
//!
//! # Robustness
//!
//! - **Connection shedding**: at most `Service::max_conns` connections
//!   are served concurrently; excess connections get an immediate
//!   `503 Service Unavailable` instead of queuing without bound.
//! - **Socket timeouts**: every accepted socket gets the service's
//!   read/write timeout, so a stalled peer cannot pin a connection slot
//!   (and its thread) forever.
//! - **Graceful shutdown**: [`HttpServer::run`] watches a shutdown flag
//!   checked after every accept; once raised (wake the blocking accept
//!   with a self-connection — see [`HttpServer::local_addr`]) the
//!   listener stops accepting and drains in-flight requests before
//!   returning, so the caller can compact the cache journal knowing no
//!   request is mid-insert.

use crate::service::{kind, Service};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Upper bound on the request line and each header line.
const MAX_LINE_BYTES: usize = 64 << 10;

/// Incremental body-read chunk size: memory is committed as data
/// actually arrives, never from the client-claimed `Content-Length`.
const BODY_CHUNK_BYTES: usize = 64 << 10;

/// How long [`HttpServer::run`] waits for in-flight connections to
/// finish after the shutdown flag is raised.
const DRAIN_DEADLINE: Duration = Duration::from_secs(30);

/// Binds `addr` and serves connections forever (the embedding entry
/// point without shutdown control).
///
/// # Errors
///
/// Returns the bind error; per-connection errors are contained.
pub fn serve_http(service: Arc<Service>, addr: &str) -> io::Result<()> {
    let server = HttpServer::bind(service, addr)?;
    server.run(&AtomicBool::new(false))
}

/// Binds `addr` (use `127.0.0.1:0` for an ephemeral port), returns the
/// bound address, and serves on a background thread — the test and
/// embedding entry point.
///
/// # Errors
///
/// Returns the bind error.
pub fn spawn_http(service: Arc<Service>, addr: &str) -> io::Result<SocketAddr> {
    let server = HttpServer::bind(service, addr)?;
    let bound = server.local_addr();
    thread::spawn(move || {
        let _ = server.run(&AtomicBool::new(false));
    });
    Ok(bound)
}

/// A bound HTTP listener with explicit lifecycle control (the
/// `rms serve --http` entry point, which needs SIGTERM-driven
/// shutdown).
pub struct HttpServer {
    service: Arc<Service>,
    listener: TcpListener,
    local_addr: SocketAddr,
}

impl HttpServer {
    /// Binds `addr` without serving yet.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn bind(service: Arc<Service>, addr: &str) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(HttpServer {
            service,
            listener,
            local_addr,
        })
    }

    /// The actually-bound address (resolves `:0` to the ephemeral
    /// port). A shutdown driver connects here once after raising the
    /// flag to wake the blocking accept.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Accepts and serves connections until `shutdown` is observed
    /// true, then drains in-flight requests (bounded by an internal
    /// deadline) and returns. The flag is checked after each accept;
    /// because `accept` blocks, raising the flag must be followed by a
    /// connection to [`HttpServer::local_addr`] to wake the loop.
    ///
    /// # Errors
    ///
    /// Per-connection errors are contained; only listener-level
    /// failures propagate.
    pub fn run(&self, shutdown: &AtomicBool) -> io::Result<()> {
        let active = Arc::new(AtomicUsize::new(0));
        let max_conns = self.service.max_conns();
        let io_timeout = self.service.io_timeout();
        for stream in self.listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let _ = stream.set_read_timeout(io_timeout);
            let _ = stream.set_write_timeout(io_timeout);
            // Claim a connection slot or shed the connection: the slot
            // is taken *before* the worker spawns so the cap bounds
            // live threads, not just requests.
            if active.fetch_add(1, Ordering::SeqCst) >= max_conns {
                active.fetch_sub(1, Ordering::SeqCst);
                // Shed on a detached thread so a slow peer cannot stall
                // the accept loop; the thread is short-lived (bounded
                // drain + one write).
                thread::spawn(move || shed_connection(stream, max_conns));
                continue;
            }
            let service = Arc::clone(&self.service);
            let guard = ConnGuard(Arc::clone(&active));
            thread::spawn(move || {
                let _guard = guard;
                handle_connection(&service, stream);
            });
        }
        // Drain: wait for in-flight workers so the caller can compact
        // the journal with no insert racing it.
        let deadline = Instant::now() + DRAIN_DEADLINE;
        while active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }
}

/// Answers a connection past the cap with `503`. The client's pending
/// request bytes are drained (bounded) first: closing a socket with
/// unread received data sends RST, which would destroy the 503 before
/// the peer can read it.
fn shed_connection(mut stream: TcpStream, max_conns: usize) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 64 << 10 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break, // EOF or timed out: peer is done sending
            Ok(n) => drained += n,
        }
    }
    let response = Response::error(
        503,
        "Service Unavailable",
        kind::OVERLOADED,
        &format!("connection limit of {max_conns} reached, try again"),
    );
    let _ = write_response(&mut stream, &response);
}

/// Releases a connection slot when the worker finishes (or panics).
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

struct Request {
    method: String,
    path: String,
    body: String,
}

struct Response {
    status: u16,
    reason: &'static str,
    body: String,
}

impl Response {
    fn ok(body: String) -> Response {
        Response {
            status: 200,
            reason: "OK",
            body,
        }
    }

    fn error(status: u16, reason: &'static str, kind: &str, message: &str) -> Response {
        Response {
            status,
            reason,
            body: crate::service::error_line("", kind, message),
        }
    }

    fn bad_request(status: u16, reason: &'static str, message: &str) -> Response {
        Response::error(status, reason, kind::BAD_REQUEST, message)
    }
}

fn handle_connection(service: &Service, mut stream: TcpStream) {
    let response = match read_request(&mut stream, service.max_body_bytes()) {
        Ok(request) => route(service, &request),
        Err(response) => response,
    };
    let _ = write_response(&mut stream, &response);
}

/// Parses the request line, headers, and `Content-Length`-framed body.
/// Protocol violations come back as ready-made error responses.
///
/// Bodies over `max_body_bytes` are rejected with `413` straight from
/// the header, and the body buffer grows chunk by chunk as bytes
/// actually arrive — a hostile `Content-Length` never translates into a
/// large allocation.
fn read_request(stream: &mut TcpStream, max_body_bytes: usize) -> Result<Request, Response> {
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| {
        Response::error(500, "Internal Server Error", kind::INTERNAL, &e.to_string())
    })?);
    let request_line = read_header_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(Response::bad_request(
            400,
            "Bad Request",
            "malformed request line",
        ));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(Response::bad_request(
            400,
            "Bad Request",
            "expected HTTP/1.x",
        ));
    }
    let mut content_length = 0usize;
    loop {
        let line = read_header_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(Response::bad_request(
                400,
                "Bad Request",
                "malformed header line",
            ));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| Response::bad_request(400, "Bad Request", "bad Content-Length"))?;
        }
    }
    if content_length > max_body_bytes {
        return Err(Response::bad_request(
            413,
            "Payload Too Large",
            &format!(
                "request body of {content_length} bytes exceeds the {max_body_bytes}-byte limit"
            ),
        ));
    }
    let mut body = Vec::new();
    let mut remaining = content_length;
    while remaining > 0 {
        let chunk = remaining.min(BODY_CHUNK_BYTES);
        let start = body.len();
        body.resize(start + chunk, 0);
        reader
            .read_exact(&mut body[start..])
            .map_err(|_| Response::bad_request(400, "Bad Request", "truncated request body"))?;
        remaining -= chunk;
    }
    let body = String::from_utf8(body)
        .map_err(|_| Response::bad_request(400, "Bad Request", "request body is not UTF-8"))?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// One CRLF-terminated header line, size-capped.
fn read_header_line<R: BufRead>(reader: &mut R) -> Result<String, Response> {
    let mut line = String::new();
    let mut limited = reader.take(MAX_LINE_BYTES as u64);
    limited
        .read_line(&mut line)
        .map_err(|e| Response::bad_request(400, "Bad Request", &e.to_string()))?;
    if !line.ends_with('\n') && line.len() >= MAX_LINE_BYTES {
        return Err(Response::bad_request(
            431,
            "Request Header Fields Too Large",
            "header line too long",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn route(service: &Service, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => Response::ok(service.handle_line("{\"op\":\"ping\"}")),
        ("GET", "/stats") => Response::ok(service.handle_line("{\"op\":\"stats\"}")),
        ("POST", "/") | ("POST", "/synth") => {
            let mut lines = Vec::new();
            for line in request.body.lines() {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    lines.push(service.handle_line(trimmed));
                }
            }
            if lines.is_empty() {
                return Response::bad_request(400, "Bad Request", "empty request body");
            }
            Response::ok(lines.join("\n"))
        }
        ("GET" | "POST", _) => Response::bad_request(404, "Not Found", "no such route"),
        _ => Response::bad_request(405, "Method Not Allowed", "use GET or POST"),
    }
}

fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut body = response.body.clone();
    if !body.ends_with('\n') {
        body.push('\n');
    }
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: application/x-ndjson\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        response.reason,
        body.len(),
        body
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;

    fn start() -> SocketAddr {
        start_with(ServeConfig::default())
    }

    fn start_with(config: ServeConfig) -> SocketAddr {
        let service = Arc::new(Service::new(config));
        spawn_http(service, "127.0.0.1:0").expect("bind ephemeral port")
    }

    fn exchange(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("receive");
        response
    }

    fn post(addr: SocketAddr, body: &str) -> String {
        exchange(
            addr,
            &format!(
                "POST /synth HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            ),
        )
    }

    #[test]
    fn http_round_trip_and_cache_hit() {
        let addr = start();
        let body = "{\"id\":\"h1\",\"bench\":\"rd53_f2\",\"effort\":2}\n";
        let cold = post(addr, body);
        assert!(cold.starts_with("HTTP/1.1 200 OK\r\n"), "{cold}");
        assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
        let warm = post(addr, body);
        assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
        // Two request lines in one POST → two response lines.
        let double = post(addr, &format!("{body}{body}"));
        assert_eq!(double.matches("\"cache\":\"hit\"").count(), 2, "{double}");
    }

    #[test]
    fn http_health_stats_and_errors() {
        let addr = start();
        let health = exchange(addr, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(health.contains("\"op\":\"ping\""), "{health}");
        let stats = exchange(addr, "GET /stats HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(stats.contains("\"op\":\"stats\""), "{stats}");
        let missing = exchange(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let bad = exchange(addr, "garbage\r\n\r\n");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let empty = post(addr, "");
        assert!(empty.starts_with("HTTP/1.1 400"), "{empty}");
        let wrong_method = exchange(addr, "DELETE / HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(wrong_method.starts_with("HTTP/1.1 405"), "{wrong_method}");
    }

    #[test]
    fn oversized_content_length_is_rejected_with_413() {
        // Regression: a client claiming a multi-GB body must be turned
        // away from the header alone — no body is ever sent here, so a
        // response at all proves the server did not try to read (or
        // allocate) the claimed length.
        let addr = start();
        let request = "POST /synth HTTP/1.1\r\nHost: t\r\nContent-Length: 109951162777600\r\n\r\n";
        let response = exchange(addr, request);
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        assert!(response.contains("exceeds"), "{response}");
    }

    #[test]
    fn configured_body_cap_is_enforced() {
        let addr = start_with(ServeConfig {
            max_body_bytes: 128,
            ..ServeConfig::default()
        });
        // An honest request over the configured cap: 413.
        let big = "x".repeat(256);
        let over = post(addr, &big);
        assert!(over.starts_with("HTTP/1.1 413"), "{over}");
        // Under the cap, the request reaches the router (bad JSON, but
        // transported fine → 200 with an error envelope per line).
        let ok = post(addr, "{\"op\":\"ping\"}");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
    }

    #[test]
    fn connection_cap_sheds_with_503_and_recovers() {
        let addr = start_with(ServeConfig {
            max_conns: 1,
            ..ServeConfig::default()
        });
        // Occupy the single slot with a connection that never finishes
        // its request (the socket timeout would reap it eventually, but
        // not within this test).
        let mut holder = TcpStream::connect(addr).expect("connect holder");
        holder
            .write_all(b"POST /synth HTTP/1.1\r\n")
            .expect("partial request");
        // Once the holder's accept lands, every further connection is
        // shed with 503. Poll because the accept races this thread.
        let mut shed = None;
        for _ in 0..200 {
            let r = exchange(addr, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
            if r.starts_with("HTTP/1.1 503") {
                shed = Some(r);
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        let shed = shed.expect("a connection past the cap must be shed with 503");
        assert!(shed.contains("\"kind\":\"overloaded\""), "{shed}");
        // Releasing the slot restores service.
        drop(holder);
        let mut recovered = false;
        for _ in 0..200 {
            let r = exchange(addr, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
            if r.starts_with("HTTP/1.1 200") {
                recovered = true;
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert!(recovered, "server must recover once the slot frees up");
    }

    #[test]
    fn graceful_shutdown_drains_and_returns() {
        let service = Arc::new(Service::new(ServeConfig::default()));
        let server = HttpServer::bind(service, "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = thread::spawn(move || server.run(&flag));
        // Serve one request, then shut down.
        let r = exchange(addr, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr); // wake the blocking accept
        handle.join().expect("run thread").expect("clean shutdown");
    }
}
