//! Test-support fault injection: named fault points that production
//! code consults at interesting boundaries (journal appends, request
//! handling) and tests arm to force rare failure paths.
//!
//! A fault point is a name with a remaining-shot counter. Production
//! code calls [`fire`] (or [`io_error`]) at the point; an armed name
//! fires — decrementing its counter — and the code takes the failure
//! path as if the real fault had happened. Unarmed names never fire and
//! cost one mutex lock on a tiny map, so the hooks are safe to leave in
//! release builds.
//!
//! Faults are armed two ways:
//!
//! - in-process, via [`arm`] (the unit and integration tests);
//! - across an `exec`, via the `RMS_FAULTS` environment variable — a
//!   comma-separated list of `name` or `name:count` items, read once at
//!   first use (the spawned-server robustness tests). `RMS_FAULTS=
//!   "journal-append:1,request-panic"` arms one journal-append failure
//!   and an unbounded request panic.
//!
//! The request-level `"fault":"panic"` protocol field is only honored
//! when injection is [`enabled`] — a production server ignores it.

use std::collections::BTreeMap;
use std::io;
use std::sync::{Mutex, OnceLock};

/// Counter for a fault point: `None` = fire forever, `Some(n)` = fire
/// `n` more times.
type Shots = Option<u64>;

struct Registry {
    /// Whether injection was ever turned on (env var present or `arm`
    /// called) — gates request-level fault fields.
    enabled: bool,
    points: BTreeMap<String, Shots>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut points = BTreeMap::new();
        let mut enabled = false;
        if let Ok(spec) = std::env::var("RMS_FAULTS") {
            enabled = true;
            for item in spec.split(',') {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                match item.split_once(':') {
                    Some((name, count)) => {
                        let shots = count.trim().parse::<u64>().ok();
                        points.insert(name.trim().to_string(), shots);
                    }
                    None => {
                        points.insert(item.to_string(), None);
                    }
                }
            }
        }
        Mutex::new(Registry { enabled, points })
    })
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|p| p.into_inner())
}

/// Arms `name` to fire `count` times (in-process test setup).
pub fn arm(name: &str, count: u64) {
    let mut r = lock();
    r.enabled = true;
    r.points.insert(name.to_string(), Some(count));
}

/// Disarms every fault point (test teardown). Injection stays
/// [`enabled`] — the process has been a test process since the first
/// `arm`.
pub fn disarm_all() {
    lock().points.clear();
}

/// Whether fault injection was ever turned on in this process. Gates
/// protocol-level fault requests so production servers ignore them.
pub fn enabled() -> bool {
    lock().enabled
}

/// Consults the fault point `name`: returns `true` (and consumes a
/// shot) if it is armed, `false` otherwise.
pub fn fire(name: &str) -> bool {
    let mut r = lock();
    match r.points.get_mut(name) {
        None => false,
        Some(None) => true,
        Some(Some(0)) => false,
        Some(Some(n)) => {
            *n -= 1;
            true
        }
    }
}

/// An injected I/O error for fault point `name`, or `None` when the
/// point is not armed — `file.write(...)`-shaped code does
/// `if let Some(e) = faults::io_error("point") { return Err(e); }`.
pub fn io_error(name: &str) -> Option<io::Error> {
    fire(name).then(|| io::Error::other(format!("injected fault: {name}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_points_never_fire() {
        assert!(!fire("no-such-fault"));
        assert!(io_error("no-such-fault").is_none());
    }

    #[test]
    fn armed_points_fire_exactly_count_times() {
        arm("unit-double", 2);
        assert!(fire("unit-double"));
        assert!(fire("unit-double"));
        assert!(!fire("unit-double"), "shots are consumed");
        assert!(enabled());
    }

    #[test]
    fn io_errors_carry_the_point_name() {
        arm("unit-io", 1);
        let e = io_error("unit-io").expect("armed");
        assert!(e.to_string().contains("unit-io"));
        assert!(io_error("unit-io").is_none());
    }
}
