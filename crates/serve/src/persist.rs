//! Crash-safe persistence for the result cache: an append-only journal
//! of cache entries under `--cache-dir`.
//!
//! # Journal format
//!
//! The journal file (`journal.rms`) starts with the 8-byte magic
//! [`JOURNAL_MAGIC`] and is followed by length-prefixed records:
//!
//! ```text
//! [u32 LE payload length][u64 LE FNV-1a checksum of payload][payload]
//! ```
//!
//! The payload is a flat binary encoding of one `(CacheKey, Entry)`
//! pair (see [`encode_record`]). Records are appended and flushed as
//! entries are inserted, so every completed insert is durable against
//! process death (`kill -9`) — the bytes reach the kernel page cache
//! before the response that announced the entry is written.
//!
//! # Recovery
//!
//! On startup the journal is replayed record by record. Replay stops at
//! the first torn or corrupt record — a truncated header, a length that
//! overruns the file, a checksum mismatch, or a payload that fails to
//! decode — and the file is truncated back to the last good record, so
//! a crash mid-append costs at most the entry being written, never the
//! prefix. A file with a bad magic is discarded wholesale (it is not a
//! journal).
//!
//! # Compaction
//!
//! On clean shutdown ([`Journal::compact`]) the journal is rewritten
//! from the live cache contents — dropping evicted and superseded
//! records — into a temporary file that is fsynced and atomically
//! renamed over the old journal, so a crash during compaction leaves
//! either the old or the new journal intact, never a hybrid.

use crate::cache::{CacheKey, Entry, Provenance, ResultCache};
use crate::faults;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// First 8 bytes of every journal file.
pub const JOURNAL_MAGIC: &[u8; 8] = b"RMSJ0001";

/// File name of the journal inside the cache directory.
pub const JOURNAL_FILE: &str = "journal.rms";

/// Upper bound on a single record payload (a report plus provenance;
/// 256 MiB is far beyond any real entry). Lengths above this are
/// treated as corruption rather than allocated.
const MAX_RECORD_BYTES: u32 = 256 << 20;

/// FNV-1a over `bytes` — the record checksum. Not cryptographic; it
/// guards against torn writes and bit rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reader over a record payload; every `take_*`
/// returns `None` past the end, so decoding a truncated payload fails
/// cleanly instead of panicking.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn take_u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn take_u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn take_str(&mut self) -> Option<String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn take_bool(&mut self) -> Option<bool> {
        match self.take(1)? {
            [0] => Some(false),
            [1] => Some(true),
            _ => None,
        }
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Encodes one cache entry as a record payload (no framing).
pub fn encode_record(key: &CacheKey, entry: &Entry) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + key.options.len() + entry.report_json.len());
    put_u64(&mut buf, key.structure);
    put_u32(&mut buf, key.inputs);
    put_u32(&mut buf, key.outputs);
    put_u32(&mut buf, key.gates);
    put_str(&mut buf, &key.options);
    put_str(&mut buf, &entry.report_json);
    put_str(&mut buf, &entry.provenance.request_id);
    put_str(&mut buf, &entry.provenance.verified);
    buf.push(entry.provenance.proof as u8);
    put_u64(&mut buf, entry.provenance.sat_conflicts);
    put_u64(&mut buf, entry.provenance.sat_decisions);
    put_u64(&mut buf, entry.provenance.cached_at);
    put_u64(&mut buf, entry.hits);
    buf
}

/// Decodes a record payload back into a `(CacheKey, Entry)` pair.
/// Returns `None` on any truncation or malformed field — replay treats
/// that as a corrupt tail.
pub fn decode_record(payload: &[u8]) -> Option<(CacheKey, Entry)> {
    let mut c = Cursor::new(payload);
    let key = CacheKey {
        structure: c.take_u64()?,
        inputs: c.take_u32()?,
        outputs: c.take_u32()?,
        gates: c.take_u32()?,
        options: c.take_str()?,
    };
    let entry = Entry {
        report_json: c.take_str()?,
        provenance: Provenance {
            request_id: c.take_str()?,
            verified: c.take_str()?,
            proof: c.take_bool()?,
            sat_conflicts: c.take_u64()?,
            sat_decisions: c.take_u64()?,
            cached_at: c.take_u64()?,
        },
        hits: c.take_u64()?,
    };
    if !c.at_end() {
        return None;
    }
    Some((key, entry))
}

/// What replay found on startup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records restored into the cache.
    pub replayed: usize,
    /// Bytes discarded from a torn or corrupt tail (0 for a clean
    /// journal).
    pub truncated_bytes: u64,
}

/// The open journal: an append handle positioned after the last valid
/// record.
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("path", &self.path).finish()
    }
}

impl Journal {
    /// Opens (creating if needed) the journal in `dir`, replays every
    /// surviving record into `cache`, truncates any torn tail, and
    /// returns the journal positioned for appending.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from creating the directory or opening,
    /// reading, and truncating the journal file. Corruption is not an
    /// error — it is truncated away and reported in [`ReplayStats`].
    pub fn open(dir: &Path, cache: &mut ResultCache) -> io::Result<(Journal, ReplayStats)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut stats = ReplayStats::default();

        // A fresh (or non-journal) file: start over with just the magic.
        let valid_end = if bytes.len() < JOURNAL_MAGIC.len() || !bytes.starts_with(JOURNAL_MAGIC) {
            stats.truncated_bytes = bytes.len() as u64;
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(JOURNAL_MAGIC)?;
            file.flush()?;
            return Ok((Journal { path, file }, stats));
        } else {
            let mut pos = JOURNAL_MAGIC.len();
            // A torn header (or the clean end at pos == len) stops the
            // replay; every later break truncates back to `pos`.
            while let Some(header) = bytes.get(pos..pos + 12) {
                let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
                let checksum = u64::from_le_bytes(header[4..12].try_into().unwrap());
                if len > MAX_RECORD_BYTES {
                    break; // nonsense length: corrupt
                }
                let Some(payload) = bytes.get(pos + 12..pos + 12 + len as usize) else {
                    break; // torn payload
                };
                if fnv1a64(payload) != checksum {
                    break; // bit rot or torn write
                }
                let Some((key, entry)) = decode_record(payload) else {
                    break; // checksum ok but undecodable: corrupt
                };
                cache.insert(key, entry);
                stats.replayed += 1;
                pos += 12 + len as usize;
            }
            pos
        };

        if (valid_end as u64) < bytes.len() as u64 {
            stats.truncated_bytes = bytes.len() as u64 - valid_end as u64;
            file.set_len(valid_end as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((Journal { path, file }, stats))
    }

    /// Appends one entry and flushes it to the OS, making it durable
    /// against process death before the caller announces the result.
    ///
    /// # Errors
    ///
    /// Returns write/flush errors (including injected ones, fault point
    /// `journal-append`); the caller decides whether to keep the
    /// journal.
    pub fn append(&mut self, key: &CacheKey, entry: &Entry) -> io::Result<()> {
        if let Some(e) = faults::io_error("journal-append") {
            return Err(e);
        }
        let payload = encode_record(key, entry);
        let mut framed = Vec::with_capacity(12 + payload.len());
        put_u32(&mut framed, payload.len() as u32);
        put_u64(&mut framed, fnv1a64(&payload));
        framed.extend_from_slice(&payload);
        self.file.write_all(&framed)?;
        self.file.flush()
    }

    /// Rewrites the journal to exactly `entries` (the live cache
    /// contents, coldest first) via write-to-temporary, fsync, and
    /// atomic rename — the clean-shutdown compaction.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the rewrite; the old journal stays
    /// intact if anything fails before the rename.
    pub fn compact(&mut self, entries: &[(CacheKey, Entry)]) -> io::Result<()> {
        if let Some(e) = faults::io_error("journal-compact") {
            return Err(e);
        }
        let tmp = self.path.with_extension("rms.tmp");
        {
            let mut out = File::create(&tmp)?;
            let mut bytes = Vec::new();
            bytes.extend_from_slice(JOURNAL_MAGIC);
            for (key, entry) in entries {
                let payload = encode_record(key, entry);
                put_u32(&mut bytes, payload.len() as u32);
                put_u64(&mut bytes, fnv1a64(&payload));
                bytes.extend_from_slice(&payload);
            }
            out.write_all(&bytes)?;
            out.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // Reopen the append handle on the new file.
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rms-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample(i: u64) -> (CacheKey, Entry) {
        (
            CacheKey {
                structure: 0x1234_5678 + i,
                inputs: 3,
                outputs: 1,
                gates: 5,
                options: format!("alg=cut;effort={i}"),
            },
            Entry {
                report_json: format!("{{\"i\":{i}}}"),
                provenance: Provenance {
                    request_id: format!("r{i}"),
                    verified: "exhaustive".into(),
                    proof: true,
                    sat_conflicts: i,
                    sat_decisions: i * 2,
                    cached_at: i + 1,
                },
                hits: 0,
            },
        )
    }

    #[test]
    fn record_round_trip() {
        let (key, entry) = sample(7);
        let payload = encode_record(&key, &entry);
        let (k2, e2) = decode_record(&payload).expect("decodes");
        assert_eq!(key, k2);
        assert_eq!(entry.report_json, e2.report_json);
        assert_eq!(entry.provenance, e2.provenance);
        // Any truncation fails cleanly.
        for cut in 0..payload.len() {
            assert!(decode_record(&payload[..cut]).is_none(), "cut at {cut}");
        }
        // Trailing garbage fails too.
        let mut long = payload.clone();
        long.push(0);
        assert!(decode_record(&long).is_none());
    }

    #[test]
    fn append_then_replay_restores_entries() {
        let dir = tmp_dir("replay");
        let mut cache = ResultCache::new(1 << 20);
        let (mut journal, stats) = Journal::open(&dir, &mut cache).expect("open");
        assert_eq!(stats, ReplayStats::default());
        for i in 0..3 {
            let (k, e) = sample(i);
            journal.append(&k, &e).expect("append");
        }
        drop(journal);

        let mut warm = ResultCache::new(1 << 20);
        let (_, stats) = Journal::open(&dir, &mut warm).expect("reopen");
        assert_eq!(stats.replayed, 3);
        assert_eq!(stats.truncated_bytes, 0);
        let hit = warm.lookup(&sample(1).0).expect("replayed entry");
        assert_eq!(hit.report_json, "{\"i\":1}");
        assert_eq!(hit.provenance.request_id, "r1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = tmp_dir("torn");
        let mut cache = ResultCache::new(1 << 20);
        let (mut journal, _) = Journal::open(&dir, &mut cache).expect("open");
        for i in 0..2 {
            let (k, e) = sample(i);
            journal.append(&k, &e).expect("append");
        }
        let path = journal.path().to_path_buf();
        drop(journal);

        // Tear the file mid-record: chop 5 bytes off the tail.
        let len = std::fs::metadata(&path).expect("meta").len();
        let file = OpenOptions::new().write(true).open(&path).expect("open");
        file.set_len(len - 5).expect("truncate");
        drop(file);

        let mut warm = ResultCache::new(1 << 20);
        let (mut journal, stats) = Journal::open(&dir, &mut warm).expect("recover");
        assert_eq!(stats.replayed, 1, "the intact prefix survives");
        assert!(stats.truncated_bytes > 0, "the torn record is discarded");
        assert!(warm.lookup(&sample(0).0).is_some());
        assert!(warm.lookup(&sample(1).0).is_none());

        // The journal keeps working after recovery: appends land after
        // the truncated tail and replay cleanly.
        let (k, e) = sample(9);
        journal.append(&k, &e).expect("append after recovery");
        drop(journal);
        let mut again = ResultCache::new(1 << 20);
        let (_, stats) = Journal::open(&dir, &mut again).expect("reopen");
        assert_eq!(stats.replayed, 2);
        assert_eq!(stats.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_magic_discards_the_file() {
        let dir = tmp_dir("magic");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join(JOURNAL_FILE), b"not a journal at all").expect("write");
        let mut cache = ResultCache::new(1 << 20);
        let (_, stats) = Journal::open(&dir, &mut cache).expect("open");
        assert_eq!(stats.replayed, 0);
        assert!(stats.truncated_bytes > 0);
        assert_eq!(cache.stats().entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rewrites_to_live_contents() {
        let dir = tmp_dir("compact");
        let mut cache = ResultCache::new(1 << 20);
        let (mut journal, _) = Journal::open(&dir, &mut cache).expect("open");
        for i in 0..4 {
            let (k, e) = sample(i);
            journal.append(&k, &e).expect("append");
        }
        // Compact down to two entries (as if two were evicted).
        let live = vec![sample(1), sample(3)];
        journal.compact(&live).expect("compact");
        // Appends still work after compaction.
        let (k, e) = sample(8);
        journal.append(&k, &e).expect("append after compact");
        drop(journal);

        let mut warm = ResultCache::new(1 << 20);
        let (_, stats) = Journal::open(&dir, &mut warm).expect("reopen");
        assert_eq!(stats.replayed, 3);
        assert!(warm.lookup(&sample(1).0).is_some());
        assert!(warm.lookup(&sample(3).0).is_some());
        assert!(warm.lookup(&sample(8).0).is_some());
        assert!(warm.lookup(&sample(0).0).is_none(), "compacted away");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
