//! `rms-serve` — the persistent synthesis service behind `rms serve`.
//!
//! A long-lived process that accepts circuits over two transports —
//! newline-delimited JSON on stdio ([`run_stdio`]) and a minimal
//! std-only HTTP/1.1 listener ([`serve_http`]) — runs them through the
//! [`rms_flow::Pipeline`], and memoizes every result in a
//! **content-addressed, proof-carrying cache** ([`cache::ResultCache`]):
//!
//! - the key is the *structural hash* of the parsed netlist
//!   ([`rms_core::netlist_structural_hash`], invariant under node
//!   numbering, names, and source format) crossed with the canonicalized
//!   pipeline options, so re-submitting the same circuit in a different
//!   spelling still hits;
//! - every entry carries [`cache::Provenance`] — which request produced
//!   it, the verification tier, SAT conflict/decision counts, and a
//!   logical timestamp — so a hit is a *proved* answer, not just a fast
//!   one;
//! - memory is bounded by an LRU byte budget with deterministic
//!   (wall-clock-free) eviction order.
//!
//! Per-process state that the CLI rebuilds on every invocation — the
//! NPN-222 cut database and the parsed benchmark suites — is built once
//! behind `OnceLock`s and shared by every request. Batch requests fan
//! out over the same scoped-thread pool as `rms bench`, with responses
//! assembled sequentially in input order so the byte stream is identical
//! across worker counts.
//!
//! The server is hardened for long-lived deployment: the cache can be
//! journaled to disk ([`persist`], `--cache-dir`) and survives `kill
//! -9` with byte-identical warm hits, per-request deadlines cancel the
//! optimizer cooperatively at deterministic checkpoints
//! (`--deadline-ms`, [`rms_core::CancelToken`]), panics are isolated
//! per request behind `catch_unwind`, and the failure paths are
//! testable through a fault-injection registry ([`faults`],
//! `RMS_FAULTS`).
//!
//! The wire protocol is documented on the [`service`] module; the
//! `ARCHITECTURE.md` sections "The synthesis server" and "Robustness"
//! at the repository root cover the design in prose.

pub mod cache;
pub mod faults;
pub mod http;
pub mod json;
pub mod persist;
pub mod service;
pub mod stdio;

pub use cache::{CacheKey, CacheStats, Entry, Provenance, ResultCache};
pub use http::{serve_http, spawn_http, HttpServer};
pub use persist::{Journal, ReplayStats, JOURNAL_FILE, JOURNAL_MAGIC};
pub use service::{
    RequestOptions, ServeConfig, Service, DEFAULT_CACHE_BYTES, DEFAULT_MAX_BODY_BYTES,
    DEFAULT_MAX_CONNS, PROTOCOL,
};
pub use stdio::run_stdio;
