//! The stdio transport: newline-delimited JSON request/response over any
//! `BufRead`/`Write` pair (the `rms serve` default, and what the tests
//! drive with in-memory buffers).
//!
//! The reader is hardened against hostile input: lines are read with a
//! **bounded** `read_until` (the per-line cap is the service's
//! `max_body_bytes`), so a peer streaming gigabytes without a newline
//! cannot grow the buffer past the cap — the excess is drained without
//! being stored and answered with a structured error. Invalid UTF-8 on
//! a line likewise gets an in-band error response instead of tearing
//! down the transport.

use crate::service::{error_line, kind, Service};
use std::io::{self, BufRead, Read, Write};

/// Serves JSONL over the given reader/writer until EOF: one request
/// object per input line, one response object per output line (flushed
/// after each, so interactive pipes see responses immediately). Blank
/// lines are ignored. On EOF the service's journal is compacted
/// ([`Service::shutdown`]) — the stdio clean-shutdown path.
///
/// # Errors
///
/// Propagates I/O errors from the transport; protocol-level problems
/// (malformed JSON, oversized lines, invalid UTF-8, unknown options)
/// are answered in-band as `status:"error"` lines instead.
pub fn run_stdio<R: BufRead, W: Write>(
    service: &Service,
    mut input: R,
    output: &mut W,
) -> io::Result<()> {
    let max_line = service.max_body_bytes().max(1);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        let n = input
            .by_ref()
            .take(max_line as u64 + 1)
            .read_until(b'\n', &mut buf)?;
        if n == 0 {
            break; // EOF
        }
        let response = if buf.len() > max_line {
            // The line overran the cap: drop what we have, drain the
            // rest of the line without storing it, and answer in-band.
            let drained = drain_line(&mut input)?;
            error_line(
                "",
                kind::BAD_REQUEST,
                &format!(
                    "request line of at least {} bytes exceeds the {max_line}-byte limit",
                    buf.len() as u64 + drained
                ),
            )
        } else {
            match std::str::from_utf8(&buf) {
                Err(_) => error_line("", kind::BAD_REQUEST, "request line is not valid UTF-8"),
                Ok(line) => {
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    service.handle_line(trimmed)
                }
            }
        };
        writeln!(output, "{response}")?;
        output.flush()?;
    }
    service.shutdown();
    Ok(())
}

/// Consumes input up to and including the next newline (or EOF) without
/// buffering it; returns the number of bytes discarded.
fn drain_line<R: BufRead>(input: &mut R) -> io::Result<u64> {
    let mut drained = 0u64;
    loop {
        let available = input.fill_buf()?;
        if available.is_empty() {
            return Ok(drained); // EOF mid-line
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                input.consume(pos + 1);
                return Ok(drained + pos as u64 + 1);
            }
            None => {
                let len = available.len();
                input.consume(len);
                drained += len as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;

    #[test]
    fn stdio_round_trip_hits_cache_on_second_line() {
        let service = Service::new(ServeConfig::default());
        let input = b"\n{\"id\":\"a\",\"bench\":\"rd53_f2\",\"effort\":2}\n\
                      {\"id\":\"b\",\"bench\":\"rd53_f2\",\"effort\":2}\n";
        let mut output = Vec::new();
        run_stdio(&service, &input[..], &mut output).expect("stdio transport");
        let text = String::from_utf8(output).expect("utf-8 responses");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one response per request line: {text}");
        assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
        assert!(lines[1].contains("\"cache\":\"hit\""), "{}", lines[1]);
    }

    #[test]
    fn malformed_line_gets_error_and_transport_continues() {
        let service = Service::new(ServeConfig::default());
        let input = b"this is not json\n{\"id\":\"ok\",\"op\":\"ping\"}\n";
        let mut output = Vec::new();
        run_stdio(&service, &input[..], &mut output).expect("stdio transport");
        let text = String::from_utf8(output).expect("utf-8 responses");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"status\":\"error\""), "{}", lines[0]);
        assert!(
            lines[0].contains("\"kind\":\"bad_request\""),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"op\":\"ping\""),
            "transport survived: {}",
            lines[1]
        );
    }

    #[test]
    fn oversized_line_is_rejected_with_bounded_memory() {
        let service = Service::new(ServeConfig {
            max_body_bytes: 64,
            ..ServeConfig::default()
        });
        // A 1 KiB line against a 64-byte cap, followed by a good request.
        let mut input = vec![b'x'; 1024];
        input.push(b'\n');
        input.extend_from_slice(b"{\"id\":\"after\",\"op\":\"ping\"}\n");
        let mut output = Vec::new();
        run_stdio(&service, &input[..], &mut output).expect("stdio transport");
        let text = String::from_utf8(output).expect("utf-8 responses");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"status\":\"error\""), "{}", lines[0]);
        assert!(
            lines[0].contains("exceeds the 64-byte limit"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"op\":\"ping\""),
            "transport survived: {}",
            lines[1]
        );
    }

    #[test]
    fn invalid_utf8_line_is_answered_in_band() {
        let service = Service::new(ServeConfig::default());
        let input = b"\xff\xfe garbage \xff\n{\"id\":\"after\",\"op\":\"ping\"}\n";
        let mut output = Vec::new();
        run_stdio(&service, &input[..], &mut output).expect("stdio transport");
        let text = String::from_utf8(output).expect("utf-8 responses");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("not valid UTF-8"), "{}", lines[0]);
        assert!(lines[1].contains("\"op\":\"ping\""), "{}", lines[1]);
    }

    #[test]
    fn oversized_line_without_newline_at_eof_is_handled() {
        let service = Service::new(ServeConfig {
            max_body_bytes: 64,
            ..ServeConfig::default()
        });
        let input = vec![b'y'; 300]; // no trailing newline, over the cap
        let mut output = Vec::new();
        run_stdio(&service, &input[..], &mut output).expect("stdio transport");
        let text = String::from_utf8(output).expect("utf-8 responses");
        assert!(text.contains("\"status\":\"error\""), "{text}");
    }
}
