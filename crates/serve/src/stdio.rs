//! The stdio transport: newline-delimited JSON request/response over any
//! `BufRead`/`Write` pair (the `rms serve` default, and what the tests
//! drive with in-memory buffers).

use crate::service::Service;
use std::io::{self, BufRead, Write};

/// Serves JSONL over the given reader/writer until EOF: one request
/// object per input line, one response object per output line (flushed
/// after each, so interactive pipes see responses immediately). Blank
/// lines are ignored.
///
/// # Errors
///
/// Propagates I/O errors from the transport; protocol-level problems
/// (malformed JSON, unknown options) are answered in-band as
/// `status:"error"` lines instead.
pub fn run_stdio<R: BufRead, W: Write>(
    service: &Service,
    input: R,
    output: &mut W,
) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = service.handle_line(trimmed);
        writeln!(output, "{response}")?;
        output.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;

    #[test]
    fn stdio_round_trip_hits_cache_on_second_line() {
        let service = Service::new(ServeConfig::default());
        let input = b"\n{\"id\":\"a\",\"bench\":\"rd53_f2\",\"effort\":2}\n\
                      {\"id\":\"b\",\"bench\":\"rd53_f2\",\"effort\":2}\n";
        let mut output = Vec::new();
        run_stdio(&service, &input[..], &mut output).expect("stdio transport");
        let text = String::from_utf8(output).expect("utf-8 responses");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one response per request line: {text}");
        assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
        assert!(lines[1].contains("\"cache\":\"hit\""), "{}", lines[1]);
    }
}
