//! The content-addressed, proof-carrying result cache.
//!
//! Every synthesis result the server computes is memoized under a
//! [`CacheKey`]: the **structural hash** of the parsed netlist
//! ([`rms_core::netlist_structural_hash`] — invariant under node
//! numbering, names, and source format) crossed with the **canonical
//! option string** (the normalized pipeline configuration, see
//! `service::RequestOptions::canonical`). Two requests that parse to the
//! same DAG and ask for the same flow therefore share one entry, no
//! matter how their circuits were spelled.
//!
//! Entries carry the full rendered JSON report *plus* a [`Provenance`]
//! record — which request first produced the result, how it was verified
//! (tier label, SAT conflict/decision counts), and a logical cache
//! timestamp — so a cache hit is never a bare answer: clients can always
//! see that the bytes they received were proved once, and when.
//!
//! Memory is bounded by an **LRU byte budget**: each entry is charged its
//! report + provenance size, and inserts evict least-recently-used
//! entries until the total fits. Recency is tracked with a logical tick
//! (a `BTreeMap` recency index keyed by tick), so eviction order is
//! deterministic given the request order — wall clocks never enter.

use rms_core::hash::FxHashMap;
use std::collections::BTreeMap;

/// The content address of one synthesis result.
///
/// The structural hash does the heavy lifting; input/output/gate counts
/// ride along as a cheap guard against 64-bit collisions between
/// obviously different circuits, and the canonical option string keeps
/// distinct flows (algorithm, engine, effort, …) apart.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`rms_core::netlist_structural_hash`] of the parsed circuit.
    pub structure: u64,
    /// Primary input count of the circuit.
    pub inputs: u32,
    /// Primary output count of the circuit.
    pub outputs: u32,
    /// Gate count of the circuit.
    pub gates: u32,
    /// Canonical option string (stable token spelling, fixed field
    /// order), e.g. `alg=cut;engine=incremental;effort=40;…`.
    pub options: String,
}

impl CacheKey {
    /// Bytes this key charges against the budget.
    fn bytes(&self) -> usize {
        self.options.len() + std::mem::size_of::<CacheKey>()
    }
}

/// Where a cached result came from and how it was verified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// `id` of the request whose run produced the entry.
    pub request_id: String,
    /// Verification tier label of that run (e.g. `exhaustive`,
    /// `sat-proved (…)`).
    pub verified: String,
    /// Whether that run's verification was a full-input-space guarantee.
    pub proof: bool,
    /// SAT conflicts spent proving the result (0 for exhaustive runs).
    pub sat_conflicts: u64,
    /// SAT decisions spent proving the result.
    pub sat_decisions: u64,
    /// Logical insertion timestamp: the cache tick at which the entry
    /// was stored (monotonic per cache, deterministic given the request
    /// order).
    pub cached_at: u64,
}

/// One memoized synthesis result.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The full `rms_flow::render_json` report of the cold run, byte for
    /// byte.
    pub report_json: String,
    /// Proof-carrying origin record.
    pub provenance: Provenance,
    /// Number of cache hits served from this entry so far.
    pub hits: u64,
}

impl Entry {
    fn bytes(&self) -> usize {
        self.report_json.len()
            + self.provenance.request_id.len()
            + self.provenance.verified.len()
            + std::mem::size_of::<Entry>()
    }
}

/// Aggregate counters, served by `GET /stats` and the `stats` op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently charged.
    pub bytes: usize,
    /// Byte budget.
    pub budget: usize,
    /// Lifetime hit count.
    pub hits: u64,
    /// Lifetime miss count.
    pub misses: u64,
    /// Lifetime eviction count.
    pub evictions: u64,
}

struct Slot {
    entry: Entry,
    last_used: u64,
    bytes: usize,
}

/// The LRU result cache. Not internally synchronized — the service wraps
/// it in a `Mutex` (lookups are string-compare cheap; pipeline runs
/// happen outside the lock).
pub struct ResultCache {
    budget: usize,
    bytes: usize,
    tick: u64,
    map: FxHashMap<CacheKey, Slot>,
    /// tick → key, the LRU order (first entry = coldest).
    recency: BTreeMap<u64, CacheKey>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// An empty cache with the given byte budget. A budget of 0 disables
    /// memoization (every insert is immediately evicted).
    pub fn new(budget: usize) -> Self {
        ResultCache {
            budget,
            bytes: 0,
            tick: 0,
            map: FxHashMap::default(),
            recency: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up `key`, bumping recency and the hit counters on success
    /// and the miss counter on failure. Returns a clone (entries are
    /// small next to the pipeline work a miss implies, and the lock must
    /// not be held while the caller formats a response).
    pub fn lookup(&mut self, key: &CacheKey) -> Option<Entry> {
        let tick = self.next_tick();
        match self.map.get_mut(key) {
            Some(slot) => {
                self.recency.remove(&slot.last_used);
                slot.last_used = tick;
                self.recency.insert(tick, key.clone());
                slot.entry.hits += 1;
                self.hits += 1;
                Some(slot.entry.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching recency or counters (used by the batch
    /// planner to classify items before any work runs).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.map.contains_key(key)
    }

    /// The tick the next insert will stamp as [`Provenance::cached_at`]
    /// (callers build the provenance record before inserting).
    pub fn next_insert_tick(&self) -> u64 {
        self.tick + 1
    }

    /// Inserts an entry, evicting LRU entries to fit the budget. If the
    /// key is already present (two racing misses computed the same
    /// deterministic result), the existing entry is kept — its hit
    /// statistics and provenance stay intact — and the candidate is
    /// dropped.
    pub fn insert(&mut self, key: CacheKey, entry: Entry) {
        if self.map.contains_key(&key) {
            return;
        }
        let tick = self.next_tick();
        let bytes = key.bytes() + entry.bytes();
        self.bytes += bytes;
        self.recency.insert(tick, key.clone());
        self.map.insert(
            key,
            Slot {
                entry,
                last_used: tick,
                bytes,
            },
        );
        while self.bytes > self.budget {
            let Some((&coldest, _)) = self.recency.iter().next() else {
                break;
            };
            let key = self.recency.remove(&coldest).expect("tick just seen");
            let slot = self.map.remove(&key).expect("recency and map agree");
            self.bytes -= slot.bytes;
            self.evictions += 1;
        }
    }

    /// A snapshot of the live contents in recency order (coldest
    /// first), used by journal compaction — replaying the snapshot in
    /// order through [`ResultCache::insert`] reproduces the LRU order.
    pub fn snapshot(&self) -> Vec<(CacheKey, Entry)> {
        self.recency
            .values()
            .map(|key| {
                let slot = self.map.get(key).expect("recency and map agree");
                (key.clone(), slot.entry.clone())
            })
            .collect()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.len(),
            bytes: self.bytes,
            budget: self.budget,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(structure: u64, options: &str) -> CacheKey {
        CacheKey {
            structure,
            inputs: 2,
            outputs: 1,
            gates: 3,
            options: options.to_string(),
        }
    }

    fn entry(report: &str, cached_at: u64) -> Entry {
        Entry {
            report_json: report.to_string(),
            provenance: Provenance {
                request_id: "r".into(),
                verified: "exhaustive".into(),
                proof: true,
                sat_conflicts: 0,
                sat_decisions: 0,
                cached_at,
            },
            hits: 0,
        }
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut c = ResultCache::new(1 << 20);
        let k = key(7, "alg=cut");
        assert!(c.lookup(&k).is_none());
        c.insert(k.clone(), entry("{}", c.next_insert_tick()));
        let hit = c.lookup(&k).expect("hit");
        assert_eq!(hit.report_json, "{}");
        assert_eq!(hit.hits, 1);
        assert_eq!(c.lookup(&k).unwrap().hits, 2);
        let s = c.stats();
        assert_eq!((s.entries, s.hits, s.misses), (1, 2, 1));
        // Same structure, different options: distinct entry.
        assert!(c.lookup(&key(7, "alg=area")).is_none());
    }

    #[test]
    fn lru_eviction_respects_recency() {
        // Budget fits roughly two entries of this size.
        let probe = key(0, "o").bytes() + entry("x", 0).bytes();
        let mut c = ResultCache::new(probe * 2 + probe / 2);
        c.insert(key(1, "o"), entry("x", 0));
        c.insert(key(2, "o"), entry("x", 0));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.lookup(&key(1, "o")).is_some());
        c.insert(key(3, "o"), entry("x", 0));
        assert!(c.contains(&key(1, "o")), "recently used must survive");
        assert!(!c.contains(&key(2, "o")), "LRU entry must be evicted");
        assert!(c.contains(&key(3, "o")));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn zero_budget_disables_memoization() {
        let mut c = ResultCache::new(0);
        c.insert(key(1, "o"), entry("x", 0));
        assert_eq!(c.stats().entries, 0);
        assert!(c.lookup(&key(1, "o")).is_none());
    }

    #[test]
    fn double_insert_keeps_first_entry() {
        let mut c = ResultCache::new(1 << 20);
        let k = key(9, "o");
        c.insert(k.clone(), entry("first", 1));
        assert_eq!(c.lookup(&k).unwrap().hits, 1);
        c.insert(k.clone(), entry("second", 2));
        let e = c.lookup(&k).unwrap();
        assert_eq!(e.report_json, "first");
        assert_eq!(e.hits, 2, "hit statistics survive a duplicate insert");
        assert_eq!(c.stats().entries, 1);
    }
}
