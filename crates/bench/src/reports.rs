//! Renders the paper's tables and figure reproductions as text reports.
//!
//! Each function returns a complete printable report; the `repro_*`
//! binaries and the `rms bench` subcommand are one-line wrappers around
//! them. Sweeps accept a `jobs` worker count (`0` = all cores, `1` =
//! sequential) and produce identical text for any value — only the
//! wall-clock time changes.

use crate::format::{percent_change, ratio, rs, TextTable};
use crate::runner::{self, Measured};
use rms_bdd::BddSynthOptions;
use rms_core::cost::Realization;
use rms_core::opt::{self, Algorithm, OptOptions};
use rms_core::rewrite::{inverter_propagation, InverterCases};
use rms_core::Mig;
use rms_logic::bench_suite;
use rms_logic::paper_data;
use rms_rram::device::{ImpGate, Rram};
use rms_rram::gates::{imp_majority_gate, maj_majority_gate};
use rms_rram::machine::Machine;
use std::fmt::Write as _;
use std::time::Instant;

/// Regenerates Table II: R and S for the 25 large benchmarks under all
/// six optimizer/realization configurations, with the paper's Σ row.
pub fn table2_report(opts: &OptOptions, jobs: usize) -> String {
    let t0 = Instant::now();
    let rows = runner::run_table2_jobs(opts, jobs);
    let elapsed = t0.elapsed();

    let mut table = TextTable::new(&[
        "benchmark",
        "in",
        "Area-IMP",
        "Depth-IMP",
        "RRAM-IMP",
        "RRAM-MAJ",
        "Step-IMP",
        "Step-MAJ",
    ]);
    for r in &rows {
        table.row(vec![
            r.info.name.to_string(),
            r.info.inputs.to_string(),
            rs(r.area_imp),
            rs(r.depth_imp),
            rs(r.rram_imp),
            rs(r.rram_maj),
            rs(r.step_imp),
            rs(r.step_maj),
        ]);
    }
    let sums: Vec<Measured> = (0..6)
        .map(|i| runner::sum_by(&rows, |r| r.columns()[i]))
        .collect();
    table.row(vec![
        "SUM (measured)".into(),
        rows.iter()
            .map(|r| r.info.inputs)
            .sum::<usize>()
            .to_string(),
        rs(sums[0]),
        rs(sums[1]),
        rs(sums[2]),
        rs(sums[3]),
        rs(sums[4]),
        rs(sums[5]),
    ]);
    let paper = runner::paper_table2_sums();
    table.row(vec![
        "SUM (paper)".into(),
        paper_data::TABLE2_SUM.inputs.to_string(),
        rs(paper[0]),
        rs(paper[1]),
        rs(paper[2]),
        rs(paper[3]),
        rs(paper[4]),
        rs(paper[5]),
    ]);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table II reproduction (R/S per configuration, effort = {})",
        opts.effort
    );
    let _ = writeln!(
        out,
        "Substrate circuits are the embedded suite (see ARCHITECTURE.md); compare shapes, not absolutes.\n"
    );
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\noptimization run-time for the whole suite: {elapsed:.2?} (paper: < 3 s)"
    );
    out
}

/// The engine performance profile behind `rms bench --profile`: rebuild
/// baseline vs the incremental in-place engine over the selected suite,
/// with the differential (bit-identity) and verification columns.
pub fn profile_report(report: &crate::timing::ProfileReport) -> String {
    let mut table = TextTable::new(&[
        "benchmark",
        "in",
        "gates",
        "Δgates",
        "rebuild",
        "incremental",
        "speedup",
        &format!("jobs={}", runner::PROFILE_JOBS),
        "phases e/v/c/g",
        "cycles",
        "rewrites",
        "identical",
        "verified",
    ]);
    for r in &report.rows {
        table.row(vec![
            r.name.to_string(),
            r.inputs.to_string(),
            format!("{} -> {}", r.initial_gates, r.gates),
            format!("{:+}", r.gates_delta),
            format!("{:.2}ms", r.baseline_ms),
            format!("{:.2}ms", r.incremental_ms),
            format!("{:.2}x", r.speedup()),
            format!(
                "{:.2}ms{}",
                r.par_ms,
                if r.par_identical { "" } else { " (DIFFERS)" }
            ),
            format!(
                "{:.0}/{:.0}/{:.0}/{:.0}ms",
                r.t_cut_enum_ms, r.t_eval_ms, r.t_commit_ms, r.t_gc_ms
            ),
            r.cycles.to_string(),
            r.rewrites.to_string(),
            if r.identical { "yes" } else { "NO" }.to_string(),
            r.verified.clone(),
        ]);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Cut-engine performance profile ({} suite, effort {}, median of {} runs; baseline = pre-incremental rebuild engine)",
        report.suite, report.effort, report.iters
    );
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\ntotal: rebuild {:.2}ms | incremental {:.2}ms | speedup {:.2}x",
        report.total_baseline_ms(),
        report.total_incremental_ms(),
        report.speedup()
    );
    let _ = writeln!(
        out,
        "differential: {}/{} rows bit-identical (incremental vs from-scratch); \
         parallel: {}/{} rows bit-identical at jobs={}; --jobs sweep consistent: {}",
        report.rows.iter().filter(|r| r.identical).count(),
        report.rows.len(),
        report.rows.iter().filter(|r| r.par_identical).count(),
        report.rows.len(),
        runner::PROFILE_JOBS,
        report.jobs_consistent
    );
    let _ = writeln!(
        out,
        "verified rows: {}/{}; quality regressions vs baseline: {}",
        report.rows.iter().filter(|r| r.is_verified()).count(),
        report.rows.len(),
        report.rows.iter().filter(|r| r.quality_regressed()).count()
    );
    out
}

/// The algorithm-comparison sweep: Algs. 1–4 vs. the cut-rewriting
/// engine (node counts and MAJ-realization R/S over the small suite).
pub fn algs_report(opts: &OptOptions, jobs: usize) -> String {
    let t0 = Instant::now();
    let rows = runner::run_algs_jobs(opts, jobs);
    let elapsed = t0.elapsed();

    let mut table = TextTable::new(&[
        "benchmark",
        "initial",
        "Area",
        "Depth",
        "RRAM",
        "Step",
        "Cut",
        "Cut+RRAM",
        "rewrites",
        "verified",
    ]);
    let mut cut_wins = 0usize;
    let mut verified_rows = 0usize;
    let mut gate_sums = [0u64; 6];
    let mut rs_sums = [0u64; 6];
    for r in &rows {
        table.row(vec![
            r.info.name.to_string(),
            r.initial_gates.to_string(),
            format!("{} ({})", r.gates[0], rs(r.cost[0])),
            format!("{} ({})", r.gates[1], rs(r.cost[1])),
            format!("{} ({})", r.gates[2], rs(r.cost[2])),
            format!("{} ({})", r.gates[3], rs(r.cost[3])),
            format!("{} ({})", r.gates[4], rs(r.cost[4])),
            format!("{} ({})", r.gates[5], rs(r.cost[5])),
            r.cut_rewrites.to_string(),
            r.verified.clone(),
        ]);
        if r.gates[4] <= r.gates[0] {
            cut_wins += 1;
        }
        // Only full-input-space guarantees count as verified; a
        // sampled fallback (SAT budget exceeded) is visible in the
        // column but not claimed as a proof.
        if r.verified.starts_with("exhaustive") || r.verified.starts_with("SAT") {
            verified_rows += 1;
        }
        for i in 0..6 {
            gate_sums[i] += r.gates[i];
            rs_sums[i] += r.cost[i].rrams * r.cost[i].steps;
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Algorithm comparison (gates and MAJ-realization R/S, effort = {})",
        opts.effort
    );
    let _ = writeln!(
        out,
        "Columns: Algs. 1-4 of the paper, then the cut-rewriting engine (Alg. 5) and the cut+RRAM hybrid.\n"
    );
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\ncut <= area on gates: {cut_wins}/{} benchmarks",
        rows.len()
    );
    let _ = writeln!(
        out,
        "machine-verified rows: {verified_rows}/{} (exhaustive <= 14 inputs, SAT proof above)",
        rows.len()
    );
    let _ = writeln!(
        out,
        "total gates: area {} | cut {} ({} vs area)",
        gate_sums[0],
        gate_sums[4],
        percent_change(gate_sums[4], gate_sums[0])
    );
    let _ = writeln!(
        out,
        "sum of R*S products: rram {} | cut+rram {} ({} vs rram)",
        rs_sums[2],
        rs_sums[5],
        percent_change(rs_sums[5], rs_sums[2])
    );
    let _ = writeln!(out, "sweep run-time: {elapsed:.2?}");
    out
}

/// Regenerates Table III: the MIG flow vs. the BDD-based \[11\] and the
/// AIG-based \[12\] RRAM synthesis baselines.
pub fn table3_report(opts: &OptOptions, synth: &BddSynthOptions, jobs: usize) -> String {
    let mut out = String::new();

    // ---- Left half: BDD [11] ---------------------------------------------
    let rows = runner::run_table3_bdd_jobs(opts, synth, jobs);
    let mut table = TextTable::new(&[
        "benchmark",
        "in",
        "BDD R/S",
        "MIG-IMP R/S",
        "MIG-MAJ R/S",
        "paper BDD R/S",
    ]);
    for r in &rows {
        let paper = paper_data::table3_bdd_row(r.info.name)
            .map(|p| format!("{}/{}", p.bdd.rrams, p.bdd.steps))
            .unwrap_or_else(|| "-".into());
        table.row(vec![
            r.info.name.to_string(),
            r.info.inputs.to_string(),
            rs(r.bdd),
            rs(r.mig_imp),
            rs(r.mig_maj),
            paper,
        ]);
    }
    let bdd_sum = runner::sum_by(&rows, |r| r.bdd);
    let imp_sum = runner::sum_by(&rows, |r| r.mig_imp);
    let maj_sum = runner::sum_by(&rows, |r| r.mig_maj);
    table.row(vec![
        "SUM (measured)".into(),
        "".into(),
        rs(bdd_sum),
        rs(imp_sum),
        rs(maj_sum),
        "".into(),
    ]);
    let p = paper_data::TABLE3_BDD_SUM;
    table.row(vec![
        "SUM (paper)".into(),
        "".into(),
        format!("{}/{}", p.bdd.rrams, p.bdd.steps),
        format!("{}/{}", p.mig_imp.rrams, p.mig_imp.steps),
        format!("{}/{}", p.mig_maj.rrams, p.mig_maj.steps),
        "".into(),
    ]);
    let _ = writeln!(
        out,
        "Table III (left): MIG multi-objective flow vs. BDD-based synthesis [11]"
    );
    let _ = writeln!(
        out,
        "BDD schedule: level-parallel muxes, row capacity {} (see rms-bdd docs)\n",
        synth.row_capacity
    );
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\nstep ratio BDD / MIG-MAJ: measured {} (paper {}), BDD / MIG-IMP: measured {} (paper {})",
        ratio(bdd_sum.steps, maj_sum.steps),
        ratio(p.bdd.steps, p.mig_maj.steps),
        ratio(bdd_sum.steps, imp_sum.steps),
        ratio(p.bdd.steps, p.mig_imp.steps),
    );
    for name in ["apex6", "x3"] {
        if let (Some(m), Some(pr)) = (
            rows.iter().find(|r| r.info.name == name),
            paper_data::table3_bdd_row(name),
        ) {
            let _ = writeln!(
                out,
                "largest benchmark {name}: BDD/MIG-MAJ step ratio measured {} (paper {})",
                ratio(m.bdd.steps, m.mig_maj.steps),
                ratio(pr.bdd.steps, pr.mig_maj.steps)
            );
        }
    }

    // ---- Right half: AIG [12] --------------------------------------------
    let rows = runner::run_table3_aig_jobs(opts, jobs);
    let mut table = TextTable::new(&[
        "benchmark",
        "in",
        "AIG S",
        "MIG-IMP R/S",
        "MIG-MAJ R/S",
        "paper AIG S",
    ]);
    for r in &rows {
        let paper = paper_data::table3_aig_row(r.info.name)
            .map(|p| p.aig_steps.to_string())
            .unwrap_or_else(|| "-".into());
        table.row(vec![
            r.info.name.to_string(),
            r.info.inputs.to_string(),
            r.aig_steps.to_string(),
            rs(r.mig_imp),
            rs(r.mig_maj),
            paper,
        ]);
    }
    let aig_steps: u64 = rows.iter().map(|r| r.aig_steps).sum();
    let imp_sum = runner::sum_by(&rows, |r| r.mig_imp);
    let maj_sum = runner::sum_by(&rows, |r| r.mig_maj);
    table.row(vec![
        "SUM (measured)".into(),
        "".into(),
        aig_steps.to_string(),
        rs(imp_sum),
        rs(maj_sum),
        "".into(),
    ]);
    let p = paper_data::TABLE3_AIG_SUM;
    table.row(vec![
        "SUM (paper)".into(),
        "".into(),
        p.aig_steps.to_string(),
        format!("{}/{}", p.mig_imp.rrams, p.mig_imp.steps),
        format!("{}/{}", p.mig_maj.rrams, p.mig_maj.steps),
        "".into(),
    ]);
    let _ = writeln!(
        out,
        "\nTable III (right): MIG multi-objective flow vs. AIG-based synthesis [12]"
    );
    let _ = writeln!(
        out,
        "AIG schedule: node-serial implication sequences (see rms-aig docs)\n"
    );
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\nstep ratio AIG / MIG-MAJ: measured {} (paper {}), AIG / MIG-IMP: measured {} (paper {})",
        ratio(aig_steps, maj_sum.steps),
        ratio(p.aig_steps, p.mig_maj.steps),
        ratio(aig_steps, imp_sum.steps),
        ratio(p.aig_steps, p.mig_imp.steps),
    );
    out
}

/// Prints the paper's headline claims next to the measured equivalents.
pub fn summary_report(opts: &OptOptions, jobs: usize) -> String {
    let t0 = Instant::now();
    let t2 = runner::run_table2_jobs(opts, jobs);
    let runtime = t0.elapsed();
    let bdd = runner::run_table3_bdd_jobs(opts, &BddSynthOptions::default(), jobs);
    let aig = runner::run_table3_aig_jobs(opts, jobs);

    let sums: Vec<Measured> = (0..6)
        .map(|i| runner::sum_by(&t2, |r| r.columns()[i]))
        .collect();
    let p = runner::paper_table2_sums();

    let mut table = TextTable::new(&["claim", "paper", "measured"]);

    // Step reduction of the multi-objective algorithm vs. Alg. 1 (Sec. IV-B).
    table.row(vec![
        "RRAM-IMP steps vs Area-IMP".into(),
        "-35.4%".into(),
        percent_change(sums[2].steps, sums[0].steps),
    ]);
    // Step optimization vs. conventional depth optimization.
    table.row(vec![
        "Step-IMP steps vs Depth-IMP".into(),
        "-30.4%".into(),
        percent_change(sums[4].steps, sums[1].steps),
    ]);
    // Multi-objective trade-off against step optimization (MAJ).
    table.row(vec![
        "RRAM-MAJ devices vs Step-MAJ".into(),
        "-19.8%".into(),
        percent_change(sums[3].rrams, sums[5].rrams),
    ]);
    table.row(vec![
        "RRAM-MAJ steps vs Step-MAJ".into(),
        "+21.1%".into(),
        percent_change(sums[3].steps, sums[5].steps),
    ]);
    // MAJ vs IMP realization on the same algorithm.
    table.row(vec![
        "Step-IMP / Step-MAJ step ratio".into(),
        ratio(p[4].steps, p[5].steps),
        ratio(sums[4].steps, sums[5].steps),
    ]);

    // BDD comparison.
    let bdd_sum = runner::sum_by(&bdd, |r| r.bdd);
    let maj_sum = runner::sum_by(&bdd, |r| r.mig_maj);
    let imp_sum = runner::sum_by(&bdd, |r| r.mig_imp);
    let pb = paper_data::TABLE3_BDD_SUM;
    table.row(vec![
        "BDD / MIG-MAJ step ratio".into(),
        ratio(pb.bdd.steps, pb.mig_maj.steps),
        ratio(bdd_sum.steps, maj_sum.steps),
    ]);
    table.row(vec![
        "BDD / MIG-IMP step ratio".into(),
        ratio(pb.bdd.steps, pb.mig_imp.steps),
        ratio(bdd_sum.steps, imp_sum.steps),
    ]);
    table.row(vec![
        "MIG-MAJ devices vs BDD".into(),
        "+57.4%".into(),
        percent_change(maj_sum.rrams, bdd_sum.rrams),
    ]);
    for name in ["apex6", "x3"] {
        let m = bdd.iter().find(|r| r.info.name == name).expect("row");
        let pr = paper_data::table3_bdd_row(name).expect("row");
        table.row(vec![
            format!("{name}: BDD / MIG-MAJ step ratio"),
            ratio(pr.bdd.steps, pr.mig_maj.steps),
            ratio(m.bdd.steps, m.mig_maj.steps),
        ]);
    }

    // AIG comparison.
    let aig_steps: u64 = aig.iter().map(|r| r.aig_steps).sum();
    let maj_sum = runner::sum_by(&aig, |r| r.mig_maj);
    let imp_sum = runner::sum_by(&aig, |r| r.mig_imp);
    let pa = paper_data::TABLE3_AIG_SUM;
    table.row(vec![
        "AIG / MIG-MAJ step ratio".into(),
        ratio(pa.aig_steps, pa.mig_maj.steps),
        ratio(aig_steps, maj_sum.steps),
    ]);
    table.row(vec![
        "AIG / MIG-IMP step ratio".into(),
        ratio(pa.aig_steps, pa.mig_imp.steps),
        ratio(aig_steps, imp_sum.steps),
    ]);

    table.row(vec![
        "whole-suite optimization run-time".into(),
        "< 3 s".into(),
        format!("{runtime:.2?}"),
    ]);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Headline claims, paper vs. measured (substitute suite; compare signs/magnitudes)\n"
    );
    out.push_str(&table.render());
    out
}

/// Measures the Sec. IV-A run-time claim ("< 3 s for the whole benchmark
/// set") per algorithm, sequentially — the claim is about single-thread
/// algorithm speed, so no pool is used.
pub fn runtime_report(opts: &OptOptions) -> String {
    let migs: Vec<Mig> = bench_suite::LARGE_SUITE
        .iter()
        .map(|info| Mig::from_netlist(&bench_suite::build_info(info)))
        .collect();

    let mut table = TextTable::new(&["algorithm", "whole-suite run-time", "paper bound"]);
    for alg in Algorithm::ALL {
        let t0 = Instant::now();
        for mig in &migs {
            let _ = alg.run(mig, Realization::Maj, opts);
        }
        table.row(vec![
            alg.to_string(),
            format!("{:.2?}", t0.elapsed()),
            "< 3 s".into(),
        ]);
    }
    // The proposed algorithms also run per-realization; measure Alg. 3
    // under IMP scoring as well.
    for (name, real) in [("RRAM costs (IMP)", Realization::Imp)] {
        let t0 = Instant::now();
        for mig in &migs {
            let _ = opt::optimize_rram(mig, real, opts);
        }
        table.row(vec![
            name.into(),
            format!("{:.2?}", t0.elapsed()),
            "< 3 s".into(),
        ]);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Run-time of each algorithm over the whole {}-benchmark suite (effort = {})\n",
        bench_suite::LARGE_SUITE.len(),
        opts.effort
    );
    out.push_str(&table.render());
    out
}

/// Regenerates the paper's figures on the RRAM machine: the IMP truth
/// table (Fig. 1), the intrinsic-majority next-state table (Fig. 2), both
/// majority-gate programs (Fig. 3 / Sec. III-A2), and the Fig. 4
/// inverter-propagation example.
pub fn figures_report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Fig. 1(b): IMP truth table (q' = p IMP q) ==");
    let _ = writeln!(out, "p q | q'");
    for p in [false, true] {
        for q in [false, true] {
            let mut g = ImpGate::new(p, q);
            g.imply();
            let _ = writeln!(out, "{} {} | {}", p as u8, q as u8, g.q() as u8);
        }
    }

    let _ = writeln!(out, "\n== Fig. 2: intrinsic majority R' = M(P, !Q, R) ==");
    let _ = writeln!(out, "P Q R | R'");
    for m in 0..8u32 {
        let (p, q, r0) = (m & 4 != 0, m & 2 != 0, m & 1 != 0);
        let mut r = Rram::new(r0);
        r.apply(p, q);
        let _ = writeln!(
            out,
            "{} {} {} | {}",
            p as u8,
            q as u8,
            r0 as u8,
            r.state() as u8
        );
    }

    let _ = writeln!(
        out,
        "\n== Fig. 3: IMP-based majority gate (6 RRAMs, 10 steps) =="
    );
    let prog = imp_majority_gate();
    out.push_str(&prog.listing());
    let tts = Machine::truth_tables(&prog).expect("valid program");
    let _ = writeln!(out, "computed function: {} (majority of 3 = e8)", tts[0]);

    let _ = writeln!(
        out,
        "\n== Sec. III-A2: MAJ-based majority gate (4 RRAMs, 3 steps) =="
    );
    let prog = maj_majority_gate();
    out.push_str(&prog.listing());
    let tts = Machine::truth_tables(&prog).expect("valid program");
    let _ = writeln!(out, "computed function: {} (majority of 3 = e8)", tts[0]);

    let _ = writeln!(
        out,
        "\n== Fig. 4: inverter propagation moving a complemented level =="
    );
    let mut mig = Mig::with_inputs("fig4", 6);
    let (x, u, y, z, v, w) = (
        mig.input(0),
        mig.input(1),
        mig.input(2),
        mig.input(3),
        mig.input(4),
        mig.input(5),
    );
    let a = mig.maj(u, y, z);
    let b = mig.maj(z, v, w);
    let top = mig.maj(x, !a, !b);
    // The output edge is complemented, so the level above is already
    // tainted: moving the pair of complements up releases the output level
    // and removes one complemented edge from the critical level — exactly
    // the effect Fig. 4 illustrates.
    mig.add_output("f", !top);
    let before = rms_core::cost::LevelProfile::of(&mig);
    let opt = inverter_propagation(&mig, InverterCases::ALL, true);
    let after = rms_core::cost::LevelProfile::of(&opt);
    let _ = writeln!(
        out,
        "before: complemented edges per level {:?} (L = {})",
        before.compl_per_level, before.levels_with_compl
    );
    let _ = writeln!(
        out,
        "after:  complemented edges per level {:?} (L = {})",
        after.compl_per_level, after.levels_with_compl
    );
    let same = mig.truth_tables() == opt.truth_tables();
    let _ = writeln!(out, "functions equivalent: {same}");
    out
}

/// Renders the sweep+resub-vs-cut comparison produced by
/// [`runner::run_sweep`]: per-benchmark gate counts, fraig/resub
/// activity, and the acceptance summary (never worse than the cut
/// baseline, every row machine-verified, bit-identical across engines
/// and worker counts).
pub fn sweep_report(report: &runner::SweepReport) -> String {
    let mut table = TextTable::new(&[
        "benchmark",
        "initial",
        "cut",
        "sweep+resub",
        "merges",
        "resubs",
        "conflicts",
        "engines",
        "verified",
    ]);
    let mut never_worse = 0usize;
    let mut strict_wins = 0usize;
    let mut verified_rows = 0usize;
    let mut cut_sum = 0u64;
    let mut sweep_sum = 0u64;
    for r in &report.rows {
        table.row(vec![
            r.info.name.to_string(),
            r.initial_gates.to_string(),
            r.cut_gates.to_string(),
            r.sweep_gates.to_string(),
            r.fraig_merges.to_string(),
            r.resubs.to_string(),
            r.sat_conflicts.to_string(),
            if r.engines_identical {
                "identical".to_string()
            } else {
                "DIFFER".to_string()
            },
            r.verified.clone(),
        ]);
        if r.sweep_gates <= r.cut_gates {
            never_worse += 1;
        }
        if r.sweep_gates < r.cut_gates {
            strict_wins += 1;
        }
        if r.verified.starts_with("exhaustive") || r.verified.starts_with("SAT") {
            verified_rows += 1;
        }
        cut_sum += r.cut_gates;
        sweep_sum += r.sweep_gates;
    }

    let n = report.rows.len();
    let mut out = String::new();
    let _ = writeln!(out, "SAT sweep + resubstitution vs the cut baseline");
    let _ = writeln!(
        out,
        "Both columns start from the same cut-script result; sweep+resub layers fraig and resub passes on top.\n"
    );
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\nsweep+resub <= cut on gates: {never_worse}/{n} benchmarks"
    );
    let _ = writeln!(
        out,
        "strictly better than cut: {strict_wins}/{n} benchmarks"
    );
    let _ = writeln!(
        out,
        "machine-verified rows: {verified_rows}/{n} (exhaustive <= 14 inputs, SAT proof above)"
    );
    let _ = writeln!(
        out,
        "total gates: cut {cut_sum} | sweep+resub {sweep_sum} ({} vs cut)",
        percent_change(sweep_sum, cut_sum)
    );
    let _ = writeln!(
        out,
        "engines bit-identical: {}",
        if report.rows.iter().all(|r| r.engines_identical) {
            "yes (incremental == from-scratch on every benchmark)"
        } else {
            "NO"
        }
    );
    let _ = writeln!(
        out,
        "worker counts bit-identical: {}",
        if report.jobs_identical { "yes" } else { "NO" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_report_is_self_checking() {
        let text = figures_report();
        assert!(text.contains("majority of 3 = e8"));
        assert!(text.contains("functions equivalent: true"));
    }

    #[test]
    fn runtime_report_lists_all_algorithms() {
        let text = runtime_report(&OptOptions::with_effort(1));
        for alg in Algorithm::ALL {
            assert!(text.contains(&alg.to_string()), "{alg} missing:\n{text}");
        }
    }

    #[test]
    fn algs_report_summarizes_the_sweep() {
        let text = algs_report(&OptOptions::with_effort(2), 0);
        assert!(text.contains("Cut+RRAM"), "{text}");
        assert!(text.contains("cut <= area on gates:"), "{text}");
        assert!(text.contains("/25 benchmarks"), "{text}");
    }
}
