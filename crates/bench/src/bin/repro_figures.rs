//! Regenerates the paper's figures on the RRAM machine:
//!
//! - Fig. 1: the IMP operation truth table,
//! - Fig. 2: the intrinsic majority next-state tables,
//! - Fig. 3: the ten-step IMP-based majority gate (with a step trace),
//! - Sec. III-A2: the three-step MAJ-based majority gate,
//! - Fig. 4: the Ω.I R→L inverter-propagation example.
//!
//! Run with `cargo run --release -p rms-bench --bin repro_figures`.

use rms_core::cost::LevelProfile;
use rms_core::rewrite::{inverter_propagation, InverterCases};
use rms_core::Mig;
use rms_rram::device::{ImpGate, Rram};
use rms_rram::gates::{imp_majority_gate, maj_majority_gate};
use rms_rram::machine::Machine;

fn main() {
    println!("== Fig. 1(b): IMP truth table (q' = p IMP q) ==");
    println!("p q | q'");
    for p in [false, true] {
        for q in [false, true] {
            let mut g = ImpGate::new(p, q);
            g.imply();
            println!("{} {} | {}", p as u8, q as u8, g.q() as u8);
        }
    }

    println!("\n== Fig. 2: intrinsic majority R' = M(P, !Q, R) ==");
    println!("P Q R | R'");
    for m in 0..8u32 {
        let (p, q, r0) = (m & 4 != 0, m & 2 != 0, m & 1 != 0);
        let mut r = Rram::new(r0);
        r.apply(p, q);
        println!("{} {} {} | {}", p as u8, q as u8, r0 as u8, r.state() as u8);
    }

    println!("\n== Fig. 3: IMP-based majority gate (6 RRAMs, 10 steps) ==");
    let prog = imp_majority_gate();
    print!("{}", prog.listing());
    let tts = Machine::truth_tables(&prog).expect("valid program");
    println!("computed function: {} (majority of 3 = e8)", tts[0]);

    println!("\n== Sec. III-A2: MAJ-based majority gate (4 RRAMs, 3 steps) ==");
    let prog = maj_majority_gate();
    print!("{}", prog.listing());
    let tts = Machine::truth_tables(&prog).expect("valid program");
    println!("computed function: {} (majority of 3 = e8)", tts[0]);

    println!("\n== Fig. 4: inverter propagation moving a complemented level ==");
    let mut mig = Mig::with_inputs("fig4", 6);
    let (x, u, y, z, v, w) = (
        mig.input(0),
        mig.input(1),
        mig.input(2),
        mig.input(3),
        mig.input(4),
        mig.input(5),
    );
    let a = mig.maj(u, y, z);
    let b = mig.maj(z, v, w);
    let top = mig.maj(x, !a, !b);
    // The output edge is complemented, so the level above is already
    // tainted: moving the pair of complements up releases the output level
    // and removes one complemented edge from the critical level — exactly
    // the effect Fig. 4 illustrates.
    mig.add_output("f", !top);
    let before = LevelProfile::of(&mig);
    let opt = inverter_propagation(&mig, InverterCases::ALL, true);
    let after = LevelProfile::of(&opt);
    println!(
        "before: complemented edges per level {:?} (L = {})",
        before.compl_per_level, before.levels_with_compl
    );
    println!(
        "after:  complemented edges per level {:?} (L = {})",
        after.compl_per_level, after.levels_with_compl
    );
    let same = mig.truth_tables() == opt.truth_tables();
    println!("functions equivalent: {same}");
}
