//! Regenerates the paper's figures on the RRAM machine:
//!
//! - Fig. 1: the IMP operation truth table,
//! - Fig. 2: the intrinsic majority next-state tables,
//! - Fig. 3: the ten-step IMP-based majority gate (with a step trace),
//! - Sec. III-A2: the three-step MAJ-based majority gate,
//! - Fig. 4: the Ω.I R→L inverter-propagation example.
//!
//! Thin wrapper over [`rms_bench::reports::figures_report`]. Expected
//! output: each table printed with its self-check — both majority-gate
//! programs must compute truth table `e8`, and the Fig. 4 rewrite must
//! report `functions equivalent: true`.
//!
//! Run with `cargo run --release -p rms-bench --bin repro_figures`,
//! or equivalently `rms bench --figures`.

use rms_bench::reports;

fn main() {
    print!("{}", reports::figures_report());
}
