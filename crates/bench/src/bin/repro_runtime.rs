//! Measures the Sec. IV-A run-time claim: "the run-time of each proposed
//! algorithm for the whole benchmark set is less than 3 seconds"
//! (effort = 40).
//!
//! Thin wrapper over [`rms_bench::reports::runtime_report`]. Runs
//! single-threaded on purpose — the claim is about per-algorithm speed,
//! not sweep throughput. Expected output: one row per algorithm (plus
//! Alg. 3 under IMP scoring), each with a whole-suite run-time under the
//! paper's 3 s bound on any recent machine.
//!
//! Run with `cargo run --release -p rms-bench --bin repro_runtime`,
//! or equivalently `rms bench --runtime`.

use rms_bench::reports;
use rms_core::opt::OptOptions;

fn main() {
    print!("{}", reports::runtime_report(&OptOptions::paper()));
}
