//! Measures the Sec. IV-A run-time claim: "the run-time of each proposed
//! algorithm for the whole benchmark set is less than 3 seconds"
//! (effort = 40).
//!
//! Run with `cargo run --release -p rms-bench --bin repro_runtime`.

use rms_bench::format::TextTable;
use rms_core::cost::Realization;
use rms_core::opt::{self, Algorithm, OptOptions};
use rms_core::Mig;
use rms_logic::bench_suite;
use std::time::Instant;

fn main() {
    let opts = OptOptions::paper();
    let migs: Vec<Mig> = bench_suite::LARGE_SUITE
        .iter()
        .map(|info| Mig::from_netlist(&bench_suite::build_info(info)))
        .collect();

    let mut table = TextTable::new(&["algorithm", "whole-suite run-time", "paper bound"]);
    for alg in Algorithm::ALL {
        let t0 = Instant::now();
        for mig in &migs {
            let _ = alg.run(mig, Realization::Maj, &opts);
        }
        table.row(vec![
            alg.to_string(),
            format!("{:.2?}", t0.elapsed()),
            "< 3 s".into(),
        ]);
    }
    // The proposed algorithms also run per-realization; measure Alg. 3/4
    // under IMP scoring as well.
    for (name, real) in [("RRAM costs (IMP)", Realization::Imp)] {
        let t0 = Instant::now();
        for mig in &migs {
            let _ = opt::optimize_rram(mig, real, &opts);
        }
        table.row(vec![
            name.into(),
            format!("{:.2?}", t0.elapsed()),
            "< 3 s".into(),
        ]);
    }
    println!("Run-time of each algorithm over the whole 25-benchmark suite (effort = 40)\n");
    print!("{}", table.render());
}
