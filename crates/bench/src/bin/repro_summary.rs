//! Prints the paper's headline claims next to the measured equivalents:
//!
//! - Σ-row ratios of Table II (step reductions of Algs. 3/4, the R/S
//!   trade-off of the multi-objective algorithm),
//! - the ~8x / 26x step advantages over the BDD baseline,
//! - the 7.1x / 2.57x step advantages over the AIG baseline,
//! - the "< 3 s for the whole benchmark set" run-time claim.
//!
//! Thin wrapper over [`rms_bench::reports::summary_report`] at the
//! paper's effort of 40. Expected output: one claim/paper/measured table
//! whose measured column matches the paper's signs and magnitudes.
//!
//! Run with `cargo run --release -p rms-bench --bin repro_summary`,
//! or equivalently `rms bench --summary` (the default `rms bench` section).

use rms_bench::reports;
use rms_core::opt::OptOptions;

fn main() {
    print!("{}", reports::summary_report(&OptOptions::paper(), 0));
}
