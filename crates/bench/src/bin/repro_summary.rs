//! Prints the paper's headline claims next to the measured equivalents:
//!
//! - Σ-row ratios of Table II (step reductions of Algs. 3/4, the R/S
//!   trade-off of the multi-objective algorithm),
//! - the ~8x / 26x step advantages over the BDD baseline,
//! - the 7.1x / 2.57x step advantages over the AIG baseline,
//! - the "< 3 s for the whole benchmark set" run-time claim.
//!
//! Run with `cargo run --release -p rms-bench --bin repro_summary`.

use rms_bdd::BddSynthOptions;
use rms_bench::format::{percent_change, ratio, TextTable};
use rms_bench::runner;
use rms_core::opt::OptOptions;
use rms_logic::paper_data;
use std::time::Instant;

fn main() {
    let opts = OptOptions::paper();
    let t0 = Instant::now();
    let t2 = runner::run_table2(&opts);
    let runtime = t0.elapsed();
    let bdd = runner::run_table3_bdd(&opts, &BddSynthOptions::default());
    let aig = runner::run_table3_aig(&opts);

    let sums: Vec<runner::Measured> = (0..6)
        .map(|i| runner::sum_by(&t2, |r| r.columns()[i]))
        .collect();
    let p = runner::paper_table2_sums();

    let mut table = TextTable::new(&["claim", "paper", "measured"]);

    // Step reduction of the multi-objective algorithm vs. Alg. 1 (Sec. IV-B).
    table.row(vec![
        "RRAM-IMP steps vs Area-IMP".into(),
        "-35.4%".into(),
        percent_change(sums[2].steps, sums[0].steps),
    ]);
    // Step optimization vs. conventional depth optimization.
    table.row(vec![
        "Step-IMP steps vs Depth-IMP".into(),
        "-30.4%".into(),
        percent_change(sums[4].steps, sums[1].steps),
    ]);
    // Multi-objective trade-off against step optimization (MAJ).
    table.row(vec![
        "RRAM-MAJ devices vs Step-MAJ".into(),
        "-19.8%".into(),
        percent_change(sums[3].rrams, sums[5].rrams),
    ]);
    table.row(vec![
        "RRAM-MAJ steps vs Step-MAJ".into(),
        "+21.1%".into(),
        percent_change(sums[3].steps, sums[5].steps),
    ]);
    // MAJ vs IMP realization on the same algorithm.
    table.row(vec![
        "Step-IMP / Step-MAJ step ratio".into(),
        ratio(p[4].steps, p[5].steps),
        ratio(sums[4].steps, sums[5].steps),
    ]);

    // BDD comparison.
    let bdd_sum = runner::sum_by(&bdd, |r| r.bdd);
    let maj_sum = runner::sum_by(&bdd, |r| r.mig_maj);
    let imp_sum = runner::sum_by(&bdd, |r| r.mig_imp);
    let pb = paper_data::TABLE3_BDD_SUM;
    table.row(vec![
        "BDD / MIG-MAJ step ratio".into(),
        ratio(pb.bdd.steps, pb.mig_maj.steps),
        ratio(bdd_sum.steps, maj_sum.steps),
    ]);
    table.row(vec![
        "BDD / MIG-IMP step ratio".into(),
        ratio(pb.bdd.steps, pb.mig_imp.steps),
        ratio(bdd_sum.steps, imp_sum.steps),
    ]);
    table.row(vec![
        "MIG-MAJ devices vs BDD".into(),
        "+57.4%".into(),
        percent_change(maj_sum.rrams, bdd_sum.rrams),
    ]);
    for name in ["apex6", "x3"] {
        let m = bdd.iter().find(|r| r.info.name == name).expect("row");
        let pr = paper_data::table3_bdd_row(name).expect("row");
        table.row(vec![
            format!("{name}: BDD / MIG-MAJ step ratio"),
            ratio(pr.bdd.steps, pr.mig_maj.steps),
            ratio(m.bdd.steps, m.mig_maj.steps),
        ]);
    }

    // AIG comparison.
    let aig_steps: u64 = aig.iter().map(|r| r.aig_steps).sum();
    let maj_sum = runner::sum_by(&aig, |r| r.mig_maj);
    let imp_sum = runner::sum_by(&aig, |r| r.mig_imp);
    let pa = paper_data::TABLE3_AIG_SUM;
    table.row(vec![
        "AIG / MIG-MAJ step ratio".into(),
        ratio(pa.aig_steps, pa.mig_maj.steps),
        ratio(aig_steps, maj_sum.steps),
    ]);
    table.row(vec![
        "AIG / MIG-IMP step ratio".into(),
        ratio(pa.aig_steps, pa.mig_imp.steps),
        ratio(aig_steps, imp_sum.steps),
    ]);

    table.row(vec![
        "whole-suite optimization run-time".into(),
        "< 3 s".into(),
        format!("{runtime:.2?}"),
    ]);

    println!("Headline claims, paper vs. measured (substitute suite; compare signs/magnitudes)\n");
    print!("{}", table.render());
}
