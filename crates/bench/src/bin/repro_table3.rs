//! Regenerates Table III: the proposed MIG flow vs. the BDD-based [11] and
//! AIG-based [12] RRAM synthesis baselines, with the paper's values inline.
//!
//! Run with `cargo run --release -p rms-bench --bin repro_table3`.

use rms_bdd::BddSynthOptions;
use rms_bench::format::{ratio, rs, TextTable};
use rms_bench::runner::{self, Measured};
use rms_core::opt::OptOptions;
use rms_logic::paper_data;

fn main() {
    let opts = OptOptions::paper();
    let synth = BddSynthOptions::default();

    // ---- Left half: BDD [11] ---------------------------------------------
    let rows = runner::run_table3_bdd(&opts, &synth);
    let mut table = TextTable::new(&[
        "benchmark",
        "in",
        "BDD R/S",
        "MIG-IMP R/S",
        "MIG-MAJ R/S",
        "paper BDD R/S",
    ]);
    for r in &rows {
        let paper = paper_data::table3_bdd_row(r.info.name)
            .map(|p| format!("{}/{}", p.bdd.rrams, p.bdd.steps))
            .unwrap_or_else(|| "-".into());
        table.row(vec![
            r.info.name.to_string(),
            r.info.inputs.to_string(),
            rs(r.bdd),
            rs(r.mig_imp),
            rs(r.mig_maj),
            paper,
        ]);
    }
    let bdd_sum = runner::sum_by(&rows, |r| r.bdd);
    let imp_sum = runner::sum_by(&rows, |r| r.mig_imp);
    let maj_sum = runner::sum_by(&rows, |r| r.mig_maj);
    table.row(vec![
        "SUM (measured)".into(),
        "".into(),
        rs(bdd_sum),
        rs(imp_sum),
        rs(maj_sum),
        "".into(),
    ]);
    let p = paper_data::TABLE3_BDD_SUM;
    table.row(vec![
        "SUM (paper)".into(),
        "".into(),
        format!("{}/{}", p.bdd.rrams, p.bdd.steps),
        format!("{}/{}", p.mig_imp.rrams, p.mig_imp.steps),
        format!("{}/{}", p.mig_maj.rrams, p.mig_maj.steps),
        "".into(),
    ]);
    println!("Table III (left): MIG multi-objective flow vs. BDD-based synthesis [11]");
    println!(
        "BDD schedule: level-parallel muxes, row capacity {} (see rms-bdd docs)\n",
        synth.row_capacity
    );
    print!("{}", table.render());
    println!(
        "\nstep ratio BDD / MIG-MAJ: measured {} (paper {}), BDD / MIG-IMP: measured {} (paper {})",
        ratio(bdd_sum.steps, maj_sum.steps),
        ratio(p.bdd.steps, p.mig_maj.steps),
        ratio(bdd_sum.steps, imp_sum.steps),
        ratio(p.bdd.steps, p.mig_imp.steps),
    );
    for name in ["apex6", "x3"] {
        if let (Some(m), Some(pr)) = (
            rows.iter().find(|r| r.info.name == name),
            paper_data::table3_bdd_row(name),
        ) {
            println!(
                "largest benchmark {name}: BDD/MIG-MAJ step ratio measured {} (paper {})",
                ratio(m.bdd.steps, m.mig_maj.steps),
                ratio(pr.bdd.steps, pr.mig_maj.steps)
            );
        }
    }

    // ---- Right half: AIG [12] --------------------------------------------
    let rows = runner::run_table3_aig(&opts);
    let mut table = TextTable::new(&[
        "benchmark",
        "in",
        "AIG S",
        "MIG-IMP R/S",
        "MIG-MAJ R/S",
        "paper AIG S",
    ]);
    for r in &rows {
        let paper = paper_data::table3_aig_row(r.info.name)
            .map(|p| p.aig_steps.to_string())
            .unwrap_or_else(|| "-".into());
        table.row(vec![
            r.info.name.to_string(),
            r.info.inputs.to_string(),
            r.aig_steps.to_string(),
            rs(r.mig_imp),
            rs(r.mig_maj),
            paper,
        ]);
    }
    let aig_steps: u64 = rows.iter().map(|r| r.aig_steps).sum();
    let imp_sum = runner::sum_by(&rows, |r| r.mig_imp);
    let maj_sum = runner::sum_by(&rows, |r| r.mig_maj);
    table.row(vec![
        "SUM (measured)".into(),
        "".into(),
        aig_steps.to_string(),
        rs(imp_sum),
        rs(maj_sum),
        "".into(),
    ]);
    let p = paper_data::TABLE3_AIG_SUM;
    table.row(vec![
        "SUM (paper)".into(),
        "".into(),
        p.aig_steps.to_string(),
        format!("{}/{}", p.mig_imp.rrams, p.mig_imp.steps),
        format!("{}/{}", p.mig_maj.rrams, p.mig_maj.steps),
        "".into(),
    ]);
    println!("\nTable III (right): MIG multi-objective flow vs. AIG-based synthesis [12]");
    println!("AIG schedule: node-serial implication sequences (see rms-aig docs)\n");
    print!("{}", table.render());
    println!(
        "\nstep ratio AIG / MIG-MAJ: measured {} (paper {}), AIG / MIG-IMP: measured {} (paper {})",
        ratio(aig_steps, maj_sum.steps),
        ratio(p.aig_steps, p.mig_maj.steps),
        ratio(aig_steps, imp_sum.steps),
        ratio(p.aig_steps, p.mig_imp.steps),
    );
    let _ = Measured::default();
}
