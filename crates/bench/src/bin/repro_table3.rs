//! Regenerates Table III: the proposed MIG flow vs. the BDD-based \[11\] and
//! AIG-based \[12\] RRAM synthesis baselines, with the paper's values inline.
//!
//! Thin wrapper over [`rms_bench::reports::table3_report`] at the paper's
//! effort of 40, sweeping benchmarks in parallel on all cores. Expected
//! output: the BDD comparison (left half) with aggregate BDD/MIG step
//! ratios around the paper's ~8x, the callouts for the two 135-input
//! benchmarks (~26x in the paper), and the AIG comparison (right half)
//! with ratios in the 2.6–7x range.
//!
//! Run with `cargo run --release -p rms-bench --bin repro_table3`,
//! or equivalently `rms bench --table3`.

use rms_bdd::BddSynthOptions;
use rms_bench::reports;
use rms_core::opt::OptOptions;

fn main() {
    print!(
        "{}",
        reports::table3_report(&OptOptions::paper(), &BddSynthOptions::default(), 0)
    );
}
