//! Regenerates Table II: R and S for the 25 large benchmarks under all six
//! optimizer/realization configurations, with the paper's values inline.
//!
//! Run with `cargo run --release -p rms-bench --bin repro_table2`.

use rms_bench::format::{rs, TextTable};
use rms_bench::runner::{self, Measured};
use rms_core::opt::OptOptions;
use rms_logic::paper_data;
use std::time::Instant;

fn main() {
    let opts = OptOptions::paper(); // effort = 40, as Sec. IV-A
    let t0 = Instant::now();
    let rows = runner::run_table2(&opts);
    let elapsed = t0.elapsed();

    let mut table = TextTable::new(&[
        "benchmark",
        "in",
        "Area-IMP",
        "Depth-IMP",
        "RRAM-IMP",
        "RRAM-MAJ",
        "Step-IMP",
        "Step-MAJ",
    ]);
    for r in &rows {
        table.row(vec![
            r.info.name.to_string(),
            r.info.inputs.to_string(),
            rs(r.area_imp),
            rs(r.depth_imp),
            rs(r.rram_imp),
            rs(r.rram_maj),
            rs(r.step_imp),
            rs(r.step_maj),
        ]);
    }
    let sums: Vec<Measured> = (0..6)
        .map(|i| runner::sum_by(&rows, |r| r.columns()[i]))
        .collect();
    table.row(vec![
        "SUM (measured)".into(),
        rows.iter().map(|r| r.info.inputs).sum::<usize>().to_string(),
        rs(sums[0]),
        rs(sums[1]),
        rs(sums[2]),
        rs(sums[3]),
        rs(sums[4]),
        rs(sums[5]),
    ]);
    let paper = runner::paper_table2_sums();
    table.row(vec![
        "SUM (paper)".into(),
        paper_data::TABLE2_SUM.inputs.to_string(),
        rs(paper[0]),
        rs(paper[1]),
        rs(paper[2]),
        rs(paper[3]),
        rs(paper[4]),
        rs(paper[5]),
    ]);

    println!("Table II reproduction (R/S per configuration, effort = 40)");
    println!("Substrate circuits are the embedded suite (see DESIGN.md); compare shapes, not absolutes.\n");
    print!("{}", table.render());
    println!("\noptimization run-time for the whole suite: {elapsed:.2?} (paper: < 3 s)");
}
