//! Regenerates Table II: R and S for the 25 large benchmarks under all six
//! optimizer/realization configurations, with the paper's values inline.
//!
//! Thin wrapper over [`rms_bench::reports::table2_report`] at the paper's
//! effort of 40, sweeping benchmarks in parallel on all cores. Expected
//! output: 25 `R/S` rows plus measured and paper Σ rows of a similar
//! shape (the substrate circuits are substitutes, so absolute values
//! differ), and a whole-suite run-time well under the paper's 3 s bound.
//!
//! Run with `cargo run --release -p rms-bench --bin repro_table2`,
//! or equivalently `rms bench --table2`.

use rms_bench::reports;
use rms_core::opt::OptOptions;

fn main() {
    print!("{}", reports::table2_report(&OptOptions::paper(), 0));
}
