//! Reproduction harness: runs the paper's evaluation and regenerates every
//! table and figure.
//!
//! - [`runner`] — executes the synthesis flows over the embedded benchmark
//!   suites and collects measured (R, S) values; every sweep has a
//!   sequential and a parallel (`*_par` / `*_jobs`) form built on
//!   [`rms_flow::par`], returning identical rows,
//! - [`reports`] — renders the tables/figures as printable text,
//! - [`mod@format`] — plain-text table rendering with paper-vs-measured
//!   columns,
//! - [`timing`] — the minimal stopwatch used by the `benches/` targets
//!   (the build is offline, so no Criterion).
//!
//! # The `repro_*` binaries
//!
//! Each binary is a thin wrapper printing one [`reports`] function, so the
//! same text is available programmatically and through `rms bench`:
//!
//! | Binary | Report | Expected output |
//! |---|---|---|
//! | `repro_table2` | [`reports::table2_report`] | 25 rows of R/S for the six configurations, measured Σ row next to the paper's Σ row (similar shape, not identical values — substitute circuits), and a whole-suite run-time well under the paper's 3 s bound |
//! | `repro_table3` | [`reports::table3_report`] | BDD \[11\] and AIG \[12\] baselines per benchmark vs. the MIG flow; aggregate step ratios of roughly the paper's ~8x (BDD) and ~2.6–7x (AIG) advantages |
//! | `repro_summary` | [`reports::summary_report`] | the headline claims (step reductions, trade-offs, ratios, run-time) as one paper-vs-measured table |
//! | `repro_runtime` | [`reports::runtime_report`] | per-algorithm whole-suite run-times, each expected `< 3 s` |
//! | `repro_figures` | [`reports::figures_report`] | Figs. 1–4 regenerated from the device model and rewrite engine; every figure self-checks (majority = `e8`, equivalence = `true`) |
//!
//! Run any of them with
//! `cargo run --release -p rms-bench --bin repro_table2`, or get the same
//! sections via the top-level CLI: `rms bench --table2 --table3`.

//!
//! The embedded circuits are substitutes for the unredistributable
//! LGsynth91/ISCAS89 originals — compare shapes and ratios, not absolute
//! values. See `ARCHITECTURE.md` at the repository root.

pub mod format;
pub mod reports;
pub mod runner;
pub mod timing;
