//! Reproduction harness: runs the paper's evaluation and regenerates every
//! table and figure.
//!
//! - [`runner`] — executes the synthesis flows over the embedded benchmark
//!   suites and collects measured (R, S) values,
//! - [`format`] — plain-text table rendering with paper-vs-measured
//!   columns.
//!
//! The `repro_*` binaries in `src/bin` print the tables; the Criterion
//! benches in `benches/` measure the run-time claims.

pub mod format;
pub mod runner;
