//! Executes the paper's evaluation flows over the embedded suites.
//!
//! Per-configuration work (optimize, then evaluate Table I) is delegated
//! to [`rms_flow::optimize_cost`]; each `run_*` sweep exists in a
//! sequential form and a parallel form (`*_par` / `*_jobs`) built on
//! [`rms_flow::par`]. The parallel sweeps partition by benchmark and
//! preserve row order, so they return bit-identical results to the
//! sequential ones — a property the integration tests assert.

use crate::timing::{time_median, ProfileReport, ProfileRow};
use rms_aig::Aig;
use rms_bdd::{build as bdd_build, rram_synth as bdd_rram, BddSynthOptions};
use rms_core::cost::{Realization, RramCost};
use rms_core::opt::{Algorithm, OptOptions};
use rms_core::Mig;
use rms_flow::{optimize_cost, par, Engine};
use rms_logic::bench_suite::{self, BenchmarkInfo};
use rms_logic::paper_data;

/// Measured (R, S) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Measured {
    /// Number of RRAM devices (Table I `R`).
    pub rrams: u64,
    /// Number of computational steps (Table I `S`).
    pub steps: u64,
}

impl From<RramCost> for Measured {
    fn from(c: RramCost) -> Self {
        Measured {
            rrams: c.rrams,
            steps: c.steps,
        }
    }
}

/// Worker count of the profile's parallel timing run (the `jobs` /
/// `par_ms` columns): the acceptance configuration of the windowed
/// partition-parallel round. Fixed rather than core-count-derived so
/// committed profiles are comparable across machines.
pub const PROFILE_JOBS: usize = 4;

/// Resolves a worker count: `0` means the default pool size.
fn workers(jobs: usize) -> usize {
    if jobs == 0 {
        par::num_threads()
    } else {
        jobs
    }
}

/// One measured row of Table II (six optimizer/realization configurations).
#[derive(Debug, Clone)]
pub struct Table2Measured {
    /// Benchmark descriptor.
    pub info: &'static BenchmarkInfo,
    /// Alg. 1 under the IMP realization.
    pub area_imp: Measured,
    /// Alg. 2 under the IMP realization.
    pub depth_imp: Measured,
    /// Alg. 3 under the IMP realization.
    pub rram_imp: Measured,
    /// Alg. 3 under the MAJ realization.
    pub rram_maj: Measured,
    /// Alg. 4 under the IMP realization.
    pub step_imp: Measured,
    /// Alg. 4 under the MAJ realization.
    pub step_maj: Measured,
}

impl Table2Measured {
    /// The six configurations in column order.
    pub fn columns(&self) -> [Measured; 6] {
        [
            self.area_imp,
            self.depth_imp,
            self.rram_imp,
            self.rram_maj,
            self.step_imp,
            self.step_maj,
        ]
    }
}

/// The six Table II configurations as (algorithm, realization) pairs, in
/// column order.
pub const TABLE2_CONFIGS: [(Algorithm, Realization); 6] = [
    (Algorithm::Area, Realization::Imp),
    (Algorithm::Depth, Realization::Imp),
    (Algorithm::RramCosts, Realization::Imp),
    (Algorithm::RramCosts, Realization::Maj),
    (Algorithm::Steps, Realization::Imp),
    (Algorithm::Steps, Realization::Maj),
];

/// Runs the Table II evaluation for one benchmark.
pub fn run_table2_row(info: &'static BenchmarkInfo, opts: &OptOptions) -> Table2Measured {
    let mig = Mig::from_netlist(&bench_suite::build_info(info));
    let cols: Vec<Measured> = TABLE2_CONFIGS
        .iter()
        .map(|&(alg, real)| optimize_cost(&mig, alg, real, opts).1.into())
        .collect();
    Table2Measured {
        info,
        area_imp: cols[0],
        depth_imp: cols[1],
        rram_imp: cols[2],
        rram_maj: cols[3],
        step_imp: cols[4],
        step_maj: cols[5],
    }
}

/// Runs the full Table II evaluation (25 benchmarks, six configurations)
/// sequentially.
pub fn run_table2(opts: &OptOptions) -> Vec<Table2Measured> {
    bench_suite::LARGE_SUITE
        .iter()
        .map(|info| run_table2_row(info, opts))
        .collect()
}

/// Runs the full Table II evaluation on `jobs` worker threads (`0` =
/// all cores). Rows come back in suite order, identical to [`run_table2`].
pub fn run_table2_jobs(opts: &OptOptions, jobs: usize) -> Vec<Table2Measured> {
    let infos: Vec<&'static BenchmarkInfo> = bench_suite::LARGE_SUITE.iter().collect();
    par::par_map_threads(&infos, workers(jobs), |info| run_table2_row(info, opts))
}

/// Runs the full Table II evaluation on the default thread pool.
pub fn run_table2_par(opts: &OptOptions) -> Vec<Table2Measured> {
    run_table2_jobs(opts, 0)
}

/// One measured row of Table III's left half (BDD comparison).
#[derive(Debug, Clone)]
pub struct Table3BddMeasured {
    /// Benchmark descriptor.
    pub info: &'static BenchmarkInfo,
    /// BDD baseline of \[11\] (level-parallel mux schedule).
    pub bdd: Measured,
    /// MIG multi-objective flow, IMP realization.
    pub mig_imp: Measured,
    /// MIG multi-objective flow, MAJ realization.
    pub mig_maj: Measured,
    /// BDD node count (context for the R column).
    pub bdd_nodes: u64,
}

/// Runs the BDD-vs-MIG comparison for one benchmark.
pub fn run_table3_bdd_row(
    info: &'static BenchmarkInfo,
    opts: &OptOptions,
    synth: &BddSynthOptions,
) -> Table3BddMeasured {
    let nl = bench_suite::build_info(info);
    let circ = bdd_build::from_netlist(&nl, bdd_build::Ordering::DfsFromOutputs);
    let bdd = bdd_rram::synthesize(&circ, synth);
    let mig = Mig::from_netlist(&nl);
    let rram_i = optimize_cost(&mig, Algorithm::RramCosts, Realization::Imp, opts).1;
    let rram_m = optimize_cost(&mig, Algorithm::RramCosts, Realization::Maj, opts).1;
    Table3BddMeasured {
        info,
        bdd: Measured {
            // [11] reports value-retention devices, not compute scratch;
            // `bdd.devices` (the full footprint) is available separately.
            rrams: bdd.value_devices,
            steps: bdd.steps(),
        },
        mig_imp: rram_i.into(),
        mig_maj: rram_m.into(),
        bdd_nodes: bdd.nodes,
    }
}

/// Runs the full BDD comparison (Table III left) sequentially.
pub fn run_table3_bdd(opts: &OptOptions, synth: &BddSynthOptions) -> Vec<Table3BddMeasured> {
    bench_suite::LARGE_SUITE
        .iter()
        .map(|info| run_table3_bdd_row(info, opts, synth))
        .collect()
}

/// Runs the full BDD comparison on `jobs` worker threads (`0` = all
/// cores), identical to [`run_table3_bdd`].
pub fn run_table3_bdd_jobs(
    opts: &OptOptions,
    synth: &BddSynthOptions,
    jobs: usize,
) -> Vec<Table3BddMeasured> {
    let infos: Vec<&'static BenchmarkInfo> = bench_suite::LARGE_SUITE.iter().collect();
    par::par_map_threads(&infos, workers(jobs), |info| {
        run_table3_bdd_row(info, opts, synth)
    })
}

/// One measured row of Table III's right half (AIG comparison).
#[derive(Debug, Clone)]
pub struct Table3AigMeasured {
    /// Benchmark descriptor.
    pub info: &'static BenchmarkInfo,
    /// Steps of the node-serial AIG baseline of \[12\].
    pub aig_steps: u64,
    /// AIG node count after balancing.
    pub aig_nodes: u64,
    /// MIG multi-objective flow, IMP realization.
    pub mig_imp: Measured,
    /// MIG multi-objective flow, MAJ realization.
    pub mig_maj: Measured,
}

/// Runs the AIG-vs-MIG comparison for one small-suite function.
pub fn run_table3_aig_row(info: &'static BenchmarkInfo, opts: &OptOptions) -> Table3AigMeasured {
    let nl = bench_suite::build_info(info);
    let aig = Aig::from_netlist(&nl).balance();
    let circuit = rms_aig::rram_synth::synthesize(&aig);
    let mig = Mig::from_netlist(&nl);
    let rram_i = optimize_cost(&mig, Algorithm::RramCosts, Realization::Imp, opts).1;
    let rram_m = optimize_cost(&mig, Algorithm::RramCosts, Realization::Maj, opts).1;
    Table3AigMeasured {
        info,
        aig_steps: circuit.steps(),
        aig_nodes: circuit.nodes,
        mig_imp: rram_i.into(),
        mig_maj: rram_m.into(),
    }
}

/// Runs the full AIG comparison (Table III right) sequentially.
pub fn run_table3_aig(opts: &OptOptions) -> Vec<Table3AigMeasured> {
    bench_suite::SMALL_SUITE
        .iter()
        .map(|info| run_table3_aig_row(info, opts))
        .collect()
}

/// Runs the full AIG comparison on `jobs` worker threads (`0` = all
/// cores), identical to [`run_table3_aig`].
pub fn run_table3_aig_jobs(opts: &OptOptions, jobs: usize) -> Vec<Table3AigMeasured> {
    let infos: Vec<&'static BenchmarkInfo> = bench_suite::SMALL_SUITE.iter().collect();
    par::par_map_threads(&infos, workers(jobs), |info| run_table3_aig_row(info, opts))
}

/// One measured row of the algorithm-comparison sweep: Algs. 1–4 against
/// the cut-rewriting engine, over the small (single-output) suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgsMeasured {
    /// Benchmark descriptor.
    pub info: &'static BenchmarkInfo,
    /// Majority-gate count of the unoptimized MIG.
    pub initial_gates: u64,
    /// Gate count per algorithm, in [`Algorithm::ALL_WITH_CUT`] order.
    pub gates: [u64; 6],
    /// Table I metrics per algorithm (MAJ realization), same order.
    pub cost: [Measured; 6],
    /// Cut rewrites accepted by the `Cut` run.
    pub cut_rewrites: u64,
    /// Verification summary over all six optimized graphs: `exhaustive`
    /// below the truth-table cutoff, `SAT (n conflicts)` above it,
    /// `FAILED <algorithm>` on a mismatch (which would be a bug).
    pub verified: String,
}

/// Runs every algorithm (including the cut engine) on one benchmark
/// under the MAJ realization, verifying each result against the source
/// netlist (exhaustively below the width cutoff, by SAT proof above).
pub fn run_algs_row(info: &'static BenchmarkInfo, opts: &OptOptions) -> AlgsMeasured {
    let nl = bench_suite::build_info(info);
    let mig = Mig::from_netlist(&nl);
    let mut gates = [0u64; 6];
    let mut cost = [Measured::default(); 6];
    let mut cut_rewrites = 0;
    let mut sat_conflicts: Option<u64> = None;
    let mut sampled_fallback = false;
    // First verification problem, if any: a genuine functional mismatch
    // ("FAILED <alg>") is kept distinct from an infrastructure error
    // ("ERROR <alg>" — e.g. an arity mismatch from a buggy exporter), so
    // a red column points at the right subsystem.
    let mut trouble: Option<String> = None;
    // Below the cutoff the reference truth tables are computed once per
    // row, not once per algorithm (the optimized graphs share the input
    // order of their source, so a direct table compare is exact).
    let reference =
        (nl.num_inputs() <= rms_flow::verify::EXHAUSTIVE_VERIFY_VARS).then(|| nl.truth_tables());
    for (i, alg) in Algorithm::ALL_WITH_CUT.into_iter().enumerate() {
        let (out, stats) = rms_flow::run_algorithm(&mig, alg, Realization::Maj, opts);
        gates[i] = out.num_gates() as u64;
        cost[i] = RramCost::of(&out, Realization::Maj).into();
        if alg == Algorithm::Cut {
            cut_rewrites = stats.rewrites;
        }
        if trouble.is_none() {
            if let Some(reference) = &reference {
                if out.truth_tables() != *reference {
                    trouble = Some(format!("FAILED {alg}"));
                }
                continue;
            }
            match rms_flow::check_netlists(
                &nl,
                &out.to_netlist(),
                rms_flow::VerifyMode::Auto,
                rms_flow::DEFAULT_VERIFY_SEED,
            ) {
                Ok(rms_flow::VerifyOutcome::Proved { conflicts, .. }) => {
                    *sat_conflicts.get_or_insert(0) += conflicts;
                }
                // Auto degrades to sampling when the proof budget runs
                // out — surface that honestly instead of claiming a
                // proof.
                Ok(rms_flow::VerifyOutcome::Sampled { .. }) => sampled_fallback = true,
                Ok(outcome) if outcome.passed() => {}
                Ok(_) => trouble = Some(format!("FAILED {alg}")),
                Err(e) => trouble = Some(format!("ERROR {alg}: {e}")),
            }
        }
    }
    let verified = match (trouble, sampled_fallback, sat_conflicts) {
        (Some(t), _, _) => t,
        (None, true, _) => "sampled (SAT budget exceeded)".to_string(),
        (None, false, Some(conflicts)) => format!("SAT ({conflicts} conflicts)"),
        (None, false, None) => "exhaustive".to_string(),
    };
    AlgsMeasured {
        info,
        initial_gates: mig.num_gates() as u64,
        gates,
        cost,
        cut_rewrites,
        verified,
    }
}

/// Runs the algorithm-comparison sweep over the small suite sequentially.
pub fn run_algs(opts: &OptOptions) -> Vec<AlgsMeasured> {
    bench_suite::SMALL_SUITE
        .iter()
        .map(|info| run_algs_row(info, opts))
        .collect()
}

/// Runs the algorithm-comparison sweep on `jobs` worker threads (`0` =
/// all cores). Rows come back in suite order, bit-identical to
/// [`run_algs`].
pub fn run_algs_jobs(opts: &OptOptions, jobs: usize) -> Vec<AlgsMeasured> {
    let infos: Vec<&'static BenchmarkInfo> = bench_suite::SMALL_SUITE.iter().collect();
    par::par_map_threads(&infos, workers(jobs), |info| run_algs_row(info, opts))
}

/// Structural bit-identity of two graphs: node-for-node and
/// output-for-output.
fn bit_identical(a: &Mig, b: &Mig) -> bool {
    a.len() == b.len() && a.outputs() == b.outputs() && (0..a.len()).all(|i| a.node(i) == b.node(i))
}

/// One row of the sweep+resub-vs-cut comparison (`rms bench --sweep`).
#[derive(Debug, Clone)]
pub struct SweepMeasured {
    /// Benchmark descriptor.
    pub info: &'static BenchmarkInfo,
    /// Majority-gate count of the unoptimized MIG.
    pub initial_gates: u64,
    /// Gate count after the cut script (the baseline).
    pub cut_gates: u64,
    /// Gate count after the sweep+resub script.
    pub sweep_gates: u64,
    /// Fraig merges proved and committed.
    pub fraig_merges: u64,
    /// Resubstitutions proved and accepted.
    pub resubs: u64,
    /// SAT conflicts spent by the post passes.
    pub sat_conflicts: u64,
    /// Whether the incremental and from-scratch engines produced
    /// bit-identical sweep results.
    pub engines_identical: bool,
    /// Verification of the sweep result against the source netlist
    /// (`exhaustive` / `SAT (n conflicts)` / `FAILED` / `ERROR ...`).
    pub verified: String,
}

impl SweepMeasured {
    /// Whether this row meets every acceptance condition: verified,
    /// never worse than the cut baseline, deterministic across engines.
    pub fn passed(&self) -> bool {
        self.sweep_gates <= self.cut_gates
            && self.engines_identical
            && (self.verified.starts_with("exhaustive") || self.verified.starts_with("SAT"))
    }
}

/// The full sweep comparison: per-benchmark rows plus the cross-worker
/// determinism check.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One row per small-suite benchmark, in suite order.
    pub rows: Vec<SweepMeasured>,
    /// Whether a re-run on a different worker count produced the same
    /// gate counts (bit-identity across `--jobs`).
    pub jobs_identical: bool,
}

impl SweepReport {
    /// Whether every row and the determinism check passed.
    pub fn all_passed(&self) -> bool {
        self.jobs_identical && self.rows.iter().all(SweepMeasured::passed)
    }

    /// Rows where sweep+resub strictly beats the cut baseline.
    pub fn strict_wins(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.sweep_gates < r.cut_gates)
            .count()
    }
}

/// Runs the cut baseline and the sweep+resub script on one benchmark,
/// verifying the sweep result and checking engine bit-identity.
pub fn run_sweep_row(info: &'static BenchmarkInfo, opts: &OptOptions) -> SweepMeasured {
    let nl = bench_suite::build_info(info);
    let mig = Mig::from_netlist(&nl);
    let (cut, _) = rms_cut::optimize_cut_stats_engine(&mig, opts, rms_cut::Engine::Incremental);
    let (sweep, stats) = rms_cut::optimize_sweep_stats(
        &mig,
        opts,
        rms_cut::Engine::Incremental,
        rms_cut::SweepPasses::BOTH,
    );
    let (scratch, _) = rms_cut::optimize_sweep_stats(
        &mig,
        opts,
        rms_cut::Engine::FromScratch,
        rms_cut::SweepPasses::BOTH,
    );
    let engines_identical = bit_identical(&sweep, &scratch);
    let verified = if nl.num_inputs() <= rms_flow::verify::EXHAUSTIVE_VERIFY_VARS {
        if sweep.truth_tables() == nl.truth_tables() {
            "exhaustive".to_string()
        } else {
            "FAILED".to_string()
        }
    } else {
        match rms_flow::check_netlists(
            &nl,
            &sweep.to_netlist(),
            rms_flow::VerifyMode::Auto,
            rms_flow::DEFAULT_VERIFY_SEED,
        ) {
            Ok(rms_flow::VerifyOutcome::Proved { conflicts, .. }) => {
                format!("SAT ({conflicts} conflicts)")
            }
            Ok(rms_flow::VerifyOutcome::Sampled { .. }) => {
                "sampled (SAT budget exceeded)".to_string()
            }
            Ok(outcome) if outcome.passed() => "exhaustive".to_string(),
            Ok(_) => "FAILED".to_string(),
            Err(e) => format!("ERROR: {e}"),
        }
    };
    SweepMeasured {
        info,
        initial_gates: mig.num_gates() as u64,
        cut_gates: cut.num_gates() as u64,
        sweep_gates: sweep.num_gates() as u64,
        fraig_merges: stats.fraig_merges,
        resubs: stats.resubs,
        sat_conflicts: stats.sat_conflicts,
        engines_identical,
        verified,
    }
}

/// Runs the sweep comparison over the small suite on `jobs` workers,
/// then re-runs the sweep gate counts on a different worker count to
/// check `--jobs` bit-identity.
pub fn run_sweep(opts: &OptOptions, jobs: usize) -> SweepReport {
    let infos: Vec<&'static BenchmarkInfo> = bench_suite::SMALL_SUITE.iter().collect();
    let rows = par::par_map_threads(&infos, workers(jobs), |info| run_sweep_row(info, opts));
    let alt_workers = if workers(jobs) == 1 { 3 } else { 1 };
    let alt_gates: Vec<u64> = par::par_map_threads(&infos, alt_workers, |info| {
        let mig = Mig::from_netlist(&bench_suite::build_info(info));
        rms_cut::optimize_sweep_stats(
            &mig,
            opts,
            rms_cut::Engine::Incremental,
            rms_cut::SweepPasses::BOTH,
        )
        .0
        .num_gates() as u64
    });
    let jobs_identical = rows
        .iter()
        .zip(&alt_gates)
        .all(|(row, &gates)| row.sweep_gates == gates);
    SweepReport {
        rows,
        jobs_identical,
    }
}

/// Profiles the cut algorithm on one benchmark: rebuild baseline vs the
/// incremental engine (median of `iters` runs each), the
/// incremental-vs-from-scratch differential check, a parallel run at
/// [`PROFILE_JOBS`] workers (timed, and checked bit-identical against
/// the sequential result), and verification of the optimized result
/// against the source netlist.
///
/// The below-cutoff reference truth tables are computed **once** per
/// benchmark and shared across all three engine runs (they are a
/// property of the source netlist alone); every engine's output is
/// asserted against the same tables.
pub fn run_profile_row(
    info: &'static BenchmarkInfo,
    opts: &OptOptions,
    iters: usize,
) -> ProfileRow {
    let nl = bench_suite::build_info(info);
    profile_netlist_row(info.name, &nl, opts, iters, rms_flow::VerifyMode::Auto)
}

/// The suite-independent core of [`run_profile_row`]: profiles one
/// source netlist under all three engines. `wide_mode` chooses how
/// above-cutoff circuits are verified — `Auto` (SAT proof with sampled
/// fallback) for the small suite, `Sampled` for the large one, where a
/// 100k-node miter would dominate the whole profile's runtime.
fn profile_netlist_row(
    name: &'static str,
    nl: &rms_logic::Netlist,
    opts: &OptOptions,
    iters: usize,
    wide_mode: rms_flow::VerifyMode,
) -> ProfileRow {
    let mig = Mig::from_netlist(nl);
    // Hoisted once per benchmark, not once per engine run.
    let reference =
        (nl.num_inputs() <= rms_flow::verify::EXHAUSTIVE_VERIFY_VARS).then(|| nl.truth_tables());
    let (baseline, (reb, _)) = time_median(iters, || {
        rms_cut::optimize_cut_stats_engine(&mig, opts, Engine::Rebuild)
    });
    // The sequential run pins jobs = 1 so incremental_ms measures the
    // single-worker engine even when the ambient options say "auto".
    let mut seq_opts = opts.clone();
    seq_opts.jobs = 1;
    let (incremental, (inc, stats)) = time_median(iters, || {
        rms_cut::optimize_cut_stats_engine(&mig, &seq_opts, Engine::Incremental)
    });
    let mut par_opts = opts.clone();
    par_opts.jobs = PROFILE_JOBS;
    let (par, (par_out, _)) = time_median(iters, || {
        rms_cut::optimize_cut_stats_engine(&mig, &par_opts, Engine::Incremental)
    });
    let par_identical = bit_identical(&inc, &par_out);
    let (scratch, _) = rms_cut::optimize_cut_stats_engine(&mig, opts, Engine::FromScratch);
    let identical = bit_identical(&inc, &scratch);
    let verified = match &reference {
        Some(reference) => {
            let mut trouble = None;
            for (what, out) in [
                ("incremental", &inc),
                ("rebuild", &reb),
                ("from-scratch", &scratch),
            ] {
                if out.truth_tables() != *reference {
                    trouble = Some(format!("FAILED {what}"));
                    break;
                }
            }
            trouble.unwrap_or_else(|| "exhaustive".to_string())
        }
        None => match rms_flow::check_netlists(
            nl,
            &inc.to_netlist(),
            wide_mode,
            rms_flow::DEFAULT_VERIFY_SEED,
        ) {
            Ok(rms_flow::VerifyOutcome::Proved { conflicts, .. }) => {
                format!("SAT proved ({conflicts} conflicts)")
            }
            Ok(outcome) if outcome.passed() => outcome.label(),
            Ok(outcome) => format!("FAILED {}", outcome.label()),
            Err(e) => format!("ERROR {e}"),
        },
    };
    ProfileRow {
        name,
        inputs: nl.num_inputs() as u32,
        initial_gates: mig.num_gates() as u64,
        gates: inc.num_gates() as u64,
        baseline_gates: reb.num_gates() as u64,
        gates_delta: inc.num_gates() as i64 - reb.num_gates() as i64,
        baseline_ms: baseline.as_secs_f64() * 1e3,
        incremental_ms: incremental.as_secs_f64() * 1e3,
        jobs: PROFILE_JOBS,
        par_ms: par.as_secs_f64() * 1e3,
        par_identical,
        t_cut_enum_ms: stats.t_cut_enum_ns as f64 / 1e6,
        t_eval_ms: stats.t_eval_ns as f64 / 1e6,
        t_commit_ms: stats.t_commit_ns as f64 / 1e6,
        t_gc_ms: stats.t_gc_ns as f64 / 1e6,
        cycles: stats.cycles as u64,
        passes: stats.passes,
        rewrites: stats.rewrites,
        peak_nodes: stats.peak_nodes,
        identical,
        verified,
    }
}

/// Runs the whole performance profile over the small suite: per-row
/// engine timings and checks, plus a parallel-sweep consistency check
/// (the incremental engine must return bit-identical gate counts under
/// any `--jobs` worker count).
pub fn run_profile(opts: &OptOptions, iters: usize) -> ProfileReport {
    // Build the shared NPN tables + MIG database before the first timed
    // run, so the one-time cost never lands inside a measurement.
    rms_cut::prewarm();
    let rows: Vec<ProfileRow> = bench_suite::SMALL_SUITE
        .iter()
        .map(|info| run_profile_row(info, opts, iters))
        .collect();
    let infos: Vec<&'static BenchmarkInfo> = bench_suite::SMALL_SUITE.iter().collect();
    let par_gates: Vec<u64> = par::par_map_threads(&infos, 3, |info| {
        let mig = Mig::from_netlist(&bench_suite::build_info(info));
        let (out, _) = rms_cut::optimize_cut_stats_engine(&mig, opts, Engine::Incremental);
        out.num_gates() as u64
    });
    let jobs_consistent = rows.iter().zip(&par_gates).all(|(r, &g)| r.gates == g);
    ProfileReport {
        suite: "small",
        rows,
        effort: opts.effort,
        iters,
        jobs_consistent,
    }
}

/// Runs the performance profile over the generated large suite
/// ([`rms_logic::large_suite`], 4k–70k-gate circuits): the scale
/// baseline behind `rms bench --suite large --profile` and the
/// committed `BENCH_8.json`.
///
/// Identical methodology to [`run_profile`] except that above-cutoff
/// verification is sampled simulation rather than a SAT proof (every
/// circuit here is far above the exhaustive cutoff, and a 100k-node
/// miter proof would dwarf the timings being measured). The
/// incremental-vs-from-scratch bit-identity check and the parallel
/// `--jobs` consistency sweep (4 workers vs sequential) run unchanged.
pub fn run_profile_large(opts: &OptOptions, iters: usize) -> ProfileReport {
    rms_cut::prewarm();
    let targets: Vec<(&'static str, rms_logic::Netlist)> = rms_logic::large_suite::SUITE
        .iter()
        .map(|info| (info.name, rms_logic::large_suite::build_info(info)))
        .collect();
    let rows: Vec<ProfileRow> = targets
        .iter()
        .map(|(name, nl)| profile_netlist_row(name, nl, opts, iters, rms_flow::VerifyMode::Sampled))
        .collect();
    // The acceptance bar: gate counts must be bit-identical whether the
    // suite runs sequentially (jobs = 1, the rows above) or fanned out
    // across 4 workers.
    let par_gates: Vec<u64> = par::par_map_threads(&targets, 4, |(_, nl)| {
        let mig = Mig::from_netlist(nl);
        let (out, _) = rms_cut::optimize_cut_stats_engine(&mig, opts, Engine::Incremental);
        out.num_gates() as u64
    });
    let jobs_consistent = rows.iter().zip(&par_gates).all(|(r, &g)| r.gates == g);
    ProfileReport {
        suite: "large",
        rows,
        effort: opts.effort,
        iters,
        jobs_consistent,
    }
}

/// Sum of a column over rows.
pub fn sum_by<T>(rows: &[T], f: impl Fn(&T) -> Measured) -> Measured {
    rows.iter().fold(Measured::default(), |acc, r| {
        let m = f(r);
        Measured {
            rrams: acc.rrams + m.rrams,
            steps: acc.steps + m.steps,
        }
    })
}

/// The paper-reported Σ row of Table II as `Measured` columns.
pub fn paper_table2_sums() -> [Measured; 6] {
    let s = paper_data::TABLE2_SUM;
    [
        s.area_imp,
        s.depth_imp,
        s.rram_imp,
        s.rram_maj,
        s.step_imp,
        s.step_maj,
    ]
    .map(|r| Measured {
        rrams: r.rrams,
        steps: r.steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_row_has_expected_orderings() {
        let info = rms_logic::bench_suite::info("x2").unwrap();
        let row = run_table2_row(info, &OptOptions::with_effort(10));
        // MAJ realization always beats IMP on steps for the same algorithm.
        assert!(row.rram_maj.steps < row.rram_imp.steps);
        assert!(row.step_maj.steps < row.step_imp.steps);
    }

    #[test]
    fn table3_aig_row_runs() {
        let info = rms_logic::bench_suite::info("exam1_d").unwrap();
        let row = run_table3_aig_row(info, &OptOptions::with_effort(5));
        assert!(row.aig_steps >= 3, "{row:?}");
    }

    #[test]
    fn table3_bdd_row_runs() {
        let info = rms_logic::bench_suite::info("parity").unwrap();
        let row = run_table3_bdd_row(
            info,
            &OptOptions::with_effort(5),
            &BddSynthOptions::default(),
        );
        // Parity's BDD is thin: one batch per level, five steps each.
        // (Parity is also the one function where a BDD is genuinely
        // competitive — the aggregate comparison lives in the integration
        // tests at full effort.)
        assert_eq!(row.bdd.steps, 5 * 16);
        assert!(row.mig_maj.steps > 0);
    }

    #[test]
    fn sums_add_up() {
        let rows = vec![
            Measured { rrams: 1, steps: 2 },
            Measured { rrams: 3, steps: 4 },
        ];
        let s = sum_by(&rows, |m| *m);
        assert_eq!(s, Measured { rrams: 4, steps: 6 });
    }

    #[test]
    fn algs_row_covers_all_algorithms() {
        let info = rms_logic::bench_suite::info("exam3_d").unwrap();
        let row = run_algs_row(info, &OptOptions::with_effort(4));
        assert!(row.initial_gates > 0);
        for (i, &g) in row.gates.iter().enumerate() {
            assert!(g <= row.initial_gates, "alg {i}");
            assert!(row.cost[i].steps > 0, "alg {i}");
        }
        // The cut engine never loses to plain area optimization here.
        assert!(row.gates[4] <= row.gates[0], "{row:?}");
    }

    #[test]
    fn parallel_algs_sweep_matches_sequential() {
        let opts = OptOptions::with_effort(2);
        let seq = run_algs(&opts);
        let par3 = run_algs_jobs(&opts, 3);
        assert_eq!(seq, par3);
    }

    #[test]
    fn parallel_aig_sweep_matches_sequential() {
        // The (cheap) small-suite sweep: the parallel runner must return
        // row-identical results. Table II parallel equality is covered at
        // the integration level.
        let opts = OptOptions::with_effort(4);
        let seq = run_table3_aig(&opts);
        let par2 = run_table3_aig_jobs(&opts, 2);
        assert_eq!(seq.len(), par2.len());
        for (a, b) in seq.iter().zip(&par2) {
            assert_eq!(a.info.name, b.info.name);
            assert_eq!(a.aig_steps, b.aig_steps);
            assert_eq!(a.mig_imp, b.mig_imp);
            assert_eq!(a.mig_maj, b.mig_maj);
        }
    }
}
