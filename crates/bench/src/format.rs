//! Plain-text rendering of reproduction tables.

use crate::runner::Measured;

/// A simple fixed-width table builder for terminal reports.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String], width: &[usize]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    out.push_str(&format!("{:<w$}", c, w = width[i]));
                } else {
                    out.push_str(&format!("  {:>w$}", c, w = width[i]));
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.header, &width);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row, &width);
        }
        out
    }
}

/// Formats a measured pair as `R/S`.
pub fn rs(m: Measured) -> String {
    format!("{}/{}", m.rrams, m.steps)
}

/// Formats a ratio with two decimals, guarding division by zero.
pub fn ratio(num: u64, den: u64) -> String {
    if den == 0 {
        "-".into()
    } else {
        format!("{:.2}", num as f64 / den as f64)
    }
}

/// Formats a percent change `(a - b) / b`, guarding division by zero.
pub fn percent_change(a: u64, b: u64) -> String {
    if b == 0 {
        "-".into()
    } else {
        format!("{:+.1}%", (a as f64 - b as f64) / b as f64 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["name", "R", "S"]);
        t.row(vec!["apex1".into(), "123".into(), "7".into()]);
        t.row(vec!["x".into(), "1".into(), "4567".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("apex1"));
        // All lines same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn helpers() {
        assert_eq!(rs(Measured { rrams: 3, steps: 9 }), "3/9");
        assert_eq!(ratio(10, 4), "2.50");
        assert_eq!(ratio(1, 0), "-");
        assert_eq!(percent_change(110, 100), "+10.0%");
        assert_eq!(percent_change(90, 100), "-10.0%");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
