//! A minimal stopwatch harness for the `benches/` targets, plus the
//! machine-readable performance profile behind `rms bench --profile`.
//!
//! The build environment is offline, so the workspace cannot depend on
//! Criterion; the bench targets instead use this module with
//! `harness = false`. Results print as `name  min/avg over N iters`.
//!
//! # The profile format (`BENCH_5.json` / `BENCH_8.json`)
//!
//! [`ProfileReport::to_json`] emits one flat document (schema
//! `rms-bench-profile-v2`, with a `suite` field naming the benchmark
//! set) recording, per benchmark, the wall time of the cut algorithm on
//! the pre-incremental **rebuild** engine and on the **incremental**
//! in-place engine (median over `iters` runs), the speedup, the
//! explicit `gates_delta` quality column (incremental minus rebuild
//! gates — past [`QUALITY_TOLERANCE`] it fails the profile), the
//! parallel timing (`jobs` workers, `par_ms`, with `par_identical`
//! asserting the windowed round's bit-identity contract), the per-phase
//! breakdown of the incremental run (cut enumeration / candidate
//! evaluation / commit / GC), the optimizer counters (cycles, passes,
//! rewrites, peak node count), whether the incremental and from-scratch
//! engines produced bit-identical graphs, and how the result was
//! verified against the source netlist (exhaustively below the width
//! cutoff, SAT proof or sampled simulation above). A `total` object
//! aggregates the suite.
//! Two baselines are committed at the repository root: `BENCH_5.json`
//! (small suite, schema v1, the pre-AIGER historical record) and
//! `BENCH_8.json` (the generated large suite of
//! [`rms_logic::large_suite`], 4k–70k gates). CI's perf-smoke steps
//! regenerate profiles and fail on any verification or differential
//! regression.

use rms_flow::escape_json;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `f` for `iters` iterations (after one warm-up call) and prints
/// the minimum and mean wall-clock time per iteration.
pub fn bench<R>(name: &str, iters: usize, mut f: impl FnMut() -> R) {
    assert!(iters > 0);
    black_box(f());
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed();
        min = min.min(dt);
        total += dt;
    }
    println!(
        "{name:<48} min {min:>10.2?}  avg {:>10.2?}  ({iters} iters)",
        total / iters as u32
    );
}

/// Prints a section header so grouped benches read like Criterion groups.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}

/// Times `f` and returns the minimum wall-clock duration over `iters`
/// runs (after one warm-up call), together with the last result.
pub fn time_min<R>(iters: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    assert!(iters > 0);
    black_box(f());
    let mut min = Duration::MAX;
    let mut last = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let r = black_box(f());
        min = min.min(t0.elapsed());
        last = Some(r);
    }
    (min, last.expect("at least one iteration"))
}

/// Times `f` and returns the **median** wall-clock duration over `iters`
/// runs (after one warm-up call), together with the last result. The
/// median is the profile's timing statistic: unlike the minimum it is
/// robust to one lucky run, and unlike the mean it is robust to one GC
/// or scheduler hiccup.
pub fn time_median<R>(iters: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    assert!(iters > 0);
    black_box(f());
    let mut times = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let r = black_box(f());
        times.push(t0.elapsed());
        last = Some(r);
    }
    times.sort();
    // Even counts take the lower middle — a real measured duration,
    // applied identically to every engine being compared.
    (
        times[(iters - 1) / 2],
        last.expect("at least one iteration"),
    )
}

/// One benchmark's measurements in the performance profile.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Primary input count.
    pub inputs: u32,
    /// Majority gates of the unoptimized MIG.
    pub initial_gates: u64,
    /// Gates after the cut algorithm (incremental engine).
    pub gates: u64,
    /// Gates after the cut algorithm on the rebuild baseline.
    pub baseline_gates: u64,
    /// `gates - baseline_gates`: the incremental engine's quality
    /// relative to the rebuild baseline, positive = worse. Recorded
    /// explicitly because `identical` compares incremental against
    /// from-scratch only — the rebuild baseline legitimately makes
    /// different local decisions, and this column is what keeps that
    /// drift visible instead of silent.
    pub gates_delta: i64,
    /// Wall time of the rebuild (pre-incremental) engine, milliseconds.
    pub baseline_ms: f64,
    /// Wall time of the incremental engine, milliseconds.
    pub incremental_ms: f64,
    /// Worker count of the parallel timing run ([`ProfileRow::par_ms`]).
    pub jobs: usize,
    /// Wall time of the incremental engine at [`ProfileRow::jobs`]
    /// workers, milliseconds. Exercises the partition-parallel windowed
    /// round on rows at or above the gate threshold; below it the run
    /// takes the same sequential path as `incremental_ms`.
    pub par_ms: f64,
    /// Whether the parallel run reproduced the sequential incremental
    /// graph bit-identically (the windowed round's determinism contract).
    pub par_identical: bool,
    /// Cut-enumeration time inside the incremental run, milliseconds
    /// (summed across workers in windowed rounds, so it can exceed the
    /// wall clock).
    pub t_cut_enum_ms: f64,
    /// Candidate-evaluation (NPN + MFFC + gain) time, milliseconds
    /// (same per-worker summing).
    pub t_eval_ms: f64,
    /// Sequential commit-sweep time, milliseconds.
    pub t_commit_ms: f64,
    /// End-of-round garbage-collection / repair time, milliseconds.
    pub t_gc_ms: f64,
    /// Optimization cycles executed (incremental engine).
    pub cycles: u64,
    /// Rewrite passes executed.
    pub passes: u64,
    /// Cut rewrites accepted.
    pub rewrites: u64,
    /// High-water mark of the node array.
    pub peak_nodes: u64,
    /// Whether incremental and from-scratch produced bit-identical graphs.
    pub identical: bool,
    /// How the incremental result was verified against the source
    /// netlist (`exhaustive`, `SAT proved`, or `FAILED …`).
    pub verified: String,
}

/// Largest tolerated quality drift of the incremental engine relative
/// to the rebuild baseline, as a fraction of the baseline gate count.
/// The engines legitimately make different local decisions (the
/// baseline re-canonicalizes the whole graph every pass), so exact
/// equality is not the contract — but a drift past this bound is a real
/// quality regression and fails the profile.
pub const QUALITY_TOLERANCE: f64 = 0.005;

impl ProfileRow {
    /// Baseline time divided by incremental time.
    pub fn speedup(&self) -> f64 {
        self.baseline_ms / self.incremental_ms.max(1e-9)
    }

    /// Whether the row's verification column is green (independent of
    /// the incremental/from-scratch differential check).
    pub fn is_verified(&self) -> bool {
        !self.verified.starts_with("FAILED") && !self.verified.starts_with("ERROR")
    }

    /// Whether the incremental result is meaningfully worse than the
    /// rebuild baseline (see [`QUALITY_TOLERANCE`]).
    pub fn quality_regressed(&self) -> bool {
        self.gates_delta > 0
            && self.gates_delta as f64 > self.baseline_gates as f64 * QUALITY_TOLERANCE
    }

    /// Whether the row shows no regression: verified, differential and
    /// parallel determinism checks green, and quality within tolerance
    /// of the baseline.
    pub fn passed(&self) -> bool {
        self.identical && self.par_identical && self.is_verified() && !self.quality_regressed()
    }
}

/// The whole performance profile (see module docs for the format).
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Which benchmark suite the rows cover (`"small"` or `"large"`).
    pub suite: &'static str,
    /// Per-benchmark rows, suite order.
    pub rows: Vec<ProfileRow>,
    /// Optimization effort used.
    pub effort: usize,
    /// Timing iterations per engine (minimum is recorded).
    pub iters: usize,
    /// Whether a parallel (`--jobs`) sweep reproduced the sequential
    /// gate counts bit-identically.
    pub jobs_consistent: bool,
}

impl ProfileReport {
    /// Total baseline milliseconds.
    pub fn total_baseline_ms(&self) -> f64 {
        self.rows.iter().map(|r| r.baseline_ms).sum()
    }

    /// Total incremental milliseconds.
    pub fn total_incremental_ms(&self) -> f64 {
        self.rows.iter().map(|r| r.incremental_ms).sum()
    }

    /// Suite-level speedup (total baseline over total incremental).
    pub fn speedup(&self) -> f64 {
        self.total_baseline_ms() / self.total_incremental_ms().max(1e-9)
    }

    /// Whether every row passed and the parallel sweep was consistent.
    pub fn all_passed(&self) -> bool {
        self.jobs_consistent && self.rows.iter().all(|r| r.passed())
    }

    /// The machine-readable profile document (`rms-bench-profile-v2`).
    pub fn to_json(&self) -> String {
        let mut j = String::from("{\n");
        let _ = writeln!(j, "  \"schema\": \"rms-bench-profile-v2\",");
        let _ = writeln!(j, "  \"suite\": \"{}\",", self.suite);
        let _ = writeln!(j, "  \"effort\": {},", self.effort);
        let _ = writeln!(j, "  \"iters\": {},", self.iters);
        let _ = writeln!(j, "  \"engine_baseline\": \"rebuild\",");
        let _ = writeln!(j, "  \"engine\": \"incremental\",");
        let _ = writeln!(j, "  \"benchmarks\": [");
        for (i, r) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "    {{\"name\": \"{}\", \"inputs\": {}, \"initial_gates\": {}, \"gates\": {}, \
                 \"baseline_gates\": {}, \"gates_delta\": {}, \"baseline_ms\": {:.3}, \
                 \"incremental_ms\": {:.3}, \"speedup\": {:.2}, \"jobs\": {}, \"par_ms\": {:.3}, \
                 \"par_identical\": {}, \"t_cut_enum_ms\": {:.3}, \"t_eval_ms\": {:.3}, \
                 \"t_commit_ms\": {:.3}, \"t_gc_ms\": {:.3}, \"cycles\": {}, \"passes\": {}, \
                 \"rewrites\": {}, \"peak_nodes\": {}, \"identical\": {}, \"verified\": \"{}\"}}{comma}",
                escape_json(r.name),
                r.inputs,
                r.initial_gates,
                r.gates,
                r.baseline_gates,
                r.gates_delta,
                r.baseline_ms,
                r.incremental_ms,
                r.speedup(),
                r.jobs,
                r.par_ms,
                r.par_identical,
                r.t_cut_enum_ms,
                r.t_eval_ms,
                r.t_commit_ms,
                r.t_gc_ms,
                r.cycles,
                r.passes,
                r.rewrites,
                r.peak_nodes,
                r.identical,
                escape_json(&r.verified),
            );
        }
        let _ = writeln!(j, "  ],");
        let _ = writeln!(
            j,
            "  \"total\": {{\"rows\": {}, \"baseline_ms\": {:.3}, \"incremental_ms\": {:.3}, \
             \"speedup\": {:.2}, \"identical_rows\": {}, \"par_identical_rows\": {}, \
             \"verified_rows\": {}, \"quality_regressions\": {}, \"jobs_consistent\": {}}}",
            self.rows.len(),
            self.total_baseline_ms(),
            self.total_incremental_ms(),
            self.speedup(),
            self.rows.iter().filter(|r| r.identical).count(),
            self.rows.iter().filter(|r| r.par_identical).count(),
            self.rows.iter().filter(|r| r.is_verified()).count(),
            self.rows.iter().filter(|r| r.quality_regressed()).count(),
            self.jobs_consistent,
        );
        j.push_str("}\n");
        j
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_runs_and_prints() {
        super::group("test");
        let mut n = 0u64;
        super::bench("increment", 3, || {
            n += 1;
            n
        });
        assert!(n >= 4); // warm-up + 3 iterations
    }
}
