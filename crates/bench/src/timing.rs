//! A minimal stopwatch harness for the `benches/` targets.
//!
//! The build environment is offline, so the workspace cannot depend on
//! Criterion; the bench targets instead use this module with
//! `harness = false`. Results print as `name  min/avg over N iters`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `f` for `iters` iterations (after one warm-up call) and prints
/// the minimum and mean wall-clock time per iteration.
pub fn bench<R>(name: &str, iters: usize, mut f: impl FnMut() -> R) {
    assert!(iters > 0);
    black_box(f());
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed();
        min = min.min(dt);
        total += dt;
    }
    println!(
        "{name:<48} min {min:>10.2?}  avg {:>10.2?}  ({iters} iters)",
        total / iters as u32
    );
}

/// Prints a section header so grouped benches read like Criterion groups.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_runs_and_prints() {
        super::group("test");
        let mut n = 0u64;
        super::bench("increment", 3, || {
            n += 1;
            n
        });
        assert!(n >= 4); // warm-up + 3 iterations
    }
}
