//! Criterion bench for the Table II pipeline: each optimization algorithm
//! over representative benchmarks and over the whole suite (the paper's
//! "< 3 s" run-time claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rms_core::cost::Realization;
use rms_core::opt::{Algorithm, OptOptions};
use rms_core::Mig;
use rms_logic::bench_suite;

fn algorithms_per_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/per_benchmark");
    group.sample_size(10);
    let opts = OptOptions::paper();
    for name in ["x2", "cordic", "apex7", "misex3"] {
        let mig = Mig::from_netlist(&bench_suite::build(name).expect("known benchmark"));
        for alg in Algorithm::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("{alg}"), name),
                &mig,
                |b, mig| b.iter(|| alg.run(mig, Realization::Maj, &opts)),
            );
        }
    }
    group.finish();
}

fn whole_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/whole_suite");
    group.sample_size(10);
    let opts = OptOptions::paper();
    let migs: Vec<Mig> = bench_suite::LARGE_SUITE
        .iter()
        .map(|info| Mig::from_netlist(&bench_suite::build_info(info)))
        .collect();
    for alg in Algorithm::ALL {
        group.bench_function(format!("{alg}"), |b| {
            b.iter(|| {
                for mig in &migs {
                    let _ = alg.run(mig, Realization::Maj, &opts);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, algorithms_per_benchmark, whole_suite);
criterion_main!(benches);
