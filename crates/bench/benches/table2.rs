//! Bench for the Table II pipeline: each optimization algorithm over
//! representative benchmarks and over the whole suite (the paper's
//! "< 3 s" run-time claim), plus the parallel sweep speed-up.
//!
//! Run with `cargo bench -p rms-bench --bench table2`.

use rms_bench::runner;
use rms_bench::timing::{bench, group};
use rms_core::cost::Realization;
use rms_core::opt::{Algorithm, OptOptions};
use rms_core::Mig;
use rms_logic::bench_suite;

fn main() {
    let opts = OptOptions::paper();

    group("table2/per_benchmark");
    for name in ["x2", "cordic", "apex7", "misex3"] {
        let mig = Mig::from_netlist(&bench_suite::build(name).expect("known benchmark"));
        for alg in Algorithm::ALL {
            bench(&format!("{alg}/{name}"), 10, || {
                alg.run(&mig, Realization::Maj, &opts)
            });
        }
    }

    group("table2/whole_suite");
    let migs: Vec<Mig> = bench_suite::LARGE_SUITE
        .iter()
        .map(|info| Mig::from_netlist(&bench_suite::build_info(info)))
        .collect();
    for alg in Algorithm::ALL {
        bench(&format!("{alg}"), 3, || {
            for mig in &migs {
                let _ = alg.run(mig, Realization::Maj, &opts);
            }
        });
    }

    group("table2/sweep (sequential vs parallel)");
    let sweep_opts = OptOptions::with_effort(10);
    bench("run_table2 (1 thread)", 3, || {
        runner::run_table2_jobs(&sweep_opts, 1)
    });
    bench("run_table2 (all cores)", 3, || {
        runner::run_table2_jobs(&sweep_opts, 0)
    });
}
