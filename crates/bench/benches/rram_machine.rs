//! Bench for the RRAM machine itself: the two majority-gate realizations
//! of Figs. 3 / Sec. III-A2, end-to-end compiled circuits, and the
//! compilers.
//!
//! Run with `cargo bench -p rms-bench --bench rram_machine`.

use rms_bench::timing::{bench, group};
use rms_core::cost::Realization;
use rms_core::Mig;
use rms_logic::bench_suite;
use rms_rram::compile::compile;
use rms_rram::gates::{imp_majority_gate, maj_majority_gate};
use rms_rram::machine::Machine;

fn main() {
    group("machine/majority_gate");
    let imp = imp_majority_gate();
    let maj = maj_majority_gate();
    let inputs = [
        0xAAAA_AAAA_AAAA_AAAAu64,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
    ];
    let mut m = Machine::new();
    bench("imp_10_steps", 1000, || {
        m.run_words(&imp, &inputs).expect("valid")
    });
    bench("maj_3_steps", 1000, || {
        m.run_words(&maj, &inputs).expect("valid")
    });

    group("machine/compiled");
    for name in ["9sym_d", "clip", "t481"] {
        let mig = Mig::from_netlist(&bench_suite::build(name).expect("known benchmark"));
        for real in Realization::ALL {
            let cc = compile(&mig, real);
            let inputs: Vec<u64> = (0..mig.num_inputs() as u64)
                .map(|i| 0x9E37_79B9_7F4A_7C15u64.rotate_left(i as u32))
                .collect();
            let mut machine = Machine::new();
            bench(&format!("{real}/{name}"), 100, || {
                machine.run_words(&cc.program, &inputs).expect("valid")
            });
        }
    }

    group("machine/compile");
    for name in ["apex7", "misex3"] {
        let mig = Mig::from_netlist(&bench_suite::build(name).expect("known benchmark"));
        for real in Realization::ALL {
            bench(&format!("{real}/{name}"), 20, || compile(&mig, real));
        }
    }
}
