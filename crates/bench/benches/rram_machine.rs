//! Criterion bench for the RRAM machine itself: the two majority-gate
//! realizations of Figs. 3 / Sec. III-A2 and end-to-end compiled circuits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rms_core::cost::Realization;
use rms_core::Mig;
use rms_logic::bench_suite;
use rms_rram::compile::compile;
use rms_rram::gates::{imp_majority_gate, maj_majority_gate};
use rms_rram::machine::Machine;

fn majority_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine/majority_gate");
    let imp = imp_majority_gate();
    let maj = maj_majority_gate();
    let inputs = [0xAAAA_AAAA_AAAA_AAAAu64, 0xCCCC_CCCC_CCCC_CCCC, 0xF0F0_F0F0_F0F0_F0F0];
    group.bench_function("imp_10_steps", |b| {
        let mut m = Machine::new();
        b.iter(|| m.run_words(&imp, &inputs).expect("valid"))
    });
    group.bench_function("maj_3_steps", |b| {
        let mut m = Machine::new();
        b.iter(|| m.run_words(&maj, &inputs).expect("valid"))
    });
    group.finish();
}

fn compiled_circuits(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine/compiled");
    group.sample_size(20);
    for name in ["9sym_d", "clip", "t481"] {
        let mig = Mig::from_netlist(&bench_suite::build(name).expect("known benchmark"));
        for real in Realization::ALL {
            let cc = compile(&mig, real);
            let inputs: Vec<u64> = (0..mig.num_inputs() as u64)
                .map(|i| 0x9E37_79B9_7F4A_7C15u64.rotate_left(i as u32))
                .collect();
            group.bench_with_input(
                BenchmarkId::new(format!("{real}"), name),
                &cc.program,
                |b, prog| {
                    let mut m = Machine::new();
                    b.iter(|| m.run_words(prog, &inputs).expect("valid"))
                },
            );
        }
    }
    group.finish();
}

fn compilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine/compile");
    group.sample_size(20);
    for name in ["apex7", "misex3"] {
        let mig = Mig::from_netlist(&bench_suite::build(name).expect("known benchmark"));
        for real in Realization::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("{real}"), name),
                &mig,
                |b, mig| b.iter(|| compile(mig, real)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, majority_gates, compiled_circuits, compilation);
criterion_main!(benches);
