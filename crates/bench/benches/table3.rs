//! Criterion bench for the Table III baselines: BDD construction +
//! synthesis [11] and AIG synthesis [12], against the MIG flow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rms_aig::Aig;
use rms_bdd::{build as bdd_build, rram_synth as bdd_rram, BddSynthOptions};
use rms_core::cost::Realization;
use rms_core::opt::{self, OptOptions};
use rms_core::Mig;
use rms_logic::bench_suite;

fn bdd_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/bdd");
    group.sample_size(10);
    let synth = BddSynthOptions::default();
    for name in ["parity", "t481", "cordic"] {
        let nl = bench_suite::build(name).expect("known benchmark");
        group.bench_with_input(BenchmarkId::new("synthesize", name), &nl, |b, nl| {
            b.iter(|| {
                let circ = bdd_build::from_netlist(nl, bdd_build::Ordering::DfsFromOutputs);
                bdd_rram::synthesize(&circ, &synth)
            })
        });
    }
    group.finish();
}

fn aig_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/aig");
    group.sample_size(10);
    for name in ["9sym_d", "sym10_d", "t481_d"] {
        let nl = bench_suite::build(name).expect("known benchmark");
        group.bench_with_input(BenchmarkId::new("synthesize", name), &nl, |b, nl| {
            b.iter(|| {
                let aig = Aig::from_netlist(nl).balance();
                rms_aig::rram_synth::synthesize(&aig)
            })
        });
    }
    group.finish();
}

fn mig_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/mig");
    group.sample_size(10);
    let opts = OptOptions::paper();
    for name in ["9sym_d", "sym10_d", "t481_d"] {
        let mig = Mig::from_netlist(&bench_suite::build(name).expect("known benchmark"));
        group.bench_with_input(BenchmarkId::new("multi_objective", name), &mig, |b, mig| {
            b.iter(|| opt::optimize_rram(mig, Realization::Maj, &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bdd_baseline, aig_baseline, mig_flow);
criterion_main!(benches);
