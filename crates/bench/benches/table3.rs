//! Bench for the Table III baselines: BDD construction + synthesis \[11\]
//! and AIG synthesis \[12\], against the MIG flow.
//!
//! Run with `cargo bench -p rms-bench --bench table3`.

use rms_aig::Aig;
use rms_bdd::{build as bdd_build, rram_synth as bdd_rram, BddSynthOptions};
use rms_bench::timing::{bench, group};
use rms_core::cost::Realization;
use rms_core::opt::{self, OptOptions};
use rms_core::Mig;
use rms_logic::bench_suite;

fn main() {
    group("table3/bdd");
    let synth = BddSynthOptions::default();
    for name in ["parity", "t481", "cordic"] {
        let nl = bench_suite::build(name).expect("known benchmark");
        bench(&format!("synthesize/{name}"), 10, || {
            let circ = bdd_build::from_netlist(&nl, bdd_build::Ordering::DfsFromOutputs);
            bdd_rram::synthesize(&circ, &synth)
        });
    }

    group("table3/aig");
    for name in ["9sym_d", "sym10_d", "t481_d"] {
        let nl = bench_suite::build(name).expect("known benchmark");
        bench(&format!("synthesize/{name}"), 10, || {
            let aig = Aig::from_netlist(&nl).balance();
            rms_aig::rram_synth::synthesize(&aig)
        });
    }

    group("table3/mig");
    let opts = OptOptions::paper();
    for name in ["9sym_d", "sym10_d", "t481_d"] {
        let mig = Mig::from_netlist(&bench_suite::build(name).expect("known benchmark"));
        bench(&format!("multi_objective/{name}"), 10, || {
            opt::optimize_rram(&mig, Realization::Maj, &opts)
        });
    }
}
