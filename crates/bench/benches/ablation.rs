//! Ablation benches for the design choices called out in ARCHITECTURE.md:
//!
//! - `effort` sweep: how many cycles the algorithms actually need,
//! - guarded vs. unguarded inverter propagation,
//! - BDD crossbar row capacity (the calibrated constant of the \[11\]
//!   baseline model).
//!
//! Run with `cargo bench -p rms-bench --bench ablation`.

use rms_bdd::{build as bdd_build, rram_synth as bdd_rram, BddSynthOptions};
use rms_bench::timing::{bench, group};
use rms_core::cost::Realization;
use rms_core::opt::{optimize_steps, OptOptions};
use rms_core::rewrite::{inverter_propagation, InverterCases};
use rms_core::Mig;
use rms_logic::bench_suite;

fn main() {
    group("ablation/effort");
    let mig = Mig::from_netlist(&bench_suite::build("misex3").expect("known benchmark"));
    for effort in [1usize, 5, 10, 40] {
        let opts = OptOptions::with_effort(effort);
        bench(&format!("effort={effort}"), 10, || {
            optimize_steps(&mig, Realization::Maj, &opts)
        });
    }

    group("ablation/inverter_guard");
    let mig = Mig::from_netlist(&bench_suite::build("apex7").expect("known benchmark"));
    for guarded in [false, true] {
        bench(&format!("guarded={guarded}"), 20, || {
            inverter_propagation(&mig, InverterCases::ALL, guarded)
        });
    }

    group("ablation/bdd_row_capacity");
    let nl = bench_suite::build("t481").expect("known benchmark");
    let circ = bdd_build::from_netlist(&nl, bdd_build::Ordering::DfsFromOutputs);
    for capacity in [1usize, 8, 24, 256] {
        let opts = BddSynthOptions {
            row_capacity: capacity,
        };
        bench(&format!("capacity={capacity}"), 10, || {
            bdd_rram::synthesize(&circ, &opts)
        });
    }
}
