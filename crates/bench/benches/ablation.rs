//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! - `effort` sweep: how many cycles the algorithms actually need,
//! - guarded vs. unguarded inverter propagation,
//! - BDD crossbar row capacity (the calibrated constant of the [11]
//!   baseline model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rms_bdd::{build as bdd_build, rram_synth as bdd_rram, BddSynthOptions};
use rms_core::cost::Realization;
use rms_core::opt::{optimize_steps, OptOptions};
use rms_core::rewrite::{inverter_propagation, InverterCases};
use rms_core::Mig;
use rms_logic::bench_suite;

fn effort_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/effort");
    group.sample_size(10);
    let mig = Mig::from_netlist(&bench_suite::build("misex3").expect("known benchmark"));
    for effort in [1usize, 5, 10, 40] {
        let opts = OptOptions::with_effort(effort);
        group.bench_with_input(BenchmarkId::from_parameter(effort), &mig, |b, mig| {
            b.iter(|| optimize_steps(mig, Realization::Maj, &opts))
        });
    }
    group.finish();
}

fn inverter_guard(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/inverter_guard");
    group.sample_size(20);
    let mig = Mig::from_netlist(&bench_suite::build("apex7").expect("known benchmark"));
    for guarded in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(guarded),
            &mig,
            |b, mig| b.iter(|| inverter_propagation(mig, InverterCases::ALL, guarded)),
        );
    }
    group.finish();
}

fn bdd_row_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/bdd_row_capacity");
    group.sample_size(10);
    let nl = bench_suite::build("t481").expect("known benchmark");
    let circ = bdd_build::from_netlist(&nl, bdd_build::Ordering::DfsFromOutputs);
    for capacity in [1usize, 8, 24, 256] {
        let opts = BddSynthOptions {
            row_capacity: capacity,
        };
        group.bench_with_input(BenchmarkId::from_parameter(capacity), &circ, |b, circ| {
            b.iter(|| bdd_rram::synthesize(circ, &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, effort_sweep, inverter_guard, bdd_row_capacity);
criterion_main!(benches);
