//! The incremental (in-place) cut-rewriting engine.
//!
//! The from-scratch driver in [`crate::rewrite`] re-enumerates every cut
//! of the whole graph and rebuilds the graph into a fresh [`Mig`] on
//! every rewrite round. This module runs the same NPN-database round on
//! a persistent [`IncrementalMig`] instead:
//!
//! - accepted rewrites **splice** the database structure into the graph
//!   ([`IncrementalMig::replace`]) — the MFFC of the replaced node is
//!   garbage-collected through the live reference counts, and levels and
//!   simulation signatures are repaired only in the transitive fanout,
//! - enumerated cuts are **cached** per node in a [`CutStore`] and
//!   invalidated only in the transitive fanout of a rewrite — a node
//!   whose transitive fanin did not change keeps its cuts across rounds
//!   *and across the interleaved Ω passes of the whole script*, and
//! - the node's cached 64-lane simulation signature vetoes any candidate
//!   whose instantiated structure does not match the node it replaces —
//!   a constant-time functional spot-check in front of the structural
//!   argument (and of any later SAT verification).
//!
//! The **from-scratch mode** ([`EngineMode::FromScratch`]) runs the
//! identical decision procedure but drops the entire cut cache at every
//! round. Cached cuts of a clean node are bit-identical to recomputed
//! ones (that is exactly the cache invariant), so the two modes produce
//! bit-identical graphs — the differential harness in
//! `tests/incremental.rs` asserts this over random netlists, which
//! pins the invalidation rule down as *the* correctness argument of the
//! incremental engine.

use crate::cuts::{self, compute_maj_cuts, leaf_cuts, Cut, CutList};
use crate::database::{database, Database};
use crate::npn;
use crate::rewrite::RoundStats;
use rms_core::fanout::{eliminate_inplace, reshape_inplace};
use rms_core::opt::{OptOptions, OptStats};
use rms_core::rewrite::eliminate;
use rms_core::{IncrementalMig, Mig, MigNode, MigSignal};

/// Whether the in-place engine reuses cached cuts across rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Reuse cuts outside the transitive fanout of rewrites (fast path).
    #[default]
    Incremental,
    /// Recompute every cut at every round (reference for the
    /// differential guarantee; same decisions, same results).
    FromScratch,
}

/// Per-node cut cache over an [`IncrementalMig`].
///
/// The cache invariant: `valid[n]` implies the stored [`CutList`] equals
/// what [`CutStore::ensure`] would recompute from the node's current
/// transitive fanin. The engine maintains it by invalidating the
/// transitive fanout of every structural change
/// ([`CutStore::invalidate_tfo`]).
#[derive(Debug, Default)]
pub struct CutStore {
    lists: Vec<CutList>,
    valid: Vec<bool>,
    /// Cut sets recomputed (cache misses).
    pub recomputed: u64,
    /// Cut sets served from cache at a rewrite root.
    pub reused: u64,
    scratch: Vec<Cut>,
}

impl CutStore {
    /// An empty cache.
    pub fn new() -> Self {
        CutStore::default()
    }

    /// Grows or shrinks the cache to the graph's node-array length
    /// (undone tentative nodes shrink it; new entries start invalid).
    fn sync(&mut self, len: usize) {
        if self.lists.len() > len {
            self.lists.truncate(len);
            self.valid.truncate(len);
        } else {
            self.lists.resize(len, CutList::default());
            self.valid.resize(len, false);
        }
    }

    /// Drops every cached cut set (the from-scratch mode's round entry).
    pub fn invalidate_all(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
    }

    /// Invalidates the changed nodes and their transitive fanout.
    ///
    /// Stopping at an already-invalid node is sound because the cache
    /// invariant guarantees its fanout was invalidated when it became
    /// invalid.
    pub fn invalidate_tfo(&mut self, g: &IncrementalMig, changed: &[u32]) {
        self.sync(g.len());
        let mut stack: Vec<u32> = Vec::new();
        for &c in changed {
            if (c as usize) < self.valid.len() && self.valid[c as usize] {
                self.valid[c as usize] = false;
                stack.push(c);
            } else if (c as usize) < self.valid.len() {
                // Newly created nodes are already invalid, but their
                // fanout may have been valid before they were spliced in.
                stack.push(c);
            }
        }
        while let Some(i) = stack.pop() {
            for &p in g.fanouts(i as usize) {
                if self.valid[p as usize] {
                    self.valid[p as usize] = false;
                    stack.push(p);
                }
            }
        }
    }

    /// The (valid) cut set of `idx`, recomputing stale sets in its
    /// transitive fanin first. Deterministic.
    pub fn ensure(&mut self, g: &IncrementalMig, idx: usize) -> CutList {
        self.sync(g.len());
        if self.valid[idx] {
            self.reused += 1;
            return self.lists[idx];
        }
        let mut stack: Vec<u32> = vec![idx as u32];
        while let Some(&top) = stack.last() {
            let i = top as usize;
            if self.valid[i] {
                stack.pop();
                continue;
            }
            match g.node(i) {
                MigNode::Const0 => {
                    self.lists[i] = leaf_cuts(i, true);
                    self.valid[i] = true;
                    stack.pop();
                }
                MigNode::Input(_) => {
                    self.lists[i] = leaf_cuts(i, false);
                    self.valid[i] = true;
                    stack.pop();
                }
                MigNode::Maj(kids) => {
                    let mut ready = true;
                    for k in kids {
                        if !self.valid[k.node()] {
                            ready = false;
                            stack.push(k.node() as u32);
                        }
                    }
                    if ready {
                        let (c0, c1, c2) = (
                            self.lists[kids[0].node()],
                            self.lists[kids[1].node()],
                            self.lists[kids[2].node()],
                        );
                        self.lists[i] = compute_maj_cuts(
                            i,
                            kids,
                            c0.as_slice(),
                            c1.as_slice(),
                            c2.as_slice(),
                            cuts::MAX_CUTS_PER_NODE,
                            &mut self.scratch,
                        );
                        self.valid[i] = true;
                        self.recomputed += 1;
                        stack.pop();
                    }
                }
            }
        }
        self.lists[idx]
    }

    /// The cached cut set of `idx` without recomputation — only valid
    /// between a round's pre-pass and its end (the mapped sweep works on
    /// round-start cuts by design).
    pub fn cached(&self, idx: usize) -> CutList {
        debug_assert!(self.valid[idx], "cut cache miss outside the pre-pass");
        self.lists[idx]
    }
}

/// One in-place rewrite round over a persistent graph, following the
/// same decision procedure as [`crate::rewrite::rewrite_round`]:
///
/// 1. a **pre-pass** validates the cut cache against the round-start
///    graph (recomputing only what previous rewrites invalidated —
///    this is the incremental saving) and takes the MFFC size of every
///    candidate cut on the still-pristine graph, exactly as the rebuild
///    engine measures gains against its immutable source graph,
/// 2. a topological **sweep** carries an old-signal → image map, exactly
///    like the rebuild engine's `map` into its fresh graph: every node
///    is turned into its image in place ([`IncrementalMig::rechild_to`],
///    free when nothing moved), candidates are evaluated against the
///    round-start cuts with their leaves mapped through `map`, and an
///    accepted replacement only updates the map — parents pick the image
///    up at their own turn. The strash is rebuilt image-by-image
///    ([`IncrementalMig::begin_mapped_round`]), so candidate
///    instantiation shares with exactly the structures a from-scratch
///    rebuild would offer — no more (stale cones), no fewer,
/// 3. [`IncrementalMig::finish_mapped_round`] rewires the outputs,
///    collects everything unreachable, and repairs the deferred derived
///    structures in one linear, hash-free pass.
pub fn round_inplace(
    g: &mut IncrementalMig,
    cuts: &mut CutStore,
    db: &Database,
    accept_zero_gain: bool,
    mode: EngineMode,
) -> RoundStats {
    // Absorb structural changes from the interleaved Ω passes.
    let changed = g.take_changed();
    cuts.invalidate_tfo(g, &changed);
    if mode == EngineMode::FromScratch {
        cuts.invalidate_all();
    }
    let mut stats = RoundStats::default();
    let order = g.topo_order();
    // Pre-pass on the pristine round-start graph: cut sets (cached) and
    // per-cut MFFC sizes (recomputed every round — they depend on
    // reference counts, which the cut invalidation rule does not track).
    let mut mffcs: Vec<[u32; cuts::MAX_CUTS_PER_NODE]> =
        vec![[0; cuts::MAX_CUTS_PER_NODE]; order.len()];
    for (pos, &idx) in order.iter().enumerate() {
        let idx = idx as usize;
        let list = cuts.ensure(g, idx);
        for (ci, &cut) in list.iter().enumerate() {
            if !cut.is_trivial(idx) && !cut.leaves().is_empty() {
                mffcs[pos][ci] = g.mffc_size(idx, cut.leaves());
            }
        }
    }
    g.begin_mapped_round();
    let mut map: Vec<MigSignal> = (0..g.len()).map(|i| MigSignal::new(i, false)).collect();
    for (pos, &idx) in order.iter().enumerate() {
        let idx = idx as usize;
        let MigNode::Maj(kids) = g.node(idx) else {
            continue;
        };
        let conv = kids.map(|k| map[k.node()].complement_if(k.is_complemented()));
        let image = match g.rechild_to(idx, conv) {
            rms_core::fanout::Rechild::Superseded(s) => s,
            _ => MigSignal::new(idx, false),
        };
        map[idx] = image;
        // Evaluate the round-start cuts with the pristine MFFC sizes.
        let list = cuts.cached(idx);
        let mut best: Option<(i64, Cut, usize, u16, i64)> = None;
        for (ci, &cut) in list.iter().enumerate() {
            if cut.is_trivial(idx) || cut.leaves().is_empty() {
                continue;
            }
            stats.cuts += 1;
            let (class, t) = npn::canonicalize(cut.tt);
            let entry = db.entry(class);
            let mffc = mffcs[pos][ci] as i64;
            let gain = mffc - entry.gates() as i64;
            if gain < 0 || (gain == 0 && !accept_zero_gain) {
                continue;
            }
            stats.candidates += 1;
            if best.is_none_or(|(bg, ..)| gain > bg) {
                best = Some((gain, cut, t, class, mffc));
            }
        }
        let Some((_, cut, t, class, freed)) = best else {
            continue;
        };
        // Instantiate tentatively; the nodes actually added (after
        // structural hashing against the whole graph, replaced
        // structures included) decide acceptance.
        let inv = npn::invert(t);
        let tr = npn::transform(inv);
        let mut inputs = [MigSignal::FALSE; 4];
        for (i, slot) in inputs.iter_mut().enumerate() {
            let li = tr.perm[i] as usize;
            let base = match cut.leaves().get(li) {
                Some(&leaf) => map[leaf as usize],
                None => MigSignal::FALSE,
            };
            *slot = base.complement_if((tr.flips >> i) & 1 == 1);
        }
        let len_before = g.len();
        let cand = db
            .entry(class)
            .instantiate(g, inputs)
            .complement_if(tr.negate_output);
        let added = (g.len() - len_before) as i64;
        // Word-parallel signature spot-check: the candidate must agree
        // with the node on all 64 cached simulation lanes. This never
        // fires for a correct database — it is a constant-time guard in
        // front of the map update (and of any SAT verification later).
        if g.sig_of(cand) != g.sig_of(MigSignal::new(idx, false)) {
            stats.sig_vetoes += 1;
            g.undo_tail(len_before);
            continue;
        }
        let real_gain = freed - added;
        if real_gain > 0 || (real_gain == 0 && accept_zero_gain) {
            stats.rewrites += 1;
            if real_gain == 0 {
                stats.zero_gain += 1;
            }
            map[idx] = cand;
        } else {
            g.undo_tail(len_before);
        }
    }
    g.finish_mapped_round(&map);
    stats.cut_sets_recomputed = cuts.recomputed;
    stats.cut_sets_reused = cuts.reused;
    cuts.recomputed = 0;
    cuts.reused = 0;
    stats
}

/// Cycles without a new best iterate after which the in-place script
/// stops (under [`OptOptions::early_exit`]). The reshape pass alternates
/// its push direction every cycle, so the raw fingerprint oscillates
/// with period 2 and the fixpoint check of the rebuild script almost
/// never fires — that script always burns its whole effort budget
/// ping-ponging between the same states. Stagnation of the *best
/// iterate* is the meaningful convergence signal; on the bundled suite
/// every best is found within 8 cycles.
pub const STAGNATION_WINDOW: usize = 8;

/// Algorithm 5 on the in-place engine: the same cycle structure as
/// [`rms_core::opt::cut_script`] (eliminate; rewrite round with zero-gain
/// hops on odd cycles; eliminate; reshape; eliminate; best iterate by
/// `(gates, depth)`), but every pass splices one persistent graph, so
/// cuts survive across passes *and* cycles in incremental mode — and
/// the cycle loop stops after [`STAGNATION_WINDOW`] cycles without
/// improvement instead of burning the full effort budget.
pub fn cut_script_inplace(mig: &Mig, opts: &OptOptions, mode: EngineMode) -> (Mig, OptStats) {
    let db = database();
    let compacted = mig.compact();
    let mut g = IncrementalMig::from_mig(&compacted);
    let mut cuts = CutStore::new();
    let mut best = compacted;
    let mut best_score = (best.num_gates(), best.depth());
    let mut cycles = 0usize;
    let mut rewrites = 0u64;
    let mut stale = 0usize;
    for c in 0..opts.effort {
        let before = g.fingerprint();
        eliminate_inplace(&mut g);
        let st = round_inplace(&mut g, &mut cuts, db, c % 2 == 1, mode);
        rewrites += st.rewrites;
        eliminate_inplace(&mut g);
        reshape_inplace(&mut g, c % 2 == 0);
        eliminate_inplace(&mut g);
        cycles = c + 1;
        let score = (g.num_gates(), g.depth());
        if score < best_score {
            best_score = score;
            best = g.to_mig();
            stale = 0;
        } else {
            stale += 1;
        }
        if opts.early_exit && (g.fingerprint() == before || stale >= STAGNATION_WINDOW) {
            break;
        }
    }
    let out = eliminate(&best);
    let stats = OptStats {
        cycles,
        passes: cycles as u64 * 5 + 1,
        rewrites,
        gates_before: mig.num_gates() as u64,
        gates_after: out.num_gates() as u64,
        peak_nodes: g.peak_len() as u64,
        ..OptStats::default()
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_logic::bench_suite;
    use rms_logic::sim::check_equivalence;

    fn bench_mig(name: &str) -> Mig {
        Mig::from_netlist(&bench_suite::build(name).unwrap())
    }

    fn assert_equiv(a: &Mig, b: &Mig, what: &str) {
        let res = check_equivalence(&a.to_netlist(), &b.to_netlist());
        assert!(res.holds(), "{what}: {res:?}");
    }

    const SAMPLES: &[&str] = &["rd53_f2", "9sym_d", "con1_f1", "sao2_f4", "exam3_d"];

    /// Exact structural equality of two graphs: node-for-node after a
    /// canonical rebuild.
    fn assert_bit_identical(a: &Mig, b: &Mig, what: &str) {
        assert_eq!(a.num_gates(), b.num_gates(), "{what}: gate counts");
        assert_eq!(a.depth(), b.depth(), "{what}: depths");
        assert_eq!(a.len(), b.len(), "{what}: node counts");
        for idx in 0..a.len() {
            assert_eq!(a.node(idx), b.node(idx), "{what}: node {idx}");
        }
        assert_eq!(a.outputs(), b.outputs(), "{what}: outputs");
    }

    #[test]
    fn inplace_round_preserves_function() {
        let db = database();
        for name in SAMPLES {
            let m = bench_mig(name).compact();
            for zero_gain in [false, true] {
                let mut g = IncrementalMig::from_mig(&m);
                let mut cuts = CutStore::new();
                let st = round_inplace(&mut g, &mut cuts, db, zero_gain, EngineMode::Incremental);
                g.assert_consistent();
                assert_eq!(st.sig_vetoes, 0, "{name}: database produced a veto");
                let r = g.to_mig();
                assert_equiv(&m, &r, name);
                if !zero_gain {
                    assert!(r.num_gates() <= m.num_gates(), "{name}");
                }
            }
        }
    }

    #[test]
    fn inplace_round_finds_the_majority_gate() {
        // Same canary as the rebuild engine: a 5-gate majority
        // sum-of-products collapses to one node.
        let mut m = Mig::with_inputs("maj_sop", 3);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let bc = m.and(b, c);
        let o1 = m.or(ab, ac);
        let o2 = m.or(o1, bc);
        m.add_output("f", o2);
        let mut g = IncrementalMig::from_mig(&m.compact());
        let mut cuts = CutStore::new();
        let st = round_inplace(
            &mut g,
            &mut cuts,
            database(),
            false,
            EngineMode::Incremental,
        );
        assert!(st.rewrites >= 1, "{st:?}");
        assert_eq!(g.num_gates(), 1, "{st:?}");
        assert_equiv(&m, &g.to_mig(), "maj_sop");
    }

    #[test]
    fn incremental_and_from_scratch_are_bit_identical() {
        let opts = OptOptions::with_effort(6);
        for name in SAMPLES {
            let m = bench_mig(name);
            let (inc, _) = cut_script_inplace(&m, &opts, EngineMode::Incremental);
            let (scr, _) = cut_script_inplace(&m, &opts, EngineMode::FromScratch);
            assert_bit_identical(&inc, &scr, name);
            assert_equiv(&m, &inc, name);
        }
    }

    #[test]
    fn incremental_reuses_cuts() {
        let m = bench_mig("9sym_d");
        let mut g = IncrementalMig::from_mig(&m.compact());
        let mut cuts = CutStore::new();
        let db = database();
        let st1 = round_inplace(&mut g, &mut cuts, db, false, EngineMode::Incremental);
        // Round one sees an empty cache and computes every cut set; a
        // second round recomputes only the transitive fanout of round
        // one's rewrites and serves the rest from the cache.
        let st2 = round_inplace(&mut g, &mut cuts, db, false, EngineMode::Incremental);
        assert!(st1.cut_sets_recomputed > 0);
        assert_eq!(st1.cut_sets_reused, 0);
        assert!(st2.cut_sets_reused > 0, "{st2:?}");
        assert!(
            st2.cut_sets_recomputed < st1.cut_sets_recomputed,
            "round 2 recomputed no less than round 1: {st1:?} vs {st2:?}"
        );
    }

    #[test]
    fn script_quality_not_worse_than_rebuild_engine() {
        // At the paper's effort the in-place script (same rounds, plus
        // the stagnation cutoff) must not lose to the rebuild engine in
        // aggregate.
        let opts = OptOptions::with_effort(40);
        let mut inplace_total = 0u64;
        let mut rebuild_total = 0u64;
        for name in SAMPLES {
            let m = bench_mig(name);
            let (inc, _) = cut_script_inplace(&m, &opts, EngineMode::Incremental);
            let mut round = |m: &Mig, zg: bool| {
                let (out, st) = crate::rewrite::rewrite_round(m, zg);
                (out, st.rewrites)
            };
            let (reb, _) = rms_core::opt::cut_script(&m, &opts, &mut round);
            assert_equiv(&m, &inc, name);
            inplace_total += inc.num_gates() as u64;
            rebuild_total += reb.num_gates() as u64;
        }
        assert!(
            inplace_total <= rebuild_total,
            "in-place {inplace_total} gates vs rebuild {rebuild_total}"
        );
    }
}
