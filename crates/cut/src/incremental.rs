//! The incremental (in-place) cut-rewriting engine.
//!
//! The from-scratch driver in [`crate::rewrite`] re-enumerates every cut
//! of the whole graph and rebuilds the graph into a fresh [`Mig`] on
//! every rewrite round. This module runs the same NPN-database round on
//! a persistent [`IncrementalMig`] instead:
//!
//! - accepted rewrites **splice** the database structure into the graph
//!   ([`IncrementalMig::replace`]) — the MFFC of the replaced node is
//!   garbage-collected through the live reference counts, and levels and
//!   simulation signatures are repaired only in the transitive fanout,
//! - enumerated cuts are **cached** per node in a [`CutStore`] and
//!   invalidated only in the transitive fanout of a rewrite — a node
//!   whose transitive fanin did not change keeps its cuts across rounds
//!   *and across the interleaved Ω passes of the whole script*. The
//!   cache is **memory-bounded**: cut lists live in a capped slot pool
//!   with deterministic round-robin eviction, so graphs in the 100k+
//!   node range (`rms_logic::large_suite`) cannot pin an unbounded
//!   per-node working set — eviction costs recomputation, never
//!   results, and
//! - the node's cached 64-lane simulation signature vetoes any candidate
//!   whose instantiated structure does not match the node it replaces —
//!   a constant-time functional spot-check in front of the structural
//!   argument (and of any later SAT verification).
//!
//! The **from-scratch mode** ([`EngineMode::FromScratch`]) runs the
//! identical decision procedure but drops the entire cut cache at every
//! round. Cached cuts of a clean node are bit-identical to recomputed
//! ones (that is exactly the cache invariant), so the two modes produce
//! bit-identical graphs — the differential harness in
//! `tests/incremental.rs` asserts this over random netlists, which
//! pins the invalidation rule down as *the* correctness argument of the
//! incremental engine.

use crate::cuts::{self, compute_maj_cuts, leaf_cuts, Cut, CutList};
use crate::database::{database, Database};
use crate::npn;
use crate::rewrite::RoundStats;
use rms_core::fanout::{eliminate_inplace, reshape_inplace};
use rms_core::hash::FxHashMap;
use rms_core::opt::{OptOptions, OptStats};
use rms_core::par::par_map_threads;
use rms_core::rewrite::eliminate;
use rms_core::{IncrementalMig, Mig, MigNode, MigSignal};
use std::time::Instant;

/// Whether the in-place engine reuses cached cuts across rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Reuse cuts outside the transitive fanout of rewrites (fast path).
    #[default]
    Incremental,
    /// Recompute every cut at every round (reference for the
    /// differential guarantee; same decisions, same results).
    FromScratch,
}

/// Per-node sentinel: cut set dropped by **invalidation** — the node's
/// transitive fanout was dropped with it, so an invalidation walk may
/// stop here. Also the "free" marker on the pool-owner side.
const STALE: u32 = u32::MAX;

/// Per-node sentinel: cut set dropped by the memory bound's **eviction**
/// — nothing is known about the fanout, so an invalidation walk must
/// continue through this node.
const EVICTED: u32 = u32::MAX - 1;

/// Hard floor on [`CutStore`] capacity: far above the handful of slots
/// one recomputation keeps live at once, far below any useful cache.
pub const MIN_CUT_CACHE_BOUND: usize = 64;

/// Per-node cut cache over an [`IncrementalMig`], bounded in memory.
///
/// The cache invariant: a resident [`CutList`] equals what
/// [`CutStore::ensure`] would recompute from the node's current
/// transitive fanin. The engine maintains it by invalidating the
/// transitive fanout of every structural change
/// ([`CutStore::invalidate_tfo`]).
///
/// # The memory bound
///
/// Cut lists live in a slot pool capped at `cap` entries
/// ([`rms_core::opt::OptOptions::cut_cache_bound`]); storing into a full
/// pool evicts the victim under a deterministic round-robin clock. On a
/// 100k-node graph an unbounded cache would pin one `CutList` (~168 B)
/// per node for the whole script; the pool keeps the hot region resident
/// and recomputes the rest on demand. Eviction only costs recomputation
/// — recomputed lists are bit-identical to evicted ones (that is exactly
/// the cache invariant), so the bound never changes optimization
/// results, and the clock makes *which* lists are recomputed
/// deterministic too. Slots written during the current [`CutStore::ensure`]
/// call are never its victims (an epoch stamp protects them), which
/// guarantees the recomputation DFS terminates even when a stale region
/// is larger than the pool: the pool then overflows past `cap` for the
/// duration of the burst instead of thrashing.
#[derive(Debug)]
pub struct CutStore {
    /// Per-node pool slot, or [`STALE`] / [`EVICTED`] when not resident.
    slots: Vec<u32>,
    pool: Vec<CutList>,
    /// Pool slot → owning node (`STALE` = free).
    owners: Vec<u32>,
    /// `ensure`-call epoch in which each pool slot was last written.
    stamps: Vec<u64>,
    free: Vec<u32>,
    /// Round-robin eviction hand.
    clock: usize,
    /// Resident-list bound (soft during one recomputation burst).
    cap: usize,
    epoch: u64,
    /// Cut sets recomputed (cache misses).
    pub recomputed: u64,
    /// Cut sets served from cache at a rewrite root.
    pub reused: u64,
    /// Cut sets evicted by the memory bound.
    pub evicted: u64,
    scratch: Vec<Cut>,
}

impl Default for CutStore {
    fn default() -> Self {
        CutStore::with_capacity(rms_core::opt::DEFAULT_CUT_CACHE_BOUND)
    }
}

impl CutStore {
    /// An empty cache with the default memory bound.
    pub fn new() -> Self {
        CutStore::default()
    }

    /// An empty cache bounded to `cap` resident cut sets (clamped to
    /// [`MIN_CUT_CACHE_BOUND`]).
    pub fn with_capacity(cap: usize) -> Self {
        CutStore {
            slots: Vec::new(),
            pool: Vec::new(),
            owners: Vec::new(),
            stamps: Vec::new(),
            free: Vec::new(),
            clock: 0,
            cap: cap.max(MIN_CUT_CACHE_BOUND),
            epoch: 0,
            recomputed: 0,
            reused: 0,
            evicted: 0,
            scratch: Vec::new(),
        }
    }

    /// The resident-list bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of currently resident cut sets.
    pub fn resident(&self) -> usize {
        self.pool.len() - self.free.len()
    }

    /// Whether node `idx` has a resident cut set.
    fn is_resident(&self, idx: usize) -> bool {
        self.slots.get(idx).is_some_and(|&s| s < EVICTED)
    }

    /// Returns node `idx`'s slot (if any) to the free list, marking the
    /// node [`STALE`] — callers are responsible for the transitivity
    /// that marker promises.
    fn drop_list(&mut self, idx: usize) {
        let s = self.slots[idx];
        if s < EVICTED {
            self.owners[s as usize] = STALE;
            self.free.push(s);
        }
        self.slots[idx] = STALE;
    }

    /// Stores `list` as node `idx`'s cut set, evicting under the clock
    /// when the pool is at capacity.
    fn store(&mut self, idx: usize, list: CutList) {
        let s = self.slots[idx];
        if s < EVICTED {
            self.pool[s as usize] = list;
            self.stamps[s as usize] = self.epoch;
            return;
        }
        let slot = if let Some(s) = self.free.pop() {
            s as usize
        } else if self.pool.len() < self.cap {
            self.pool.push(CutList::default());
            self.owners.push(STALE);
            self.stamps.push(self.epoch);
            self.pool.len() - 1
        } else {
            // Deterministic round-robin eviction; slots written during
            // the current `ensure` call are pinned by their epoch stamp.
            let mut scanned = 0;
            loop {
                let v = self.clock;
                self.clock = (self.clock + 1) % self.pool.len();
                if self.stamps[v] != self.epoch {
                    let prev = self.owners[v];
                    debug_assert_ne!(prev, STALE, "free slot outside the free list");
                    self.slots[prev as usize] = EVICTED;
                    self.evicted += 1;
                    break v;
                }
                scanned += 1;
                if scanned >= self.pool.len() {
                    // Every slot was written this call: overflow past the
                    // bound for the duration of the burst.
                    self.pool.push(CutList::default());
                    self.owners.push(STALE);
                    self.stamps.push(self.epoch);
                    break self.pool.len() - 1;
                }
            }
        };
        self.pool[slot] = list;
        self.owners[slot] = idx as u32;
        self.stamps[slot] = self.epoch;
        self.slots[idx] = slot as u32;
    }

    /// Grows or shrinks the cache to the graph's node-array length
    /// (undone tentative nodes shrink it; new entries start invalid).
    fn sync(&mut self, len: usize) {
        if self.slots.len() > len {
            for idx in len..self.slots.len() {
                self.drop_list(idx);
            }
            self.slots.truncate(len);
        } else {
            self.slots.resize(len, STALE);
        }
    }

    /// Drops every cached cut set (the from-scratch mode's round entry).
    pub fn invalidate_all(&mut self) {
        for idx in 0..self.slots.len() {
            self.drop_list(idx);
        }
    }

    /// Invalidates the changed nodes and their transitive fanout.
    ///
    /// Stopping at an already-`STALE` node is sound because the cache
    /// invariant guarantees its fanout was invalidated when it became
    /// stale. An `EVICTED` node promises no such thing — the memory
    /// bound dropped its list without touching its fanout — so the walk
    /// continues through evicted nodes (marking them stale, which also
    /// bounds the walk to one visit per node).
    pub fn invalidate_tfo(&mut self, g: &IncrementalMig, changed: &[u32]) {
        self.sync(g.len());
        let mut stack: Vec<u32> = Vec::new();
        for &c in changed {
            if (c as usize) < self.slots.len() {
                // Newly created nodes are already invalid, but their
                // fanout may have been valid before they were spliced in.
                self.drop_list(c as usize);
                stack.push(c);
            }
        }
        while let Some(i) = stack.pop() {
            for &p in g.fanouts(i as usize) {
                if self.slots[p as usize] != STALE {
                    self.drop_list(p as usize);
                    stack.push(p);
                }
            }
        }
    }

    /// The (valid) cut set of `idx`, recomputing stale sets in its
    /// transitive fanin first. Deterministic.
    pub fn ensure(&mut self, g: &IncrementalMig, idx: usize) -> CutList {
        self.sync(g.len());
        self.epoch += 1;
        if self.is_resident(idx) {
            self.reused += 1;
            return self.pool[self.slots[idx] as usize];
        }
        let mut stack: Vec<u32> = vec![idx as u32];
        while let Some(&top) = stack.last() {
            let i = top as usize;
            if self.is_resident(i) {
                stack.pop();
                continue;
            }
            match g.node(i) {
                MigNode::Const0 => {
                    self.store(i, leaf_cuts(i, true));
                    stack.pop();
                }
                MigNode::Input(_) => {
                    self.store(i, leaf_cuts(i, false));
                    stack.pop();
                }
                MigNode::Maj(kids) => {
                    let mut ready = true;
                    for k in kids {
                        if !self.is_resident(k.node()) {
                            ready = false;
                            stack.push(k.node() as u32);
                        }
                    }
                    if ready {
                        let (c0, c1, c2) = (
                            self.pool[self.slots[kids[0].node()] as usize],
                            self.pool[self.slots[kids[1].node()] as usize],
                            self.pool[self.slots[kids[2].node()] as usize],
                        );
                        let list = compute_maj_cuts(
                            i,
                            kids,
                            c0.as_slice(),
                            c1.as_slice(),
                            c2.as_slice(),
                            cuts::MAX_CUTS_PER_NODE,
                            &mut self.scratch,
                        );
                        self.store(i, list);
                        self.recomputed += 1;
                        stack.pop();
                    }
                }
            }
        }
        self.pool[self.slots[idx] as usize]
    }
}

/// The round pre-pass's per-node winner: the best round-start cut of a
/// node, pre-canonicalized, with its pristine MFFC size. Everything the
/// sweep needs — the node's full [`CutList`] can be evicted between the
/// pre-pass and the sweep without affecting the round.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    cut: Cut,
    /// NPN transform index of the canonicalization.
    t: usize,
    /// NPN class of the cut function.
    class: u16,
    /// MFFC size on the pristine round-start graph.
    mffc: i64,
}

/// One in-place rewrite round over a persistent graph, following the
/// same decision procedure as [`crate::rewrite::rewrite_round`]:
///
/// 1. a **pre-pass** validates the cut cache against the round-start
///    graph (recomputing only what previous rewrites invalidated —
///    this is the incremental saving), takes the MFFC size of every
///    candidate cut on the still-pristine graph, exactly as the rebuild
///    engine measures gains against its immutable source graph, and
///    reduces each node's cut set to at most one gain-filtered
///    `Candidate` — after which the round no longer needs any
///    [`CutList`] resident (the memory bound of the [`CutStore`] may
///    evict freely),
/// 2. a topological **sweep** carries an old-signal → image map, exactly
///    like the rebuild engine's `map` into its fresh graph: every node
///    is turned into its image in place ([`IncrementalMig::rechild_to`],
///    free when nothing moved), the pre-pass candidate is evaluated
///    with its leaves mapped through `map`, and an accepted replacement
///    only updates the map — parents pick the image up at their own
///    turn. The strash is rebuilt image-by-image
///    ([`IncrementalMig::begin_mapped_round`]), so candidate
///    instantiation shares with exactly the structures a from-scratch
///    rebuild would offer — no more (stale cones), no fewer,
/// 3. [`IncrementalMig::finish_mapped_round`] rewires the outputs,
///    collects everything unreachable, and repairs the deferred derived
///    structures in one linear, hash-free pass.
pub fn round_inplace(
    g: &mut IncrementalMig,
    cuts: &mut CutStore,
    db: &Database,
    accept_zero_gain: bool,
    mode: EngineMode,
) -> RoundStats {
    // Absorb structural changes from the interleaved Ω passes.
    let changed = g.take_changed();
    cuts.invalidate_tfo(g, &changed);
    if mode == EngineMode::FromScratch {
        cuts.invalidate_all();
    }
    let mut stats = RoundStats::default();
    let order = g.topo_order();
    // Pre-pass on the pristine round-start graph: cut sets (cached),
    // per-cut MFFC sizes (recomputed every round — they depend on
    // reference counts, which the cut invalidation rule does not track),
    // and best-candidate selection. Selecting here is decision-identical
    // to selecting in the sweep: round-start cuts, pristine MFFCs, and
    // the pure NPN/database lookups are all sweep-independent.
    let t_pre = Instant::now();
    let mut enum_ns = 0u64;
    let mut cands: Vec<Option<Candidate>> = vec![None; order.len()];
    for (pos, &idx) in order.iter().enumerate() {
        let idx = idx as usize;
        let t0 = Instant::now();
        let list = cuts.ensure(g, idx);
        enum_ns += t0.elapsed().as_nanos() as u64;
        let mut best: Option<(i64, Candidate)> = None;
        for &cut in list.iter() {
            if cut.is_trivial(idx) || cut.leaves().is_empty() {
                continue;
            }
            stats.cuts += 1;
            let (class, t) = npn::canonicalize(cut.tt);
            let entry = db.entry(class);
            let mffc = g.mffc_size(idx, cut.leaves()) as i64;
            let gain = mffc - entry.gates() as i64;
            if gain < 0 || (gain == 0 && !accept_zero_gain) {
                continue;
            }
            stats.candidates += 1;
            if best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((
                    gain,
                    Candidate {
                        cut,
                        t,
                        class,
                        mffc,
                    },
                ));
            }
        }
        cands[pos] = best.map(|(_, c)| c);
    }
    stats.t_cut_enum_ns += enum_ns;
    stats.t_eval_ns += (t_pre.elapsed().as_nanos() as u64).saturating_sub(enum_ns);
    commit_sweep(g, db, &order, &cands, accept_zero_gain, &mut stats);
    stats.cut_sets_recomputed = cuts.recomputed;
    stats.cut_sets_reused = cuts.reused;
    stats.cut_sets_evicted = cuts.evicted;
    cuts.recomputed = 0;
    cuts.reused = 0;
    cuts.evicted = 0;
    stats
}

/// The sequential commit phase shared by [`round_inplace`] and
/// [`round_windowed`]: the mapped topological sweep over precomputed
/// per-node candidates. `cands` is aligned with `order`. Commit order is
/// the topological order itself — fixed before any worker runs — which
/// is what makes the windowed round bit-identical for every worker
/// count.
fn commit_sweep(
    g: &mut IncrementalMig,
    db: &Database,
    order: &[u32],
    cands: &[Option<Candidate>],
    accept_zero_gain: bool,
    stats: &mut RoundStats,
) {
    let t_commit = Instant::now();
    g.begin_mapped_round();
    let mut map: Vec<MigSignal> = (0..g.len()).map(|i| MigSignal::new(i, false)).collect();
    for (pos, &idx) in order.iter().enumerate() {
        let idx = idx as usize;
        let MigNode::Maj(kids) = g.node(idx) else {
            continue;
        };
        let conv = kids.map(|k| map[k.node()].complement_if(k.is_complemented()));
        let image = match g.rechild_to(idx, conv) {
            rms_core::fanout::Rechild::Superseded(s) => s,
            _ => MigSignal::new(idx, false),
        };
        map[idx] = image;
        let Some(Candidate {
            cut,
            t,
            class,
            mffc: freed,
        }) = cands[pos]
        else {
            continue;
        };
        // Instantiate tentatively; the nodes actually added (after
        // structural hashing against the whole graph, replaced
        // structures included) decide acceptance.
        let inv = npn::invert(t);
        let tr = npn::transform(inv);
        let mut inputs = [MigSignal::FALSE; 4];
        for (i, slot) in inputs.iter_mut().enumerate() {
            let li = tr.perm[i] as usize;
            let base = match cut.leaves().get(li) {
                Some(&leaf) => map[leaf as usize],
                None => MigSignal::FALSE,
            };
            *slot = base.complement_if((tr.flips >> i) & 1 == 1);
        }
        let len_before = g.len();
        let cand = db
            .entry(class)
            .instantiate(g, inputs)
            .complement_if(tr.negate_output);
        let added = (g.len() - len_before) as i64;
        // Word-parallel signature spot-check: the candidate must agree
        // with the node on all 64 cached simulation lanes. This never
        // fires for a correct database — it is a constant-time guard in
        // front of the map update (and of any SAT verification later).
        if g.sig_of(cand) != g.sig_of(MigSignal::new(idx, false)) {
            stats.sig_vetoes += 1;
            g.undo_tail(len_before);
            continue;
        }
        let real_gain = freed - added;
        if real_gain > 0 || (real_gain == 0 && accept_zero_gain) {
            stats.rewrites += 1;
            if real_gain == 0 {
                stats.zero_gain += 1;
            }
            map[idx] = cand;
        } else {
            g.undo_tail(len_before);
        }
    }
    stats.t_commit_ns += t_commit.elapsed().as_nanos() as u64;
    let t_gc = Instant::now();
    g.finish_mapped_round(&map);
    stats.t_gc_ns += t_gc.elapsed().as_nanos() as u64;
}

/// Nodes per window of the partition-parallel round.
///
/// Fixed — never derived from the worker count. The partition defines
/// the frozen window boundaries and therefore every window's cut sets
/// and candidates; `--jobs` only decides how many windows are evaluated
/// concurrently, never what any window computes, so results are
/// bit-identical for every worker count by construction.
pub const WINDOW_NODES: usize = 4096;

/// One window's evaluation result (cut enumeration + candidate
/// selection over the frozen partition), plus its share of the round
/// counters.
struct WindowEval {
    cands: Vec<Option<Candidate>>,
    cuts: u64,
    candidates: u64,
    enum_ns: u64,
    eval_ns: u64,
}

/// MFFC size of `root` with respect to `leaves` on a **shared** graph:
/// the recursive deref walk of [`IncrementalMig::mffc_size`], but
/// against a lazy local refcount overlay instead of mutating the
/// graph's counts — windows evaluate concurrently on `&IncrementalMig`.
/// The cone of a window-local cut never leaves the window (out-of-window
/// children are always cut leaves), so the overlay stays small.
fn mffc_size_frozen(
    g: &IncrementalMig,
    root: usize,
    leaves: &[u32],
    refs: &mut FxHashMap<u32, u32>,
) -> u32 {
    fn deref(
        g: &IncrementalMig,
        node: usize,
        leaves: &[u32],
        refs: &mut FxHashMap<u32, u32>,
        count: &mut u32,
    ) {
        let Some(kids) = g.maj_children(node) else {
            return;
        };
        for k in kids {
            let c = k.node();
            if leaves.contains(&(c as u32)) || g.maj_children(c).is_none() {
                continue;
            }
            let r = refs.entry(c as u32).or_insert_with(|| g.refs(c));
            *r -= 1;
            if *r == 0 {
                *count += 1;
                deref(g, c, leaves, refs, count);
            }
        }
    }
    refs.clear();
    let mut count = 1u32;
    deref(g, root, leaves, refs, &mut count);
    count
}

/// Evaluates one window: enumerates window-local cuts (children outside
/// the window are frozen to leaf cuts, exactly like primary inputs) and
/// selects at most one gain-filtered candidate per node — the same
/// decision procedure as the [`round_inplace`] pre-pass, restricted to
/// the window. Runs on a shared `&IncrementalMig`; mutates nothing.
fn eval_window(
    g: &IncrementalMig,
    db: &Database,
    window: &[u32],
    accept_zero_gain: bool,
    cancel: &rms_core::CancelToken,
) -> WindowEval {
    // Window boundaries are the fine-grained cancellation checkpoints of
    // the partition-parallel round: a cancelled window yields no
    // candidates, so the round drains quickly and the (possibly partial)
    // cycle result is discarded by the script's post-cycle cancel check.
    if cancel.cancelled() {
        return WindowEval {
            cands: vec![None; window.len()],
            cuts: 0,
            candidates: 0,
            enum_ns: 0,
            eval_ns: 0,
        };
    }
    let mut local: FxHashMap<u32, u32> = FxHashMap::default();
    local.reserve(window.len());
    for (p, &idx) in window.iter().enumerate() {
        local.insert(idx, p as u32);
    }
    let mut lists: Vec<CutList> = Vec::with_capacity(window.len());
    let mut scratch: Vec<Cut> = Vec::new();
    let mut refs: FxHashMap<u32, u32> = FxHashMap::default();
    let mut out = WindowEval {
        cands: vec![None; window.len()],
        cuts: 0,
        candidates: 0,
        enum_ns: 0,
        eval_ns: 0,
    };
    for (p, &idx) in window.iter().enumerate() {
        let idx = idx as usize;
        let MigNode::Maj(kids) = g.node(idx) else {
            lists.push(CutList::default());
            continue;
        };
        let t0 = Instant::now();
        let mut cls = [CutList::default(); 3];
        for (slot, k) in cls.iter_mut().zip(kids) {
            *slot = match local.get(&(k.node() as u32)) {
                Some(&lp) => lists[lp as usize],
                None => leaf_cuts(k.node(), matches!(g.node(k.node()), MigNode::Const0)),
            };
        }
        let list = compute_maj_cuts(
            idx,
            kids,
            cls[0].as_slice(),
            cls[1].as_slice(),
            cls[2].as_slice(),
            cuts::MAX_CUTS_PER_NODE,
            &mut scratch,
        );
        lists.push(list);
        let t1 = Instant::now();
        out.enum_ns += (t1 - t0).as_nanos() as u64;
        let mut best: Option<(i64, Candidate)> = None;
        for &cut in list.iter() {
            if cut.is_trivial(idx) || cut.leaves().is_empty() {
                continue;
            }
            out.cuts += 1;
            let (class, t) = npn::canonicalize(cut.tt);
            let entry = db.entry(class);
            let mffc = mffc_size_frozen(g, idx, cut.leaves(), &mut refs) as i64;
            let gain = mffc - entry.gates() as i64;
            if gain < 0 || (gain == 0 && !accept_zero_gain) {
                continue;
            }
            out.candidates += 1;
            if best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((
                    gain,
                    Candidate {
                        cut,
                        t,
                        class,
                        mffc,
                    },
                ));
            }
        }
        out.cands[p] = best.map(|(_, c)| c);
        out.eval_ns += t1.elapsed().as_nanos() as u64;
    }
    out
}

/// The partition-parallel rewrite round: carve the topological order
/// into fixed-size windows ([`WINDOW_NODES`]), evaluate every window's
/// candidates concurrently on `jobs` scoped workers
/// ([`rms_core::par::par_map_threads`]), then commit all accepted
/// rewrites in one sequential mapped sweep over the full order.
///
/// Window boundaries are frozen during evaluation: a child outside the
/// window contributes only its trivial leaf cut, so no cut, MFFC cone,
/// or candidate ever crosses a window — workers share the graph
/// read-only. Quality trades against the whole-graph round (cuts
/// spanning a boundary are not seen), which is why the script only
/// takes this path above [`rms_core::opt::OptOptions::par_threshold`].
///
/// Determinism: the partition depends only on the topological order,
/// the per-window evaluation is pure, and the commit phase runs
/// sequentially in topological order — so the result is bit-identical
/// for every `jobs` value (and trivially identical between the
/// incremental and from-scratch engine modes, which differ only in cut
/// caching — this round caches nothing across rounds).
pub fn round_windowed(
    g: &mut IncrementalMig,
    db: &Database,
    accept_zero_gain: bool,
    jobs: usize,
    cancel: &rms_core::CancelToken,
) -> RoundStats {
    // No cut cache to invalidate, but the change log must still drain
    // (it is bounded by consumers; this round is one).
    let _ = g.take_changed();
    let mut stats = RoundStats::default();
    let order = g.topo_order();
    let windows: Vec<&[u32]> = order.chunks(WINDOW_NODES).collect();
    let shared: &IncrementalMig = g;
    let evals = par_map_threads(&windows, jobs, |win| {
        eval_window(shared, db, win, accept_zero_gain, cancel)
    });
    let mut cands: Vec<Option<Candidate>> = Vec::with_capacity(order.len());
    for e in evals {
        stats.cuts += e.cuts;
        stats.candidates += e.candidates;
        stats.t_cut_enum_ns += e.enum_ns;
        stats.t_eval_ns += e.eval_ns;
        cands.extend(e.cands);
    }
    stats.cut_sets_recomputed = order.len() as u64;
    commit_sweep(g, db, &order, &cands, accept_zero_gain, &mut stats);
    stats
}

/// Cycles without a new best iterate after which the in-place script
/// stops (under [`OptOptions::early_exit`]). The reshape pass alternates
/// its push direction every cycle, so the raw fingerprint oscillates
/// with period 2 and the fixpoint check of the rebuild script almost
/// never fires — that script always burns its whole effort budget
/// ping-ponging between the same states. Stagnation of the *best
/// iterate* is the meaningful convergence signal; on the bundled suite
/// every best is found within 8 cycles.
pub const STAGNATION_WINDOW: usize = 8;

/// Algorithm 5 on the in-place engine: the same cycle structure as
/// [`rms_core::opt::cut_script`] (eliminate; rewrite round with zero-gain
/// hops on odd cycles; eliminate; reshape; eliminate; best iterate by
/// `(gates, depth)`), but every pass splices one persistent graph, so
/// cuts survive across passes *and* cycles in incremental mode — and
/// the cycle loop stops after [`STAGNATION_WINDOW`] cycles without
/// improvement instead of burning the full effort budget.
pub fn cut_script_inplace(mig: &Mig, opts: &OptOptions, mode: EngineMode) -> (Mig, OptStats) {
    let db = database();
    let compacted = mig.compact();
    // The windowed path is chosen once, from the compacted input size:
    // the decision must not depend on intermediate iterates, or the
    // threshold itself would make results run-order-sensitive.
    let windowed = compacted.num_gates() >= opts.par_threshold;
    let jobs = if opts.jobs == 0 {
        rms_core::par::num_threads()
    } else {
        opts.jobs
    };
    let mut g = IncrementalMig::from_mig(&compacted);
    let mut cuts = CutStore::with_capacity(opts.cut_cache_bound);
    let mut best = compacted;
    let mut best_score = (best.num_gates(), best.depth());
    let mut cycles = 0usize;
    let mut rewrites = 0u64;
    let mut stale = 0usize;
    let mut cancelled = false;
    let mut phase_ns = [0u64; 4];
    for c in 0..opts.effort {
        if opts.cancel.cancelled() {
            cancelled = true;
            break;
        }
        let before = g.fingerprint();
        eliminate_inplace(&mut g);
        let st = if windowed {
            round_windowed(&mut g, db, c % 2 == 1, jobs, &opts.cancel)
        } else {
            round_inplace(&mut g, &mut cuts, db, c % 2 == 1, mode)
        };
        rewrites += st.rewrites;
        phase_ns[0] += st.t_cut_enum_ns;
        phase_ns[1] += st.t_eval_ns;
        phase_ns[2] += st.t_commit_ns;
        phase_ns[3] += st.t_gc_ns;
        eliminate_inplace(&mut g);
        reshape_inplace(&mut g, c % 2 == 0);
        eliminate_inplace(&mut g);
        cycles = c + 1;
        // A cancel that fired mid-cycle may have truncated the windowed
        // round: the iterate is functionally correct but not one a
        // completed run could produce, so never let it become `best`.
        if opts.cancel.cancelled() {
            cancelled = true;
            break;
        }
        let score = (g.num_gates(), g.depth());
        if score < best_score {
            best_score = score;
            best = g.to_mig();
            stale = 0;
        } else {
            stale += 1;
        }
        if opts.early_exit && (g.fingerprint() == before || stale >= STAGNATION_WINDOW) {
            break;
        }
    }
    let out = eliminate(&best);
    let stats = OptStats {
        cycles,
        passes: cycles as u64 * 5 + 1,
        rewrites,
        gates_before: mig.num_gates() as u64,
        gates_after: out.num_gates() as u64,
        peak_nodes: g.peak_len() as u64,
        t_cut_enum_ns: phase_ns[0],
        t_eval_ns: phase_ns[1],
        t_commit_ns: phase_ns[2],
        t_gc_ns: phase_ns[3],
        cancelled,
        ..OptStats::default()
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_logic::bench_suite;
    use rms_logic::sim::check_equivalence;

    fn bench_mig(name: &str) -> Mig {
        Mig::from_netlist(&bench_suite::build(name).unwrap())
    }

    fn assert_equiv(a: &Mig, b: &Mig, what: &str) {
        let res = check_equivalence(&a.to_netlist(), &b.to_netlist());
        assert!(res.holds(), "{what}: {res:?}");
    }

    const SAMPLES: &[&str] = &["rd53_f2", "9sym_d", "con1_f1", "sao2_f4", "exam3_d"];

    /// Exact structural equality of two graphs: node-for-node after a
    /// canonical rebuild.
    fn assert_bit_identical(a: &Mig, b: &Mig, what: &str) {
        assert_eq!(a.num_gates(), b.num_gates(), "{what}: gate counts");
        assert_eq!(a.depth(), b.depth(), "{what}: depths");
        assert_eq!(a.len(), b.len(), "{what}: node counts");
        for idx in 0..a.len() {
            assert_eq!(a.node(idx), b.node(idx), "{what}: node {idx}");
        }
        assert_eq!(a.outputs(), b.outputs(), "{what}: outputs");
    }

    #[test]
    fn inplace_round_preserves_function() {
        let db = database();
        for name in SAMPLES {
            let m = bench_mig(name).compact();
            for zero_gain in [false, true] {
                let mut g = IncrementalMig::from_mig(&m);
                let mut cuts = CutStore::new();
                let st = round_inplace(&mut g, &mut cuts, db, zero_gain, EngineMode::Incremental);
                g.assert_consistent();
                assert_eq!(st.sig_vetoes, 0, "{name}: database produced a veto");
                let r = g.to_mig();
                assert_equiv(&m, &r, name);
                if !zero_gain {
                    assert!(r.num_gates() <= m.num_gates(), "{name}");
                }
            }
        }
    }

    #[test]
    fn inplace_round_finds_the_majority_gate() {
        // Same canary as the rebuild engine: a 5-gate majority
        // sum-of-products collapses to one node.
        let mut m = Mig::with_inputs("maj_sop", 3);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let bc = m.and(b, c);
        let o1 = m.or(ab, ac);
        let o2 = m.or(o1, bc);
        m.add_output("f", o2);
        let mut g = IncrementalMig::from_mig(&m.compact());
        let mut cuts = CutStore::new();
        let st = round_inplace(
            &mut g,
            &mut cuts,
            database(),
            false,
            EngineMode::Incremental,
        );
        assert!(st.rewrites >= 1, "{st:?}");
        assert_eq!(g.num_gates(), 1, "{st:?}");
        assert_equiv(&m, &g.to_mig(), "maj_sop");
    }

    #[test]
    fn incremental_and_from_scratch_are_bit_identical() {
        let opts = OptOptions::with_effort(6);
        for name in SAMPLES {
            let m = bench_mig(name);
            let (inc, _) = cut_script_inplace(&m, &opts, EngineMode::Incremental);
            let (scr, _) = cut_script_inplace(&m, &opts, EngineMode::FromScratch);
            assert_bit_identical(&inc, &scr, name);
            assert_equiv(&m, &inc, name);
        }
    }

    #[test]
    fn bounded_cache_is_bit_identical_to_roomy_cache() {
        // The minimum cap forces heavy eviction on every benchmark; the
        // result must not move by a single node (eviction only costs
        // recomputation) and the resident set must respect the bound
        // outside recomputation bursts.
        for name in SAMPLES {
            let m = bench_mig(name);
            let roomy = OptOptions::with_effort(6);
            let tight = OptOptions {
                cut_cache_bound: MIN_CUT_CACHE_BOUND,
                ..roomy.clone()
            };
            let (a, _) = cut_script_inplace(&m, &roomy, EngineMode::Incremental);
            let (b, _) = cut_script_inplace(&m, &tight, EngineMode::Incremental);
            assert_bit_identical(&a, &b, name);
        }
    }

    #[test]
    fn tight_cache_evicts_and_stays_bounded() {
        let m = bench_mig("9sym_d").compact();
        let mut g = IncrementalMig::from_mig(&m);
        let mut cuts = CutStore::with_capacity(1); // clamps to the floor
        assert_eq!(cuts.capacity(), MIN_CUT_CACHE_BOUND);
        let st = round_inplace(
            &mut g,
            &mut cuts,
            database(),
            false,
            EngineMode::Incremental,
        );
        assert!(
            st.cut_sets_evicted > 0,
            "9sym_d has {} nodes; a {}-slot pool must evict: {st:?}",
            g.len(),
            MIN_CUT_CACHE_BOUND
        );
        // Bursts may overflow the pool, but slots are recycled, not
        // accumulated: the pool stays within one burst of the cap.
        assert!(
            cuts.resident() <= g.len(),
            "resident {} of {} nodes",
            cuts.resident(),
            g.len()
        );
        assert_equiv(&m, &g.to_mig(), "9sym_d bounded");
    }

    #[test]
    fn incremental_reuses_cuts() {
        let m = bench_mig("9sym_d");
        let mut g = IncrementalMig::from_mig(&m.compact());
        let mut cuts = CutStore::new();
        let db = database();
        let st1 = round_inplace(&mut g, &mut cuts, db, false, EngineMode::Incremental);
        // Round one sees an empty cache and computes every cut set; a
        // second round recomputes only the transitive fanout of round
        // one's rewrites and serves the rest from the cache.
        let st2 = round_inplace(&mut g, &mut cuts, db, false, EngineMode::Incremental);
        assert!(st1.cut_sets_recomputed > 0);
        assert_eq!(st1.cut_sets_reused, 0);
        assert!(st2.cut_sets_reused > 0, "{st2:?}");
        assert!(
            st2.cut_sets_recomputed < st1.cut_sets_recomputed,
            "round 2 recomputed no less than round 1: {st1:?} vs {st2:?}"
        );
    }

    #[test]
    fn script_quality_not_worse_than_rebuild_engine() {
        // At the paper's effort the in-place script (same rounds, plus
        // the stagnation cutoff) must not lose to the rebuild engine in
        // aggregate.
        let opts = OptOptions::with_effort(40);
        let mut inplace_total = 0u64;
        let mut rebuild_total = 0u64;
        for name in SAMPLES {
            let m = bench_mig(name);
            let (inc, _) = cut_script_inplace(&m, &opts, EngineMode::Incremental);
            let mut round = |m: &Mig, zg: bool| {
                let (out, st) = crate::rewrite::rewrite_round(m, zg);
                (out, st.rewrites)
            };
            let (reb, _) = rms_core::opt::cut_script(&m, &opts, &mut round);
            assert_equiv(&m, &inc, name);
            inplace_total += inc.num_gates() as u64;
            rebuild_total += reb.num_gates() as u64;
        }
        assert!(
            inplace_total <= rebuild_total,
            "in-place {inplace_total} gates vs rebuild {rebuild_total}"
        );
    }
}
