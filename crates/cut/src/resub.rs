//! Windowed Boolean resubstitution: re-express a node over existing
//! divisors, proved by SAT before anything is touched.
//!
//! For every gate `n` the pass collects a fanout-bounded **window** of
//! divisor candidates around `n`: its transitive fanin up to a size cap,
//! plus reconvergent siblings (fanouts of window nodes at a level no
//! greater than `n`'s, which therefore cannot lie in `n`'s transitive
//! fanout). The don't-cares of the window come from its inputs: two
//! window functions only need to agree on value combinations the window
//! inputs can actually produce — which is exactly what both the
//! word-parallel simulation filter (patterns are reachable by
//! construction) and the global cone miter check. Because every divisor
//! is itself a function of the primary inputs, a proved window
//! substitution is a proved global equivalence.
//!
//! Two substitution shapes are tried, mirroring mockturtle's 0/1-resub:
//!
//! * **0-resub** — replace `n` with an existing divisor (possibly
//!   complemented), freeing `n`'s MFFC;
//! * **1-resub** — replace `n` with a single new majority over three
//!   divisors (the constant divisor makes this cover AND/OR shapes),
//!   accepted only when the freed MFFC strictly outweighs the one added
//!   node.
//!
//! Candidates must pass the simulation filter on every lane (lane 0 is
//! the engine's signature cache, so this subsumes the incremental
//! engine's signature veto), then a bounded-conflict SAT proof; budget
//! exhaustion rejects the substitution. Counterexamples from refuted
//! candidates are fed back as new simulation lanes, sharpening the
//! filter for later nodes. The pass is fully deterministic.

use crate::fraig::{append_cex_lane, init_sim, prove_signals, ProveOutcome};
use rms_core::{IncrementalMig, MajBuilder, MigNode, MigSignal};

/// Options of the resubstitution pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResubOptions {
    /// Divisor window size cap per node.
    pub max_divisors: usize,
    /// Random simulation lanes beyond the engine's signature lane.
    pub extra_words: usize,
    /// Conflict budget per substitution proof.
    pub conflict_budget: u64,
    /// Cooperative cancellation, polled at window (per-node) boundaries;
    /// accepted substitutions are individually SAT-proved, so stopping
    /// between windows leaves a correct graph.
    pub cancel: rms_core::CancelToken,
}

impl Default for ResubOptions {
    fn default() -> Self {
        ResubOptions {
            max_divisors: 24,
            extra_words: 7,
            conflict_budget: 10_000,
            cancel: rms_core::CancelToken::default(),
        }
    }
}

/// Counters of one resubstitution pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResubStats {
    /// Substitution proofs attempted.
    pub candidates: u64,
    /// Substitutions proved by SAT and committed.
    pub accepted: u64,
    /// Candidates whose engine signature disagreed (vetoed pre-SAT).
    pub sig_vetoes: u64,
    /// Candidates refuted by a counterexample.
    pub refuted: u64,
    /// Proofs abandoned at the conflict budget (substitution rejected).
    pub budget_exhausted: u64,
    /// Total SAT conflicts spent.
    pub sat_conflicts: u64,
}

/// Collects the divisor window of `n`: constant, bounded transitive
/// fanin, and reconvergent siblings, all at level <= `n`'s (so none can
/// be in `n`'s transitive fanout and substitution stays acyclic).
fn collect_divisors(g: &IncrementalMig, n: usize, cap: usize) -> Vec<usize> {
    let level_n = g.level(n);
    let mut divisors = vec![0usize];
    let mut seen = vec![0u8; g.len()];
    seen[0] = 1;
    seen[n] = 1;
    let mut queue: Vec<usize> = Vec::new();
    if let Some(kids) = g.maj_children(n) {
        for kid in kids {
            if seen[kid.node()] == 0 {
                seen[kid.node()] = 1;
                queue.push(kid.node());
            }
        }
    }
    let mut head = 0;
    while head < queue.len() && divisors.len() < cap {
        let d = queue[head];
        head += 1;
        if g.is_dead(d) || g.level(d) > level_n {
            continue;
        }
        divisors.push(d);
        // Deeper fanin of the window.
        if let Some(kids) = g.maj_children(d) {
            for kid in kids {
                if seen[kid.node()] == 0 {
                    seen[kid.node()] = 1;
                    queue.push(kid.node());
                }
            }
        }
        // Reconvergent siblings: fanouts of the window node that are no
        // deeper than `n` itself.
        for &p in g.fanouts(d) {
            let p = p as usize;
            if seen[p] == 0 && !g.is_dead(p) && g.level(p) <= level_n {
                seen[p] = 1;
                queue.push(p);
            }
        }
    }
    divisors
}

/// The simulation vector of a divisor signal on all lanes, compared
/// lazily; returns true when `sig`'s vector equals `target` on every
/// lane, with `phase` complementing.
fn lanes_match(sim: &[Vec<u64>], sig: usize, phase: bool, target: &[u64]) -> bool {
    let row = &sim[sig];
    let mask = if phase { !0u64 } else { 0 };
    row.iter().zip(target).all(|(&w, &t)| w ^ mask == t)
}

/// Runs one windowed resubstitution pass over `g`.
pub fn resub_pass(g: &mut IncrementalMig, opts: &ResubOptions) -> ResubStats {
    let mut stats = ResubStats::default();
    if g.num_gates() == 0 {
        return stats;
    }
    let topo = g.topo_order();
    let mut sim = init_sim(g, &topo, opts.extra_words);
    let mut cexes: Vec<Vec<bool>> = Vec::new();

    for &nu in &topo {
        if opts.cancel.cancelled() {
            break;
        }
        let n = nu as usize;
        if g.is_dead(n) || !matches!(g.node(n), MigNode::Maj(_)) {
            continue;
        }
        let divisors = collect_divisors(g, n, opts.max_divisors);
        let target = sim[n].clone();

        // 0-resub: an existing divisor already computes n (mod phase).
        let mut done = false;
        for &d in &divisors {
            if d == n || g.is_dead(d) {
                continue;
            }
            for phase in [false, true] {
                if !lanes_match(&sim, d, phase, &target) {
                    continue;
                }
                let cand = MigSignal::new(d, phase);
                stats.candidates += 1;
                match try_substitute(g, n, cand, opts, &mut stats) {
                    Verdict::Accepted => {
                        done = true;
                    }
                    Verdict::Refuted(cex) => {
                        if cexes.len() < 64 {
                            cexes.push(cex);
                        }
                    }
                    Verdict::Rejected => {}
                }
                break;
            }
            if done {
                break;
            }
        }
        if done {
            continue;
        }

        // 1-resub: one new majority over three divisors. Needs the MFFC
        // to free at least two nodes so the net gain is >= 1. Input
        // phase combinations with two or three complements are covered
        // by the output phase (¬M(a,b,c) = M(¬a,¬b,¬c)), so only the
        // four 0/1-complement shapes are enumerated.
        'outer: for i in 0..divisors.len() {
            for j in (i + 1)..divisors.len() {
                for k in (j + 1)..divisors.len() {
                    let (da, db, dc) = (divisors[i], divisors[j], divisors[k]);
                    if g.is_dead(da) || g.is_dead(db) || g.is_dead(dc) {
                        continue;
                    }
                    for combo in 0..4u8 {
                        let pa = combo == 1;
                        let pb = combo == 2;
                        let pc = combo == 3;
                        // Fast lane-0 filter before the full compare.
                        let m0 = maj_lane(&sim, (da, pa), (db, pb), (dc, pc), 0);
                        let out_phase = if m0 == target[0] {
                            false
                        } else if m0 == !target[0] {
                            true
                        } else {
                            continue;
                        };
                        let lanes = sim[n].len();
                        let full = (1..lanes).all(|l| {
                            let w = maj_lane(&sim, (da, pa), (db, pb), (dc, pc), l);
                            (w ^ if out_phase { !0 } else { 0 }) == target[l]
                        });
                        if !full {
                            continue;
                        }
                        // Gain check on the pristine graph: the MFFC of n
                        // with the three divisors as boundary must free
                        // more than the one node we are about to add.
                        let freed = g.mffc_size(n, &[da as u32, db as u32, dc as u32]);
                        if freed < 2 {
                            continue;
                        }
                        let len_before = g.len();
                        let m = g.maj(
                            MigSignal::new(da, pa),
                            MigSignal::new(db, pb),
                            MigSignal::new(dc, pc),
                        );
                        if m.node() == n {
                            // Strashing found n itself — not a substitution.
                            g.undo_tail(len_before);
                            continue;
                        }
                        let cand = m.complement_if(out_phase);
                        stats.candidates += 1;
                        match try_substitute_built(g, n, cand, len_before, opts, &mut stats) {
                            Verdict::Accepted => {
                                // Record the new node's lanes so later
                                // windows can use it as a divisor.
                                if m.node() >= sim.len() {
                                    let mut row = Vec::with_capacity(sim[n].len());
                                    for l in 0..sim[n].len() {
                                        row.push(maj_lane(&sim, (da, pa), (db, pb), (dc, pc), l));
                                    }
                                    sim.push(row);
                                }
                                break 'outer;
                            }
                            Verdict::Refuted(cex) => {
                                if cexes.len() < 64 {
                                    cexes.push(cex);
                                }
                            }
                            Verdict::Rejected => {}
                        }
                    }
                }
            }
        }

        // Periodically fold counterexamples back into the filter.
        if cexes.len() >= 64 {
            append_cex_lane(g, &topo, &mut sim, &cexes, stats.candidates);
            cexes.clear();
        }
    }
    stats
}

/// Majority of three divisor signals on one simulation lane.
fn maj_lane(
    sim: &[Vec<u64>],
    (a, pa): (usize, bool),
    (b, pb): (usize, bool),
    (c, pc): (usize, bool),
    lane: usize,
) -> u64 {
    let wa = sim[a][lane] ^ if pa { !0 } else { 0 };
    let wb = sim[b][lane] ^ if pb { !0 } else { 0 };
    let wc = sim[c][lane] ^ if pc { !0 } else { 0 };
    (wa & wb) | (wa & wc) | (wb & wc)
}

enum Verdict {
    Accepted,
    Refuted(Vec<bool>),
    Rejected,
}

/// Proves and commits `n := cand` for an already-existing candidate.
fn try_substitute(
    g: &mut IncrementalMig,
    n: usize,
    cand: MigSignal,
    opts: &ResubOptions,
    stats: &mut ResubStats,
) -> Verdict {
    // Engine signature veto (lane 0 subsumes this, but keep the veto as
    // defense in depth — it is what the cut engine itself trusts).
    if g.sig_of(cand) != g.sig_of(MigSignal::new(n, false)) {
        stats.sig_vetoes += 1;
        return Verdict::Rejected;
    }
    match prove_signals(
        g,
        MigSignal::new(n, false),
        cand,
        Some(opts.conflict_budget),
    ) {
        ProveOutcome::Equal { conflicts } => {
            stats.sat_conflicts += conflicts;
            g.replace(n, cand);
            stats.accepted += 1;
            Verdict::Accepted
        }
        ProveOutcome::Differ { cex, conflicts } => {
            stats.sat_conflicts += conflicts;
            stats.refuted += 1;
            Verdict::Refuted(cex)
        }
        ProveOutcome::Unknown { conflicts } => {
            stats.sat_conflicts += conflicts;
            stats.budget_exhausted += 1;
            Verdict::Rejected
        }
    }
}

/// Like [`try_substitute`], but for a freshly built candidate node that
/// must be rolled back with `undo_tail` unless the proof succeeds.
fn try_substitute_built(
    g: &mut IncrementalMig,
    n: usize,
    cand: MigSignal,
    len_before: usize,
    opts: &ResubOptions,
    stats: &mut ResubStats,
) -> Verdict {
    if g.sig_of(cand) != g.sig_of(MigSignal::new(n, false)) {
        stats.sig_vetoes += 1;
        g.undo_tail(len_before);
        return Verdict::Rejected;
    }
    match prove_signals(
        g,
        MigSignal::new(n, false),
        cand,
        Some(opts.conflict_budget),
    ) {
        ProveOutcome::Equal { conflicts } => {
            stats.sat_conflicts += conflicts;
            g.replace(n, cand);
            stats.accepted += 1;
            Verdict::Accepted
        }
        ProveOutcome::Differ { cex, conflicts } => {
            stats.sat_conflicts += conflicts;
            stats.refuted += 1;
            g.undo_tail(len_before);
            Verdict::Refuted(cex)
        }
        ProveOutcome::Unknown { conflicts } => {
            stats.sat_conflicts += conflicts;
            stats.budget_exhausted += 1;
            g.undo_tail(len_before);
            Verdict::Rejected
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_core::Mig;
    use rms_logic::bench_suite;
    use rms_logic::sim::check_equivalence;

    fn bench_inc(name: &str) -> IncrementalMig {
        let mig = Mig::from_netlist(&bench_suite::build(name).unwrap()).compact();
        IncrementalMig::from_mig(&mig)
    }

    #[test]
    fn resub_preserves_functions_and_never_grows() {
        for name in ["rd53_f2", "con1_f1", "sao2_f4", "exam3_d"] {
            let mut g = bench_inc(name);
            let before = g.to_mig();
            let gates_before = g.num_gates();
            let stats = resub_pass(&mut g, &ResubOptions::default());
            g.assert_consistent();
            assert!(
                g.num_gates() <= gates_before,
                "{name}: {} > {gates_before}",
                g.num_gates()
            );
            let res = check_equivalence(&before.to_netlist(), &g.to_mig().to_netlist());
            assert!(res.holds(), "{name}: {res:?} ({stats:?})");
        }
    }

    #[test]
    fn divisor_windows_are_bounded_and_shallow() {
        let g = bench_inc("9sym_d");
        let topo = g.topo_order();
        for &nu in &topo {
            let n = nu as usize;
            let divisors = collect_divisors(&g, n, 16);
            assert!(divisors.len() <= 16);
            for &d in &divisors {
                assert!(d == 0 || g.level(d) <= g.level(n), "divisor above the node");
                assert_ne!(d, n);
            }
        }
    }
}
