//! SAT sweeping (fraiging): simulation-guided, SAT-proved node merging.
//!
//! The classic ABC-style escape from local rewriting windows: candidate
//! equivalence classes are discovered by word-parallel simulation, refined
//! with counterexample patterns, and *proved* with bounded-conflict SAT
//! miters before any merge is committed. The policy is strictly
//! sound-by-construction:
//!
//! 1. **Bucket** — live nodes are partitioned into candidate classes by
//!    their simulation vectors, canonicalized up to complement (the MIG
//!    has complemented edges, so `f` and `!f` belong to one class). Lane
//!    0 is the engine's own 64-pattern signature cache; further lanes are
//!    seeded deterministically.
//! 2. **Prove** — for each class, every member is checked against the
//!    lowest-level representative with a fresh cone miter
//!    ([`prove_signals`]) under a conflict budget. `Unsat` proves the
//!    merge; `Sat` yields a counterexample; budget exhaustion keeps
//!    *both* nodes — the pass never merges unproven candidates.
//! 3. **Refine** — counterexamples become new simulation lanes; the
//!    partition strictly refines, so the bucket/prove loop terminates.
//! 4. **Merge** — proved members are merged through
//!    [`IncrementalMig::replace`], which re-wires fanouts, collapses
//!    degenerate majorities, and garbage-collects the MFFC. Merging into
//!    the minimum-level representative keeps the graph acyclic (a node's
//!    transitive fanin only contains strictly lower levels).
//!
//! Everything is deterministic — seeds are fixed, classes are visited in
//! first-seen order of a deterministic node order — so results are
//! bit-identical across thread counts and engines.

use rms_core::hash::FxHashMap;
use rms_core::{IncrementalMig, MigNode, MigSignal};
use rms_logic::rng::SplitMix64;
use rms_sat::{Encoder, Lit, SatResult};

/// Seed for the extra (non-engine) simulation lanes.
const FRAIG_SEED: u64 = 0x000f_4a16_0b5e_55ed;

/// Options of the fraig pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FraigOptions {
    /// Random simulation lanes beyond the engine's signature lane
    /// (total patterns = `64 * (1 + extra_words)`).
    pub extra_words: usize,
    /// Conflict budget per merge proof; exhaustion keeps both nodes.
    pub conflict_budget: u64,
    /// Maximum bucket/prove/refine rounds.
    pub max_rounds: usize,
    /// Cooperative cancellation, polled at round boundaries (every merge
    /// the pass has committed so far remains SAT-proved and valid).
    pub cancel: rms_core::CancelToken,
}

impl Default for FraigOptions {
    fn default() -> Self {
        FraigOptions {
            extra_words: 7,
            conflict_budget: 10_000,
            max_rounds: 16,
            cancel: rms_core::CancelToken::default(),
        }
    }
}

/// Counters of one fraig pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FraigStats {
    /// Candidate classes (>= 2 members) in the initial partition.
    pub classes: u64,
    /// Merge proofs attempted.
    pub candidates: u64,
    /// Merges proved by SAT and committed.
    pub merges: u64,
    /// Candidates refuted by a counterexample.
    pub refuted: u64,
    /// Proofs abandoned at the conflict budget (nodes kept unmerged).
    pub budget_exhausted: u64,
    /// Total SAT conflicts spent.
    pub sat_conflicts: u64,
}

/// Full outcome of a fraig pass, including the merge log the property
/// tests re-prove independently.
#[derive(Debug, Clone, Default)]
pub struct FraigOutcome {
    /// Counters.
    pub stats: FraigStats,
    /// Committed merges: `(merged node, surviving signal)`, in commit
    /// order. Indices refer to the stable node numbering, so each pair
    /// is meaningful in a snapshot taken *before* the pass.
    pub merges: Vec<(usize, MigSignal)>,
    /// Budget-exhausted candidate pairs `(representative, member)`; the
    /// pass is required to leave these unmerged.
    pub gave_up: Vec<(usize, usize)>,
}

/// Outcome of a single cone-miter proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProveOutcome {
    /// The two signals are equivalent (UNSAT miter — a proof).
    Equal {
        /// Conflicts spent.
        conflicts: u64,
    },
    /// The signals differ; `cex[k]` is the distinguishing value of
    /// primary input `k` (inputs outside both cones default to false).
    Differ {
        /// The distinguishing primary-input assignment.
        cex: Vec<bool>,
        /// Conflicts spent.
        conflicts: u64,
    },
    /// The conflict budget ran out before a verdict — *not* an answer.
    Unknown {
        /// Conflicts spent (the budget).
        conflicts: u64,
    },
}

/// Encodes the cone of `sig` into `enc`, memoizing node literals in
/// `lits` and recording fresh input literals in `input_lits`.
fn encode_cone(
    g: &IncrementalMig,
    enc: &mut Encoder,
    lits: &mut FxHashMap<usize, Lit>,
    input_lits: &mut Vec<(usize, Lit)>,
    sig: MigSignal,
) -> Lit {
    let root = sig.node();
    if !lits.contains_key(&root) {
        let mut stack = vec![root];
        while let Some(&n) = stack.last() {
            if lits.contains_key(&n) {
                stack.pop();
                continue;
            }
            match g.node(n) {
                MigNode::Const0 => {
                    let l = enc.false_lit();
                    lits.insert(n, l);
                    stack.pop();
                }
                MigNode::Input(k) => {
                    let l = enc.fresh();
                    lits.insert(n, l);
                    input_lits.push((k as usize, l));
                    stack.pop();
                }
                MigNode::Maj(kids) => {
                    let mut ready = true;
                    for kid in kids {
                        if !lits.contains_key(&kid.node()) {
                            stack.push(kid.node());
                            ready = false;
                        }
                    }
                    if ready {
                        let [a, b, c] = kids.map(|s| {
                            let l = lits[&s.node()];
                            if s.is_complemented() {
                                !l
                            } else {
                                l
                            }
                        });
                        let l = enc.maj(a, b, c);
                        lits.insert(n, l);
                        stack.pop();
                    }
                }
            }
        }
    }
    let l = lits[&root];
    if sig.is_complemented() {
        !l
    } else {
        l
    }
}

/// Proves or refutes `a == b` with a fresh miter over the union of the
/// two cones, under an optional conflict budget (`None` = unbounded).
pub fn prove_signals(
    g: &IncrementalMig,
    a: MigSignal,
    b: MigSignal,
    budget: Option<u64>,
) -> ProveOutcome {
    let mut enc = Encoder::new();
    let mut lits = FxHashMap::default();
    let mut input_lits = Vec::new();
    let la = encode_cone(g, &mut enc, &mut lits, &mut input_lits, a);
    let lb = encode_cone(g, &mut enc, &mut lits, &mut input_lits, b);
    let diff = enc.xor(la, lb);
    enc.assert_true(diff);
    match enc.solve_limited(budget) {
        None => ProveOutcome::Unknown {
            conflicts: enc.stats().conflicts,
        },
        Some(SatResult::Unsat) => ProveOutcome::Equal {
            conflicts: enc.stats().conflicts,
        },
        Some(SatResult::Sat) => {
            let mut cex = vec![false; g.num_inputs()];
            for &(k, lit) in &input_lits {
                cex[k] = enc.value(lit);
            }
            ProveOutcome::Differ {
                cex,
                conflicts: enc.stats().conflicts,
            }
        }
    }
}

/// Deterministic simulation word for lane `lane` of primary input `k`.
fn input_lane(lane: usize, k: usize) -> u64 {
    SplitMix64::new(FRAIG_SEED ^ (lane as u64).wrapping_mul(0xA076_1D64_78BD_642F) ^ (k as u64))
        .next_u64()
}

/// Per-node simulation vectors (`sim[node][lane]`). Lane 0 is the
/// engine's own signature cache; extra lanes are seeded from
/// [`FRAIG_SEED`]. Dead nodes carry zeros.
pub(crate) fn init_sim(g: &IncrementalMig, topo: &[u32], extra_words: usize) -> Vec<Vec<u64>> {
    let lanes = 1 + extra_words;
    let mut sim = vec![vec![0u64; lanes]; g.len()];
    for (idx, row) in sim.iter_mut().enumerate() {
        if !g.is_dead(idx) {
            row[0] = g.sig_of(MigSignal::new(idx, false));
        }
    }
    for lane in 1..lanes {
        simulate_lane(g, topo, &mut sim, lane, |k| input_lane(lane, k));
    }
    sim
}

/// Fills lane `lane` of every live node from the given input words.
fn simulate_lane(
    g: &IncrementalMig,
    topo: &[u32],
    sim: &mut [Vec<u64>],
    lane: usize,
    input_word: impl Fn(usize) -> u64,
) {
    for k in 0..g.num_inputs() {
        let idx = g.input(k).node();
        sim[idx][lane] = input_word(k);
    }
    for &nu in topo {
        let n = nu as usize;
        if g.is_dead(n) {
            continue;
        }
        if let Some(kids) = g.maj_children(n) {
            let [a, b, c] = kids.map(|s| {
                let w = sim[s.node()][lane];
                if s.is_complemented() {
                    !w
                } else {
                    w
                }
            });
            sim[n][lane] = (a & b) | (a & c) | (b & c);
        }
    }
}

/// Appends one refinement lane built from up to 64 counterexample
/// patterns (spare bit positions get deterministic random filler).
pub(crate) fn append_cex_lane(
    g: &IncrementalMig,
    topo: &[u32],
    sim: &mut [Vec<u64>],
    cexes: &[Vec<bool>],
    salt: u64,
) {
    debug_assert!(cexes.len() <= 64);
    for row in sim.iter_mut() {
        row.push(0);
    }
    let lane = sim.first().map_or(0, |r| r.len() - 1);
    simulate_lane(g, topo, sim, lane, |k| {
        let mut w =
            SplitMix64::new(FRAIG_SEED ^ salt.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ (k as u64))
                .next_u64();
        for (bit, cex) in cexes.iter().enumerate() {
            if cex[k] {
                w |= 1 << bit;
            } else {
                w &= !(1 << bit);
            }
        }
        w
    });
}

/// Canonical class key of a node: its simulation vector, complemented if
/// the first bit is set, plus the phase that was applied.
fn canon(row: &[u64]) -> (Vec<u64>, bool) {
    let phase = row[0] & 1 == 1;
    let key = if phase {
        row.iter().map(|w| !w).collect()
    } else {
        row.to_vec()
    };
    (key, phase)
}

/// Runs one fraig pass over `g`, merging every SAT-proved equivalent
/// node pair; see the module docs for the policy.
pub fn fraig_pass(g: &mut IncrementalMig, opts: &FraigOptions) -> FraigOutcome {
    let mut out = FraigOutcome::default();
    if g.num_gates() == 0 {
        return out;
    }
    // Merges must absorb any pending structural log so the caller's cut
    // caches can be invalidated correctly; we simply drain it afterwards
    // by leaving `changed` to the caller, and only need a topo order of
    // the current graph here.
    let topo = g.topo_order();
    // Candidate order: constant, inputs, then gates topologically. This
    // is also the class-discovery order, so it fixes determinism.
    let mut order: Vec<u32> = Vec::with_capacity(1 + g.num_inputs() + topo.len());
    order.push(0);
    for k in 0..g.num_inputs() {
        order.push(g.input(k).node() as u32);
    }
    order.extend_from_slice(&topo);
    let mut sim = init_sim(g, &topo, opts.extra_words);
    let mut retired = vec![false; g.len()];

    for round in 0..opts.max_rounds {
        // Round boundaries are cancellation checkpoints: committed
        // merges are individually SAT-proved, so stopping between
        // rounds leaves a correct graph.
        if opts.cancel.cancelled() {
            break;
        }
        // Partition into candidate classes (first-seen order).
        let mut class_of: FxHashMap<Vec<u64>, usize> = FxHashMap::default();
        let mut classes: Vec<Vec<u32>> = Vec::new();
        let mut phases = vec![false; g.len()];
        for &nu in &order {
            let n = nu as usize;
            if g.is_dead(n) || retired[n] {
                continue;
            }
            let (key, phase) = canon(&sim[n]);
            phases[n] = phase;
            let next = classes.len();
            let id = *class_of.entry(key).or_insert(next);
            if id == next {
                classes.push(Vec::new());
            }
            classes[id].push(nu);
        }
        if round == 0 {
            out.stats.classes = classes.iter().filter(|c| c.len() >= 2).count() as u64;
        }

        let mut cexes: Vec<Vec<bool>> = Vec::new();
        for class in &classes {
            if class.len() < 2 {
                continue;
            }
            // Representative: the live member with the lowest level
            // (ties by index). Merging higher-level members into it can
            // never create a cycle: a node's transitive fanin only
            // contains strictly lower levels.
            let rep = class
                .iter()
                .map(|&n| n as usize)
                .filter(|&n| !g.is_dead(n))
                .min_by_key(|&n| (g.level(n), n));
            let Some(rep) = rep else { continue };
            let rep_phase = phases[rep];
            for &mu in class {
                let m = mu as usize;
                if m == rep || g.is_dead(m) || retired[m] {
                    continue;
                }
                // Only majority gates can be merged away.
                if !matches!(g.node(m), MigNode::Maj(_)) {
                    continue;
                }
                if g.level(rep) > g.level(m) {
                    // Levels shifted under earlier merges; retry next round.
                    continue;
                }
                let target = MigSignal::new(rep, false).complement_if(phases[m] != rep_phase);
                out.stats.candidates += 1;
                match prove_signals(
                    g,
                    MigSignal::new(m, false),
                    target,
                    Some(opts.conflict_budget),
                ) {
                    ProveOutcome::Equal { conflicts } => {
                        out.stats.sat_conflicts += conflicts;
                        g.replace(m, target);
                        out.stats.merges += 1;
                        out.merges.push((m, target));
                    }
                    ProveOutcome::Differ { cex, conflicts } => {
                        out.stats.sat_conflicts += conflicts;
                        out.stats.refuted += 1;
                        if cexes.len() < 64 {
                            cexes.push(cex);
                        }
                    }
                    ProveOutcome::Unknown { conflicts } => {
                        out.stats.sat_conflicts += conflicts;
                        out.stats.budget_exhausted += 1;
                        retired[m] = true;
                        out.gave_up.push((rep, m));
                    }
                }
            }
        }
        if cexes.is_empty() {
            break;
        }
        append_cex_lane(g, &topo, &mut sim, &cexes, round as u64 + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_core::{MajBuilder, Mig};
    use rms_logic::bench_suite;
    use rms_logic::sim::check_equivalence;

    fn bench_inc(name: &str) -> IncrementalMig {
        let mig = Mig::from_netlist(&bench_suite::build(name).unwrap()).compact();
        IncrementalMig::from_mig(&mig)
    }

    #[test]
    fn prove_signals_agrees_with_structure() {
        let mut g = bench_inc("rd53_f2");
        let x = g.input(0);
        let y = g.input(1);
        let z = g.input(2);
        let m1 = g.maj(x, y, z);
        // Same function, different structure: the sum-of-products form
        // (x&y) | (y&z) | (x&z), built from AND/OR majorities.
        let xy = g.maj(x, y, MigSignal::FALSE);
        let yz = g.maj(y, z, MigSignal::FALSE);
        let xz = g.maj(x, z, MigSignal::FALSE);
        let o1 = g.maj(xy, yz, MigSignal::TRUE);
        let m2 = g.maj(o1, xz, MigSignal::TRUE);
        assert_ne!(m1.node(), m2.node());
        match prove_signals(&g, m1, m2, None) {
            ProveOutcome::Equal { .. } => {}
            o => panic!("expected Equal, got {o:?}"),
        }
        match prove_signals(&g, m1, x, None) {
            ProveOutcome::Differ { cex, .. } => {
                assert_eq!(cex.len(), g.num_inputs());
            }
            o => panic!("expected Differ, got {o:?}"),
        }
    }

    #[test]
    fn fraig_merges_semantic_duplicates() {
        // Two outputs computing the same function in structurally
        // different ways: a direct majority and its sum-of-products
        // expansion (x&y) | (y&z) | (x&z). Structural hashing cannot
        // merge them; the fraig pass must.
        let mut b = rms_logic::NetlistBuilder::new("dup");
        let (x, y, z) = (b.input("x"), b.input("y"), b.input("z"));
        let m = b.maj(x, y, z);
        b.output("f1", m);
        let xy = b.and(x, y);
        let yz = b.and(y, z);
        let xz = b.and(x, z);
        let o1 = b.or(xy, yz);
        let sop = b.or(o1, xz);
        b.output("f2", sop);
        let mig = Mig::from_netlist(&b.build()).compact();
        let mut g = IncrementalMig::from_mig(&mig);
        let gates_before = g.num_gates();
        assert!(gates_before > 1, "need distinct structures to merge");
        let outcome = fraig_pass(&mut g, &FraigOptions::default());
        g.assert_consistent();
        assert!(outcome.stats.merges > 0, "{:?}", outcome.stats);
        // Both outputs now share the single majority gate.
        assert_eq!(g.num_gates(), 1);
        let res = check_equivalence(&mig.to_netlist(), &g.to_mig().to_netlist());
        assert!(res.holds(), "{res:?}");
    }

    #[test]
    fn zero_budget_never_merges_nontrivial_pairs() {
        let mut g = bench_inc("9sym_d");
        let outcome = fraig_pass(
            &mut g,
            &FraigOptions {
                conflict_budget: 0,
                ..FraigOptions::default()
            },
        );
        g.assert_consistent();
        // Whatever merged was proved by pure propagation; everything
        // that hit the budget must be recorded and unmerged.
        for &(_, member) in &outcome.gave_up {
            assert!(
                !outcome.merges.iter().any(|&(m, _)| m == member),
                "budget-exhausted node {member} was merged"
            );
        }
        assert_eq!(outcome.stats.budget_exhausted, outcome.gave_up.len() as u64);
    }
}
