//! Priority k-feasible cut enumeration over majority-inverter graphs.
//!
//! A **cut** of a node `n` is a set of nodes (*leaves*) such that every
//! path from the primary inputs to `n` passes through a leaf; the cut is
//! *k-feasible* when it has at most `k` leaves. Each cut carries the
//! local function of `n` expressed over its leaves as a 16-bit truth
//! table (k ≤ [`MAX_CUT_INPUTS`] = 4), which is what the NPN database
//! lookup in [`crate::rewrite`] consumes.
//!
//! Cut sets are built bottom-up in one topological sweep: the cuts of a
//! majority node are the k-feasible unions of one cut per child (plus
//! the trivial cut `{n}`), and each node keeps at most
//! [`MAX_CUTS_PER_NODE`] cuts, preferring small leaf sets — the standard
//! *priority cuts* bound that keeps enumeration linear in practice.
//!
//! The representation is allocation-free on the hot path: a [`Cut`] is a
//! `Copy` value holding its leaves inline, and a node's cut set is a
//! fixed-capacity [`CutList`]. The incremental engine
//! ([`crate::incremental`]) caches `CutList`s per node and recomputes
//! them only in the transitive fanout of a rewrite; this module's
//! [`enumerate`] is the from-scratch sweep over a plain [`Mig`].
//!
//! # Example
//!
//! ```
//! use rms_core::Mig;
//! use rms_cut::cuts;
//!
//! let mut mig = Mig::with_inputs("t", 4);
//! let (a, b) = (mig.input(0), mig.input(1));
//! let g = mig.and(a, b);
//! mig.add_output("f", g);
//! let sets = cuts::enumerate(&mig, cuts::MAX_CUTS_PER_NODE);
//! // The AND node has its trivial cut and the {a, b} cut (0xAAAA & 0xCCCC).
//! assert!(sets[g.node()].iter().any(|c| c.tt == 0x8888));
//! ```

use crate::npn::VAR_TT;
use rms_core::{Mig, MigNode, MigSignal};

/// Maximum number of leaves of an enumerated cut (the database covers
/// 4-input functions).
pub const MAX_CUT_INPUTS: usize = 4;

/// Default bound on the number of cuts kept per node.
pub const MAX_CUTS_PER_NODE: usize = 8;

/// One cut of a node: sorted leaf node indices (held inline) plus the
/// node's function over them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cut {
    /// Leaf node indices, sorted ascending; only the first `len` entries
    /// are meaningful.
    leaves: [u32; MAX_CUT_INPUTS],
    len: u8,
    /// Function of the (uncomplemented) node over the leaves, extended
    /// to a full 4-variable table (variables `len..4` are irrelevant).
    pub tt: u16,
}

impl Cut {
    /// A cut from a sorted leaf slice.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_CUT_INPUTS`] leaves are given.
    pub fn new(leaves: &[u32], tt: u16) -> Cut {
        assert!(leaves.len() <= MAX_CUT_INPUTS, "too many leaves");
        let mut a = [0u32; MAX_CUT_INPUTS];
        a[..leaves.len()].copy_from_slice(leaves);
        Cut {
            leaves: a,
            len: leaves.len() as u8,
            tt,
        }
    }

    /// The leaf node indices, sorted ascending.
    pub fn leaves(&self) -> &[u32] {
        &self.leaves[..self.len as usize]
    }

    /// Whether this is the trivial single-leaf cut `{node}` of `node`.
    pub fn is_trivial(&self, node: usize) -> bool {
        self.len == 1 && self.leaves[0] as usize == node
    }
}

/// A node's cut set: at most [`MAX_CUTS_PER_NODE`] cuts, inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutList {
    cuts: [Cut; MAX_CUTS_PER_NODE],
    len: u8,
}

impl Default for CutList {
    fn default() -> Self {
        CutList {
            cuts: [Cut::new(&[], 0); MAX_CUTS_PER_NODE],
            len: 0,
        }
    }
}

impl CutList {
    /// The cuts as a slice.
    pub fn as_slice(&self) -> &[Cut] {
        &self.cuts[..self.len as usize]
    }

    /// Iterates over the cuts.
    pub fn iter(&self) -> std::slice::Iter<'_, Cut> {
        self.as_slice().iter()
    }

    /// Number of cuts held.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list holds no cuts.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn push(&mut self, cut: Cut) {
        debug_assert!((self.len as usize) < MAX_CUTS_PER_NODE);
        self.cuts[self.len as usize] = cut;
        self.len += 1;
    }
}

/// Re-expresses `tt` (over leaf list `from`) over the superset leaf list
/// `to`. Both lists are sorted; every element of `from` occurs in `to`.
fn expand(tt: u16, from: &[u32], to: &[u32]) -> u16 {
    if from.len() == to.len() {
        return tt;
    }
    // Position of each `from` leaf within `to`.
    let mut pos = [0usize; MAX_CUT_INPUTS];
    for (j, leaf) in from.iter().enumerate() {
        pos[j] = to.binary_search(leaf).expect("from ⊆ to");
    }
    let mut r = 0u16;
    for m in 0..16usize {
        let mut cm = 0usize;
        for (j, &p) in pos.iter().enumerate().take(from.len()) {
            if (m >> p) & 1 == 1 {
                cm |= 1 << j;
            }
        }
        if (tt >> cm) & 1 == 1 {
            r |= 1 << m;
        }
    }
    r
}

/// Sorted union of up to three sorted leaf slices into an inline array;
/// `None` when the union exceeds [`MAX_CUT_INPUTS`].
fn merge_leaves(a: &[u32], b: &[u32], c: &[u32]) -> Option<([u32; MAX_CUT_INPUTS], usize)> {
    let mut out = [0u32; MAX_CUT_INPUTS];
    let mut n = 0usize;
    for src in [a, b, c] {
        for &l in src {
            match out[..n].binary_search(&l) {
                Ok(_) => {}
                Err(i) => {
                    if n == MAX_CUT_INPUTS {
                        return None;
                    }
                    out.copy_within(i..n, i + 1);
                    out[i] = l;
                    n += 1;
                }
            }
        }
    }
    Some((out, n))
}

/// The cut set of one majority node, merged from its children's cut
/// sets. `scratch` is a caller-provided buffer reused across nodes so
/// the merge allocates nothing in steady state.
pub(crate) fn compute_maj_cuts(
    node: usize,
    kids: [MigSignal; 3],
    c0: &[Cut],
    c1: &[Cut],
    c2: &[Cut],
    max_cuts: usize,
    scratch: &mut Vec<Cut>,
) -> CutList {
    scratch.clear();
    for a in c0 {
        for b in c1 {
            for c in c2 {
                let Some((leaves, n)) = merge_leaves(a.leaves(), b.leaves(), c.leaves()) else {
                    continue;
                };
                let leaves = &leaves[..n];
                if scratch.iter().any(|m| m.leaves() == leaves) {
                    continue;
                }
                let mut tts = [0u16; 3];
                for (slot, (cut, sig)) in
                    tts.iter_mut()
                        .zip([(a, kids[0]), (b, kids[1]), (c, kids[2])])
                {
                    let t = expand(cut.tt, cut.leaves(), leaves);
                    *slot = if sig.is_complemented() { !t } else { t };
                }
                let tt = (tts[0] & tts[1]) | (tts[0] & tts[2]) | (tts[1] & tts[2]);
                scratch.push(Cut::new(leaves, tt));
            }
        }
    }
    scratch.sort_by_key(|x| (x.len, x.leaves));
    scratch.truncate(max_cuts.saturating_sub(1).min(MAX_CUTS_PER_NODE - 1));
    // The trivial cut last: parents can always merge through the node
    // itself, and the rewriter skips it cheaply.
    let mut list = CutList::default();
    for &c in scratch.iter() {
        list.push(c);
    }
    list.push(Cut::new(&[node as u32], VAR_TT[0]));
    list
}

/// The cut set of an input or constant node.
pub(crate) fn leaf_cuts(node: usize, is_const: bool) -> CutList {
    let mut list = CutList::default();
    if is_const {
        list.push(Cut::new(&[], 0));
    } else {
        list.push(Cut::new(&[node as u32], VAR_TT[0]));
    }
    list
}

/// Enumerates up to `max_cuts` k-feasible cuts (k = 4) for every node.
///
/// The result is indexed by node; each node's list is deterministic,
/// sorted by leaf count (then lexicographically by leaves), and always
/// ends with the node's trivial cut.
///
/// # Panics
///
/// Panics if `max_cuts` exceeds [`MAX_CUTS_PER_NODE`] — cut sets are
/// stored inline with that capacity.
pub fn enumerate(mig: &Mig, max_cuts: usize) -> Vec<CutList> {
    assert!(
        max_cuts <= MAX_CUTS_PER_NODE,
        "max_cuts {max_cuts} exceeds the inline capacity {MAX_CUTS_PER_NODE}"
    );
    let mut sets: Vec<CutList> = Vec::with_capacity(mig.len());
    let mut scratch: Vec<Cut> = Vec::new();
    for idx in 0..mig.len() {
        let cuts = match mig.node(idx) {
            MigNode::Const0 => leaf_cuts(idx, true),
            MigNode::Input(_) => leaf_cuts(idx, false),
            MigNode::Maj(kids) => {
                // Split borrows: children always precede the node.
                let (c0, c1, c2) = (
                    sets[kids[0].node()],
                    sets[kids[1].node()],
                    sets[kids[2].node()],
                );
                compute_maj_cuts(
                    idx,
                    kids,
                    c0.as_slice(),
                    c1.as_slice(),
                    c2.as_slice(),
                    max_cuts,
                    &mut scratch,
                )
            }
        };
        sets.push(cuts);
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_core::MigSignal;
    use std::collections::HashMap;

    /// Reference evaluation: value of `node` given values for the leaves.
    fn eval_node(
        mig: &Mig,
        node: usize,
        leaves: &[u32],
        values: u16,
        memo: &mut HashMap<usize, bool>,
    ) -> bool {
        if let Some(j) = leaves.iter().position(|&l| l as usize == node) {
            return (values >> j) & 1 == 1;
        }
        if let Some(&v) = memo.get(&node) {
            return v;
        }
        let v = match mig.node(node) {
            MigNode::Const0 => false,
            MigNode::Input(_) => panic!("input {node} not covered by cut"),
            MigNode::Maj(kids) => {
                let vs: Vec<bool> = kids
                    .iter()
                    .map(|s: &MigSignal| {
                        eval_node(mig, s.node(), leaves, values, memo) ^ s.is_complemented()
                    })
                    .collect();
                (vs[0] as u8 + vs[1] as u8 + vs[2] as u8) >= 2
            }
        };
        memo.insert(node, v);
        v
    }

    fn sample_mig() -> Mig {
        let mut m = Mig::with_inputs("t", 5);
        let (a, b, c, d, e) = (m.input(0), m.input(1), m.input(2), m.input(3), m.input(4));
        let g1 = m.maj(a, !b, c);
        let g2 = m.and(c, d);
        let g3 = m.maj(g1, !g2, e);
        let g4 = m.xor(g3, a);
        m.add_output("f", g4);
        m
    }

    #[test]
    fn every_cut_truth_table_is_correct() {
        let mig = sample_mig();
        let sets = enumerate(&mig, MAX_CUTS_PER_NODE);
        assert_eq!(sets.len(), mig.len());
        for (node, cuts) in sets.iter().enumerate() {
            for cut in cuts.iter() {
                if cut.leaves().is_empty() {
                    continue; // constant node
                }
                for values in 0..(1u16 << cut.leaves().len()) {
                    let mut memo = HashMap::new();
                    let want = eval_node(&mig, node, cut.leaves(), values, &mut memo);
                    let got = (cut.tt >> values) & 1 == 1;
                    assert_eq!(got, want, "node {node} cut {:?} m={values}", cut.leaves());
                }
            }
        }
    }

    #[test]
    fn cut_counts_are_bounded_and_end_trivial() {
        let mig = sample_mig();
        for max_cuts in [1, 2, 4, MAX_CUTS_PER_NODE] {
            let sets = enumerate(&mig, max_cuts);
            for (node, cuts) in sets.iter().enumerate() {
                assert!(cuts.len() <= max_cuts.max(1), "node {node}");
                if mig.maj_children(node).is_some() {
                    assert!(cuts.as_slice().last().unwrap().is_trivial(node));
                }
            }
        }
    }

    #[test]
    fn leaves_are_sorted_and_feasible() {
        let mig = sample_mig();
        for cuts in enumerate(&mig, MAX_CUTS_PER_NODE) {
            for cut in cuts.iter() {
                assert!(cut.leaves().len() <= MAX_CUT_INPUTS);
                assert!(cut.leaves().windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn expand_keeps_function() {
        // f = x0 & x1 over leaves [7, 9] expanded to [3, 7, 9]: x0 -> var 1,
        // x1 -> var 2.
        let tt = VAR_TT[0] & VAR_TT[1];
        let e = expand(tt, &[7, 9], &[3, 7, 9]);
        assert_eq!(e, VAR_TT[1] & VAR_TT[2]);
    }

    #[test]
    fn cut_accessors() {
        let c = Cut::new(&[3, 7], 0x8888);
        assert_eq!(c.leaves(), &[3, 7]);
        assert!(!c.is_trivial(3));
        let t = Cut::new(&[5], VAR_TT[0]);
        assert!(t.is_trivial(5));
        assert!(!t.is_trivial(4));
    }
}
