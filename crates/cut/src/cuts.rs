//! Priority k-feasible cut enumeration over majority-inverter graphs.
//!
//! A **cut** of a node `n` is a set of nodes (*leaves*) such that every
//! path from the primary inputs to `n` passes through a leaf; the cut is
//! *k-feasible* when it has at most `k` leaves. Each cut carries the
//! local function of `n` expressed over its leaves as a 16-bit truth
//! table (k ≤ [`MAX_CUT_INPUTS`] = 4), which is what the NPN database
//! lookup in [`crate::rewrite`] consumes.
//!
//! Cut sets are built bottom-up in one topological sweep: the cuts of a
//! majority node are the k-feasible unions of one cut per child (plus
//! the trivial cut `{n}`), and each node keeps at most
//! [`MAX_CUTS_PER_NODE`] cuts, preferring small leaf sets — the standard
//! *priority cuts* bound that keeps enumeration linear in practice.
//!
//! # Example
//!
//! ```
//! use rms_core::Mig;
//! use rms_cut::cuts;
//!
//! let mut mig = Mig::with_inputs("t", 4);
//! let (a, b) = (mig.input(0), mig.input(1));
//! let g = mig.and(a, b);
//! mig.add_output("f", g);
//! let sets = cuts::enumerate(&mig, cuts::MAX_CUTS_PER_NODE);
//! // The AND node has its trivial cut and the {a, b} cut (0xAAAA & 0xCCCC).
//! assert!(sets[g.node()].iter().any(|c| c.tt == 0x8888));
//! ```

use crate::npn::VAR_TT;
use rms_core::{Mig, MigNode};

/// Maximum number of leaves of an enumerated cut (the database covers
/// 4-input functions).
pub const MAX_CUT_INPUTS: usize = 4;

/// Default bound on the number of cuts kept per node.
pub const MAX_CUTS_PER_NODE: usize = 8;

/// One cut of a node: sorted leaf node indices plus the node's function
/// over them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    /// Leaf node indices, sorted ascending. Leaf `j` is truth-table
    /// variable `j`; the constant node never appears as a leaf.
    pub leaves: Vec<u32>,
    /// Function of the (uncomplemented) node over the leaves, extended
    /// to a full 4-variable table (variables `leaves.len()..4` are
    /// irrelevant).
    pub tt: u16,
}

impl Cut {
    /// Whether this is the trivial single-leaf cut `{node}` of `node`.
    pub fn is_trivial(&self, node: usize) -> bool {
        self.leaves.len() == 1 && self.leaves[0] as usize == node
    }
}

/// Re-expresses `tt` (over leaf list `from`) over the superset leaf list
/// `to`. Both lists are sorted; every element of `from` occurs in `to`.
fn expand(tt: u16, from: &[u32], to: &[u32]) -> u16 {
    if from.len() == to.len() {
        return tt;
    }
    // Position of each `from` leaf within `to`.
    let mut pos = [0usize; MAX_CUT_INPUTS];
    for (j, leaf) in from.iter().enumerate() {
        pos[j] = to.binary_search(leaf).expect("from ⊆ to");
    }
    let mut r = 0u16;
    for m in 0..16usize {
        let mut cm = 0usize;
        for (j, &p) in pos.iter().enumerate().take(from.len()) {
            if (m >> p) & 1 == 1 {
                cm |= 1 << j;
            }
        }
        if (tt >> cm) & 1 == 1 {
            r |= 1 << m;
        }
    }
    r
}

/// Sorted union of up to three sorted leaf lists; `None` when the union
/// exceeds [`MAX_CUT_INPUTS`].
fn merge_leaves(a: &[u32], b: &[u32], c: &[u32]) -> Option<Vec<u32>> {
    let mut out: Vec<u32> = Vec::with_capacity(MAX_CUT_INPUTS);
    for src in [a, b, c] {
        for &l in src {
            if let Err(i) = out.binary_search(&l) {
                if out.len() == MAX_CUT_INPUTS {
                    return None;
                }
                out.insert(i, l);
            }
        }
    }
    Some(out)
}

/// Enumerates up to `max_cuts` k-feasible cuts (k = 4) for every node.
///
/// The result is indexed by node; each node's list is deterministic,
/// sorted by leaf count (then lexicographically by leaves), and always
/// ends with the node's trivial cut.
pub fn enumerate(mig: &Mig, max_cuts: usize) -> Vec<Vec<Cut>> {
    let mut sets: Vec<Vec<Cut>> = Vec::with_capacity(mig.len());
    for idx in 0..mig.len() {
        let cuts = match mig.node(idx) {
            MigNode::Const0 => vec![Cut {
                leaves: Vec::new(),
                tt: 0,
            }],
            MigNode::Input(_) => vec![Cut {
                leaves: vec![idx as u32],
                tt: VAR_TT[0],
            }],
            MigNode::Maj(kids) => {
                let mut merged: Vec<Cut> = Vec::new();
                let (c0, c1, c2) = (
                    &sets[kids[0].node()],
                    &sets[kids[1].node()],
                    &sets[kids[2].node()],
                );
                for a in c0 {
                    for b in c1 {
                        for c in c2 {
                            let Some(leaves) = merge_leaves(&a.leaves, &b.leaves, &c.leaves) else {
                                continue;
                            };
                            if merged.iter().any(|m| m.leaves == leaves) {
                                continue;
                            }
                            let mut tts = [0u16; 3];
                            for (slot, (cut, sig)) in
                                tts.iter_mut()
                                    .zip([(a, kids[0]), (b, kids[1]), (c, kids[2])])
                            {
                                let t = expand(cut.tt, &cut.leaves, &leaves);
                                *slot = if sig.is_complemented() { !t } else { t };
                            }
                            let tt = (tts[0] & tts[1]) | (tts[0] & tts[2]) | (tts[1] & tts[2]);
                            merged.push(Cut { leaves, tt });
                        }
                    }
                }
                merged
                    .sort_by(|x, y| (x.leaves.len(), &x.leaves).cmp(&(y.leaves.len(), &y.leaves)));
                merged.truncate(max_cuts.saturating_sub(1));
                // The trivial cut last: parents can always merge through
                // the node itself, and the rewriter skips it cheaply.
                merged.push(Cut {
                    leaves: vec![idx as u32],
                    tt: VAR_TT[0],
                });
                merged
            }
        };
        sets.push(cuts);
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_core::MigSignal;
    use std::collections::HashMap;

    /// Reference evaluation: value of `node` given values for the leaves.
    fn eval_node(
        mig: &Mig,
        node: usize,
        leaves: &[u32],
        values: u16,
        memo: &mut HashMap<usize, bool>,
    ) -> bool {
        if let Some(j) = leaves.iter().position(|&l| l as usize == node) {
            return (values >> j) & 1 == 1;
        }
        if let Some(&v) = memo.get(&node) {
            return v;
        }
        let v = match mig.node(node) {
            MigNode::Const0 => false,
            MigNode::Input(_) => panic!("input {node} not covered by cut"),
            MigNode::Maj(kids) => {
                let vs: Vec<bool> = kids
                    .iter()
                    .map(|s: &MigSignal| {
                        eval_node(mig, s.node(), leaves, values, memo) ^ s.is_complemented()
                    })
                    .collect();
                (vs[0] as u8 + vs[1] as u8 + vs[2] as u8) >= 2
            }
        };
        memo.insert(node, v);
        v
    }

    fn sample_mig() -> Mig {
        let mut m = Mig::with_inputs("t", 5);
        let (a, b, c, d, e) = (m.input(0), m.input(1), m.input(2), m.input(3), m.input(4));
        let g1 = m.maj(a, !b, c);
        let g2 = m.and(c, d);
        let g3 = m.maj(g1, !g2, e);
        let g4 = m.xor(g3, a);
        m.add_output("f", g4);
        m
    }

    #[test]
    fn every_cut_truth_table_is_correct() {
        let mig = sample_mig();
        let sets = enumerate(&mig, MAX_CUTS_PER_NODE);
        assert_eq!(sets.len(), mig.len());
        for (node, cuts) in sets.iter().enumerate() {
            for cut in cuts {
                if cut.leaves.is_empty() {
                    continue; // constant node
                }
                for values in 0..(1u16 << cut.leaves.len()) {
                    let mut memo = HashMap::new();
                    let want = eval_node(&mig, node, &cut.leaves, values, &mut memo);
                    let got = (cut.tt >> values) & 1 == 1;
                    assert_eq!(got, want, "node {node} cut {:?} m={values}", cut.leaves);
                }
            }
        }
    }

    #[test]
    fn cut_counts_are_bounded_and_end_trivial() {
        let mig = sample_mig();
        for max_cuts in [1, 2, 4, MAX_CUTS_PER_NODE] {
            let sets = enumerate(&mig, max_cuts);
            for (node, cuts) in sets.iter().enumerate() {
                assert!(cuts.len() <= max_cuts.max(1), "node {node}");
                if mig.maj_children(node).is_some() {
                    assert!(cuts.last().unwrap().is_trivial(node));
                }
            }
        }
    }

    #[test]
    fn leaves_are_sorted_and_feasible() {
        let mig = sample_mig();
        for cuts in enumerate(&mig, MAX_CUTS_PER_NODE) {
            for cut in cuts {
                assert!(cut.leaves.len() <= MAX_CUT_INPUTS);
                assert!(cut.leaves.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn expand_keeps_function() {
        // f = x0 & x1 over leaves [7, 9] expanded to [3, 7, 9]: x0 -> var 1,
        // x1 -> var 2.
        let tt = VAR_TT[0] & VAR_TT[1];
        let e = expand(tt, &[7, 9], &[3, 7, 9]);
        assert_eq!(e, VAR_TT[1] & VAR_TT[2]);
    }
}
