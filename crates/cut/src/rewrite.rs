//! The cut-rewriting driver: Algorithm 5 and the hybrid cut+RRAM script.
//!
//! One **rewrite round** walks the graph in topological order rebuilding
//! it into a fresh, structurally hashed [`Mig`]. For every majority node
//! it considers each enumerated cut, canonicalizes the cut function
//! ([`crate::npn`]), and compares the database implementation
//! ([`mod@crate::database`]) against the node's **MFFC** (maximum fanout-free
//! cone) with respect to the cut — the set of nodes that would become
//! dead if the node were re-expressed over the cut leaves. The candidate
//! with the best estimated gain is instantiated tentatively; the *actual*
//! node count added (structural hashing may share most of it) decides
//! acceptance. Zero-gain replacements are accepted on request to hop
//! between equal-size structures and escape local minima; losing
//! candidates simply stay unreferenced and vanish in the final
//! [`Mig::compact`].
//!
//! The cycle scripts themselves ([`rms_core::opt::cut_script`] and
//! [`rms_core::opt::cut_rram_script`]) live in `rms-core`; this module
//! plugs the database round into them and exposes the user-facing
//! [`optimize_cut`] / [`optimize_cut_rram`] drivers.

use crate::cuts;
use crate::database::database;
use crate::incremental::{cut_script_inplace, EngineMode};
use crate::npn;
use rms_core::opt::{cut_rram_script, cut_script, OptOptions, OptStats};
use rms_core::{Mig, MigNode, MigSignal, Realization};

/// Which cut-rewriting engine runs the optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The in-place engine with incremental cut maintenance (default):
    /// rewrites splice the persistent graph, cuts are invalidated only
    /// in the transitive fanout of a rewrite.
    #[default]
    Incremental,
    /// The in-place engine with full cut recomputation at every round —
    /// bit-identical results to [`Engine::Incremental`] by construction
    /// (the differential reference).
    FromScratch,
    /// The pre-incremental engine: every round re-enumerates all cuts
    /// and rebuilds the graph into a fresh [`Mig`]. Kept as the measured
    /// performance baseline of `rms bench --profile`.
    Rebuild,
}

impl Engine {
    /// Parses an engine name as given on the command line.
    pub fn from_name(name: &str) -> Option<Engine> {
        match name.to_ascii_lowercase().as_str() {
            "incremental" | "inc" | "inplace" | "in-place" => Some(Engine::Incremental),
            "from-scratch" | "fromscratch" | "scratch" => Some(Engine::FromScratch),
            "rebuild" | "legacy" | "baseline" => Some(Engine::Rebuild),
            _ => None,
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Incremental => write!(f, "incremental"),
            Engine::FromScratch => write!(f, "from-scratch"),
            Engine::Rebuild => write!(f, "rebuild"),
        }
    }
}

/// Counters of one rewrite round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Non-trivial cuts inspected.
    pub cuts: u64,
    /// Candidates whose database entry beat (or tied) the MFFC.
    pub candidates: u64,
    /// Replacements accepted.
    pub rewrites: u64,
    /// Accepted replacements with zero net gain.
    pub zero_gain: u64,
    /// Candidates rejected by the simulation-signature spot-check
    /// (always 0 for a correct database; in-place engine only).
    pub sig_vetoes: u64,
    /// Cut sets recomputed this round (in-place engine only).
    pub cut_sets_recomputed: u64,
    /// Cut sets served from the incremental cache (in-place engine only).
    pub cut_sets_reused: u64,
    /// Cut sets evicted by the cache's memory bound (in-place engine
    /// only; eviction costs recomputation, never results).
    pub cut_sets_evicted: u64,
    /// Nanoseconds enumerating cuts this round (see
    /// [`rms_core::opt::OptStats::t_cut_enum_ns`] for the parallel-sum
    /// caveat).
    pub t_cut_enum_ns: u64,
    /// Nanoseconds evaluating candidates (NPN + database + MFFC).
    pub t_eval_ns: u64,
    /// Nanoseconds in the sequential commit sweep.
    pub t_commit_ns: u64,
    /// Nanoseconds in end-of-round GC / derived-structure repair.
    pub t_gc_ns: u64,
}

/// Size of the maximum fanout-free cone of `root` with respect to
/// `leaves`: the number of majority nodes (including `root`) that no
/// longer have references from outside the cone once `root` is replaced.
fn mffc_size(mig: &Mig, refs: &mut [u32], root: usize, leaves: &[u32]) -> u32 {
    let mut count = 1u32;
    deref(mig, refs, root, leaves, &mut count);
    reref(mig, refs, root, leaves);
    count
}

fn is_boundary(mig: &Mig, node: usize, leaves: &[u32]) -> bool {
    leaves.contains(&(node as u32)) || mig.maj_children(node).is_none()
}

fn deref(mig: &Mig, refs: &mut [u32], node: usize, leaves: &[u32], count: &mut u32) {
    let Some(kids) = mig.maj_children(node) else {
        return;
    };
    for k in kids {
        let c = k.node();
        if is_boundary(mig, c, leaves) {
            continue;
        }
        refs[c] -= 1;
        if refs[c] == 0 {
            *count += 1;
            deref(mig, refs, c, leaves, count);
        }
    }
}

fn reref(mig: &Mig, refs: &mut [u32], node: usize, leaves: &[u32]) {
    let Some(kids) = mig.maj_children(node) else {
        return;
    };
    for k in kids {
        let c = k.node();
        if is_boundary(mig, c, leaves) {
            continue;
        }
        if refs[c] == 0 {
            reref(mig, refs, c, leaves);
        }
        refs[c] += 1;
    }
}

/// One full rewrite pass over the graph, against the process-wide
/// database.
///
/// Returns the rewritten (compacted) graph and the round counters. The
/// result always computes the same functions as the input; when
/// `accept_zero_gain` is false the gate count never increases.
pub fn rewrite_round(mig: &Mig, accept_zero_gain: bool) -> (Mig, RoundStats) {
    rewrite_round_with(database(), mig, accept_zero_gain)
}

/// [`rewrite_round`] against an explicit database (used by the database
/// builder itself to refine its own heuristic entries).
pub(crate) fn rewrite_round_with(
    db: &crate::database::Database,
    mig: &Mig,
    accept_zero_gain: bool,
) -> (Mig, RoundStats) {
    let cut_sets = cuts::enumerate(mig, cuts::MAX_CUTS_PER_NODE);
    let mut refs: Vec<u32> = mig.fanout_counts();
    let mut out = Mig::with_inputs(mig.name().to_string(), mig.num_inputs());
    let mut map: Vec<MigSignal> = Vec::with_capacity(mig.len());
    let mut stats = RoundStats::default();

    for idx in 0..mig.len() {
        let sig = match mig.node(idx) {
            MigNode::Const0 => MigSignal::FALSE,
            MigNode::Input(k) => out.input(k as usize),
            MigNode::Maj(kids) => {
                let conv = |s: MigSignal| map[s.node()].complement_if(s.is_complemented());
                let default = out.maj(conv(kids[0]), conv(kids[1]), conv(kids[2]));
                if refs[idx] == 0 {
                    // Dead in the source graph; nothing can gain from it.
                    map.push(default);
                    continue;
                }
                // Best candidate by estimated gain (MFFC vs database size).
                let mut best: Option<(i64, cuts::Cut, usize, u16, i64)> = None;
                for &cut in cut_sets[idx].iter() {
                    if cut.is_trivial(idx) || cut.leaves().is_empty() {
                        continue;
                    }
                    stats.cuts += 1;
                    let (class, t) = npn::canonicalize(cut.tt);
                    let entry = db.entry(class);
                    let mffc = mffc_size(mig, &mut refs, idx, cut.leaves()) as i64;
                    let gain = mffc - entry.gates() as i64;
                    if gain < 0 || (gain == 0 && !accept_zero_gain) {
                        continue;
                    }
                    stats.candidates += 1;
                    if best.is_none_or(|(bg, ..)| gain > bg) {
                        best = Some((gain, cut, t, class, mffc));
                    }
                }
                match best {
                    None => default,
                    Some((_, cut, t, class, freed)) => {
                        // Instantiate tentatively; the nodes actually added
                        // (after structural hashing) decide acceptance.
                        let inv = npn::invert(t);
                        let tr = npn::transform(inv);
                        let mut inputs = [MigSignal::FALSE; 4];
                        for (i, slot) in inputs.iter_mut().enumerate() {
                            let li = tr.perm[i] as usize;
                            // Transform slots beyond the leaf count are
                            // irrelevant variables; any constant works.
                            let base = match cut.leaves().get(li) {
                                Some(&leaf) => map[leaf as usize],
                                None => MigSignal::FALSE,
                            };
                            *slot = base.complement_if((tr.flips >> i) & 1 == 1);
                        }
                        let len_before = out.len();
                        let cand = db
                            .entry(class)
                            .instantiate(&mut out, inputs)
                            .complement_if(tr.negate_output);
                        let added = (out.len() - len_before) as i64;
                        let real_gain = freed - added;
                        if real_gain > 0 || (real_gain == 0 && accept_zero_gain) {
                            stats.rewrites += 1;
                            if real_gain == 0 {
                                stats.zero_gain += 1;
                            }
                            cand
                        } else {
                            default
                        }
                    }
                }
            }
        };
        map.push(sig);
    }
    for (name, o) in mig.outputs() {
        out.add_output(
            name.clone(),
            map[o.node()].complement_if(o.is_complemented()),
        );
    }
    (out.compact(), stats)
}

/// Algorithm 5 — cut-based rewriting with the node-count objective,
/// on the default in-place incremental engine.
pub fn optimize_cut(mig: &Mig, opts: &OptOptions) -> Mig {
    optimize_cut_stats(mig, opts).0
}

/// [`optimize_cut`] with run statistics.
pub fn optimize_cut_stats(mig: &Mig, opts: &OptOptions) -> (Mig, OptStats) {
    optimize_cut_stats_engine(mig, opts, Engine::default())
}

/// [`optimize_cut_stats`] on an explicit engine.
///
/// [`Engine::Incremental`] and [`Engine::FromScratch`] produce
/// bit-identical graphs; [`Engine::Rebuild`] is the pre-incremental
/// driver ([`rms_core::opt::cut_script`] over [`rewrite_round`]) kept as
/// the measured perf baseline.
pub fn optimize_cut_stats_engine(mig: &Mig, opts: &OptOptions, engine: Engine) -> (Mig, OptStats) {
    match engine {
        Engine::Incremental => cut_script_inplace(mig, opts, EngineMode::Incremental),
        Engine::FromScratch => cut_script_inplace(mig, opts, EngineMode::FromScratch),
        Engine::Rebuild => {
            let mut round = |m: &Mig, zero_gain: bool| {
                let (out, st) = rewrite_round(m, zero_gain);
                (out, st.rewrites)
            };
            cut_script(mig, opts, &mut round)
        }
    }
}

/// The hybrid script: cut rewriting interleaved with the paper's Alg. 3
/// passes, scored by the `R·S` product for `realization`. Never scores
/// worse than [`rms_core::opt::optimize_rram`].
pub fn optimize_cut_rram(mig: &Mig, realization: Realization, opts: &OptOptions) -> Mig {
    optimize_cut_rram_stats(mig, realization, opts).0
}

/// [`optimize_cut_rram`] with run statistics.
pub fn optimize_cut_rram_stats(
    mig: &Mig,
    realization: Realization,
    opts: &OptOptions,
) -> (Mig, OptStats) {
    let mut round = |m: &Mig, zero_gain: bool| {
        let (out, st) = rewrite_round(m, zero_gain);
        (out, st.rewrites)
    };
    let (best, mut stats) = cut_rram_script(mig, realization, opts, &mut round);
    if opts.effort == 0 {
        return (best, stats);
    }
    // Final stage: fraig + resub polish, kept only when the R·S product
    // improves — the hybrid stays never-worse than plain Alg. 3.
    match crate::sweep::rram_polish(&best, realization, &mut stats, &opts.cancel) {
        Some(polished) => (polished, stats),
        None => (best, stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_core::cost::RramCost;
    use rms_core::opt::{optimize_area, optimize_rram};
    use rms_logic::bench_suite;
    use rms_logic::sim::check_equivalence;

    fn bench_mig(name: &str) -> Mig {
        Mig::from_netlist(&bench_suite::build(name).unwrap())
    }

    fn assert_equiv(a: &Mig, b: &Mig, what: &str) {
        let res = check_equivalence(&a.to_netlist(), &b.to_netlist());
        assert!(res.holds(), "{what}: {res:?}");
    }

    const SAMPLES: &[&str] = &["rd53_f2", "9sym_d", "con1_f1", "sao2_f4", "exam3_d"];

    #[test]
    fn round_preserves_function_and_never_grows() {
        for name in SAMPLES {
            let m = bench_mig(name).compact();
            for zero_gain in [false, true] {
                let (r, _) = rewrite_round(&m, zero_gain);
                assert_equiv(&m, &r, name);
                if !zero_gain {
                    assert!(r.num_gates() <= m.num_gates(), "{name}");
                }
            }
        }
    }

    #[test]
    fn rewriting_finds_the_majority_gate() {
        // M(a, b, c) spelled as its full sum-of-products: five gates that a
        // single database lookup collapses to one majority node.
        let mut m = Mig::with_inputs("maj_sop", 3);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let bc = m.and(b, c);
        let o1 = m.or(ab, ac);
        let o2 = m.or(o1, bc);
        m.add_output("f", o2);
        assert_eq!(m.num_gates(), 5);
        let (r, stats) = rewrite_round(&m, false);
        assert_equiv(&m, &r, "maj_sop");
        assert_eq!(r.num_gates(), 1, "{stats:?}");
        assert!(stats.rewrites >= 1);
    }

    #[test]
    fn optimize_cut_preserves_function() {
        let opts = OptOptions::with_effort(4);
        for name in SAMPLES {
            let m = bench_mig(name);
            let o = optimize_cut(&m, &opts);
            assert_equiv(&m, &o, name);
            assert!(o.num_gates() <= m.num_gates(), "{name}");
        }
    }

    #[test]
    fn optimize_cut_not_worse_than_area_in_aggregate() {
        let opts = OptOptions::with_effort(6);
        let mut cut_total = 0u64;
        let mut area_total = 0u64;
        let mut wins = 0usize;
        for name in SAMPLES {
            let m = bench_mig(name);
            let cut = optimize_cut(&m, &opts).num_gates() as u64;
            let area = optimize_area(&m, &opts).num_gates() as u64;
            cut_total += cut;
            area_total += area;
            if cut <= area {
                wins += 1;
            }
        }
        assert!(
            cut_total <= area_total,
            "cut {cut_total} gates vs area {area_total}"
        );
        assert!(wins * 2 >= SAMPLES.len(), "{wins}/{} wins", SAMPLES.len());
    }

    #[test]
    fn hybrid_never_scores_worse_than_rram_opt() {
        let opts = OptOptions::with_effort(5);
        for name in SAMPLES {
            let m = bench_mig(name);
            for real in Realization::ALL {
                let hybrid = optimize_cut_rram(&m, real, &opts);
                assert_equiv(&m, &hybrid, name);
                let base = optimize_rram(&m, real, &opts);
                let ch = RramCost::of(&hybrid, real);
                let cb = RramCost::of(&base, real);
                assert!(
                    ch.rrams.saturating_mul(ch.steps) <= cb.rrams.saturating_mul(cb.steps),
                    "{name}/{real}: hybrid {ch} vs base {cb}"
                );
            }
        }
    }

    #[test]
    fn stats_report_rewrites() {
        let m = bench_mig("exam3_d");
        let (o, stats) = optimize_cut_stats(&m, &OptOptions::with_effort(4));
        assert_eq!(stats.gates_before, m.num_gates() as u64);
        assert_eq!(stats.gates_after, o.num_gates() as u64);
        assert!(stats.cycles >= 1);
        assert!(stats.passes > stats.cycles as u64);
    }
}
