//! NPN canonicalization of 4-input truth tables.
//!
//! Two Boolean functions belong to the same **NPN class** when one can be
//! obtained from the other by Negating inputs, Permuting inputs, and/or
//! Negating the output. Over 4 variables the 65 536 functions collapse
//! into exactly **222 classes**, which is what makes a precomputed
//! database of optimal implementations practical: the rewriter looks up
//! one entry per class and reconstructs the concrete function from the
//! recorded transform.
//!
//! The orbit of a function has at most `4! · 2⁴ · 2 = 768` members, so
//! canonicalization is an exhaustive scan. All 768 transforms are
//! precomputed as minterm permutation maps, and the full
//! `tt → (class, transform)` tables for every 16-bit truth table are
//! built once per process behind a [`OnceLock`] — after warm-up a lookup
//! is two array reads.
//!
//! # Conventions
//!
//! A [`Transform`] `t = (π, φ, o)` acts on a truth table `f` as
//!
//! ```text
//! apply(t, f)(m) = f(σ(m)) ^ o      with σ(m)ᵢ = m_{π(i)} ^ φᵢ
//! ```
//!
//! i.e. input `i` of the transformed function reads input `π(i)` of the
//! original, optionally complemented. The **canonical representative** of
//! a class is the numerically smallest `u16` in the orbit.
//!
//! # Example
//!
//! ```
//! use rms_cut::npn;
//!
//! // AND(a, b) and NOR(c, d) are in the same NPN class.
//! let and_ab = 0xAAAAu16 & 0xCCCCu16;
//! let nor_cd = !(0xF0F0u16 | 0xFF00u16);
//! assert_eq!(npn::canonicalize(and_ab).0, npn::canonicalize(nor_cd).0);
//! // The returned transform maps the function to its canonical form.
//! let (class, t) = npn::canonicalize(nor_cd);
//! assert_eq!(npn::apply(t, nor_cd), class);
//! assert_eq!(npn::apply(npn::invert(t), class), nor_cd);
//! ```

use std::sync::OnceLock;

/// Number of NPN transforms over 4 variables: `4! · 2⁴ · 2`.
pub const NUM_TRANSFORMS: usize = 768;

/// Number of NPN classes of Boolean functions of at most 4 variables.
pub const NUM_CLASSES: usize = 222;

/// One input-permutation / input-negation / output-negation transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transform {
    /// Input permutation: transformed input `i` reads original input
    /// `perm[i]`.
    pub perm: [u8; 4],
    /// Input complement mask: bit `i` complements transformed input `i`.
    pub flips: u8,
    /// Whether the output is complemented.
    pub negate_output: bool,
}

/// The 24 permutations of 4 elements in lexicographic order.
const PERMS: [[u8; 4]; 24] = [
    [0, 1, 2, 3],
    [0, 1, 3, 2],
    [0, 2, 1, 3],
    [0, 2, 3, 1],
    [0, 3, 1, 2],
    [0, 3, 2, 1],
    [1, 0, 2, 3],
    [1, 0, 3, 2],
    [1, 2, 0, 3],
    [1, 2, 3, 0],
    [1, 3, 0, 2],
    [1, 3, 2, 0],
    [2, 0, 1, 3],
    [2, 0, 3, 1],
    [2, 1, 0, 3],
    [2, 1, 3, 0],
    [2, 3, 0, 1],
    [2, 3, 1, 0],
    [3, 0, 1, 2],
    [3, 0, 2, 1],
    [3, 1, 0, 2],
    [3, 1, 2, 0],
    [3, 2, 0, 1],
    [3, 2, 1, 0],
];

/// The transform with a given index; inverse of [`index_of`].
fn transform_at(idx: usize) -> Transform {
    debug_assert!(idx < NUM_TRANSFORMS);
    Transform {
        perm: PERMS[idx / 32],
        flips: ((idx / 2) % 16) as u8,
        negate_output: idx % 2 == 1,
    }
}

/// The index of a transform in the fixed enumeration order.
fn index_of(t: &Transform) -> usize {
    let p = PERMS
        .iter()
        .position(|q| *q == t.perm)
        .expect("valid permutation");
    p * 32 + (t.flips as usize) * 2 + t.negate_output as usize
}

/// The minterm map `σ` of a transform: `σ(m)ᵢ = m_{π(i)} ^ φᵢ`.
fn sigma(t: &Transform, m: usize) -> usize {
    let mut s = 0usize;
    for i in 0..4 {
        let bit = ((m >> t.perm[i]) & 1) ^ ((t.flips as usize >> i) & 1);
        s |= bit << i;
    }
    s
}

/// Precomputed transform metadata: the 768 transforms and their minterm
/// maps.
struct Tables {
    transforms: Vec<Transform>,
    /// `maps[t][m] = σ_t(m)`.
    maps: Vec<[u8; 16]>,
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let transforms: Vec<Transform> = (0..NUM_TRANSFORMS).map(transform_at).collect();
        let maps = transforms
            .iter()
            .map(|t| {
                let mut map = [0u8; 16];
                for (m, slot) in map.iter_mut().enumerate() {
                    *slot = sigma(t, m) as u8;
                }
                map
            })
            .collect();
        Tables { transforms, maps }
    })
}

/// Applies transform `t` (by index) to a truth table.
///
/// # Panics
///
/// Panics if `t >= NUM_TRANSFORMS`.
pub fn apply(t: usize, f: u16) -> u16 {
    let tables = tables();
    let map = &tables.maps[t];
    let mut r = 0u16;
    for (m, &src) in map.iter().enumerate() {
        if (f >> src) & 1 == 1 {
            r |= 1 << m;
        }
    }
    if tables.transforms[t].negate_output {
        !r
    } else {
        r
    }
}

/// The transform metadata behind index `t`.
///
/// # Panics
///
/// Panics if `t >= NUM_TRANSFORMS`.
pub fn transform(t: usize) -> Transform {
    tables().transforms[t]
}

/// Composition: `apply(compose(a, b), f) == apply(a, apply(b, f))`.
///
/// # Panics
///
/// Panics if either index is out of range.
pub fn compose(a: usize, b: usize) -> usize {
    let ta = tables().transforms[a];
    let tb = tables().transforms[b];
    let mut perm = [0u8; 4];
    let mut flips = 0u8;
    for (i, slot) in perm.iter_mut().enumerate() {
        // σ_c = σ_b ∘ σ_a: π_c(i) = π_a(π_b(i)), φ_c(i) = φ_a(π_b(i)) ^ φ_b(i).
        *slot = ta.perm[tb.perm[i] as usize];
        let f = ((ta.flips >> tb.perm[i]) & 1) ^ ((tb.flips >> i) & 1);
        flips |= f << i;
    }
    index_of(&Transform {
        perm,
        flips,
        negate_output: ta.negate_output ^ tb.negate_output,
    })
}

/// The inverse transform: `apply(invert(t), apply(t, f)) == f`.
///
/// # Panics
///
/// Panics if `t >= NUM_TRANSFORMS`.
pub fn invert(t: usize) -> usize {
    let tt = tables().transforms[t];
    let mut perm = [0u8; 4];
    let mut flips = 0u8;
    for i in 0..4 {
        perm[tt.perm[i] as usize] = i as u8;
    }
    for (j, &p) in perm.iter().enumerate() {
        flips |= ((tt.flips >> p) & 1) << j;
    }
    index_of(&Transform {
        perm,
        flips,
        negate_output: tt.negate_output,
    })
}

/// Full canonicalization tables over all 65 536 truth tables.
struct Canon {
    /// Canonical class representative of each function.
    class_of: Vec<u16>,
    /// A transform index `t` with `apply(t, f) == class_of[f]`.
    to_canonical: Vec<u16>,
    /// The 222 canonical representatives, sorted ascending.
    classes: Vec<u16>,
}

fn canon() -> &'static Canon {
    static CANON: OnceLock<Canon> = OnceLock::new();
    CANON.get_or_init(|| {
        let mut class_of = vec![0u16; 1 << 16];
        let mut to_canonical = vec![0u16; 1 << 16];
        let mut visited = vec![false; 1 << 16];
        let mut classes = Vec::new();
        for f in 0..=u16::MAX {
            if visited[f as usize] {
                continue;
            }
            // First pass: the canonical representative and one transform
            // reaching it.
            let mut best = f;
            let mut best_t = 0usize;
            for t in 0..NUM_TRANSFORMS {
                let g = apply(t, f);
                if g < best {
                    best = g;
                    best_t = t;
                }
            }
            classes.push(best);
            // Second pass: every orbit member m = apply(t, f) reaches the
            // canonical form via best_t ∘ t⁻¹.
            for t in 0..NUM_TRANSFORMS {
                let m = apply(t, f) as usize;
                if !visited[m] {
                    visited[m] = true;
                    class_of[m] = best;
                    to_canonical[m] = compose(best_t, invert(t)) as u16;
                }
            }
        }
        classes.sort_unstable();
        Canon {
            class_of,
            to_canonical,
            classes,
        }
    })
}

/// Canonicalizes a 4-input truth table.
///
/// Returns the canonical class representative `c` and a transform index
/// `t` such that `apply(t, tt) == c`; the original function is
/// reconstructed as `apply(invert(t), c)`.
pub fn canonicalize(tt: u16) -> (u16, usize) {
    let c = canon();
    (
        c.class_of[tt as usize],
        c.to_canonical[tt as usize] as usize,
    )
}

/// The canonical representatives of all [`NUM_CLASSES`] NPN classes,
/// sorted ascending.
pub fn classes() -> &'static [u16] {
    &canon().classes
}

/// Re-expresses a truth table over `vars <= 4` variables as a full
/// 16-bit table by replicating its `2^vars`-bit block (the added
/// variables are irrelevant).
///
/// # Panics
///
/// Panics if `vars > 4`.
pub fn extend(tt: u16, vars: usize) -> u16 {
    assert!(vars <= 4, "at most 4 variables");
    let mut width = 1u32 << vars;
    let mut t = tt & block_mask(vars);
    while width < 16 {
        t |= t << width;
        width *= 2;
    }
    t
}

/// Mask of the valid low bits of a `vars`-variable table.
fn block_mask(vars: usize) -> u16 {
    if vars >= 4 {
        u16::MAX
    } else {
        (1u16 << (1 << vars)) - 1
    }
}

/// Truth table of projection variable `i` over 4 variables.
pub const VAR_TT: [u16; 4] = [0xAAAA, 0xCCCC, 0xF0F0, 0xFF00];

#[cfg(test)]
mod tests {
    use super::*;
    use rms_logic::rng::SplitMix64;

    #[test]
    fn transform_index_round_trip() {
        for idx in 0..NUM_TRANSFORMS {
            assert_eq!(index_of(&transform_at(idx)), idx);
        }
    }

    #[test]
    fn identity_transform_is_index_zero() {
        let t = transform(0);
        assert_eq!(t.perm, [0, 1, 2, 3]);
        assert_eq!(t.flips, 0);
        assert!(!t.negate_output);
        assert_eq!(apply(0, 0xBEEF), 0xBEEF);
    }

    #[test]
    fn compose_matches_sequential_application() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..200 {
            let a = rng.next_index(NUM_TRANSFORMS);
            let b = rng.next_index(NUM_TRANSFORMS);
            let f = rng.next_u64() as u16;
            assert_eq!(apply(compose(a, b), f), apply(a, apply(b, f)));
        }
    }

    #[test]
    fn invert_is_inverse() {
        let mut rng = SplitMix64::new(22);
        for t in 0..NUM_TRANSFORMS {
            let f = rng.next_u64() as u16;
            assert_eq!(apply(invert(t), apply(t, f)), f);
            assert_eq!(compose(invert(t), t), 0);
        }
    }

    #[test]
    fn exactly_222_classes() {
        assert_eq!(classes().len(), NUM_CLASSES);
        // Canonical representatives are fixed points of canonicalization.
        for &c in classes() {
            assert_eq!(canonicalize(c).0, c);
        }
    }

    #[test]
    fn whole_orbit_canonicalizes_identically() {
        let mut rng = SplitMix64::new(33);
        for _ in 0..50 {
            let f = rng.next_u64() as u16;
            let (class, t) = canonicalize(f);
            assert_eq!(apply(t, f), class);
            for _ in 0..16 {
                let u = rng.next_index(NUM_TRANSFORMS);
                let g = apply(u, f);
                assert_eq!(canonicalize(g).0, class, "f={f:04x} u={u}");
            }
        }
    }

    #[test]
    fn known_classmates() {
        // All 2-input ANDs/ORs/NORs/NANDs over any input pair share a class.
        let and = VAR_TT[0] & VAR_TT[1];
        let or = VAR_TT[2] | VAR_TT[3];
        let nand = !(VAR_TT[1] & VAR_TT[3]);
        assert_eq!(canonicalize(and).0, canonicalize(or).0);
        assert_eq!(canonicalize(and).0, canonicalize(nand).0);
        // XOR is self-dual: its orbit is comparatively small and distinct.
        let xor = VAR_TT[0] ^ VAR_TT[1];
        assert_ne!(canonicalize(and).0, canonicalize(xor).0);
        // Constants 0 and 1 share the class with representative 0.
        assert_eq!(canonicalize(0).0, 0);
        assert_eq!(canonicalize(u16::MAX).0, 0);
    }

    #[test]
    fn extend_replicates_blocks() {
        assert_eq!(extend(0b10, 1), 0xAAAA);
        assert_eq!(extend(0b1000, 2), 0x8888);
        assert_eq!(extend(0x00E8, 3), 0xE8E8);
        assert_eq!(extend(0x1234, 4), 0x1234);
    }
}
