//! Cut-based NPN rewriting for majority-inverter graphs (Algorithm 5).
//!
//! The paper's Ω/Ψ transformations (`rms-core`) are local, axiom-by-axiom
//! passes; they plateau on reconvergent logic where only a Boolean
//! (truth-table-level) restructuring finds a smaller majority network.
//! This crate adds the standard escape hatch of modern synthesis engines
//! — **cut rewriting against a database of size-optimal structures**:
//!
//! 1. [`cuts`] enumerates priority k-feasible cuts (k ≤ 4) for every
//!    node, each carrying its local function as a 16-bit truth table;
//! 2. [`npn`] canonicalizes those functions into one of the **222 NPN
//!    classes** of ≤4-input functions (exhaustive `4!·2⁴·2` orbit scan
//!    over precomputed transform tables);
//! 3. [`mod@database`] maps every class to a size-optimal (exact for ≤3
//!    gates, near-optimal otherwise) 4-input MIG, built once per process;
//! 4. [`rewrite`] walks the graph in topological order and replaces a
//!    node's maximum fanout-free cone with the database structure
//!    whenever that is a net win (zero-gain hops optional), yielding
//!    [`optimize_cut`] (node-count objective) and [`optimize_cut_rram`]
//!    (interleaved with the paper's Alg. 3, scored by `R·S`).
//!
//! Two engines implement the round. The default **incremental engine**
//! ([`incremental`]) splices rewrites into a persistent
//! [`rms_core::IncrementalMig`] and recomputes cuts only in the
//! transitive fanout of a rewrite; the **rebuild engine**
//! ([`rewrite_round`]) re-enumerates everything per round and is kept as
//! the measured perf baseline (`rms bench --profile`). Select with
//! [`Engine`] / `rms … --engine`.
//!
//! The cycle scripts live in [`rms_core::opt`] so that `rms-core` remains
//! the single home of algorithm definitions; this crate supplies the
//! database round, and `rms-flow` wires it into the pipeline (CLI:
//! `rms run --opt cut` / `--opt cut-rram`).
//!
//! # Example
//!
//! ```
//! use rms_core::{Mig, opt::OptOptions};
//! use rms_cut::optimize_cut;
//!
//! // Majority spelled as five AND/OR gates; one database lookup finds it.
//! let mut mig = Mig::with_inputs("maj_sop", 3);
//! let (a, b, c) = (mig.input(0), mig.input(1), mig.input(2));
//! let (ab, ac, bc) = (mig.and(a, b), mig.and(a, c), mig.and(b, c));
//! let or1 = mig.or(ab, ac);
//! let or2 = mig.or(or1, bc);
//! mig.add_output("f", or2);
//! let opt = optimize_cut(&mig, &OptOptions::with_effort(2));
//! assert_eq!(opt.num_gates(), 1);
//! ```

pub mod cuts;
pub mod database;
pub mod fraig;
pub mod incremental;
pub mod npn;
pub mod resub;
pub mod rewrite;
pub mod sweep;

pub use cuts::{Cut, CutList, MAX_CUTS_PER_NODE, MAX_CUT_INPUTS};
pub use database::{database, prewarm, Database, DbEntry};
pub use fraig::{fraig_pass, prove_signals, FraigOptions, FraigOutcome, FraigStats, ProveOutcome};
pub use incremental::{cut_script_inplace, round_windowed, CutStore, EngineMode, WINDOW_NODES};
pub use resub::{resub_pass, ResubOptions, ResubStats};
pub use rewrite::{
    optimize_cut, optimize_cut_rram, optimize_cut_rram_stats, optimize_cut_stats,
    optimize_cut_stats_engine, rewrite_round, Engine, RoundStats,
};
pub use sweep::{optimize_sweep_stats, SweepPasses};
