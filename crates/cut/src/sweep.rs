//! The SAT-sweeping optimization scripts ([`rms_core::Algorithm::Sweep`],
//! [`rms_core::Algorithm::Resub`], [`rms_core::Algorithm::SweepResub`]).
//!
//! Each script runs the in-place cut script first, then layers the
//! verification-engine-powered passes on top of its result:
//!
//! ```text
//! cut script  →  [ fraig pass ]  [ resub pass ]  eliminate  →  best
//!                 \__________ repeated until fixpoint _______/
//! ```
//!
//! Starting from the cut result and tracking the best iterate makes the
//! scripts **never worse than the cut baseline** on any benchmark: the
//! fraig pass only commits SAT-proved merges (each removes at least one
//! gate), accepted resubstitutions strictly shrink the MFFC, and
//! `eliminate` is non-increasing, so every iterate is at most the cut
//! result's size. Results are bit-identical across thread counts and
//! engines — `Engine::Rebuild` has no in-place post passes of its own
//! and falls back to the incremental base (the two in-place cut engines
//! are bit-identical by construction).

use crate::fraig::{fraig_pass, FraigOptions};
use crate::incremental::{cut_script_inplace, EngineMode};
use crate::resub::{resub_pass, ResubOptions};
use crate::rewrite::Engine;
use rms_core::fanout::eliminate_inplace;
use rms_core::opt::{OptOptions, OptStats};
use rms_core::CancelToken;
use rms_core::{IncrementalMig, Mig, Realization, RramCost};

/// Which post passes a sweep script runs on top of the cut script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPasses {
    /// Run the fraig (SAT-sweeping) pass.
    pub fraig: bool,
    /// Run the windowed resubstitution pass.
    pub resub: bool,
}

impl SweepPasses {
    /// Fraiging only (`Algorithm::Sweep`).
    pub const FRAIG: SweepPasses = SweepPasses {
        fraig: true,
        resub: false,
    };
    /// Resubstitution only (`Algorithm::Resub`).
    pub const RESUB: SweepPasses = SweepPasses {
        fraig: false,
        resub: true,
    };
    /// Both passes (`Algorithm::SweepResub`).
    pub const BOTH: SweepPasses = SweepPasses {
        fraig: true,
        resub: true,
    };
}

/// Maximum post-pass rounds; each round must make progress to continue.
const MAX_POST_ROUNDS: usize = 4;

/// Runs the post passes over `base`, returning the best iterate by
/// `(gates, depth)` and accumulating counters into `stats`.
pub(crate) fn post_passes(
    base: &Mig,
    passes: SweepPasses,
    stats: &mut OptStats,
    cancel: &CancelToken,
) -> Mig {
    let compact = base.compact();
    if compact.num_gates() == 0 {
        return compact;
    }
    let mut g = IncrementalMig::from_mig(&compact);
    let mut best = compact;
    let mut best_score = (best.num_gates(), best.depth());
    for _ in 0..MAX_POST_ROUNDS {
        // Post-pass rounds are cancellation checkpoints; the best iterate
        // is always a fully-committed graph, so stopping here is safe.
        if cancel.cancelled() {
            stats.cancelled = true;
            break;
        }
        let mut progress = 0u64;
        if passes.fraig {
            let fopts = FraigOptions {
                cancel: cancel.clone(),
                ..FraigOptions::default()
            };
            let outcome = fraig_pass(&mut g, &fopts);
            stats.fraig_classes += outcome.stats.classes;
            stats.fraig_merges += outcome.stats.merges;
            stats.sat_conflicts += outcome.stats.sat_conflicts;
            stats.sat_budget_exhausted += outcome.stats.budget_exhausted;
            progress += outcome.stats.merges;
            stats.passes += 1;
        }
        if passes.resub {
            let ropts = ResubOptions {
                cancel: cancel.clone(),
                ..ResubOptions::default()
            };
            let r = resub_pass(&mut g, &ropts);
            stats.resubs += r.accepted;
            stats.sat_conflicts += r.sat_conflicts;
            stats.sat_budget_exhausted += r.budget_exhausted;
            progress += r.accepted;
            stats.passes += 1;
        }
        progress += eliminate_inplace(&mut g) as u64;
        stats.passes += 1;
        stats.cycles += 1;
        let score = (g.num_gates(), g.depth());
        if score < best_score {
            best_score = score;
            best = g.to_mig();
        }
        if progress == 0 {
            break;
        }
    }
    stats.peak_nodes = stats.peak_nodes.max(g.peak_len() as u64);
    best
}

/// Runs a sweep script: the in-place cut script, then the requested
/// SAT-backed post passes until fixpoint (best iterate returned).
pub fn optimize_sweep_stats(
    mig: &Mig,
    opts: &OptOptions,
    engine: Engine,
    passes: SweepPasses,
) -> (Mig, OptStats) {
    let mode = match engine {
        Engine::FromScratch => EngineMode::FromScratch,
        // The post passes are in-place only; the rebuild engine falls
        // back to the (bit-identical) incremental base.
        Engine::Incremental | Engine::Rebuild => EngineMode::Incremental,
    };
    let (base, mut stats) = cut_script_inplace(mig, opts, mode);
    if opts.effort == 0 {
        return (base, stats);
    }
    let out = post_passes(&base, passes, &mut stats, &opts.cancel);
    stats.gates_after = out.num_gates() as u64;
    (out, stats)
}

/// RRAM-scored polish used by the hybrid cut+RRAM script: runs both post
/// passes and keeps the result only when the `R·S` product improves.
pub(crate) fn rram_polish(
    best: &Mig,
    realization: Realization,
    stats: &mut OptStats,
    cancel: &CancelToken,
) -> Option<Mig> {
    let score = |m: &Mig| {
        let c = RramCost::of(m, realization);
        (c.rrams.saturating_mul(c.steps), c.steps)
    };
    let mut post = OptStats::default();
    let polished = post_passes(best, SweepPasses::BOTH, &mut post, cancel);
    if score(&polished) < score(best) {
        stats.fraig_classes += post.fraig_classes;
        stats.fraig_merges += post.fraig_merges;
        stats.resubs += post.resubs;
        stats.sat_conflicts += post.sat_conflicts;
        stats.sat_budget_exhausted += post.sat_budget_exhausted;
        stats.passes += post.passes;
        stats.gates_after = polished.num_gates() as u64;
        Some(polished)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::optimize_cut_stats_engine;
    use rms_logic::bench_suite;
    use rms_logic::sim::check_equivalence;

    fn bench_mig(name: &str) -> Mig {
        Mig::from_netlist(&bench_suite::build(name).unwrap())
    }

    const SAMPLES: &[&str] = &["rd53_f2", "9sym_d", "con1_f1", "sao2_f4", "exam3_d"];

    #[test]
    fn sweep_scripts_preserve_functions_and_beat_cut() {
        let opts = OptOptions::with_effort(6);
        for name in SAMPLES {
            let m = bench_mig(name);
            let (cut, _) = optimize_cut_stats_engine(&m, &opts, Engine::Incremental);
            for passes in [SweepPasses::FRAIG, SweepPasses::RESUB, SweepPasses::BOTH] {
                let (out, stats) = optimize_sweep_stats(&m, &opts, Engine::Incremental, passes);
                assert!(
                    out.num_gates() <= cut.num_gates(),
                    "{name}: sweep {} > cut {}",
                    out.num_gates(),
                    cut.num_gates()
                );
                assert_eq!(stats.gates_after, out.num_gates() as u64);
                let res = check_equivalence(&m.to_netlist(), &out.to_netlist());
                assert!(res.holds(), "{name}: {res:?}");
            }
        }
    }

    #[test]
    fn sweep_is_bit_identical_across_engines() {
        let opts = OptOptions::with_effort(6);
        for name in SAMPLES {
            let m = bench_mig(name);
            let (a, _) = optimize_sweep_stats(&m, &opts, Engine::Incremental, SweepPasses::BOTH);
            let (b, _) = optimize_sweep_stats(&m, &opts, Engine::FromScratch, SweepPasses::BOTH);
            let (c, _) = optimize_sweep_stats(&m, &opts, Engine::Rebuild, SweepPasses::BOTH);
            assert_eq!(a.to_netlist(), b.to_netlist(), "{name}: engines diverged");
            assert_eq!(
                a.to_netlist(),
                c.to_netlist(),
                "{name}: rebuild fallback diverged"
            );
        }
    }

    #[test]
    fn effort_zero_skips_post_passes() {
        let m = bench_mig("exam3_d");
        let (out, stats) = optimize_sweep_stats(
            &m,
            &OptOptions::with_effort(0),
            Engine::Incremental,
            SweepPasses::BOTH,
        );
        assert_eq!(stats.fraig_merges + stats.resubs, 0);
        let res = check_equivalence(&m.to_netlist(), &out.to_netlist());
        assert!(res.holds(), "{res:?}");
    }
}
