//! The canonical 4-input MIG database: one size-optimal (or near-optimal)
//! majority-inverter implementation per NPN class.
//!
//! The database is built **once per process** (behind a [`OnceLock`]) in
//! three stages:
//!
//! 1. **Bounded exact synthesis** — every MIG with at most three majority
//!    gates over `{0, x0..x3}` is enumerated exhaustively (children may be
//!    complemented; structural folds are implied by the tree shape). Each
//!    reachable truth table is recorded with its minimal gate count. This
//!    stage alone proves optimality for every class it covers, including
//!    the workhorses of rewriting: single-gate AND/OR/MAJ shapes, the
//!    3-gate XOR and MUX, and 3-gate gate chains such as 4-input AND.
//! 2. **Heuristic fallback** — classes the exact stage misses are
//!    synthesized by recursive XOR/Shannon decomposition (bottoming out
//!    in the exact table, trying every first split variable) into a
//!    structurally hashed [`Mig`], then shrunk with the paper's own
//!    [`optimize_area`] pass.
//! 3. **Self-refinement** — the cut rewriter itself
//!    ([`crate::rewrite`]) runs over every heuristic entry against the
//!    current database until a fixpoint, so large entries inherit the
//!    optimal sub-structures of smaller classes.
//!
//! Every entry is stored as a 4-input, single-output [`Mig`] and is
//! instantiated into a target graph by [`DbEntry::instantiate`]; the
//! tests re-simulate all 222 entries against their class representatives.

use crate::npn;
use rms_core::hash::FxHashMap;
use rms_core::opt::{optimize_area, OptOptions};
use rms_core::{MajBuilder, Mig, MigNode, MigSignal};
use std::collections::HashMap;
use std::sync::OnceLock;

/// One database entry: the implementation of a canonical class.
#[derive(Debug, Clone)]
pub struct DbEntry {
    /// A 4-input, single-output MIG computing the class representative.
    mig: Mig,
    /// Majority-gate count of [`DbEntry::mig`].
    gates: u32,
}

impl DbEntry {
    fn new(mig: Mig) -> Self {
        let gates = mig.num_gates() as u32;
        DbEntry { mig, gates }
    }

    /// Number of majority gates of this implementation.
    pub fn gates(&self) -> u32 {
        self.gates
    }

    /// The stored implementation graph.
    pub fn mig(&self) -> &Mig {
        &self.mig
    }

    /// Copies the implementation into `out` (any [`MajBuilder`]: a plain
    /// [`Mig`] or the in-place engine), substituting `inputs[i]` for
    /// database input `i`; returns the output signal.
    ///
    /// Structural hashing and the eager majority axiom of `out` apply, so
    /// instantiation may add fewer nodes than [`DbEntry::gates`] (or none).
    pub fn instantiate<B: MajBuilder>(&self, out: &mut B, inputs: [MigSignal; 4]) -> MigSignal {
        let mut map: Vec<MigSignal> = Vec::with_capacity(self.mig.len());
        for idx in 0..self.mig.len() {
            let sig = match self.mig.node(idx) {
                MigNode::Const0 => MigSignal::FALSE,
                MigNode::Input(k) => inputs[k as usize],
                MigNode::Maj(kids) => {
                    let m = |s: MigSignal| map[s.node()].complement_if(s.is_complemented());
                    let (a, b, c) = (m(kids[0]), m(kids[1]), m(kids[2]));
                    out.maj(a, b, c)
                }
            };
            map.push(sig);
        }
        let (_, o) = &self.mig.outputs()[0];
        map[o.node()].complement_if(o.is_complemented())
    }
}

/// The database: one entry per canonical NPN class.
#[derive(Debug)]
pub struct Database {
    entries: FxHashMap<u16, DbEntry>,
}

impl Database {
    /// The implementation of a canonical class representative.
    ///
    /// # Panics
    ///
    /// Panics if `class` is not one of the 222 canonical representatives
    /// (i.e. not the first component of [`npn::canonicalize`]).
    pub fn entry(&self, class: u16) -> &DbEntry {
        self.entries
            .get(&class)
            .unwrap_or_else(|| panic!("{class:#06x} is not a canonical NPN class"))
    }

    /// Number of entries (always [`npn::NUM_CLASSES`]).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty (never, after construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The process-wide database, built on first use.
pub fn database() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(build)
}

/// Eagerly builds every piece of shared per-process rewriting state: the
/// NPN transform/canonicalization tables and the 222-class MIG database.
///
/// All of this state already lives behind [`OnceLock`]s and is therefore
/// built exactly once per process no matter how many pipelines run; what
/// `prewarm` adds is *when*. Long-lived callers — the `rms serve` daemon
/// at startup, the bench runner before its first timed measurement —
/// call it once so the one-time cost (tens of milliseconds) lands in
/// initialization instead of inside the first request or timing loop.
pub fn prewarm() -> &'static Database {
    npn::classes();
    database()
}

/// A signal inside an exact-synthesis structure: node index (0 = const0,
/// 1..=4 = inputs, 5.. = gates in order) plus a complement flag.
type ExSig = (u8, bool);

/// An exact structure: up to three gates, each three child signals, and
/// the output signal (a base node for zero-gate entries, otherwise the
/// last gate).
#[derive(Debug, Clone)]
struct Exact {
    gates: Vec<[ExSig; 3]>,
    out: ExSig,
}

/// Truth table of an exact-structure node (0 = const0, 1..=4 inputs,
/// then `gate_tts`).
fn ex_tt(node: u8, gate_tts: &[u16]) -> u16 {
    match node {
        0 => 0,
        1..=4 => npn::VAR_TT[(node - 1) as usize],
        g => gate_tts[(g - 5) as usize],
    }
}

fn maj3(a: u16, b: u16, c: u16) -> u16 {
    (a & b) | (a & c) | (b & c)
}

/// Records `tt` (and its complement) if no implementation with at most
/// as many gates is known. `out_node` is the structure's output node.
fn record(exact: &mut HashMap<u16, Exact>, tt: u16, gates: &[[ExSig; 3]], out_node: u8) {
    for (t, compl) in [(tt, false), (!tt, true)] {
        let better = match exact.get(&t) {
            Some(e) => e.gates.len() > gates.len(),
            None => true,
        };
        if better {
            exact.insert(
                t,
                Exact {
                    gates: gates.to_vec(),
                    out: (out_node, compl),
                },
            );
        }
    }
}

/// Exhaustive enumeration of all MIG trees/DAGs with at most 3 gates.
fn enumerate_exact() -> HashMap<u16, Exact> {
    let mut exact: HashMap<u16, Exact> = HashMap::new();
    // Base functions reachable with zero gates.
    for node in 0u8..=4 {
        record(&mut exact, ex_tt(node, &[]), &[], node);
    }

    // All single gates over distinct base nodes {0, x0..x3}.
    let mut one: Vec<([ExSig; 3], u16)> = Vec::new();
    let mut seen_one: HashMap<u16, usize> = HashMap::new();
    for i in 0u8..=4 {
        for j in (i + 1)..=4 {
            for k in (j + 1)..=4 {
                for pol in 0u8..8 {
                    let g = [(i, pol & 1 != 0), (j, pol & 2 != 0), (k, pol & 4 != 0)];
                    let tt = maj3(sig_tt(g[0], &[]), sig_tt(g[1], &[]), sig_tt(g[2], &[]));
                    record(&mut exact, tt, &[g], 5);
                    // Keep one representative structure per function for
                    // the deeper enumeration stages.
                    if let std::collections::hash_map::Entry::Vacant(e) = seen_one.entry(tt) {
                        e.insert(one.len());
                        one.push(([g[0], g[1], g[2]], tt));
                    }
                }
            }
        }
    }

    // Two gates: the second gate must reference the first (node 5).
    let mut two: Vec<([[ExSig; 3]; 2], [u16; 2])> = Vec::new();
    let mut seen_two: HashMap<(u16, u16), ()> = HashMap::new();
    for &(g1, tt1) in &one {
        for i in 0u8..=4 {
            for j in (i + 1)..=4 {
                for pol in 0u8..8 {
                    let g2 = [(5u8, pol & 1 != 0), (i, pol & 2 != 0), (j, pol & 4 != 0)];
                    let tts = [tt1];
                    let tt2 = maj3(
                        sig_tt(g2[0], &tts),
                        sig_tt(g2[1], &tts),
                        sig_tt(g2[2], &tts),
                    );
                    record(&mut exact, tt2, &[g1, g2], 6);
                    if let std::collections::hash_map::Entry::Vacant(e) = seen_two.entry((tt1, tt2))
                    {
                        e.insert(());
                        two.push(([g1, g2], [tt1, tt2]));
                    }
                }
            }
        }
    }

    // Three gates, shape A: a chain/DAG where gate 3 references gate 2
    // (and possibly gate 1).
    for &(gates, tts) in &two {
        for i in 0u8..=5 {
            for j in (i + 1)..=5 {
                for pol in 0u8..8 {
                    let g3 = [(6u8, pol & 1 != 0), (i, pol & 2 != 0), (j, pol & 4 != 0)];
                    let tt3 = maj3(
                        sig_tt(g3[0], &tts),
                        sig_tt(g3[1], &tts),
                        sig_tt(g3[2], &tts),
                    );
                    record(&mut exact, tt3, &[gates[0], gates[1], g3], 7);
                }
            }
        }
    }

    // Three gates, shape B: two independent gates combined by a third.
    for (ai, &(g1, tt1)) in one.iter().enumerate() {
        for &(g2, tt2) in &one[ai..] {
            for base in 0u8..=4 {
                for pol in 0u8..8 {
                    let g3 = [(5u8, pol & 1 != 0), (6, pol & 2 != 0), (base, pol & 4 != 0)];
                    let tts = [tt1, tt2];
                    let tt3 = maj3(
                        sig_tt(g3[0], &tts),
                        sig_tt(g3[1], &tts),
                        sig_tt(g3[2], &tts),
                    );
                    record(&mut exact, tt3, &[g1, g2, g3], 7);
                }
            }
        }
    }
    exact
}

fn sig_tt(s: ExSig, gate_tts: &[u16]) -> u16 {
    let t = ex_tt(s.0, gate_tts);
    if s.1 {
        !t
    } else {
        t
    }
}

/// Converts an exact structure into a 4-input, single-output [`Mig`].
fn exact_to_mig(class: u16, e: &Exact) -> Mig {
    let mut mig = Mig::with_inputs(format!("npn_{class:04x}"), 4);
    let mut nodes: Vec<MigSignal> = vec![mig.constant(false)];
    for i in 0..4 {
        nodes.push(mig.input(i));
    }
    let conv = |nodes: &[MigSignal], s: ExSig| nodes[s.0 as usize].complement_if(s.1);
    for g in &e.gates {
        let (a, b, c) = (conv(&nodes, g[0]), conv(&nodes, g[1]), conv(&nodes, g[2]));
        let sig = mig.maj(a, b, c);
        nodes.push(sig);
    }
    let out = nodes[e.out.0 as usize].complement_if(e.out.1);
    mig.add_output("f", out);
    mig
}

/// 16-bit positive cofactor with respect to variable `v`.
fn cofactor1(tt: u16, v: usize) -> u16 {
    let hi = tt & npn::VAR_TT[v];
    hi | (hi >> (1 << v))
}

/// 16-bit negative cofactor with respect to variable `v`.
fn cofactor0(tt: u16, v: usize) -> u16 {
    let lo = tt & !npn::VAR_TT[v];
    lo | (lo << (1 << v))
}

/// Number of variables `tt` depends on.
fn support_size(tt: u16) -> u32 {
    (0..4)
        .filter(|&v| cofactor0(tt, v) != cofactor1(tt, v))
        .count() as u32
}

/// Copies an exact structure into an existing graph, returning its
/// output signal.
fn exact_to_sig(mig: &mut Mig, e: &Exact) -> MigSignal {
    let mut nodes: Vec<MigSignal> = vec![mig.constant(false)];
    for i in 0..4 {
        nodes.push(mig.input(i));
    }
    for g in &e.gates {
        let conv = |nodes: &[MigSignal], s: ExSig| nodes[s.0 as usize].complement_if(s.1);
        let (a, b, c) = (conv(&nodes, g[0]), conv(&nodes, g[1]), conv(&nodes, g[2]));
        let sig = mig.maj(a, b, c);
        nodes.push(sig);
    }
    nodes[e.out.0 as usize].complement_if(e.out.1)
}

/// Recursive Shannon decomposition into a shared, structurally hashed
/// MIG, bottoming out in the exact table whenever a (co)function has a
/// known ≤3-gate implementation.
fn shannon(
    mig: &mut Mig,
    tt: u16,
    exact: &HashMap<u16, Exact>,
    memo: &mut HashMap<u16, MigSignal>,
) -> MigSignal {
    if let Some(&s) = memo.get(&tt) {
        return s;
    }
    if tt == 0 {
        return MigSignal::FALSE;
    }
    if tt == u16::MAX {
        return MigSignal::TRUE;
    }
    for v in 0..4 {
        if tt == npn::VAR_TT[v] {
            return mig.input(v);
        }
        if tt == !npn::VAR_TT[v] {
            return !mig.input(v);
        }
    }
    if let Some(e) = exact.get(&tt) {
        let f = exact_to_sig(mig, e);
        memo.insert(tt, f);
        memo.insert(!tt, !f);
        return f;
    }
    // XOR decomposition: complementary cofactors mean f = x_v ⊕ f|_{v=0},
    // which is far cheaper than the mux ladder (parity-like classes).
    for v in 0..4 {
        let c0 = cofactor0(tt, v);
        if cofactor1(tt, v) == !c0 {
            return split(mig, tt, v, exact, memo);
        }
    }
    // Otherwise split on the support variable with the simplest cofactors.
    let v = (0..4)
        .filter(|&v| cofactor0(tt, v) != cofactor1(tt, v))
        .min_by_key(|&v| support_size(cofactor0(tt, v)) + support_size(cofactor1(tt, v)))
        .expect("non-constant function has support");
    split(mig, tt, v, exact, memo)
}

/// Expands `tt` around variable `v` (XOR decomposition when the
/// cofactors are complementary, Shannon mux otherwise) and records the
/// result in `memo`.
fn split(
    mig: &mut Mig,
    tt: u16,
    v: usize,
    exact: &HashMap<u16, Exact>,
    memo: &mut HashMap<u16, MigSignal>,
) -> MigSignal {
    let c0 = cofactor0(tt, v);
    let c1 = cofactor1(tt, v);
    let s = mig.input(v);
    let f = if c1 == !c0 {
        let e = shannon(mig, c0, exact, memo);
        mig.xor(s, e)
    } else {
        let t = shannon(mig, c1, exact, memo);
        let e = shannon(mig, c0, exact, memo);
        mig.mux(s, t, e)
    };
    memo.insert(tt, f);
    memo.insert(!tt, !f);
    f
}

/// One heuristic synthesis attempt: decompose `class` with a forced (or
/// heuristic, `None`) first split variable, then shrink with Alg. 1.
fn synth_candidate(
    class: u16,
    first: Option<usize>,
    exact: &HashMap<u16, Exact>,
    opts: &OptOptions,
) -> Mig {
    let mut mig = Mig::with_inputs(format!("npn_{class:04x}"), 4);
    let mut memo = HashMap::new();
    let f = match first {
        None => shannon(&mut mig, class, exact, &mut memo),
        Some(v) => split(&mut mig, class, v, exact, &mut memo),
    };
    mig.add_output("f", f);
    optimize_area(&mig, opts)
}

/// Builds the full database.
fn build() -> Database {
    let exact = enumerate_exact();
    let opts = OptOptions::with_effort(12);
    let mut entries = FxHashMap::default();
    entries.reserve(npn::NUM_CLASSES);
    for &class in npn::classes() {
        let mig = match exact.get(&class) {
            Some(e) => exact_to_mig(class, e),
            None => {
                // Try every first-split variable plus the pure heuristic
                // recursion; keep the smallest result.
                let mut best = synth_candidate(class, None, &exact, &opts);
                for v in 0..4 {
                    if cofactor0(class, v) == cofactor1(class, v) {
                        continue;
                    }
                    let cand = synth_candidate(class, Some(v), &exact, &opts);
                    if cand.num_gates() < best.num_gates() {
                        best = cand;
                    }
                }
                best
            }
        };
        entries.insert(class, DbEntry::new(mig));
    }
    // Self-refinement: run the cut rewriter over the heuristic entries
    // against the current database, so large entries can borrow the
    // optimal sub-structures of smaller classes. Repeats until fixpoint.
    let mut db = Database { entries };
    loop {
        let mut improved = false;
        let mut refined = db.entries.clone();
        for &class in npn::classes() {
            let e = db.entry(class);
            if e.gates() <= 3 {
                continue; // proven optimal by the exact stage
            }
            let (mut m, _) = crate::rewrite::rewrite_round_with(&db, e.mig(), false);
            m = optimize_area(&m, &opts);
            if (m.num_gates() as u32) < e.gates() {
                refined.insert(class, DbEntry::new(m));
                improved = true;
            }
        }
        db.entries = refined;
        if !improved {
            break;
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Truth table (low 16 bits) of a database entry's MIG.
    fn entry_tt(e: &DbEntry) -> u16 {
        (e.mig().truth_tables()[0].words()[0] & 0xFFFF) as u16
    }

    #[test]
    fn every_class_has_a_correct_entry() {
        let db = database();
        assert_eq!(db.len(), npn::NUM_CLASSES);
        assert!(!db.is_empty());
        for &class in npn::classes() {
            let e = db.entry(class);
            assert_eq!(entry_tt(e), class, "class {class:#06x}");
            assert_eq!(e.mig().num_inputs(), 4);
        }
    }

    #[test]
    fn known_optima() {
        let db = database();
        let and2 = npn::VAR_TT[0] & npn::VAR_TT[1];
        let xor2 = npn::VAR_TT[0] ^ npn::VAR_TT[1];
        let maj3 = (npn::VAR_TT[0] & npn::VAR_TT[1])
            | (npn::VAR_TT[0] & npn::VAR_TT[2])
            | (npn::VAR_TT[1] & npn::VAR_TT[2]);
        let mux = (npn::VAR_TT[0] & npn::VAR_TT[1]) | (!npn::VAR_TT[0] & npn::VAR_TT[2]);
        let and4 = npn::VAR_TT[0] & npn::VAR_TT[1] & npn::VAR_TT[2] & npn::VAR_TT[3];
        for (tt, want, what) in [
            (and2, 1, "and2"),
            (maj3, 1, "maj3"),
            (xor2, 3, "xor2"),
            (mux, 3, "mux"),
            (and4, 3, "and4"),
            (0u16, 0, "const"),
            (npn::VAR_TT[3], 0, "projection"),
        ] {
            let (class, _) = npn::canonicalize(tt);
            let got = db.entry(class).gates();
            assert_eq!(got, want, "{what}: {got} gates, expected {want}");
        }
    }

    #[test]
    fn database_is_reasonably_small() {
        // No 4-input function needs more than ~11 majority gates; a database
        // average above 7 would indicate a broken fallback path.
        let db = database();
        let total: u32 = npn::classes().iter().map(|&c| db.entry(c).gates()).sum();
        let avg = total as f64 / npn::NUM_CLASSES as f64;
        let mut hist = [0u32; 32];
        for &c in npn::classes() {
            hist[db.entry(c).gates() as usize] += 1;
        }
        println!("size histogram: {:?}", &hist[..16]);
        assert!(avg < 7.0, "average entry size {avg:.2} gates");
    }

    #[test]
    fn instantiate_reproduces_the_function() {
        let db = database();
        for &class in npn::classes().iter().step_by(7) {
            let mut out = Mig::with_inputs("t", 4);
            let inputs = [out.input(0), out.input(1), out.input(2), out.input(3)];
            let f = db.entry(class).instantiate(&mut out, inputs);
            out.add_output("f", f);
            assert_eq!(
                (out.truth_tables()[0].words()[0] & 0xFFFF) as u16,
                class,
                "class {class:#06x}"
            );
        }
    }

    #[test]
    fn instantiate_with_permuted_complemented_inputs() {
        let db = database();
        // f(x) = x0 & x1: instantiate its class with swapped, complemented
        // inputs and check by simulation.
        let tt = npn::VAR_TT[0] & npn::VAR_TT[1];
        let (class, t) = npn::canonicalize(tt);
        let inv = npn::invert(t);
        let tr = npn::transform(inv);
        let mut out = Mig::with_inputs("t", 4);
        let leaf = [out.input(0), out.input(1), out.input(2), out.input(3)];
        let mut inputs = [MigSignal::FALSE; 4];
        for i in 0..4 {
            inputs[i] = leaf[tr.perm[i] as usize].complement_if((tr.flips >> i) & 1 == 1);
        }
        let f = db
            .entry(class)
            .instantiate(&mut out, inputs)
            .complement_if(tr.negate_output);
        out.add_output("f", f);
        assert_eq!((out.truth_tables()[0].words()[0] & 0xFFFF) as u16, tt);
    }
}
