//! Edges of the majority-inverter graph.

use std::fmt;

/// A reference to an MIG node with a complement attribute.
///
/// Complemented edges are the "inverter" half of the majority-inverter
/// graph: negation is never a node, only an attribute of an edge. The low
/// bit of the packed representation is the complement flag, so a signal and
/// its complement are adjacent integers (which the structural-hashing
/// normalization relies on).
///
/// # Example
///
/// ```
/// use rms_core::MigSignal;
///
/// let s = MigSignal::new(3, false);
/// assert_eq!(s.node(), 3);
/// assert!((!s).is_complemented());
/// assert_eq!(!!s, s);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MigSignal(u32);

impl MigSignal {
    /// The constant-false signal (node 0, uncomplemented).
    pub const FALSE: MigSignal = MigSignal(0);
    /// The constant-true signal (node 0, complemented).
    pub const TRUE: MigSignal = MigSignal(1);

    /// Creates a signal to `node`, complemented iff `complement`.
    pub fn new(node: usize, complement: bool) -> Self {
        MigSignal(((node as u32) << 1) | complement as u32)
    }

    /// Index of the referenced node.
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the edge carries a complement attribute.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is one of the two constant signals.
    pub fn is_constant(self) -> bool {
        self.node() == 0
    }

    /// The same signal without a complement attribute.
    #[must_use]
    pub fn regular(self) -> Self {
        MigSignal(self.0 & !1)
    }

    /// This signal complemented iff `c` (conditional complement).
    #[must_use]
    pub fn complement_if(self, c: bool) -> Self {
        MigSignal(self.0 ^ c as u32)
    }

    /// The raw packed value (node index shifted left, complement in bit 0).
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::ops::Not for MigSignal {
    type Output = MigSignal;
    fn not(self) -> MigSignal {
        MigSignal(self.0 ^ 1)
    }
}

impl fmt::Display for MigSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == MigSignal::FALSE {
            return write!(f, "0");
        }
        if *self == MigSignal::TRUE {
            return write!(f, "1");
        }
        if self.is_complemented() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trip() {
        for node in [0usize, 1, 2, 1000] {
            for c in [false, true] {
                let s = MigSignal::new(node, c);
                assert_eq!(s.node(), node);
                assert_eq!(s.is_complemented(), c);
            }
        }
    }

    #[test]
    fn complement_is_involution() {
        let s = MigSignal::new(7, false);
        assert_eq!(!!s, s);
        assert_ne!(!s, s);
        assert_eq!((!s).node(), 7);
    }

    #[test]
    fn constants() {
        assert_eq!(!MigSignal::FALSE, MigSignal::TRUE);
        assert!(MigSignal::FALSE.is_constant());
        assert!(MigSignal::TRUE.is_constant());
        assert!(!MigSignal::new(1, false).is_constant());
    }

    #[test]
    fn ordering_groups_complement_pairs() {
        // A signal and its complement are adjacent when sorted, which the
        // node constructor's simplification checks rely on.
        let mut v = [
            MigSignal::new(2, true),
            MigSignal::new(1, false),
            MigSignal::new(2, false),
        ];
        v.sort();
        assert_eq!(v[1].node(), v[2].node());
    }

    #[test]
    fn display_forms() {
        assert_eq!(MigSignal::FALSE.to_string(), "0");
        assert_eq!(MigSignal::TRUE.to_string(), "1");
        assert_eq!(MigSignal::new(4, true).to_string(), "!n4");
        assert_eq!(MigSignal::new(4, false).to_string(), "n4");
    }
}
