//! Majority-inverter graphs and RRAM-oriented logic optimization.
//!
//! This crate implements the primary contribution of *"Fast Logic Synthesis
//! for RRAM-based In-Memory Computing using Majority-Inverter Graphs"*
//! (Shirinzadeh et al., DATE 2016):
//!
//! - the [`Mig`] data structure (majority nodes, complemented edges,
//!   structural hashing, eager majority axiom),
//! - the Ω/Ψ transformation passes in [`rewrite`],
//! - the four optimization algorithms in [`opt`] (conventional area and
//!   depth optimization, the multi-objective RRAM-cost optimization, and
//!   step optimization), and
//! - the RRAM cost model of the paper's Table I in [`cost`], for both the
//!   IMP-based and the MAJ-based majority-gate realizations.
//!
//! # Example
//!
//! ```
//! use rms_core::{Mig, cost::{Realization, RramCost}, opt};
//! use rms_logic::bench_suite;
//!
//! # fn main() {
//! let netlist = bench_suite::build("rd53_f2").expect("known benchmark");
//! let mig = Mig::from_netlist(&netlist);
//! let opts = opt::OptOptions::with_effort(10);
//! let optimized = opt::optimize_steps(&mig, Realization::Maj, &opts);
//! let cost = RramCost::of(&optimized, Realization::Maj);
//! assert!(cost.steps <= RramCost::of(&mig, Realization::Maj).steps);
//! # }
//! ```

//!
//! This crate is the optimization layer of the workspace; see
//! `ARCHITECTURE.md` at the repository root for the rewrite-pass and
//! cost-model documentation, and `rms-flow` for the end-to-end pipeline
//! that drives it.

pub mod cancel;
pub mod cost;
pub mod fanout;
pub mod hash;
pub mod mig;
pub mod opt;
pub mod par;
pub mod rewrite;
pub mod signal;

pub use cancel::CancelToken;
pub use cost::{LevelProfile, MigStats, Realization, RramCost};
pub use fanout::IncrementalMig;
pub use hash::netlist_structural_hash;
pub use mig::{MajBuilder, Mig, MigNode};
pub use opt::{Algorithm, OptOptions, OptStats};
pub use signal::MigSignal;
