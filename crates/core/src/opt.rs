//! The four MIG optimization algorithms of the paper (Algs. 1–4).
//!
//! All four share the same outer shape: a fixed number of cycles (`effort`,
//! 40 in the paper's experiments) over a sequence of rewrite passes. The
//! iterate whose cost metric is best is returned, so a cycle that worsens
//! the graph (reshaping is deliberately non-monotonic) cannot degrade the
//! final result.
//!
//! | Algorithm | Paper | Objective | Passes per cycle |
//! |---|---|---|---|
//! | [`optimize_area`]  | Alg. 1 | node count | eliminate; reshape; eliminate |
//! | [`optimize_depth`] | Alg. 2 | depth | push-up; relevance; push-up |
//! | [`optimize_rram`]  | Alg. 3 | R and S | push-up; Ω.I(1–3); push-up; reshape↓; eliminate |
//! | [`optimize_steps`] | Alg. 4 | S | push-up; Ω.I(1); Ω.I(1–3); push-up |
//!
//! Beyond the paper, this module also hosts the **cycle scripts** of the
//! cut-rewriting engine (Algorithm 5, [`Algorithm::Cut`] and the hybrid
//! [`Algorithm::CutRram`]): [`cut_script`] and [`cut_rram_script`] run the
//! same best-iterate loop with a pluggable *rewrite round* callback. The
//! actual NPN-database round lives in the `rms-cut` crate (which depends
//! on this one); `rms-flow` injects it. Calling [`Algorithm::run`] on a
//! cut variant from plain `rms-core` degrades gracefully to the
//! underlying Ω/Ψ script with identity rounds.

use crate::cancel::CancelToken;
use crate::cost::{Realization, RramCost};
use crate::mig::Mig;
use crate::rewrite::{eliminate, inverter_propagation, push_up, relevance, reshape, InverterCases};

/// Default bound on resident cut sets of the incremental engine's cut
/// cache (about 44 MiB of cut lists). Eviction past the bound only
/// costs recomputation — it never changes optimization results.
pub const DEFAULT_CUT_CACHE_BOUND: usize = 1 << 18;

/// Default gate-count threshold above which the in-place cut engine
/// switches to the windowed (partition-parallel) round. Below it the
/// cached whole-graph round wins; above it window-local cut enumeration
/// is cheaper per round *and* fans out across workers.
pub const DEFAULT_PAR_THRESHOLD: usize = 20_000;

/// Options shared by the optimization algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptOptions {
    /// Maximum number of cycles (`effort` in the paper; 40 in Sec. IV-A).
    pub effort: usize,
    /// Stop early when a whole cycle leaves the graph unchanged.
    pub early_exit: bool,
    /// Maximum resident cut sets in the incremental engine's cut cache
    /// (the memory bound; see [`DEFAULT_CUT_CACHE_BOUND`]).
    pub cut_cache_bound: usize,
    /// Worker threads for the windowed round of the in-place cut engine
    /// (`0` = auto: [`crate::par::num_threads`]). Results are
    /// bit-identical for every value — workers only change wall-clock.
    pub jobs: usize,
    /// Gate count at which single-graph optimization switches to the
    /// windowed round ([`DEFAULT_PAR_THRESHOLD`]; `usize::MAX` disables
    /// windowing).
    pub par_threshold: usize,
    /// Cooperative-cancellation handle, polled at cycle/window/round
    /// boundaries (see [`crate::cancel`]). The default token is inert;
    /// runs that complete are bit-identical with or without one.
    pub cancel: CancelToken,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            effort: 40,
            early_exit: true,
            cut_cache_bound: DEFAULT_CUT_CACHE_BOUND,
            jobs: 0,
            par_threshold: DEFAULT_PAR_THRESHOLD,
            cancel: CancelToken::default(),
        }
    }
}

impl OptOptions {
    /// Options with the paper's effort of 40 cycles.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Options with a custom cycle budget.
    pub fn with_effort(effort: usize) -> Self {
        OptOptions {
            effort,
            ..Self::default()
        }
    }
}

/// Fingerprint used for the early-exit fixpoint check.
fn fingerprint(mig: &Mig) -> (usize, u32, u64, u64) {
    let s = crate::cost::MigStats::of(mig);
    (
        mig.num_gates(),
        mig.depth(),
        s.complemented_edges,
        s.levels_with_compl,
    )
}

/// Statistics of one optimization run, consumed by the pipeline reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Optimization cycles actually executed (`<= effort` with early exit).
    pub cycles: usize,
    /// Rewrite passes executed, including the final polish pass.
    pub passes: u64,
    /// Cut rewrites accepted by the NPN-database engine (0 for Algs. 1–4).
    pub rewrites: u64,
    /// Majority-gate count before optimization.
    pub gates_before: u64,
    /// Majority-gate count after optimization.
    pub gates_after: u64,
    /// High-water mark of the node array during optimization (0 when the
    /// engine does not track it; the in-place cut engine does).
    pub peak_nodes: u64,
    /// Candidate equivalence classes examined by the fraig pass (0 for
    /// algorithms without a SAT-sweeping stage).
    pub fraig_classes: u64,
    /// Node merges proved by SAT and committed by the fraig pass.
    pub fraig_merges: u64,
    /// Windowed resubstitutions proved by SAT and accepted.
    pub resubs: u64,
    /// Total SAT conflicts spent across fraig/resub proof calls.
    pub sat_conflicts: u64,
    /// Proof attempts abandoned at the conflict budget (candidates kept
    /// unmerged — the engine never merges unproven).
    pub sat_budget_exhausted: u64,
    /// Wall-clock nanoseconds spent enumerating cuts (cache-validated or
    /// window-local), summed over rewrite rounds. On the parallel
    /// windowed path this is per-worker time summed across workers, so
    /// it can exceed the round's wall clock.
    pub t_cut_enum_ns: u64,
    /// Nanoseconds spent evaluating candidates (NPN canonicalization,
    /// database lookups, MFFC gain estimation), summed like
    /// [`OptStats::t_cut_enum_ns`].
    pub t_eval_ns: u64,
    /// Nanoseconds in the sequential commit sweep (candidate
    /// instantiation, signature checks, map updates).
    pub t_commit_ns: u64,
    /// Nanoseconds in end-of-round garbage collection and derived-
    /// structure repair (`finish_mapped_round`).
    pub t_gc_ns: u64,
    /// Whether the run stopped early at a cancellation checkpoint (the
    /// returned graph is still the best *verified-complete* iterate).
    pub cancelled: bool,
}

/// Generic driver: runs `cycle` up to `effort` times, tracking the iterate
/// with the smallest `score`; also reports how many cycles executed.
fn drive<S: PartialOrd + Copy>(
    mig: &Mig,
    opts: &OptOptions,
    score: impl Fn(&Mig) -> S,
    mut cycle: impl FnMut(&Mig, usize) -> Mig,
) -> (Mig, usize, bool) {
    let mut current = mig.compact();
    let mut best = current.clone();
    let mut best_score = score(&best);
    let mut cycles = 0;
    let mut cancelled = false;
    // One fingerprint per cycle, carried over — not two.
    let mut fp = fingerprint(&current);
    for c in 0..opts.effort {
        // Cycle boundaries are the coarse cancellation checkpoints of
        // Algs. 1–4 and the cut scripts: the best iterate so far is a
        // complete, committed graph, so stopping here is always safe.
        if opts.cancel.cancelled() {
            cancelled = true;
            break;
        }
        current = cycle(&current, c);
        cycles = c + 1;
        let s = score(&current);
        if s < best_score {
            best_score = s;
            best = current.clone();
        }
        let new_fp = fingerprint(&current);
        if opts.early_exit && new_fp == fp {
            break;
        }
        fp = new_fp;
    }
    (best, cycles, cancelled)
}

/// Assembles an [`OptStats`] from a finished run.
fn stats_of(
    before: &Mig,
    after: &Mig,
    cycles: usize,
    passes_per_cycle: u64,
    final_passes: u64,
    rewrites: u64,
) -> OptStats {
    OptStats {
        cycles,
        passes: cycles as u64 * passes_per_cycle + final_passes,
        rewrites,
        gates_before: before.num_gates() as u64,
        gates_after: after.num_gates() as u64,
        ..OptStats::default()
    }
}

/// Alg. 1 — conventional MIG area optimization (node-count objective).
///
/// Per cycle: `eliminate` (Ω.M; Ω.D R→L), `reshape` (Ω.A; Ψ.C, alternating
/// direction), `eliminate` again; a final `eliminate` after the loop.
pub fn optimize_area(mig: &Mig, opts: &OptOptions) -> Mig {
    optimize_area_stats(mig, opts).0
}

/// [`optimize_area`] with run statistics.
pub fn optimize_area_stats(mig: &Mig, opts: &OptOptions) -> (Mig, OptStats) {
    let (out, cycles, cancelled) = drive(
        mig,
        opts,
        |m| (m.num_gates(), m.depth()),
        |m, c| {
            let m = eliminate(m);
            let m = reshape(&m, c % 2 == 0);
            eliminate(&m)
        },
    );
    let out = eliminate(&out);
    let mut stats = stats_of(mig, &out, cycles, 3, 1, 0);
    stats.cancelled = cancelled;
    (out, stats)
}

/// Alg. 2 — conventional MIG depth optimization (level-count objective).
///
/// Per cycle: `push_up` (Ω.M; Ω.D L→R; Ω.A; Ψ.C), `relevance` (Ψ.R),
/// `push_up` again; a final `push_up` after the loop.
pub fn optimize_depth(mig: &Mig, opts: &OptOptions) -> Mig {
    optimize_depth_stats(mig, opts).0
}

/// [`optimize_depth`] with run statistics.
pub fn optimize_depth_stats(mig: &Mig, opts: &OptOptions) -> (Mig, OptStats) {
    let (out, cycles, cancelled) = drive(
        mig,
        opts,
        |m| (m.depth(), m.num_gates()),
        |m, _| {
            let m = push_up(m);
            let m = relevance(&m);
            push_up(&m)
        },
    );
    let out = push_up(&out);
    let mut stats = stats_of(mig, &out, cycles, 3, 1, 0);
    stats.cancelled = cancelled;
    (out, stats)
}

/// Alg. 3 — the paper's multi-objective optimization for RRAM costs.
///
/// Per cycle: `push_up`, inverter propagation over all three cases,
/// `push_up` again, then the area trade-off tail (Ω.A reshaping downwards;
/// Ω.D R→L elimination); a final `push_up` after the loop.
///
/// The returned iterate minimizes the *product* `R·S` for `realization` —
/// a scalarization of the bi-objective goal that rewards balanced
/// improvements over single-metric ones.
pub fn optimize_rram(mig: &Mig, realization: Realization, opts: &OptOptions) -> Mig {
    optimize_rram_stats(mig, realization, opts).0
}

/// [`optimize_rram`] with run statistics.
pub fn optimize_rram_stats(
    mig: &Mig,
    realization: Realization,
    opts: &OptOptions,
) -> (Mig, OptStats) {
    let (out, cycles, cancelled) = drive(
        mig,
        opts,
        |m| {
            let c = RramCost::of(m, realization);
            (c.rrams.saturating_mul(c.steps), c.steps)
        },
        |m, _| {
            let m = push_up(m);
            let m = inverter_propagation(&m, InverterCases::ALL, false);
            let m = push_up(&m);
            let m = reshape(&m, true);
            eliminate(&m)
        },
    );
    let out = push_up(&out);
    let mut stats = stats_of(mig, &out, cycles, 5, 1, 0);
    stats.cancelled = cancelled;
    (out, stats)
}

/// Alg. 4 — the paper's step optimization.
///
/// Per cycle: `push_up`, inverter propagation with the base rule only
/// (case 1), inverter propagation over all cases, `push_up` again; a final
/// `push_up` after the loop. The returned iterate minimizes `S`, breaking
/// ties by `R`.
pub fn optimize_steps(mig: &Mig, realization: Realization, opts: &OptOptions) -> Mig {
    optimize_steps_stats(mig, realization, opts).0
}

/// [`optimize_steps`] with run statistics.
pub fn optimize_steps_stats(
    mig: &Mig,
    realization: Realization,
    opts: &OptOptions,
) -> (Mig, OptStats) {
    let (out, cycles, cancelled) = drive(
        mig,
        opts,
        |m| {
            let c = RramCost::of(m, realization);
            (c.steps, c.rrams)
        },
        |m, _| {
            let m = push_up(m);
            let m = inverter_propagation(&m, InverterCases::BASE, true);
            let m = inverter_propagation(&m, InverterCases::ALL, true);
            push_up(&m)
        },
    );
    let out = push_up(&out);
    let mut stats = stats_of(mig, &out, cycles, 4, 1, 0);
    stats.cancelled = cancelled;
    (out, stats)
}

/// A cut-rewriting round: maps a graph to a rewritten graph plus the
/// number of accepted rewrites. The second argument enables zero-gain
/// replacements (used on alternating cycles to escape plateaus).
pub type CutRound<'a> = &'a mut dyn FnMut(&Mig, bool) -> (Mig, u64);

/// Algorithm 5 — cut-based NPN rewriting (node-count objective).
///
/// Per cycle: `eliminate`, one database **rewrite round** (zero-gain
/// replacements enabled on odd cycles), `eliminate`, `reshape`
/// (alternating direction), `eliminate`; a final `eliminate` after the
/// loop. The cycle is a superset of Alg. 1's, so with the same effort the
/// result is at least as good in practice; the best iterate by
/// `(gates, depth)` is returned.
///
/// The round callback is supplied by the `rms-cut` crate (via
/// `rms-flow`); see the module docs.
pub fn cut_script(mig: &Mig, opts: &OptOptions, round: CutRound) -> (Mig, OptStats) {
    let mut rewrites = 0u64;
    let (out, cycles, cancelled) = drive(
        mig,
        opts,
        |m| (m.num_gates(), m.depth()),
        |m, c| {
            let m = eliminate(m);
            let (m, rw) = round(&m, c % 2 == 1);
            rewrites += rw;
            let m = eliminate(&m);
            let m = reshape(&m, c % 2 == 0);
            eliminate(&m)
        },
    );
    let out = eliminate(&out);
    let mut stats = stats_of(mig, &out, cycles, 5, 1, rewrites);
    stats.cancelled = cancelled;
    (out, stats)
}

/// The hybrid cut + RRAM-cost script ([`Algorithm::CutRram`]).
///
/// Interleaves one database rewrite round with the Alg. 3 pass sequence
/// per cycle, scoring iterates by the `R·S` product for `realization`.
/// The plain Alg. 3 result is evaluated as a candidate too, so the
/// returned graph **never scores worse than [`optimize_rram`]**.
pub fn cut_rram_script(
    mig: &Mig,
    realization: Realization,
    opts: &OptOptions,
    round: CutRound,
) -> (Mig, OptStats) {
    let score = |m: &Mig| {
        let c = RramCost::of(m, realization);
        (c.rrams.saturating_mul(c.steps), c.steps)
    };
    let base = optimize_rram(mig, realization, opts);
    let mut rewrites = 0u64;
    let (hybrid, cycles, cancelled) = drive(mig, opts, score, |m, c| {
        let (m, rw) = round(m, c % 2 == 1);
        rewrites += rw;
        let m = push_up(&m);
        let m = inverter_propagation(&m, InverterCases::ALL, false);
        let m = push_up(&m);
        let m = reshape(&m, true);
        eliminate(&m)
    });
    let polished = push_up(&hybrid);
    let mut best = base;
    let mut from_hybrid = false;
    for cand in [hybrid, polished] {
        if score(&cand) < score(&best) {
            best = cand;
            from_hybrid = true;
        }
    }
    // When the plain Alg. 3 result wins, the returned graph contains no
    // cut rewrites — do not attribute the hybrid loop's work to it.
    let mut stats = stats_of(
        mig,
        &best,
        cycles,
        6,
        1,
        if from_hybrid { rewrites } else { 0 },
    );
    stats.cancelled = cancelled;
    (best, stats)
}

/// Which optimization algorithm to run (used by the harness binaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Alg. 1, conventional area optimization.
    Area,
    /// Alg. 2, conventional depth optimization.
    Depth,
    /// Alg. 3, multi-objective RRAM-cost optimization.
    RramCosts,
    /// Alg. 4, step optimization.
    Steps,
    /// Alg. 5, cut-based NPN-database rewriting (node-count objective).
    ///
    /// The database round lives in the `rms-cut` crate; run this through
    /// `rms_flow::optimize_cost` (or `rms_cut::optimize_cut`) to get the
    /// full engine. Plain [`Algorithm::run`] degrades to identity rounds.
    Cut,
    /// The hybrid script: cut rewriting interleaved with Alg. 3 passes,
    /// scored by the `R·S` product (same caveat as [`Algorithm::Cut`]).
    CutRram,
    /// SAT sweeping (fraiging): the cut script followed by
    /// simulation-guided, SAT-proved global node merging. The engine
    /// lives in `rms-cut`; plain [`Algorithm::run`] degrades to the cut
    /// script with identity rounds.
    Sweep,
    /// Windowed Boolean resubstitution: the cut script followed by
    /// SAT-validated 0/1-resubstitution over divisor windows (same
    /// degradation caveat as [`Algorithm::Sweep`]).
    Resub,
    /// Both post passes: cut script, then alternating fraig + resub
    /// rounds until a fixpoint (same degradation caveat).
    SweepResub,
}

impl Algorithm {
    /// The four paper algorithms, in paper order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Area,
        Algorithm::Depth,
        Algorithm::RramCosts,
        Algorithm::Steps,
    ];

    /// All algorithms including the cut-rewriting variants.
    pub const ALL_WITH_CUT: [Algorithm; 6] = [
        Algorithm::Area,
        Algorithm::Depth,
        Algorithm::RramCosts,
        Algorithm::Steps,
        Algorithm::Cut,
        Algorithm::CutRram,
    ];

    /// Every optimization mode, including the SAT-sweeping and
    /// resubstitution scripts layered on the cut engine.
    pub const ALL_MODES: [Algorithm; 9] = [
        Algorithm::Area,
        Algorithm::Depth,
        Algorithm::RramCosts,
        Algorithm::Steps,
        Algorithm::Cut,
        Algorithm::CutRram,
        Algorithm::Sweep,
        Algorithm::Resub,
        Algorithm::SweepResub,
    ];

    /// Runs the selected algorithm.
    pub fn run(self, mig: &Mig, realization: Realization, opts: &OptOptions) -> Mig {
        self.run_stats(mig, realization, opts).0
    }

    /// Runs the selected algorithm and reports run statistics.
    ///
    /// For the cut variants this uses **identity rewrite rounds** (the
    /// NPN-database engine is a separate crate layered above this one);
    /// the result is functionally correct but equivalent to running the
    /// underlying Ω/Ψ script alone. `rms_flow::optimize_cost` injects the
    /// real engine.
    pub fn run_stats(
        self,
        mig: &Mig,
        realization: Realization,
        opts: &OptOptions,
    ) -> (Mig, OptStats) {
        let mut identity = |m: &Mig, _zero_gain: bool| (m.clone(), 0u64);
        match self {
            Algorithm::Area => optimize_area_stats(mig, opts),
            Algorithm::Depth => optimize_depth_stats(mig, opts),
            Algorithm::RramCosts => optimize_rram_stats(mig, realization, opts),
            Algorithm::Steps => optimize_steps_stats(mig, realization, opts),
            Algorithm::Cut => cut_script(mig, opts, &mut identity),
            Algorithm::CutRram => cut_rram_script(mig, realization, opts, &mut identity),
            // The SAT-backed post passes live in `rms-cut`; from plain
            // rms-core these modes degrade to the cut script (itself with
            // identity rounds), which is their common base.
            Algorithm::Sweep | Algorithm::Resub | Algorithm::SweepResub => {
                cut_script(mig, opts, &mut identity)
            }
        }
    }
}

impl Algorithm {
    /// Parses an algorithm name as given on the command line or in an
    /// `rms serve` request (accepts the same aliases as `rms --opt`).
    pub fn from_name(name: &str) -> Option<Algorithm> {
        match name.to_ascii_lowercase().as_str() {
            "area" => Some(Algorithm::Area),
            "depth" => Some(Algorithm::Depth),
            "rram" | "rram-costs" | "multi" => Some(Algorithm::RramCosts),
            "steps" | "step" => Some(Algorithm::Steps),
            "cut" | "rewrite" => Some(Algorithm::Cut),
            "cut-rram" | "cut_rram" | "cutrram" => Some(Algorithm::CutRram),
            "sweep" | "fraig" => Some(Algorithm::Sweep),
            "resub" => Some(Algorithm::Resub),
            "sweep-resub" | "sweep_resub" | "sweepresub" | "deep" => Some(Algorithm::SweepResub),
            _ => None,
        }
    }

    /// The canonical machine token of this algorithm: the stable spelling
    /// used in cache keys and accepted by [`Algorithm::from_name`]
    /// (unlike `Display`, which renders a human-readable label).
    pub fn token(self) -> &'static str {
        match self {
            Algorithm::Area => "area",
            Algorithm::Depth => "depth",
            Algorithm::RramCosts => "rram",
            Algorithm::Steps => "steps",
            Algorithm::Cut => "cut",
            Algorithm::CutRram => "cut-rram",
            Algorithm::Sweep => "sweep",
            Algorithm::Resub => "resub",
            Algorithm::SweepResub => "sweep-resub",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Area => write!(f, "Area"),
            Algorithm::Depth => write!(f, "Depth"),
            Algorithm::RramCosts => write!(f, "RRAM costs"),
            Algorithm::Steps => write!(f, "Step"),
            Algorithm::Cut => write!(f, "Cut rewriting"),
            Algorithm::CutRram => write!(f, "Cut+RRAM"),
            Algorithm::Sweep => write!(f, "SAT sweep"),
            Algorithm::Resub => write!(f, "Resub"),
            Algorithm::SweepResub => write!(f, "Sweep+Resub"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_logic::bench_suite;
    use rms_logic::sim::check_equivalence;

    fn bench_mig(name: &str) -> Mig {
        Mig::from_netlist(&bench_suite::build(name).unwrap())
    }

    fn assert_equiv(a: &Mig, b: &Mig, what: &str) {
        let res = check_equivalence(&a.to_netlist(), &b.to_netlist());
        assert!(res.holds(), "{what}: {res:?}");
    }

    const SAMPLES: &[&str] = &["rd53_f2", "9sym_d", "con1_f1", "sao2_f4", "exam3_d"];

    #[test]
    fn all_algorithms_preserve_function() {
        let opts = OptOptions::with_effort(6);
        for name in SAMPLES {
            let m = bench_mig(name);
            for alg in Algorithm::ALL {
                for real in Realization::ALL {
                    let o = alg.run(&m, real, &opts);
                    assert_equiv(&m, &o, &format!("{name}/{alg}/{real}"));
                }
            }
        }
    }

    #[test]
    fn area_never_increases_gates() {
        let opts = OptOptions::with_effort(8);
        for name in SAMPLES {
            let m = bench_mig(name);
            let o = optimize_area(&m, &opts);
            assert!(
                o.num_gates() <= m.num_gates(),
                "{name}: {} > {}",
                o.num_gates(),
                m.num_gates()
            );
        }
    }

    #[test]
    fn depth_never_increases_depth() {
        let opts = OptOptions::with_effort(8);
        for name in SAMPLES {
            let m = bench_mig(name);
            let o = optimize_depth(&m, &opts);
            assert!(o.depth() <= m.depth(), "{name}");
        }
    }

    #[test]
    fn step_optimization_reduces_steps_vs_depth_opt() {
        // The paper's core claim for Alg. 4: fewer steps than conventional
        // depth optimization, because complemented-edge levels are removed.
        let opts = OptOptions::with_effort(10);
        let mut total_depth = 0u64;
        let mut total_step = 0u64;
        for name in SAMPLES {
            let m = bench_mig(name);
            let d = optimize_depth(&m, &opts);
            let s = optimize_steps(&m, Realization::Maj, &opts);
            total_depth += RramCost::of(&d, Realization::Maj).steps;
            total_step += RramCost::of(&s, Realization::Maj).steps;
        }
        // On these five tiny functions the margin can be a step or two
        // either way; the full-suite integration tests assert the strict
        // aggregate improvement the paper reports.
        assert!(
            total_step <= total_depth + total_depth / 10,
            "step-opt {total_step} should not exceed depth-opt {total_depth} by >10%"
        );
    }

    #[test]
    fn effort_zero_returns_compacted_input() {
        let m = bench_mig("exam3_d");
        let o = optimize_area(&m, &OptOptions::with_effort(0));
        assert_equiv(&m, &o, "effort 0");
    }

    #[test]
    fn display_names() {
        assert_eq!(Algorithm::Area.to_string(), "Area");
        assert_eq!(Algorithm::RramCosts.to_string(), "RRAM costs");
    }
}
