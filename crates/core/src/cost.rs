//! The RRAM implementation cost model of Table I.
//!
//! The paper maps an MIG to an RRAM circuit level by level (Sec. III-B):
//! all majority gates of a level execute in parallel, RRAMs are released
//! when a level finishes and reused for the next, and every level whose
//! ingoing edges carry complement attributes pays one extra inversion step.
//! This yields the closed-form metrics of Table I:
//!
//! ```text
//! R = max over levels i of (K_R * N_i + C_i)     number of RRAMs
//! S = K_S * D + L                                number of steps
//! ```
//!
//! with `N_i` the node count of level `i`, `C_i` its ingoing complemented
//! edges, `D` the depth, `L` the number of levels with ingoing complemented
//! edges, and per-gate constants `K_R`/`K_S` of 6/10 for the IMP-based
//! realization and 4/3 for the MAJ-based realization (Sec. III-A).
//!
//! Two conventions the paper leaves implicit are pinned down (and checked
//! against the cycle-accurate machine in `rms-rram`'s tests):
//!
//! - complement attributes on edges **from the constant node are free**
//!   (loading a 0 or a 1 into an RRAM costs the same single step), and
//! - complemented **primary outputs** form one virtual extra level: they
//!   add their count to `R`'s per-level maximum and one inversion step to
//!   `L` (but do not increase `D`).

use crate::mig::{Mig, MigNode};

/// Which RRAM realization of the majority gate is used (Sec. III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Realization {
    /// Material-implication realization: 6 RRAMs / 10 steps per gate
    /// (Fig. 3).
    Imp,
    /// Built-in resistive-majority realization: 4 RRAMs / 3 steps per gate.
    Maj,
}

impl Realization {
    /// Both realizations, in the order the paper discusses them.
    pub const ALL: [Realization; 2] = [Realization::Imp, Realization::Maj];

    /// RRAMs required per majority gate (`K` in Table I's `R` row).
    pub fn rrams_per_gate(self) -> u64 {
        match self {
            Realization::Imp => 6,
            Realization::Maj => 4,
        }
    }

    /// Sequential steps per MIG level (`K` in Table I's `S` row).
    pub fn steps_per_level(self) -> u64 {
        match self {
            Realization::Imp => 10,
            Realization::Maj => 3,
        }
    }
}

impl std::fmt::Display for Realization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Realization::Imp => write!(f, "IMP"),
            Realization::Maj => write!(f, "MAJ"),
        }
    }
}

/// Per-level structural statistics of an MIG (the `N_i`, `C_i`, `D`, `L`
/// quantities of Table I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelProfile {
    /// `N_i`: majority-node count per level (index 0 = level 1; inputs are
    /// level 0 and carry no gates).
    pub nodes_per_level: Vec<u64>,
    /// `C_i`: ingoing complemented (non-constant) edges per level, plus a
    /// final entry for the virtual output level.
    pub compl_per_level: Vec<u64>,
    /// `D`: depth of the graph.
    pub depth: u64,
    /// `L`: number of levels with at least one ingoing complemented edge
    /// (including the virtual output level).
    pub levels_with_compl: u64,
}

impl LevelProfile {
    /// Computes the profile of a graph.
    ///
    /// Only nodes reachable from the outputs are counted: dead nodes are
    /// never implemented by the level-by-level compiler (and an optimized
    /// MIG has none).
    pub fn of(mig: &Mig) -> Self {
        let depth = mig.depth() as usize;
        let mut alive = vec![false; mig.len()];
        let mut stack: Vec<usize> = mig.outputs().iter().map(|(_, s)| s.node()).collect();
        while let Some(i) = stack.pop() {
            if alive[i] {
                continue;
            }
            alive[i] = true;
            if let MigNode::Maj(kids) = mig.node(i) {
                stack.extend(kids.iter().map(|k| k.node()));
            }
        }
        // Entry i covers MIG level i+1; one extra slot for the virtual
        // output level.
        let mut nodes_per_level = vec![0u64; depth];
        let mut compl_per_level = vec![0u64; depth + 1];
        for (idx, &is_alive) in alive.iter().enumerate() {
            if !is_alive {
                continue;
            }
            if let MigNode::Maj(kids) = mig.node(idx) {
                let lvl = mig.level(idx) as usize;
                debug_assert!((1..=depth).contains(&lvl));
                nodes_per_level[lvl - 1] += 1;
                for k in kids {
                    if k.is_complemented() && !k.is_constant() {
                        compl_per_level[lvl - 1] += 1;
                    }
                }
            }
        }
        for (_, o) in mig.outputs() {
            if o.is_complemented() && !o.is_constant() {
                compl_per_level[depth] += 1;
            }
        }
        let levels_with_compl = compl_per_level.iter().filter(|&&c| c > 0).count() as u64;
        LevelProfile {
            nodes_per_level,
            compl_per_level,
            depth: depth as u64,
            levels_with_compl,
        }
    }

    /// Total number of complemented edges (including complemented outputs).
    pub fn total_complemented(&self) -> u64 {
        self.compl_per_level.iter().sum()
    }
}

/// The two cost metrics of Table I for one realization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RramCost {
    /// `R`: number of RRAM devices.
    pub rrams: u64,
    /// `S`: number of sequential computational steps.
    pub steps: u64,
}

impl RramCost {
    /// Evaluates Table I on a level profile.
    pub fn from_profile(profile: &LevelProfile, realization: Realization) -> Self {
        let kr = realization.rrams_per_gate();
        let ks = realization.steps_per_level();
        let mut rrams = 0u64;
        for (i, &n) in profile.nodes_per_level.iter().enumerate() {
            rrams = rrams.max(kr * n + profile.compl_per_level[i]);
        }
        // Virtual output level: no gates, only inversions.
        rrams = rrams.max(*profile.compl_per_level.last().unwrap_or(&0));
        let steps = ks * profile.depth + profile.levels_with_compl;
        RramCost { rrams, steps }
    }

    /// Evaluates Table I directly on a graph.
    pub fn of(mig: &Mig, realization: Realization) -> Self {
        Self::from_profile(&LevelProfile::of(mig), realization)
    }
}

impl std::fmt::Display for RramCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R={} S={}", self.rrams, self.steps)
    }
}

/// Convenience: structural summary of a graph used in reports and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigStats {
    /// Majority-node count.
    pub gates: u64,
    /// Depth (levels).
    pub depth: u64,
    /// Complemented non-constant edges, including outputs.
    pub complemented_edges: u64,
    /// Levels with ingoing complemented edges.
    pub levels_with_compl: u64,
    /// Table I metrics for the IMP realization.
    pub imp: RramCost,
    /// Table I metrics for the MAJ realization.
    pub maj: RramCost,
}

impl MigStats {
    /// Gathers all statistics for a graph.
    pub fn of(mig: &Mig) -> Self {
        let profile = LevelProfile::of(mig);
        MigStats {
            gates: mig.num_gates() as u64,
            depth: profile.depth,
            complemented_edges: profile.total_complemented(),
            levels_with_compl: profile.levels_with_compl,
            imp: RramCost::from_profile(&profile, Realization::Imp),
            maj: RramCost::from_profile(&profile, Realization::Maj),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mig::Mig;

    /// A graph with known shape: two gates on level 1 (one complemented
    /// edge), one gate on level 2 (one complemented edge), output clean.
    fn sample() -> Mig {
        let mut m = Mig::with_inputs("t", 4);
        let (a, b, c, d) = (m.input(0), m.input(1), m.input(2), m.input(3));
        let g1 = m.maj(a, !b, c); // level 1, 1 complemented
        let g2 = m.maj(b, c, d); // level 1
        let top = m.maj(g1, !g2, a); // level 2, 1 complemented
        m.add_output("f", top);
        m
    }

    #[test]
    fn profile_counts() {
        let p = LevelProfile::of(&sample());
        assert_eq!(p.depth, 2);
        assert_eq!(p.nodes_per_level, vec![2, 1]);
        assert_eq!(p.compl_per_level, vec![1, 1, 0]);
        assert_eq!(p.levels_with_compl, 2);
        assert_eq!(p.total_complemented(), 2);
    }

    #[test]
    fn table1_formulas() {
        let m = sample();
        // IMP: R = max(6*2+1, 6*1+1, 0) = 13 ; S = 10*2 + 2 = 22
        assert_eq!(
            RramCost::of(&m, Realization::Imp),
            RramCost {
                rrams: 13,
                steps: 22
            }
        );
        // MAJ: R = max(4*2+1, 4*1+1, 0) = 9 ; S = 3*2 + 2 = 8
        assert_eq!(
            RramCost::of(&m, Realization::Maj),
            RramCost { rrams: 9, steps: 8 }
        );
    }

    #[test]
    fn constant_edges_are_free() {
        let mut m = Mig::with_inputs("t", 2);
        let (a, b) = (m.input(0), m.input(1));
        let or = m.or(a, b); // M(a, b, 1): complemented constant edge
        m.add_output("f", or);
        let p = LevelProfile::of(&m);
        assert_eq!(p.total_complemented(), 0);
        assert_eq!(
            RramCost::of(&m, Realization::Maj),
            RramCost { rrams: 4, steps: 3 }
        );
    }

    #[test]
    fn complemented_output_costs_one_extra_step() {
        let mut m = Mig::with_inputs("t", 3);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let g = m.maj(a, b, c);
        m.add_output("f", !g);
        let p = LevelProfile::of(&m);
        assert_eq!(p.compl_per_level, vec![0, 1]);
        assert_eq!(p.levels_with_compl, 1);
        let cost = RramCost::of(&m, Realization::Maj);
        assert_eq!(cost.steps, 3 + 1);
        assert_eq!(cost.rrams, 4);
    }

    #[test]
    fn realization_constants_match_paper() {
        assert_eq!(Realization::Imp.rrams_per_gate(), 6);
        assert_eq!(Realization::Imp.steps_per_level(), 10);
        assert_eq!(Realization::Maj.rrams_per_gate(), 4);
        assert_eq!(Realization::Maj.steps_per_level(), 3);
        assert_eq!(Realization::Imp.to_string(), "IMP");
    }

    #[test]
    fn empty_graph_costs_nothing() {
        let mut m = Mig::with_inputs("t", 1);
        let a = m.input(0);
        m.add_output("f", a);
        let c = RramCost::of(&m, Realization::Imp);
        assert_eq!(c, RramCost { rrams: 0, steps: 0 });
    }

    #[test]
    fn stats_summary() {
        let s = MigStats::of(&sample());
        assert_eq!(s.gates, 3);
        assert_eq!(s.depth, 2);
        assert_eq!(s.complemented_edges, 2);
        assert_eq!(s.imp.steps, 22);
        assert_eq!(s.maj.steps, 8);
    }
}
