//! The majority-inverter graph data structure.
//!
//! An [`Mig`] is a DAG whose only gate is the three-input majority function
//! `M(x, y, z) = xy + xz + yz`; inversion is a complement attribute on
//! edges ([`MigSignal`]). Nodes are stored in topological order (children
//! always precede parents) and are structurally hashed, with the paper's
//! majority axiom Ω.M applied eagerly at construction:
//!
//! - `M(x, x, z) = x`
//! - `M(x, x̄, z) = z`
//!
//! Complement placement is **not** canonicalized by the constructor: the
//! RRAM cost metrics of Table I charge for complemented edges per level, and
//! the inverter-propagation passes in [`crate::rewrite`] explicitly optimize
//! complement placement, so the data structure must faithfully keep edges
//! where the algorithms put them.

use crate::hash::FxHashMap;
use crate::signal::MigSignal;
use rms_logic::netlist::{GateKind, Netlist, NetlistBuilder, Wire};
use rms_logic::tt::{TruthTable, MAX_VARS};
use std::fmt::Write as _;

/// Sorts majority children and applies the Ω.M collapse rules.
///
/// Returns `Err(sig)` when the gate degenerates to an existing signal
/// (duplicated or complementary children), `Ok(sorted)` otherwise. Both
/// [`Mig::maj`] and the in-place engine in [`crate::fanout`] normalize
/// through this single function so their structural invariants cannot
/// drift apart.
pub(crate) fn normalize_maj(
    a: MigSignal,
    b: MigSignal,
    c: MigSignal,
) -> Result<[MigSignal; 3], MigSignal> {
    let mut kids = [a, b, c];
    kids.sort();
    // Ω.M: duplicate or complementary children. Sorting puts equal
    // signals and complement pairs adjacent.
    if kids[0] == kids[1] {
        return Err(kids[0]);
    }
    if kids[1] == kids[2] {
        return Err(kids[1]);
    }
    if kids[0] == !kids[1] {
        return Err(kids[2]);
    }
    if kids[1] == !kids[2] {
        return Err(kids[0]);
    }
    Ok(kids)
}

/// A sink for majority-node construction: anything a database entry can
/// be instantiated into ([`Mig`] and the in-place engine of
/// [`crate::fanout`] both implement it).
pub trait MajBuilder {
    /// Creates (or re-finds) a majority node over the given signals.
    fn maj(&mut self, a: MigSignal, b: MigSignal, c: MigSignal) -> MigSignal;
}

/// A node of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigNode {
    /// The constant-false node (always node 0).
    Const0,
    /// Primary input with its index.
    Input(u32),
    /// Majority gate over three child signals (sorted).
    Maj([MigSignal; 3]),
}

/// A majority-inverter graph.
///
/// # Example
///
/// ```
/// use rms_core::Mig;
///
/// let mut mig = Mig::with_inputs("maj3", 3);
/// let (a, b, c) = (mig.input(0), mig.input(1), mig.input(2));
/// let m = mig.maj(a, b, c);
/// mig.add_output("f", m);
/// assert_eq!(mig.num_gates(), 1);
/// assert_eq!(mig.truth_tables()[0].count_ones(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Mig {
    name: String,
    num_inputs: usize,
    nodes: Vec<MigNode>,
    levels: Vec<u32>,
    outputs: Vec<(String, MigSignal)>,
    strash: FxHashMap<[MigSignal; 3], u32>,
}

impl Mig {
    /// Creates an empty graph with `num_inputs` primary inputs.
    pub fn with_inputs(name: impl Into<String>, num_inputs: usize) -> Self {
        let mut nodes = Vec::with_capacity(num_inputs + 1);
        nodes.push(MigNode::Const0);
        for i in 0..num_inputs {
            nodes.push(MigNode::Input(i as u32));
        }
        Mig {
            name: name.into(),
            num_inputs,
            levels: vec![0; nodes.len()],
            nodes,
            outputs: Vec::new(),
            strash: FxHashMap::default(),
        }
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of majority nodes.
    pub fn num_gates(&self) -> usize {
        self.nodes.len() - 1 - self.num_inputs
    }

    /// Total node count (constant + inputs + gates).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no gate nodes.
    pub fn is_empty(&self) -> bool {
        self.num_gates() == 0
    }

    /// The signal of primary input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs()`.
    pub fn input(&self, i: usize) -> MigSignal {
        assert!(i < self.num_inputs, "input {i} out of range");
        MigSignal::new(1 + i, false)
    }

    /// The constant signal with value `v`.
    pub fn constant(&self, v: bool) -> MigSignal {
        if v {
            MigSignal::TRUE
        } else {
            MigSignal::FALSE
        }
    }

    /// The node at index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn node(&self, idx: usize) -> MigNode {
        self.nodes[idx]
    }

    /// The children of node `idx` if it is a majority gate.
    pub fn maj_children(&self, idx: usize) -> Option<[MigSignal; 3]> {
        match self.nodes[idx] {
            MigNode::Maj(c) => Some(c),
            _ => None,
        }
    }

    /// Views `sig` as a majority gate: returns its children, complemented
    /// when `sig` itself is complemented (by inverter propagation
    /// `M(x,y,z)' = M(x̄,ȳ,z̄)`).
    ///
    /// Rewriting through this view is functionally sound but moves
    /// complement attributes; the rewrite passes use it deliberately.
    pub fn children_through(&self, sig: MigSignal) -> Option<[MigSignal; 3]> {
        let c = self.maj_children(sig.node())?;
        Some(if sig.is_complemented() {
            [!c[0], !c[1], !c[2]]
        } else {
            c
        })
    }

    /// Level of node `idx`: longest path from the inputs (inputs and the
    /// constant are level 0).
    pub fn level(&self, idx: usize) -> u32 {
        self.levels[idx]
    }

    /// Level of the node a signal points to.
    pub fn signal_level(&self, sig: MigSignal) -> u32 {
        self.levels[sig.node()]
    }

    /// Depth of the graph: the maximum level over the output nodes.
    pub fn depth(&self) -> u32 {
        self.outputs
            .iter()
            .map(|(_, s)| self.levels[s.node()])
            .max()
            .unwrap_or(0)
    }

    /// Primary outputs as (name, signal) pairs.
    pub fn outputs(&self) -> &[(String, MigSignal)] {
        &self.outputs
    }

    /// Declares a primary output.
    ///
    /// # Panics
    ///
    /// Panics if the signal references a node that does not exist.
    pub fn add_output(&mut self, name: impl Into<String>, sig: MigSignal) {
        assert!(sig.node() < self.nodes.len(), "dangling output signal");
        self.outputs.push((name.into(), sig));
    }

    /// Replaces output `idx`'s signal (used by rewrite passes).
    ///
    /// # Panics
    ///
    /// Panics if `idx` or the signal is out of range.
    pub fn set_output(&mut self, idx: usize, sig: MigSignal) {
        assert!(sig.node() < self.nodes.len(), "dangling output signal");
        self.outputs[idx].1 = sig;
    }

    /// Creates (or re-finds) a majority node over the given signals.
    ///
    /// Applies the majority axiom Ω.M eagerly: duplicated children collapse
    /// to the child, complementary children select the remaining child; the
    /// result may therefore be an existing signal rather than a new node.
    ///
    /// # Panics
    ///
    /// Panics if any child references a node that does not exist.
    pub fn maj(&mut self, a: MigSignal, b: MigSignal, c: MigSignal) -> MigSignal {
        let n = self.nodes.len();
        assert!(
            a.node() < n && b.node() < n && c.node() < n,
            "child signal out of range"
        );
        let kids = match normalize_maj(a, b, c) {
            Ok(kids) => kids,
            Err(sig) => return sig,
        };
        if let Some(&idx) = self.strash.get(&kids) {
            return MigSignal::new(idx as usize, false);
        }
        let idx = self.nodes.len();
        self.nodes.push(MigNode::Maj(kids));
        let lvl = 1 + kids
            .iter()
            .map(|s| self.levels[s.node()])
            .max()
            .expect("three children");
        self.levels.push(lvl);
        self.strash.insert(kids, idx as u32);
        MigSignal::new(idx, false)
    }

    /// `a AND b`, expressed as `M(a, b, 0)`.
    pub fn and(&mut self, a: MigSignal, b: MigSignal) -> MigSignal {
        self.maj(a, b, MigSignal::FALSE)
    }

    /// `a OR b`, expressed as `M(a, b, 1)`.
    pub fn or(&mut self, a: MigSignal, b: MigSignal) -> MigSignal {
        self.maj(a, b, MigSignal::TRUE)
    }

    /// `a XOR b`, expressed with three majority nodes.
    pub fn xor(&mut self, a: MigSignal, b: MigSignal) -> MigSignal {
        let both = self.and(a, b);
        let either = self.or(a, b);
        self.and(!both, either)
    }

    /// If-then-else `s ? t : e`, expressed with three majority nodes.
    pub fn mux(&mut self, s: MigSignal, t: MigSignal, e: MigSignal) -> MigSignal {
        let st = self.and(s, t);
        let se = self.and(!s, e);
        self.or(st, se)
    }

    /// Number of references (from gates and outputs) to each node.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut refs = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            if let MigNode::Maj(kids) = node {
                for k in kids {
                    refs[k.node()] += 1;
                }
            }
        }
        for (_, s) in &self.outputs {
            refs[s.node()] += 1;
        }
        refs
    }

    /// Fanout lists: for every node, the indices of the majority nodes
    /// that reference it (outputs are counted in [`Mig::fanout_counts`]
    /// but carry no node index). Each parent appears at most once per
    /// child — the constructor collapses duplicate children.
    pub fn fanout_lists(&self) -> Vec<Vec<u32>> {
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if let MigNode::Maj(kids) = node {
                for k in kids {
                    lists[k.node()].push(i as u32);
                }
            }
        }
        lists
    }

    /// Rebuilds the graph keeping only nodes reachable from the outputs.
    ///
    /// Structural hashing and Ω.M are re-applied, so the result can be
    /// smaller even without dead nodes.
    pub fn compact(&self) -> Mig {
        let mut out = Mig::with_inputs(self.name.clone(), self.num_inputs);
        let mut map: Vec<MigSignal> = Vec::with_capacity(self.nodes.len());
        // Reachability from outputs.
        let mut alive = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = self.outputs.iter().map(|(_, s)| s.node()).collect();
        while let Some(i) = stack.pop() {
            if alive[i] {
                continue;
            }
            alive[i] = true;
            if let MigNode::Maj(kids) = self.nodes[i] {
                stack.extend(kids.iter().map(|k| k.node()));
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let mapped = match node {
                MigNode::Const0 => MigSignal::FALSE,
                MigNode::Input(k) => out.input(*k as usize),
                MigNode::Maj(kids) => {
                    if alive[i] {
                        let k: Vec<MigSignal> = kids
                            .iter()
                            .map(|s| map[s.node()].complement_if(s.is_complemented()))
                            .collect();
                        out.maj(k[0], k[1], k[2])
                    } else {
                        MigSignal::FALSE // placeholder; never referenced
                    }
                }
            };
            map.push(mapped);
        }
        for (name, s) in &self.outputs {
            let m = map[s.node()].complement_if(s.is_complemented());
            out.add_output(name.clone(), m);
        }
        out
    }

    /// Bit-parallel simulation: one input word per primary input, one
    /// output word per primary output.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs()`.
    pub fn simulate_words(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.num_inputs, "input count mismatch");
        let mut vals = vec![0u64; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            vals[i] = match node {
                MigNode::Const0 => 0,
                MigNode::Input(k) => inputs[*k as usize],
                MigNode::Maj(kids) => {
                    let v = |s: MigSignal| -> u64 {
                        let raw = vals[s.node()];
                        if s.is_complemented() {
                            !raw
                        } else {
                            raw
                        }
                    };
                    let (a, b, c) = (v(kids[0]), v(kids[1]), v(kids[2]));
                    (a & b) | (a & c) | (b & c)
                }
            };
        }
        self.outputs
            .iter()
            .map(|(_, s)| {
                let raw = vals[s.node()];
                if s.is_complemented() {
                    !raw
                } else {
                    raw
                }
            })
            .collect()
    }

    /// Exhaustive truth tables of every output.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than [`MAX_VARS`] inputs.
    pub fn truth_tables(&self) -> Vec<TruthTable> {
        let n = self.num_inputs;
        assert!(n <= MAX_VARS, "too many inputs for exhaustive tables");
        let mut tts: Vec<TruthTable> = self.outputs.iter().map(|_| TruthTable::zero(n)).collect();
        let total = 1u64 << n;
        let mut base = 0u64;
        while base < total {
            let chunk = 64.min(total - base);
            let inputs: Vec<u64> = (0..n)
                .map(|i| {
                    let mut w = 0u64;
                    for b in 0..chunk {
                        if ((base + b) >> i) & 1 == 1 {
                            w |= 1 << b;
                        }
                    }
                    w
                })
                .collect();
            let outs = self.simulate_words(&inputs);
            for (t, &w) in tts.iter_mut().zip(&outs) {
                for b in 0..chunk {
                    if (w >> b) & 1 == 1 {
                        t.set_bit(base + b);
                    }
                }
            }
            base += chunk;
        }
        tts
    }

    /// Converts a gate-level netlist into an MIG.
    ///
    /// AND/OR become single majority nodes with a constant child; XOR and
    /// MUX become three-node networks; MAJ maps directly.
    pub fn from_netlist(nl: &Netlist) -> Mig {
        let mut mig = Mig::with_inputs(nl.name().to_string(), nl.num_inputs());
        let mut map: Vec<MigSignal> = vec![MigSignal::FALSE; nl.num_nodes()];
        for i in 0..nl.num_inputs() {
            map[1 + i] = mig.input(i);
        }
        let conv = |map: &[MigSignal], w: Wire| map[w.node()].complement_if(w.is_complemented());
        for (idx, gate) in nl.gates() {
            let sig = match gate.kind {
                GateKind::And => {
                    let (a, b) = (conv(&map, gate.fanins[0]), conv(&map, gate.fanins[1]));
                    mig.and(a, b)
                }
                GateKind::Or => {
                    let (a, b) = (conv(&map, gate.fanins[0]), conv(&map, gate.fanins[1]));
                    mig.or(a, b)
                }
                GateKind::Xor => {
                    let (a, b) = (conv(&map, gate.fanins[0]), conv(&map, gate.fanins[1]));
                    mig.xor(a, b)
                }
                GateKind::Maj => {
                    let (a, b, c) = (
                        conv(&map, gate.fanins[0]),
                        conv(&map, gate.fanins[1]),
                        conv(&map, gate.fanins[2]),
                    );
                    mig.maj(a, b, c)
                }
                GateKind::Mux => {
                    let (s, t, e) = (
                        conv(&map, gate.fanins[0]),
                        conv(&map, gate.fanins[1]),
                        conv(&map, gate.fanins[2]),
                    );
                    mig.mux(s, t, e)
                }
            };
            map[idx] = sig;
        }
        for (name, w) in nl.outputs() {
            let s = conv(&map, *w);
            mig.add_output(name.clone(), s);
        }
        mig
    }

    /// Converts the MIG to a gate-level netlist of MAJ gates (for reuse of
    /// the generic simulation and equivalence-checking machinery).
    pub fn to_netlist(&self) -> Netlist {
        let mut b = NetlistBuilder::new(self.name.clone());
        let mut map: Vec<Wire> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let w = match node {
                MigNode::Const0 => b.const0(),
                MigNode::Input(k) => {
                    debug_assert_eq!(*k as usize + 1, map.len());
                    b.input(format!("x{k}"))
                }
                MigNode::Maj(kids) => {
                    let w: Vec<Wire> = kids
                        .iter()
                        .map(|s| {
                            let base = map[s.node()];
                            if s.is_complemented() {
                                base.complement()
                            } else {
                                base
                            }
                        })
                        .collect();
                    b.maj(w[0], w[1], w[2])
                }
            };
            map.push(w);
        }
        for (name, s) in &self.outputs {
            let base = map[s.node()];
            let w = if s.is_complemented() {
                base.complement()
            } else {
                base
            };
            b.output(name.clone(), w);
        }
        b.build()
    }

    /// Graphviz DOT rendering (complemented edges drawn dashed).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph mig {\n  rankdir=BT;\n");
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                MigNode::Const0 => {
                    let _ = writeln!(s, "  n{i} [label=\"0\", shape=box];");
                }
                MigNode::Input(k) => {
                    let _ = writeln!(s, "  n{i} [label=\"x{k}\", shape=circle];");
                }
                MigNode::Maj(kids) => {
                    let _ = writeln!(s, "  n{i} [label=\"M\", shape=ellipse];");
                    for k in kids {
                        let style = if k.is_complemented() {
                            " [style=dashed]"
                        } else {
                            ""
                        };
                        let _ = writeln!(s, "  n{} -> n{i}{style};", k.node());
                    }
                }
            }
        }
        for (name, o) in &self.outputs {
            let style = if o.is_complemented() {
                " [style=dashed]"
            } else {
                ""
            };
            let _ = writeln!(s, "  out_{name} [label=\"{name}\", shape=box];");
            let _ = writeln!(s, "  n{} -> out_{name}{style};", o.node());
        }
        s.push_str("}\n");
        s
    }
}

impl MajBuilder for Mig {
    fn maj(&mut self, a: MigSignal, b: MigSignal, c: MigSignal) -> MigSignal {
        Mig::maj(self, a, b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_logic::bench_suite;
    use rms_logic::sim::{check_equivalence, EquivResult};

    #[test]
    fn majority_axiom_applied_eagerly() {
        let mut m = Mig::with_inputs("t", 2);
        let (a, b) = (m.input(0), m.input(1));
        assert_eq!(m.maj(a, a, b), a); // M(x,x,z) = x
        assert_eq!(m.maj(a, !a, b), b); // M(x,x̄,z) = z
        assert_eq!(m.maj(a, b, b), b);
        assert_eq!(m.maj(MigSignal::FALSE, MigSignal::TRUE, a), a);
        assert_eq!(m.num_gates(), 0);
    }

    #[test]
    fn strashing_shares_nodes() {
        let mut m = Mig::with_inputs("t", 3);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let x = m.maj(a, b, c);
        let y = m.maj(c, a, b); // commutativity through sorting
        assert_eq!(x, y);
        assert_eq!(m.num_gates(), 1);
    }

    #[test]
    fn and_or_semantics() {
        let mut m = Mig::with_inputs("t", 2);
        let (a, b) = (m.input(0), m.input(1));
        let and = m.and(a, b);
        let or = m.or(a, b);
        let xor = m.xor(a, b);
        m.add_output("and", and);
        m.add_output("or", or);
        m.add_output("xor", xor);
        let tts = m.truth_tables();
        assert_eq!(tts[0].words()[0] & 0xF, 0b1000);
        assert_eq!(tts[1].words()[0] & 0xF, 0b1110);
        assert_eq!(tts[2].words()[0] & 0xF, 0b0110);
    }

    #[test]
    fn mux_semantics() {
        let mut m = Mig::with_inputs("t", 3);
        let (s, t, e) = (m.input(0), m.input(1), m.input(2));
        let mx = m.mux(s, t, e);
        m.add_output("f", mx);
        let tt = &m.truth_tables()[0];
        for mt in 0..8u64 {
            let sv = mt & 1 == 1;
            let tv = mt & 2 != 0;
            let ev = mt & 4 != 0;
            assert_eq!(tt.bit(mt), if sv { tv } else { ev });
        }
    }

    #[test]
    fn levels_and_depth() {
        let mut m = Mig::with_inputs("t", 4);
        let (a, b, c, d) = (m.input(0), m.input(1), m.input(2), m.input(3));
        let x = m.maj(a, b, c);
        let y = m.maj(x, c, d);
        let z = m.maj(y, a, b);
        m.add_output("f", z);
        assert_eq!(m.signal_level(x), 1);
        assert_eq!(m.signal_level(y), 2);
        assert_eq!(m.signal_level(z), 3);
        assert_eq!(m.depth(), 3);
    }

    #[test]
    fn netlist_round_trip_preserves_function() {
        for name in ["rd53_f2", "exam3_d", "clip", "newtag_d", "cm150a"] {
            let nl = bench_suite::build(name).unwrap();
            let mig = Mig::from_netlist(&nl);
            let back = mig.to_netlist();
            // cm150a has 21 inputs, so the check is sampled rather than
            // exhaustive; `holds` covers both verdicts.
            let res = check_equivalence(&nl, &back);
            assert!(res.holds(), "{name}: {res:?}");
            if nl.num_inputs() <= 16 {
                assert_eq!(res, EquivResult::Equivalent, "{name}");
            }
        }
    }

    #[test]
    fn compact_removes_dead_nodes() {
        let mut m = Mig::with_inputs("t", 3);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let _dead = m.maj(a, b, c);
        let keep = m.and(a, c);
        m.add_output("f", keep);
        assert_eq!(m.num_gates(), 2);
        let small = m.compact();
        assert_eq!(small.num_gates(), 1);
        let before = m.truth_tables();
        let after = small.truth_tables();
        assert_eq!(before[0], after[0]);
    }

    #[test]
    fn children_through_complemented_view() {
        let mut m = Mig::with_inputs("t", 3);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let g = m.maj(a, b, c);
        let through = m.children_through(!g).unwrap();
        // M(a,b,c)' = M(ā,b̄,c̄)
        let mut expect = [!a, !b, !c];
        expect.sort();
        let mut got = through;
        got.sort();
        assert_eq!(got, expect);
        assert!(m.children_through(a).is_none());
    }

    #[test]
    fn simulate_words_matches_truth_tables() {
        let nl = bench_suite::build("9sym_d").unwrap();
        let mig = Mig::from_netlist(&nl);
        let tt = &mig.truth_tables()[0];
        for m in 0..512u64 {
            assert_eq!(tt.bit(m), (3..=6).contains(&m.count_ones()), "{m}");
        }
    }

    #[test]
    fn dot_output_mentions_all_parts() {
        let mut m = Mig::with_inputs("t", 3);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let g = m.maj(a, !b, c);
        m.add_output("f", g);
        let dot = m.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("out_f"));
    }
}
