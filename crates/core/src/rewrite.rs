//! The Ω / Ψ transformation passes.
//!
//! Every pass consumes a graph and produces a functionally equivalent one,
//! rebuilding bottom-up through the strashing constructor (which applies
//! the majority axiom Ω.M eagerly) and applying one family of the paper's
//! axioms at each reconstructed node:
//!
//! - [`eliminate`] — Ω.M + distributivity right-to-left (Ω.D R→L), the
//!   node-count reducer of Alg. 1,
//! - [`reshape`] — associativity Ω.A + complementary associativity Ψ.C,
//!   the structure perturbation of Alg. 1,
//! - [`push_up`] — the depth reducer used by Algs. 2–4 (Ω.M; Ω.D L→R;
//!   Ω.A; Ψ.C, steered at the critical child),
//! - [`relevance`] — Ψ.R, replacing reconvergent children,
//! - [`inverter_propagation`] — the Ω.I R→L extension of Sec. III-C3 for
//!   nodes with multiple complemented fanins.
//!
//! Passes end with a reachability compaction, so intermediate garbage
//! created by speculative rewrites never survives.
//!
//! # Inverter-propagation case taxonomy
//!
//! The paper's three Ω.I R→L cases are stated with their effect on the
//! RRAM count: reductions of three, two, and one-with-a-penalty-of-one.
//! Together with our convention that complement attributes on constant
//! edges are free, this pins the cases down as:
//!
//! 1. all three fanins complemented — `M(x̄,ȳ,z̄) = M(x,y,z)'` removes
//!    three complemented edges,
//! 2. two complemented fanins and one **constant** fanin — flipping the
//!    constant is free, so two edges are removed,
//! 3. two complemented fanins, third regular — two edges removed, one
//!    added on the formerly regular fanin (net one), plus the complement
//!    moved to the fanout level.

use crate::mig::{Mig, MigNode};
use crate::signal::MigSignal;

/// Which inverter-propagation cases a pass may fire (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InverterCases {
    /// Case 1: three complemented fanins.
    pub three: bool,
    /// Case 2: two complemented fanins and a constant fanin.
    pub two_with_const: bool,
    /// Case 3: two complemented fanins, regular third fanin.
    pub two: bool,
}

impl InverterCases {
    /// Only the base rule (case 1), as used first in Alg. 4.
    pub const BASE: InverterCases = InverterCases {
        three: true,
        two_with_const: false,
        two: false,
    };
    /// All three cases (`Ω.I R→L (1-3)` in Algs. 3 and 4).
    pub const ALL: InverterCases = InverterCases {
        three: true,
        two_with_const: true,
        two: true,
    };
}

/// Context handed to a node hook during a rebuilding pass.
struct NodeCtx {
    /// Index of the node in the old graph.
    old_idx: usize,
    /// Children mapped into the new graph (original order, pre-sorting).
    kids: [MigSignal; 3],
    /// Fanout count of the corresponding *old* children in the old graph.
    old_fanout: [u32; 3],
}

/// Rebuilds `mig` bottom-up, calling `hook` for every majority node.
///
/// The hook receives the new graph (for matching and node creation) and the
/// node context; it returns the signal that replaces the node. The default
/// behaviour is `out.maj(kids)`.
fn transform(mig: &Mig, mut hook: impl FnMut(&mut Mig, &NodeCtx) -> MigSignal) -> Mig {
    let fanout = mig.fanout_counts();
    let mut out = Mig::with_inputs(mig.name().to_string(), mig.num_inputs());
    let mut map: Vec<MigSignal> = Vec::with_capacity(mig.len());
    for idx in 0..mig.len() {
        let sig = match mig.node(idx) {
            MigNode::Const0 => MigSignal::FALSE,
            MigNode::Input(k) => out.input(k as usize),
            MigNode::Maj(kids) => {
                let mk = kids.map(|s| map[s.node()].complement_if(s.is_complemented()));
                let ctx = NodeCtx {
                    old_idx: idx,
                    kids: mk,
                    old_fanout: kids.map(|s| fanout[s.node()]),
                };
                hook(&mut out, &ctx)
            }
        };
        map.push(sig);
    }
    for (name, s) in mig.outputs() {
        let m = map[s.node()].complement_if(s.is_complemented());
        out.add_output(name.clone(), m);
    }
    out.compact()
}

/// Removes one occurrence of `x` from a 3-child set, returning the two
/// remaining children in order. Allocation-free (this runs for every
/// node of every pass).
pub(crate) fn remove_child(v: [MigSignal; 3], x: MigSignal) -> Option<[MigSignal; 2]> {
    if v[0] == x {
        Some([v[1], v[2]])
    } else if v[1] == x {
        Some([v[0], v[2]])
    } else if v[2] == x {
        Some([v[0], v[1]])
    } else {
        None
    }
}

/// Multiset intersection of two 3-child sets for the Ω.D R→L pattern:
/// when the sets share at least two children, returns `(x, y, u, v)` —
/// the shared pair and the leftover child of each set (for a triple
/// match the third shared child doubles as both leftovers).
pub(crate) fn shared_pair(
    ca: [MigSignal; 3],
    cb: [MigSignal; 3],
) -> Option<(MigSignal, MigSignal, MigSignal, MigSignal)> {
    let mut rb = cb;
    let mut rb_len = 3usize;
    let mut common = [MigSignal::FALSE; 3];
    let mut nc = 0usize;
    let mut ra = [MigSignal::FALSE; 3];
    let mut na = 0usize;
    for s in ca {
        if let Some(p) = rb[..rb_len].iter().position(|&x| x == s) {
            rb[p] = rb[rb_len - 1];
            rb_len -= 1;
            common[nc] = s;
            nc += 1;
        } else {
            ra[na] = s;
            na += 1;
        }
    }
    if nc < 2 {
        return None;
    }
    let (x, y) = (common[0], common[1]);
    let u = if nc == 3 { common[2] } else { ra[0] };
    let v = if nc == 3 { common[2] } else { rb[0] };
    Some((x, y, u, v))
}

/// `Ω.M; Ω.D R→L` — the *eliminate* pass of Alg. 1.
///
/// Merges sibling majority nodes that share two children:
/// `M(M(x,y,u), M(x,y,v), z) = M(x,y,M(u,v,z))`, firing only when both
/// inner nodes are single-fanout (so the rewrite strictly removes a node).
pub fn eliminate(mig: &Mig) -> Mig {
    transform(mig, |out, ctx| {
        for (i, j) in [(0usize, 1usize), (0, 2), (1, 2)] {
            let (a, b) = (ctx.kids[i], ctx.kids[j]);
            if ctx.old_fanout[i] != 1 || ctx.old_fanout[j] != 1 {
                continue;
            }
            let (Some(ca), Some(cb)) = (out.children_through(a), out.children_through(b)) else {
                continue;
            };
            // Shared pair (x, y); leftovers u (from a), v (from b).
            if let Some((x, y, u, v)) = shared_pair(ca, cb) {
                let k = 3 - i - j; // remaining child position
                let z = ctx.kids[k];
                let inner = out.maj(u, v, z);
                return out.maj(x, y, inner);
            }
        }
        out.maj(ctx.kids[0], ctx.kids[1], ctx.kids[2])
    })
}

/// `Ω.A; Ψ.C` — the *reshape* pass of Alg. 1.
///
/// Moves variables between adjacent levels with associativity to expose new
/// elimination opportunities. `deeper` selects the direction variables are
/// pushed (Alg. 1 alternates it between cycles).
pub fn reshape(mig: &Mig, deeper: bool) -> Mig {
    transform(mig, |out, ctx| {
        // Ω.A: M(x, u, M(y, u, z)) = M(z, u, M(y, u, x)).
        for g_pos in 0..3 {
            let g = ctx.kids[g_pos];
            let Some(inner) = out.children_through(g) else {
                continue;
            };
            if ctx.old_fanout[g_pos] != 1 {
                continue;
            }
            let others = [ctx.kids[(g_pos + 1) % 3], ctx.kids[(g_pos + 2) % 3]];
            for (u, x) in [(others[0], others[1]), (others[1], others[0])] {
                let Some([y, z]) = remove_child(inner, u) else {
                    continue;
                };
                // Swap x with z when that moves a variable in the requested
                // direction.
                let (lx, lz) = (out.signal_level(x), out.signal_level(z));
                let should = if deeper { lx > lz } else { lx < lz };
                if should {
                    let new_inner = out.maj(y, u, x);
                    return out.maj(z, u, new_inner);
                }
            }
        }
        // Ψ.C: M(x, u, M(y, ū, z)) = M(x, u, M(y, x, z)).
        for g_pos in 0..3 {
            let g = ctx.kids[g_pos];
            let Some(inner) = out.children_through(g) else {
                continue;
            };
            if ctx.old_fanout[g_pos] != 1 {
                continue;
            }
            let others = [ctx.kids[(g_pos + 1) % 3], ctx.kids[(g_pos + 2) % 3]];
            for (u, x) in [(others[0], others[1]), (others[1], others[0])] {
                if let Some([r0, r1]) = remove_child(inner, !u) {
                    let new_inner = out.maj(r0, r1, x);
                    return out.maj(x, u, new_inner);
                }
            }
        }
        out.maj(ctx.kids[0], ctx.kids[1], ctx.kids[2])
    })
}

/// `Ω.M; Ω.D L→R; Ω.A; Ψ.C` — the *push-up* pass of Algs. 2–4.
///
/// For every node whose unique deepest child is a majority node, tries the
/// axioms in the paper's order and applies the first that strictly reduces
/// the node's level (pulling the critical variable towards the outputs).
pub fn push_up(mig: &Mig) -> Mig {
    transform(mig, |out, ctx| {
        let lv = |out: &Mig, s: MigSignal| out.signal_level(s);
        let levels = ctx.kids.map(|s| lv(out, s));
        let max_lv = *levels.iter().max().expect("three children");
        let current = 1 + max_lv;
        let default = out.maj(ctx.kids[0], ctx.kids[1], ctx.kids[2]);
        if lv(out, default) < current || max_lv == 0 {
            // Ω.M (or strashing) already did better than any local push.
            return default;
        }
        // Candidates are *built* and kept only when the realized level is
        // strictly smaller — estimating levels misses the Ω.M collapses and
        // strash hits that make pushes profitable in shared DAGs; rejected
        // candidates are garbage-collected by the pass-final compaction.
        let mut best = default;
        let mut best_lv = lv(out, default);
        for g_pos in 0..3 {
            let g = ctx.kids[g_pos];
            if lv(out, g) != max_lv {
                continue; // only pushes at a critical child can reduce depth
            }
            let Some(inner) = out.children_through(g) else {
                continue;
            };
            let others = [ctx.kids[(g_pos + 1) % 3], ctx.kids[(g_pos + 2) % 3]];

            // Ω.D L→R: M(x, y, M(u, v, z)) = M(M(x,y,u), M(x,y,v), z),
            // pushing the critical grandchild z one level up (at the cost
            // of duplicating the x/y pair, as the paper notes).
            {
                let ilv = inner.map(|s| lv(out, s));
                let imax = *ilv.iter().max().expect("three children");
                let icrit: Vec<usize> = (0..3).filter(|&i| ilv[i] == imax).collect();
                if icrit.len() == 1 {
                    let z = inner[icrit[0]];
                    let (u, v) = (inner[(icrit[0] + 1) % 3], inner[(icrit[0] + 2) % 3]);
                    let (x, y) = (others[0], others[1]);
                    let left = out.maj(x, y, u);
                    let right = out.maj(x, y, v);
                    let cand = out.maj(left, right, z);
                    if lv(out, cand) < best_lv {
                        best = cand;
                        best_lv = lv(out, cand);
                    }
                }
            }

            // Ω.A: M(x, u, M(y, u, z)) = M(z, u, M(y, u, x)).
            for (u, x) in [(others[0], others[1]), (others[1], others[0])] {
                let Some(rest) = remove_child(inner, u) else {
                    continue;
                };
                // Swap x with the deeper leftover.
                let (y, z) = if lv(out, rest[0]) >= lv(out, rest[1]) {
                    (rest[1], rest[0])
                } else {
                    (rest[0], rest[1])
                };
                let new_inner = out.maj(y, u, x);
                let cand = out.maj(z, u, new_inner);
                if lv(out, cand) < best_lv {
                    best = cand;
                    best_lv = lv(out, cand);
                }
            }

            // Ψ.C: M(x, u, M(y, ū, z)) = M(x, u, M(y, x, z)); profitable
            // when the substitution collapses or re-shares the inner node.
            for (u, x) in [(others[0], others[1]), (others[1], others[0])] {
                let Some([y, z]) = remove_child(inner, !u) else {
                    continue;
                };
                let new_inner = out.maj(y, x, z);
                let cand = out.maj(x, u, new_inner);
                if lv(out, cand) < best_lv {
                    best = cand;
                    best_lv = lv(out, cand);
                }
            }
        }
        best
    })
}

/// `Ψ.R` — the *relevance* pass of Alg. 2.
///
/// `M(x, y, z) = M(x, y, z_{x/ȳ})`: inside the third child, a reconvergent
/// occurrence of `x` can be replaced by `ȳ`. We apply the direct form (the
/// occurrence is an immediate child of `z`) when `y` is no deeper than `x`,
/// which shortens the reconvergent path or exposes Ω.M simplifications.
pub fn relevance(mig: &Mig) -> Mig {
    transform(mig, |out, ctx| {
        for z_pos in 0..3 {
            let z = ctx.kids[z_pos];
            if ctx.old_fanout[z_pos] != 1 {
                continue;
            }
            let Some(inner) = out.children_through(z) else {
                continue;
            };
            let others = [ctx.kids[(z_pos + 1) % 3], ctx.kids[(z_pos + 2) % 3]];
            for (x, y) in [(others[0], others[1]), (others[1], others[0])] {
                if out.signal_level(y) > out.signal_level(x) {
                    continue;
                }
                if let Some([r0, r1]) = remove_child(inner, x) {
                    let new_z = out.maj(r0, r1, !y);
                    return out.maj(x, y, new_z);
                }
            }
        }
        out.maj(ctx.kids[0], ctx.kids[1], ctx.kids[2])
    })
}

/// The Ω.I R→L extension of Sec. III-C3 (see module docs for the cases).
///
/// Nodes with enough complemented fanins are rebuilt with all fanins
/// flipped and a complemented output, moving the complement attribute one
/// level towards the outputs.
///
/// With `guarded`, a node only fires when the paper's benefit analysis
/// says the move cannot hurt the step count: either the transformation
/// (jointly with the other firing nodes of the level) clears the level of
/// complemented edges, or every level that receives the moved complement
/// already has complemented edges. Unguarded application "ensures maximum
/// coverage" (Alg. 4's wording) at the risk of tainting clean levels.
pub fn inverter_propagation(mig: &Mig, cases: InverterCases, guarded: bool) -> Mig {
    let fire_allowed = if guarded {
        Some(guard_vector(mig, cases))
    } else {
        None
    };
    transform(mig, |out, ctx| {
        let fire = eligible(&ctx.kids, cases)
            && fire_allowed
                .as_ref()
                .is_none_or(|allowed| allowed[ctx.old_idx]);
        if fire {
            let flipped = out.maj(!ctx.kids[0], !ctx.kids[1], !ctx.kids[2]);
            !flipped
        } else {
            out.maj(ctx.kids[0], ctx.kids[1], ctx.kids[2])
        }
    })
}

/// Whether the case mask allows flipping a node with these children.
fn eligible(kids: &[MigSignal; 3], cases: InverterCases) -> bool {
    let compl = kids
        .iter()
        .filter(|s| s.is_complemented() && !s.is_constant())
        .count();
    let has_const = kids.iter().any(|s| s.is_constant());
    match (compl, has_const) {
        (3, _) => cases.three,
        (2, true) => cases.two_with_const,
        (2, false) => cases.two,
        _ => false,
    }
}

/// Precomputes, per node of the old graph, whether firing is beneficial
/// according to the level analysis of Sec. III-C3.
fn guard_vector(mig: &Mig, cases: InverterCases) -> Vec<bool> {
    let depth = mig.depth() as usize;
    // Complemented (non-constant) fanin edges per level (1-based levels;
    // slot `depth` is the virtual output level).
    let mut compl_at = vec![0u64; depth + 2];
    let mut eligible_compl_at = vec![0u64; depth + 2];
    let node_compl = |kids: &[MigSignal; 3]| -> u64 {
        kids.iter()
            .filter(|s| s.is_complemented() && !s.is_constant())
            .count() as u64
    };
    for idx in 0..mig.len() {
        if let MigNode::Maj(kids) = mig.node(idx) {
            let lvl = (mig.level(idx) as usize).min(depth + 1);
            let c = node_compl(&kids);
            compl_at[lvl] += c;
            if eligible(&kids, cases) {
                eligible_compl_at[lvl] += c;
            }
        }
    }
    for (_, o) in mig.outputs() {
        if o.is_complemented() && !o.is_constant() {
            compl_at[depth + 1] += 1;
        }
    }
    // Fanout levels per node (where a moved complement would land).
    let mut allowed = vec![false; mig.len()];
    let mut fanout_lvls: Vec<Vec<usize>> = vec![Vec::new(); mig.len()];
    for idx in 0..mig.len() {
        if let MigNode::Maj(kids) = mig.node(idx) {
            for k in kids {
                fanout_lvls[k.node()].push((mig.level(idx) as usize).min(depth + 1));
            }
        }
    }
    for (_, o) in mig.outputs() {
        fanout_lvls[o.node()].push(depth + 1);
    }
    for idx in 0..mig.len() {
        if let MigNode::Maj(kids) = mig.node(idx) {
            if !eligible(&kids, cases) {
                continue;
            }
            let lvl = (mig.level(idx) as usize).min(depth + 1);
            // Beneficial if the firing nodes jointly clear this level, or
            // if every level receiving the complement is already tainted.
            let clears = eligible_compl_at[lvl] == compl_at[lvl];
            let fanouts_tainted =
                !fanout_lvls[idx].is_empty() && fanout_lvls[idx].iter().all(|&l| compl_at[l] > 0);
            allowed[idx] = clears || fanouts_tainted;
        }
    }
    allowed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LevelProfile;
    use rms_logic::bench_suite;
    use rms_logic::sim::check_equivalence;

    fn assert_equiv(a: &Mig, b: &Mig, what: &str) {
        let res = check_equivalence(&a.to_netlist(), &b.to_netlist());
        assert!(res.holds(), "{what}: {res:?}");
    }

    fn bench_mig(name: &str) -> Mig {
        Mig::from_netlist(&bench_suite::build(name).unwrap())
    }

    const SAMPLES: &[&str] = &[
        "rd53_f2", "exam3_d", "newill_d", "con1_f1", "9sym_d", "clip", "sao2_f4",
    ];

    #[test]
    fn eliminate_preserves_function() {
        for name in SAMPLES {
            let m = bench_mig(name);
            let e = eliminate(&m);
            assert_equiv(&m, &e, name);
            assert!(e.num_gates() <= m.num_gates(), "{name} grew");
        }
    }

    #[test]
    fn eliminate_merges_shared_pair() {
        // M(M(x,y,u), M(x,y,v), z) -> M(x, y, M(u,v,z)): 3 nodes -> 2.
        let mut m = Mig::with_inputs("t", 5);
        let (x, y, u, v, z) = (m.input(0), m.input(1), m.input(2), m.input(3), m.input(4));
        let a = m.maj(x, y, u);
        let b = m.maj(x, y, v);
        let top = m.maj(a, b, z);
        m.add_output("f", top);
        assert_eq!(m.num_gates(), 3);
        let e = eliminate(&m);
        assert_eq!(e.num_gates(), 2);
        assert_equiv(&m, &e, "shared pair");
    }

    #[test]
    fn reshape_preserves_function() {
        for name in SAMPLES {
            let m = bench_mig(name);
            for deeper in [false, true] {
                let r = reshape(&m, deeper);
                assert_equiv(&m, &r, name);
            }
        }
    }

    #[test]
    fn push_up_preserves_function_and_never_deepens() {
        for name in SAMPLES {
            let m = bench_mig(name);
            let p = push_up(&m);
            assert_equiv(&m, &p, name);
            assert!(
                p.depth() <= m.depth(),
                "{name}: {} > {}",
                p.depth(),
                m.depth()
            );
        }
    }

    #[test]
    fn push_up_reduces_chain_depth() {
        // M(x, u, M(y, u, M(p, q, r))) has depth 3; Ω.A can reduce it to 2.
        let mut m = Mig::with_inputs("t", 6);
        let (x, u, y, p, q, r) = (
            m.input(0),
            m.input(1),
            m.input(2),
            m.input(3),
            m.input(4),
            m.input(5),
        );
        let deep = m.maj(p, q, r);
        let mid = m.maj(y, u, deep);
        let top = m.maj(x, u, mid);
        m.add_output("f", top);
        assert_eq!(m.depth(), 3);
        let opt = push_up(&m);
        assert_equiv(&m, &opt, "assoc chain");
        assert_eq!(opt.depth(), 2, "expected the paper's example to flatten");
    }

    #[test]
    fn relevance_preserves_function() {
        for name in SAMPLES {
            let m = bench_mig(name);
            let r = relevance(&m);
            assert_equiv(&m, &r, name);
        }
    }

    #[test]
    fn relevance_enables_simplification() {
        // M(x, y, M(x, u, v)): replacing x by ȳ inside gives M(ȳ,u,v).
        let mut m = Mig::with_inputs("t", 4);
        let (x, y, u, v) = (m.input(0), m.input(1), m.input(2), m.input(3));
        let z = m.maj(x, u, v);
        let top = m.maj(x, y, z);
        m.add_output("f", top);
        let r = relevance(&m);
        assert_equiv(&m, &r, "relevance direct");
        // The inner node now contains ȳ instead of x.
        let inner_kids = r
            .maj_children(r.outputs()[0].1.node())
            .and_then(|kids| kids.iter().find_map(|k| r.children_through(*k)))
            .expect("inner node");
        assert!(inner_kids.contains(&!r.input(1)), "{inner_kids:?}");
    }

    #[test]
    fn inverter_propagation_case1_clears_level() {
        let mut m = Mig::with_inputs("t", 3);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let g = m.maj(!a, !b, !c);
        m.add_output("f", g);
        let before = LevelProfile::of(&m);
        assert_eq!(before.compl_per_level, vec![3, 0]);
        let opt = inverter_propagation(&m, InverterCases::BASE, false);
        assert_equiv(&m, &opt, "case 1");
        let after = LevelProfile::of(&opt);
        // Three ingoing complements traded for one complemented output.
        assert_eq!(after.compl_per_level, vec![0, 1]);
    }

    #[test]
    fn inverter_propagation_case2_uses_free_constant() {
        // M(ā, b̄, 0) = M(a, b, 1)': complement lands on the constant (free).
        let mut m = Mig::with_inputs("t", 2);
        let (a, b) = (m.input(0), m.input(1));
        let g = m.maj(!a, !b, MigSignal::FALSE);
        m.add_output("f", g);
        assert_eq!(LevelProfile::of(&m).total_complemented(), 2);
        let base_only = inverter_propagation(&m, InverterCases::BASE, false);
        assert_eq!(
            LevelProfile::of(&base_only).total_complemented(),
            2,
            "case 2 must not fire under BASE"
        );
        let opt = inverter_propagation(&m, InverterCases::ALL, false);
        assert_equiv(&m, &opt, "case 2");
        // Two ingoing complements traded for one complemented output.
        assert_eq!(LevelProfile::of(&opt).compl_per_level, vec![0, 1]);
    }

    #[test]
    fn inverter_propagation_case3_nets_one() {
        let mut m = Mig::with_inputs("t", 3);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let g = m.maj(!a, !b, c);
        m.add_output("f", g);
        let opt = inverter_propagation(&m, InverterCases::ALL, false);
        assert_equiv(&m, &opt, "case 3");
        let p = LevelProfile::of(&opt);
        assert_eq!(p.compl_per_level, vec![1, 1]);
    }

    #[test]
    fn inverter_propagation_on_benchmarks() {
        for name in SAMPLES {
            let m = bench_mig(name);
            for cases in [InverterCases::BASE, InverterCases::ALL] {
                let opt = inverter_propagation(&m, cases, false);
                assert_equiv(&m, &opt, name);
            }
        }
    }

    #[test]
    fn passes_compose() {
        for name in ["rd53_f2", "exam3_d", "sao2_f3"] {
            let m = bench_mig(name);
            let o = eliminate(&m);
            let o = push_up(&o);
            let o = inverter_propagation(&o, InverterCases::ALL, false);
            let o = reshape(&o, false);
            let o = relevance(&o);
            let o = eliminate(&o);
            assert_equiv(&m, &o, name);
        }
    }
}
