//! A minimal work-stealing-free thread pool built on scoped threads.
//!
//! The sweeps in `rms-bench` and the `rms bench` subcommand fan out one
//! task per (benchmark, configuration) pair, and the windowed rewrite
//! round of the cut engine fans out one task per graph window. Tasks are
//! independent and deterministic, so a shared atomic cursor over the
//! item slice is enough: results are written back in input order, which
//! makes the parallel sweep bit-identical to the sequential one.
//!
//! No external crates are used — the container this repository builds in
//! is offline, so the pool is ~60 lines of `std::thread` instead of a
//! `rayon` dependency.
//!
//! # Example
//!
//! ```
//! let squares = rms_core::par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default.
///
/// Honours the `RMS_THREADS` environment variable (a positive integer)
/// and otherwise uses [`std::thread::available_parallelism`].
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("RMS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on a pool of [`num_threads`] workers.
///
/// The output vector preserves input order, so a parallel sweep returns
/// exactly what the sequential `items.iter().map(f).collect()` would.
/// Panics in `f` are propagated to the caller.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(items, num_threads(), f)
}

/// Like [`par_map`] with an explicit worker count.
///
/// `threads == 1` runs inline on the calling thread (no pool is spawned),
/// which is the reference behaviour the parallel path is tested against.
pub fn par_map_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads.min(items.len()) {
            scope.spawn(|| {
                // Each worker keeps a local buffer and merges once at the
                // end, so the lock is taken `threads` times, not `items`.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                results.lock().unwrap().extend(local);
            });
        }
    });
    let mut pairs = results.into_inner().unwrap();
    pairs.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 7, 64] {
            let par = par_map_threads(&items, threads, |&x| x * 3 + 1);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(par_map(&empty, |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[9u32], |&x| x + 1), vec![10]);
    }

    #[test]
    fn default_thread_count_is_positive() {
        assert!(num_threads() >= 1);
    }
}
