//! A zero-dependency FxHash-style hasher for the synthesis hot paths.
//!
//! The standard library's default `HashMap` hasher is SipHash-1-3 — a
//! keyed, DoS-resistant function that costs tens of cycles per small key.
//! Every majority-node construction performs a structural-hash lookup on
//! a 12-byte key, so the optimizer's inner loops are dominated by hashing
//! overhead, not collision handling. None of these maps are exposed to
//! attacker-chosen keys (they hold node triples, 16-bit truth tables, and
//! Tseitin gate keys), so the DoS resistance buys nothing here.
//!
//! [`FxHasher`] is the multiply-xor hash used by rustc (`rustc-hash`),
//! reimplemented locally because the build environment is offline: each
//! machine word of input is folded in with one rotate, one xor, and one
//! multiplication by a constant derived from the golden ratio. It is not
//! cryptographic and must never be used for untrusted input.
//!
//! # Example
//!
//! ```
//! use rms_core::hash::FxHashMap;
//!
//! let mut m: FxHashMap<[u32; 3], u32> = FxHashMap::default();
//! m.insert([1, 2, 3], 7);
//! assert_eq!(m[&[1, 2, 3]], 7);
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// 64-bit multiplication constant (the golden ratio, as used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc multiply-xor hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// One round of the mixer as a standalone function, for signature-style
/// fingerprints outside a `HashMap` (cut leaf-set signatures and the
/// simulation word seeds).
#[inline]
pub fn mix64(word: u64) -> u64 {
    let h = word.wrapping_mul(SEED);
    h ^ (h >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&37], 37 * 37);
        let s: FxHashSet<u32> = (0..100).collect();
        assert!(s.contains(&99));
        assert!(!s.contains(&100));
    }

    #[test]
    fn deterministic_across_instances() {
        // Unlike SipHash with `RandomState`, the hash must be stable so
        // parallel sweeps stay bit-identical to sequential ones.
        let h = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(h(b"majority"), h(b"majority"));
        assert_ne!(h(b"majority"), h(b"minority"));
    }

    #[test]
    fn unaligned_tails_differ() {
        let h = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_ne!(h(&[1, 2, 3]), h(&[1, 2, 4]));
        let mut nine = [0u8; 9];
        nine[8] = 1;
        assert_ne!(h(&nine), h(&[0; 9]));
    }

    #[test]
    fn mix64_spreads_low_bits() {
        // Consecutive integers must land in different high bits, or the
        // cut signatures would collide structurally.
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a >> 48, b >> 48);
        assert_ne!(mix64(0x0000_0001), mix64(0x0001_0000));
    }
}
