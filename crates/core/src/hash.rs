//! A zero-dependency FxHash-style hasher for the synthesis hot paths.
//!
//! The standard library's default `HashMap` hasher is SipHash-1-3 — a
//! keyed, DoS-resistant function that costs tens of cycles per small key.
//! Every majority-node construction performs a structural-hash lookup on
//! a 12-byte key, so the optimizer's inner loops are dominated by hashing
//! overhead, not collision handling. None of these maps are exposed to
//! attacker-chosen keys (they hold node triples, 16-bit truth tables, and
//! Tseitin gate keys), so the DoS resistance buys nothing here.
//!
//! [`FxHasher`] is the multiply-xor hash used by rustc (`rustc-hash`),
//! reimplemented locally because the build environment is offline: each
//! machine word of input is folded in with one rotate, one xor, and one
//! multiplication by a constant derived from the golden ratio. It is not
//! cryptographic and must never be used for untrusted input.
//!
//! # Example
//!
//! ```
//! use rms_core::hash::FxHashMap;
//!
//! let mut m: FxHashMap<[u32; 3], u32> = FxHashMap::default();
//! m.insert([1, 2, 3], 7);
//! assert_eq!(m[&[1, 2, 3]], 7);
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// 64-bit multiplication constant (the golden ratio, as used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc multiply-xor hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// One round of the mixer as a standalone function, for signature-style
/// fingerprints outside a `HashMap` (cut leaf-set signatures and the
/// simulation word seeds).
#[inline]
pub fn mix64(word: u64) -> u64 {
    let h = word.wrapping_mul(SEED);
    h ^ (h >> 32)
}

/// Domain-separation tags of [`netlist_structural_hash`].
const TAG_CONST0: u64 = 0x6f0d_9c2b_0000_0001;
const TAG_INPUT: u64 = 0x6f0d_9c2b_0000_0002;
const TAG_COMPL: u64 = 0x6f0d_9c2b_0000_0003;
const TAG_OUTPUT: u64 = 0x6f0d_9c2b_0000_0004;

/// Content address of a netlist's *structure*: a 64-bit hash that is
/// identical for structurally identical circuits and independent of node
/// numbering, circuit/signal names, and source format.
///
/// This is the cache key primitive of the `rms serve` result cache: two
/// requests whose circuits parse to the same DAG — whether they arrived
/// as BLIF, structural Verilog, or with permuted node ids — address the
/// same cache entry.
///
/// Properties:
///
/// - **Node-id free.** Every node's hash is computed bottom-up from its
///   children's hashes, so topological re-numberings of the same DAG
///   hash identically.
/// - **Name free.** The circuit name, input names, and output names do
///   not enter the hash; inputs are identified by *position* (which is
///   what simulation and verification key on), outputs by position too.
/// - **Commutation aware.** Fanin hashes of commutative gates
///   (AND/OR/XOR/MAJ) are sorted before folding, so argument-swapped
///   spellings of the same gate collide intentionally. MUX fanins are
///   order-sensitive (selector/then/else).
/// - **Not semantic.** This is a structural hash, not an equivalence
///   class: functionally equal but structurally different circuits hash
///   differently (the pipeline's SAT tier exists for semantics).
///
/// Like every use of [`FxHasher`], the result is deterministic across
/// processes and runs, never keyed, and must not be exposed to
/// attacker-controlled collision games.
pub fn netlist_structural_hash(nl: &rms_logic::Netlist) -> u64 {
    use rms_logic::netlist::GateKind;

    let num_inputs = nl.num_inputs();
    let mut node_hash = vec![0u64; nl.num_nodes()];
    node_hash[0] = mix64(TAG_CONST0);
    for (i, slot) in node_hash[1..=num_inputs].iter_mut().enumerate() {
        *slot = mix64(TAG_INPUT ^ mix64(i as u64 + 1));
    }
    let wire_token = |hashes: &[u64], w: rms_logic::netlist::Wire| -> u64 {
        let base = hashes[w.node()];
        if w.is_complemented() {
            mix64(base ^ TAG_COMPL)
        } else {
            base
        }
    };
    for (node, gate) in nl.gates() {
        let mut tokens = [0u64; 3];
        let arity = gate.kind.arity();
        for (slot, &w) in tokens.iter_mut().zip(gate.fanins.iter()) {
            *slot = wire_token(&node_hash, w);
        }
        // Commutative gates: canonical fanin order by token.
        if gate.kind != GateKind::Mux {
            tokens[..arity].sort_unstable();
        }
        let kind_tag = match gate.kind {
            GateKind::And => 0x11,
            GateKind::Or => 0x12,
            GateKind::Xor => 0x13,
            GateKind::Maj => 0x14,
            GateKind::Mux => 0x15,
        };
        let mut h = FxHasher::default();
        h.write_u64(mix64(kind_tag));
        for &t in &tokens[..arity] {
            h.write_u64(t);
        }
        node_hash[node] = h.finish();
    }
    let mut h = FxHasher::default();
    h.write_u64(num_inputs as u64);
    h.write_u64(nl.num_outputs() as u64);
    for (_, w) in nl.outputs() {
        h.write_u64(mix64(TAG_OUTPUT ^ wire_token(&node_hash, *w)));
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&37], 37 * 37);
        let s: FxHashSet<u32> = (0..100).collect();
        assert!(s.contains(&99));
        assert!(!s.contains(&100));
    }

    #[test]
    fn deterministic_across_instances() {
        // Unlike SipHash with `RandomState`, the hash must be stable so
        // parallel sweeps stay bit-identical to sequential ones.
        let h = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(h(b"majority"), h(b"majority"));
        assert_ne!(h(b"majority"), h(b"minority"));
    }

    #[test]
    fn unaligned_tails_differ() {
        let h = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_ne!(h(&[1, 2, 3]), h(&[1, 2, 4]));
        let mut nine = [0u8; 9];
        nine[8] = 1;
        assert_ne!(h(&nine), h(&[0; 9]));
    }

    #[test]
    fn structural_hash_ignores_names_and_fanin_order() {
        use rms_logic::NetlistBuilder;
        let build = |name: &str, swap: bool| {
            let mut b = NetlistBuilder::new(name);
            let x = b.input(if swap { "p" } else { "x" });
            let y = b.input(if swap { "q" } else { "y" });
            let (a, c) = if swap { (y, x) } else { (x, y) };
            let g = b.and(a, c);
            let h = b.xor(g, x);
            b.output("out", h);
            b.build()
        };
        // Same structure, different names: identical hash. Swapping the
        // fanins of a commutative gate keeps the hash, but swapping which
        // *wire* feeds the XOR's second leg would not.
        assert_eq!(
            netlist_structural_hash(&build("a", false)),
            netlist_structural_hash(&build("b", false))
        );
        assert_eq!(
            netlist_structural_hash(&build("a", false)),
            netlist_structural_hash(&build("a", true))
        );
    }

    #[test]
    fn structural_hash_separates_structure() {
        use rms_logic::NetlistBuilder;
        let gate = |xor: bool| {
            let mut b = NetlistBuilder::new("t");
            let x = b.input("x");
            let y = b.input("y");
            let g = if xor { b.xor(x, y) } else { b.or(x, y) };
            b.output("f", g);
            b.build()
        };
        assert_ne!(
            netlist_structural_hash(&gate(true)),
            netlist_structural_hash(&gate(false))
        );
        // Output complementation changes the function and the hash.
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.xor(x, y);
        b.output("f", b.not(g));
        let complemented = b.build();
        assert_ne!(
            netlist_structural_hash(&gate(true)),
            netlist_structural_hash(&complemented)
        );
        // MUX fanins are positional: swapping then/else must differ.
        let mux = |swap: bool| {
            let mut b = NetlistBuilder::new("m");
            let s = b.input("s");
            let t = b.input("t");
            let e = b.input("e");
            let g = if swap { b.mux(s, e, t) } else { b.mux(s, t, e) };
            b.output("f", g);
            b.build()
        };
        assert_ne!(
            netlist_structural_hash(&mux(false)),
            netlist_structural_hash(&mux(true))
        );
    }

    #[test]
    fn structural_hash_ignores_node_numbering() {
        use rms_logic::NetlistBuilder;
        // The same DAG built in two gate orders: node ids permute, the
        // hash must not.
        let build = |flip: bool| {
            let mut b = NetlistBuilder::new("perm");
            let a = b.input("a");
            let bb = b.input("b");
            let c = b.input("c");
            let d = b.input("d");
            let (g1, g2) = if flip {
                let g2 = b.or(c, d);
                let g1 = b.and(a, bb);
                (g1, g2)
            } else {
                let g1 = b.and(a, bb);
                let g2 = b.or(c, d);
                (g1, g2)
            };
            let f = b.xor(g1, g2);
            b.output("f", f);
            b.output("g", g1);
            b.build()
        };
        assert_eq!(
            netlist_structural_hash(&build(false)),
            netlist_structural_hash(&build(true))
        );
    }

    #[test]
    fn structural_hash_crosses_source_formats() {
        // The same two-gate circuit written as BLIF and as structural
        // Verilog parses to the same DAG, so it must share a hash (this
        // is the `rms serve` cache-key contract).
        let blif = rms_logic::blif::parse(
            ".model t\n.inputs a b c\n.outputs f\n.names a b w\n11 1\n.names w c f\n1- 1\n-1 1\n.end\n",
        )
        .unwrap();
        let verilog = rms_logic::verilog::parse(
            "module t(a, b, c, f);\ninput a, b, c;\noutput f;\nwire w;\nassign w = a & b;\nassign f = w | c;\nendmodule\n",
        )
        .unwrap();
        assert_eq!(blif.num_gates(), verilog.num_gates());
        assert_eq!(
            netlist_structural_hash(&blif),
            netlist_structural_hash(&verilog)
        );
    }

    #[test]
    fn mix64_spreads_low_bits() {
        // Consecutive integers must land in different high bits, or the
        // cut signatures would collide structurally.
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a >> 48, b >> 48);
        assert_ne!(mix64(0x0000_0001), mix64(0x0001_0000));
    }
}
