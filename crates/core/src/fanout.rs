//! The in-place (incremental) majority-inverter graph engine.
//!
//! The rewrite passes in [`crate::rewrite`] and the cut rewriter rebuild
//! the whole graph on every pass: every node is re-hashed, every index
//! renumbered, and every derived structure (levels, fanout counts,
//! enumerated cuts) recomputed from scratch — even when a pass changes a
//! handful of nodes. [`IncrementalMig`] keeps one persistent graph and
//! splices rewrites into it:
//!
//! - **fanout lists and reference counts** are maintained per node, so a
//!   rewrite can rewire the parents of a replaced node directly and
//!   garbage-collect its maximum fanout-free cone the moment the last
//!   reference drops,
//! - **levels** are maintained incrementally: a splice recomputes the
//!   levels of the transitive fanout of the touched nodes only,
//! - a **word-parallel simulation signature** (64 random input lanes,
//!   fixed seed) is cached per node and maintained the same way; rewrite
//!   acceptance uses it as a constant-time functional spot-check, and
//! - a **structural-change log** records every node whose structure
//!   changed, which the cut rewriter consumes to invalidate cached cuts
//!   in the transitive fanout of a rewrite — and nowhere else.
//!
//! Replacement semantics: [`IncrementalMig::replace`] declares that the
//! (uncomplemented) function of a node equals another signal, rewires all
//! parents and outputs, and resolves the cascade this causes — parents
//! whose children collapse under Ω.M or become structurally identical to
//! an existing node are merged recursively, exactly as a from-scratch
//! rebuild through the strashing constructor would merge them.
//!
//! The engine shares its node normalization (the crate-private
//! `normalize_maj` used by [`Mig::maj`]) with [`Mig`], so an exported
//! graph ([`IncrementalMig::to_mig`]) satisfies the same invariants as
//! one built directly.
//!
//! # Example
//!
//! ```
//! use rms_core::{IncrementalMig, Mig, MajBuilder};
//!
//! let mut mig = Mig::with_inputs("t", 3);
//! let (a, b, c) = (mig.input(0), mig.input(1), mig.input(2));
//! let inner = mig.maj(a, b, c);
//! let top = mig.maj(a, b, inner);
//! mig.add_output("f", top);
//! let mut inc = IncrementalMig::from_mig(&mig);
//! // M(a, b, M(a, b, c)) = M(a, b, c): splice the inner node in place
//! // of the top one — the output rewires, the dead gate is collected.
//! inc.replace(top.node(), inner);
//! assert_eq!(inc.num_gates(), 1);
//! assert_eq!(inc.to_mig().outputs()[0].1, inner);
//! ```

use crate::mig::{normalize_maj, MajBuilder, Mig, MigNode};
use crate::signal::MigSignal;
use rms_logic::rng::SplitMix64;

use crate::hash::FxHashMap;

/// Seed of the per-input simulation words. Fixed: the signature cache
/// must be deterministic so parallel sweeps stay bit-identical.
const SIG_SEED: u64 = 0x51_6e_a7_02_e5_0f_ee_d5;

/// Simulation word of input `k` (deterministic, seed-fixed).
fn input_word(k: usize) -> u64 {
    SplitMix64::new(SIG_SEED ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

#[inline]
fn maj_word(a: u64, b: u64, c: u64) -> u64 {
    (a & b) | (a & c) | (b & c)
}

/// Outcome of [`IncrementalMig::rechild_to`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rechild {
    /// The mapped children equal the current ones; nothing changed.
    Unchanged,
    /// The node was rewired onto the new children in place.
    Rechilded,
    /// The node degenerated (Ω.M) or merged with an existing node; its
    /// function is the returned signal. The orphan keeps its structure
    /// until the end-of-round repair collects it.
    Superseded(MigSignal),
}

/// A majority-inverter graph with in-place update support.
///
/// Node indices are **stable**: nodes are appended, never renumbered, and
/// a garbage-collected node leaves a dead slot behind. Unlike [`Mig`],
/// index order is therefore *not* topological after a splice — use
/// [`IncrementalMig::topo_order`] to walk the live graph.
#[derive(Debug, Clone)]
pub struct IncrementalMig {
    name: String,
    num_inputs: usize,
    nodes: Vec<MigNode>,
    levels: Vec<u32>,
    /// Reference counts (edges from live gates plus primary outputs).
    refs: Vec<u32>,
    /// Fanout lists: indices of the live gates referencing each node.
    fanouts: Vec<Vec<u32>>,
    /// 64-lane simulation signature of each (uncomplemented) node.
    sigs: Vec<u64>,
    dead: Vec<bool>,
    outputs: Vec<(String, MigSignal)>,
    strash: FxHashMap<[MigSignal; 3], u32>,
    /// Live majority-gate count.
    live_gates: usize,
    /// Structural-change log (re-childed and newly created nodes).
    changed: Vec<u32>,
    /// High-water mark of the node array (peak memory proxy).
    peak_len: usize,
    /// Recycled fanout vectors: allocations of undone tentative nodes,
    /// reused by later [`IncrementalMig::push_node`] calls instead of
    /// being dropped. Keeps the allocator out of the instantiate/undo
    /// hot loop of the rewrite sweep.
    spare_fanouts: Vec<Vec<u32>>,
    /// Worklist-dedup stamps for [`IncrementalMig::update_upward`].
    uw_stamp: Vec<u64>,
    /// Current dedup epoch (one per `update_upward` call).
    uw_epoch: u64,
}

impl IncrementalMig {
    /// Builds the incremental view of a graph.
    ///
    /// The source should be compacted (dead nodes are imported as dead
    /// slots and simply wasted).
    pub fn from_mig(mig: &Mig) -> Self {
        let n = mig.len();
        // Tentative rewrite candidates grow and shrink the node-array
        // tail constantly; pre-reserving headroom keeps the five
        // parallel arrays from reallocating (and re-copying 100k+
        // entries) in the middle of a sweep.
        let cap = n + n / 4 + 64;
        let mut refs = Vec::with_capacity(cap);
        refs.resize(n, 0u32);
        let mut dead = Vec::with_capacity(cap);
        dead.resize(n, false);
        let mut fanouts = Vec::with_capacity(cap);
        fanouts.extend(mig.fanout_lists());
        let mut strash = FxHashMap::default();
        strash.reserve(n);
        let mut inc = IncrementalMig {
            name: mig.name().to_string(),
            num_inputs: mig.num_inputs(),
            nodes: Vec::with_capacity(cap),
            levels: Vec::with_capacity(cap),
            refs,
            fanouts,
            sigs: Vec::with_capacity(cap),
            dead,
            outputs: mig.outputs().to_vec(),
            strash,
            live_gates: 0,
            changed: Vec::new(),
            peak_len: n,
            spare_fanouts: Vec::new(),
            uw_stamp: Vec::new(),
            uw_epoch: 0,
        };
        for idx in 0..n {
            let node = mig.node(idx);
            inc.nodes.push(node);
            inc.levels.push(mig.level(idx));
            let sig = match node {
                MigNode::Const0 => 0,
                MigNode::Input(k) => input_word(k as usize),
                MigNode::Maj(kids) => {
                    inc.live_gates += 1;
                    inc.strash.insert(kids, idx as u32);
                    for k in kids {
                        inc.refs[k.node()] += 1;
                    }
                    maj_word(
                        inc.sig_of(kids[0]),
                        inc.sig_of(kids[1]),
                        inc.sig_of(kids[2]),
                    )
                }
            };
            inc.sigs.push(sig);
        }
        for (_, o) in &inc.outputs {
            inc.refs[o.node()] += 1;
        }
        inc
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of **live** majority gates.
    pub fn num_gates(&self) -> usize {
        self.live_gates
    }

    /// Length of the node array (live and dead slots).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no live gates.
    pub fn is_empty(&self) -> bool {
        self.live_gates == 0
    }

    /// High-water mark of the node array over the graph's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// The signal of primary input `i`.
    pub fn input(&self, i: usize) -> MigSignal {
        assert!(i < self.num_inputs, "input {i} out of range");
        MigSignal::new(1 + i, false)
    }

    /// The node at `idx` (dead slots keep their last value).
    pub fn node(&self, idx: usize) -> MigNode {
        self.nodes[idx]
    }

    /// Whether the slot at `idx` has been garbage-collected.
    pub fn is_dead(&self, idx: usize) -> bool {
        self.dead[idx]
    }

    /// The children of node `idx` if it is a live majority gate.
    pub fn maj_children(&self, idx: usize) -> Option<[MigSignal; 3]> {
        if self.dead[idx] {
            return None;
        }
        match self.nodes[idx] {
            MigNode::Maj(c) => Some(c),
            _ => None,
        }
    }

    /// Views `sig` as a majority gate (complements pushed through), as
    /// [`Mig::children_through`].
    pub fn children_through(&self, sig: MigSignal) -> Option<[MigSignal; 3]> {
        let c = self.maj_children(sig.node())?;
        Some(if sig.is_complemented() {
            [!c[0], !c[1], !c[2]]
        } else {
            c
        })
    }

    /// Level of node `idx` (longest path from the inputs).
    pub fn level(&self, idx: usize) -> u32 {
        self.levels[idx]
    }

    /// Level of the node a signal points to.
    pub fn signal_level(&self, sig: MigSignal) -> u32 {
        self.levels[sig.node()]
    }

    /// Reference count of node `idx` (edges from live gates + outputs).
    pub fn refs(&self, idx: usize) -> u32 {
        self.refs[idx]
    }

    /// The live gates referencing node `idx`.
    pub fn fanouts(&self, idx: usize) -> &[u32] {
        &self.fanouts[idx]
    }

    /// Depth: maximum level over the outputs.
    pub fn depth(&self) -> u32 {
        self.outputs
            .iter()
            .map(|(_, s)| self.levels[s.node()])
            .max()
            .unwrap_or(0)
    }

    /// Primary outputs as (name, signal) pairs.
    pub fn outputs(&self) -> &[(String, MigSignal)] {
        &self.outputs
    }

    /// The 64-lane simulation word of a signal (complement applied).
    pub fn sig_of(&self, s: MigSignal) -> u64 {
        let raw = self.sigs[s.node()];
        if s.is_complemented() {
            !raw
        } else {
            raw
        }
    }

    /// Drains the structural-change log (indices of nodes created or
    /// re-childed since the last drain). Consumers invalidate whatever
    /// they cache about these nodes and their transitive fanout.
    pub fn take_changed(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.changed)
    }

    /// Number of pending entries in the structural-change log.
    pub fn changed_len(&self) -> usize {
        self.changed.len()
    }

    fn push_node(&mut self, kids: [MigSignal; 3]) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(MigNode::Maj(kids));
        let lvl = 1 + kids
            .iter()
            .map(|s| self.levels[s.node()])
            .max()
            .expect("three children");
        self.levels.push(lvl);
        self.sigs.push(maj_word(
            self.sig_of(kids[0]),
            self.sig_of(kids[1]),
            self.sig_of(kids[2]),
        ));
        self.refs.push(0);
        self.fanouts
            .push(self.spare_fanouts.pop().unwrap_or_default());
        self.dead.push(false);
        for k in kids {
            self.refs[k.node()] += 1;
            self.fanouts[k.node()].push(idx as u32);
        }
        self.strash.insert(kids, idx as u32);
        self.live_gates += 1;
        self.changed.push(idx as u32);
        self.peak_len = self.peak_len.max(self.nodes.len());
        idx
    }

    /// Releases one reference to `node`; garbage-collects the cone that
    /// becomes dead.
    fn release(&mut self, node: usize) {
        let mut stack = vec![node];
        while let Some(i) = stack.pop() {
            debug_assert!(self.refs[i] > 0, "over-release of node {i}");
            self.refs[i] -= 1;
            if self.refs[i] > 0 || self.dead[i] {
                continue;
            }
            let MigNode::Maj(kids) = self.nodes[i] else {
                continue; // constants and inputs are never collected
            };
            self.dead[i] = true;
            self.live_gates -= 1;
            if self.strash.get(&kids) == Some(&(i as u32)) {
                self.strash.remove(&kids);
            }
            self.fanouts[i].clear();
            for k in kids {
                self.fanouts[k.node()].retain(|&p| p as usize != i);
                stack.push(k.node());
            }
        }
    }

    /// Recomputes levels and simulation signatures upward from `start`
    /// until they stabilize (touches the transitive fanout only).
    ///
    /// The worklist is deduplicated with an epoch-stamped marker: a node
    /// is enqueued at most once between visits, so a reconvergent fanout
    /// region costs one visit per stabilization wave instead of one per
    /// path — on deep graphs the difference between linear and
    /// quadratic repair.
    fn update_upward(&mut self, start: usize) {
        self.uw_epoch += 1;
        let epoch = self.uw_epoch;
        if self.uw_stamp.len() < self.nodes.len() {
            self.uw_stamp.resize(self.nodes.len(), 0);
        }
        let mut work = vec![start];
        while let Some(i) = work.pop() {
            self.uw_stamp[i] = 0;
            if self.dead[i] {
                continue;
            }
            let MigNode::Maj(kids) = self.nodes[i] else {
                continue;
            };
            let lvl = 1 + kids
                .iter()
                .map(|s| self.levels[s.node()])
                .max()
                .expect("three children");
            let sig = maj_word(
                self.sig_of(kids[0]),
                self.sig_of(kids[1]),
                self.sig_of(kids[2]),
            );
            if lvl != self.levels[i] || sig != self.sigs[i] {
                self.levels[i] = lvl;
                self.sigs[i] = sig;
                for &p in &self.fanouts[i] {
                    let p = p as usize;
                    if self.uw_stamp[p] != epoch {
                        self.uw_stamp[p] = epoch;
                        work.push(p);
                    }
                }
            }
        }
    }

    /// Declares that the (uncomplemented) function of node `old` equals
    /// `new`, rewires every parent and output, and garbage-collects the
    /// cone that dies. Cascading Ω.M collapses and structural merges in
    /// the fanout are resolved recursively.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the simulation signatures of `old`
    /// and `new` disagree — the caller is responsible for functional
    /// equivalence.
    pub fn replace(&mut self, old: usize, new: MigSignal) {
        debug_assert!(!self.dead[old], "replacing a dead node");
        debug_assert_eq!(
            self.sigs[old],
            self.sig_of(new),
            "replace() with functionally different signal (signature mismatch)"
        );
        self.replace_inner(old, new);
    }

    fn replace_inner(&mut self, old: usize, new: MigSignal) {
        if self.dead[old] || new.node() == old {
            return;
        }
        // Pin both sides: `old` must survive its own parent loop even if
        // a cascade collapses a parent *onto* it, and `new` must survive
        // cascades that temporarily drop its other references.
        self.refs[old] += 1;
        self.refs[new.node()] += 1;
        // Remove `old` from the strash so no lookup can resurrect it.
        if let MigNode::Maj(kids) = self.nodes[old] {
            if self.strash.get(&kids) == Some(&(old as u32)) {
                self.strash.remove(&kids);
            }
        }
        // Rewire outputs.
        for i in 0..self.outputs.len() {
            let s = self.outputs[i].1;
            if s.node() == old {
                let t = new.complement_if(s.is_complemented());
                self.outputs[i].1 = t;
                self.refs[t.node()] += 1;
                self.release(old);
            }
        }
        // Rewire parents. A cascade can add parents back (a grandparent
        // collapsing onto `old`), so loop until the list stays empty.
        loop {
            let parents = std::mem::take(&mut self.fanouts[old]);
            if parents.is_empty() {
                break;
            }
            for &p in &parents {
                let p = p as usize;
                if self.dead[p] {
                    continue;
                }
                let MigNode::Maj(kids) = self.nodes[p] else {
                    continue;
                };
                if !kids.iter().any(|k| k.node() == old) {
                    continue; // stale entry from an earlier rewire
                }
                if self.strash.get(&kids) == Some(&(p as u32)) {
                    self.strash.remove(&kids);
                }
                let (a, b, c) = (
                    Self::subst(kids[0], old, new),
                    Self::subst(kids[1], old, new),
                    Self::subst(kids[2], old, new),
                );
                // The edge swap itself: p now references `new`, not `old`.
                self.refs[new.node()] += 1;
                self.fanouts[new.node()].push(p as u32);
                match normalize_maj(a, b, c) {
                    Err(collapsed) => {
                        // p degenerates to an existing signal: record the
                        // (denormalized) children for p's own GC, then
                        // replace p recursively.
                        let mut nk = [a, b, c];
                        nk.sort();
                        self.nodes[p] = MigNode::Maj(nk);
                        self.release(old);
                        self.replace_inner(p, collapsed);
                    }
                    Ok(nk) => match self.strash.get(&nk) {
                        Some(&q) => {
                            let q = q as usize;
                            debug_assert_ne!(q, p, "node matched its removed key");
                            self.nodes[p] = MigNode::Maj(nk);
                            self.release(old);
                            self.replace_inner(p, MigSignal::new(q, false));
                        }
                        None => {
                            self.strash.insert(nk, p as u32);
                            self.nodes[p] = MigNode::Maj(nk);
                            self.release(old);
                            self.changed.push(p as u32);
                            self.update_upward(p);
                        }
                    },
                }
            }
        }
        // Drop the pins (collects `old` when nothing references it).
        self.release(new.node());
        self.release(old);
    }

    #[inline]
    fn subst(k: MigSignal, old: usize, new: MigSignal) -> MigSignal {
        if k.node() == old {
            new.complement_if(k.is_complemented())
        } else {
            k
        }
    }

    /// Enters the mapped-round protocol: clears the structural hash so
    /// the sweep rebuilds it **image by image** — at any point during
    /// the round the strash then contains exactly the images of the
    /// already-processed nodes plus instantiated candidate structures,
    /// the same sharing surface a from-scratch rebuild into a fresh
    /// graph would offer. Unprocessed (round-start) structures are
    /// deliberately not shareable: sharing with a cone that is about to
    /// be remapped would undercount the cost of a candidate.
    ///
    /// [`IncrementalMig::finish_mapped_round`] restores the steady-state
    /// invariant (every live gate hashed).
    pub fn begin_mapped_round(&mut self) {
        self.strash.clear();
    }

    /// Builds the image of node `idx` over the mapped children `conv`,
    /// in place — the mapped-round analogue of rebuilding the node into
    /// a fresh graph. Must run inside
    /// [`IncrementalMig::begin_mapped_round`] /
    /// [`IncrementalMig::finish_mapped_round`], in topological order.
    ///
    /// Reference counts and fanout lists are deliberately left stale
    /// (the round's MFFC estimates are precomputed on the pristine
    /// graph, and the finish pass repairs everything); the node's strash
    /// entry, **level**, and simulation signature are kept current
    /// because the rest of the sweep depends on them — the level of an
    /// image node equals its level in the rebuilt graph, which the
    /// level-steered passes ([`reshape_inplace`]) compare during the
    /// sweep. Returns [`Rechild::Superseded`] when the node degenerates
    /// under Ω.M or merges with an already-processed image; the orphan
    /// keeps its slot until the end-of-round repair collects it.
    pub fn rechild_to(&mut self, idx: usize, conv: [MigSignal; 3]) -> Rechild {
        let MigNode::Maj(kids) = self.nodes[idx] else {
            panic!("rechild_to on a non-gate node");
        };
        match normalize_maj(conv[0], conv[1], conv[2]) {
            Err(s) => Rechild::Superseded(s),
            Ok(nk) => {
                if let Some(&q) = self.strash.get(&nk) {
                    debug_assert_ne!(q as usize, idx, "node processed twice in one round");
                    return Rechild::Superseded(MigSignal::new(q as usize, false));
                }
                self.strash.insert(nk, idx as u32);
                // Children are images (already processed this round), so
                // their levels are current and this node's image level is
                // exact — even when its own structure did not change.
                self.levels[idx] = 1 + nk
                    .iter()
                    .map(|s| self.levels[s.node()])
                    .max()
                    .expect("three children");
                if nk == kids {
                    return Rechild::Unchanged;
                }
                self.nodes[idx] = MigNode::Maj(nk);
                self.sigs[idx] =
                    maj_word(self.sig_of(nk[0]), self.sig_of(nk[1]), self.sig_of(nk[2]));
                self.changed.push(idx as u32);
                Rechild::Rechilded
            }
        }
    }

    /// Completes a mapped rewrite round (see
    /// [`IncrementalMig::rechild_to`]): rewires the outputs through
    /// `map`, garbage-collects everything unreachable, and rebuilds the
    /// deferred derived structures (reference counts, fanout lists,
    /// levels, simulation signatures) over the live graph.
    ///
    /// `map[i]` is the image signal of round-start node `i`; nodes
    /// created during the round (indices `>= map.len()`) map to
    /// themselves.
    pub fn finish_mapped_round(&mut self, map: &[MigSignal]) {
        for i in 0..self.outputs.len() {
            let s = self.outputs[i].1;
            if s.node() < map.len() {
                self.outputs[i].1 = map[s.node()].complement_if(s.is_complemented());
            }
        }
        // Liveness from the outputs over the current structure.
        let mut alive = vec![false; self.nodes.len()];
        alive[..=self.num_inputs].fill(true);
        let mut stack: Vec<usize> = self.outputs.iter().map(|(_, s)| s.node()).collect();
        while let Some(i) = stack.pop() {
            if alive[i] {
                continue;
            }
            alive[i] = true;
            if let MigNode::Maj(kids) = self.nodes[i] {
                stack.extend(kids.iter().map(|k| k.node()));
            }
        }
        // Kill the unreachable, rebuild refs and fanouts for the rest.
        self.live_gates = 0;
        for (i, &is_alive) in alive.iter().enumerate() {
            self.fanouts[i].clear();
            self.refs[i] = 0;
            if is_alive {
                self.dead[i] = false;
                if matches!(self.nodes[i], MigNode::Maj(_)) {
                    self.live_gates += 1;
                }
            } else if !self.dead[i] {
                self.dead[i] = true;
                if let MigNode::Maj(kids) = self.nodes[i] {
                    if self.strash.get(&kids) == Some(&(i as u32)) {
                        self.strash.remove(&kids);
                    }
                }
            }
        }
        for (i, &is_alive) in alive.iter().enumerate() {
            if !is_alive {
                continue;
            }
            if let MigNode::Maj(kids) = self.nodes[i] {
                for k in kids {
                    self.refs[k.node()] += 1;
                    self.fanouts[k.node()].push(i as u32);
                }
            }
        }
        for (_, o) in &self.outputs {
            self.refs[o.node()] += 1;
        }
        // Levels and signatures, bottom-up over the live graph.
        for &idx in &self.topo_order() {
            let idx = idx as usize;
            if let MigNode::Maj(kids) = self.nodes[idx] {
                self.levels[idx] = 1 + kids.iter().map(|s| self.levels[s.node()]).max().unwrap();
                self.sigs[idx] = maj_word(
                    self.sig_of(kids[0]),
                    self.sig_of(kids[1]),
                    self.sig_of(kids[2]),
                );
            }
        }
    }

    /// Removes the (unreferenced) nodes created after `len_before` —
    /// the undo path for a tentatively instantiated rewrite candidate
    /// that lost its gain comparison.
    ///
    /// # Panics
    ///
    /// Panics if any node to be removed is referenced from a surviving
    /// node (i.e. if [`IncrementalMig::replace`] ran in between).
    pub fn undo_tail(&mut self, len_before: usize) {
        for idx in (len_before..self.nodes.len()).rev() {
            if let MigNode::Maj(kids) = self.nodes[idx] {
                if !self.dead[idx] {
                    if self.strash.get(&kids) == Some(&(idx as u32)) {
                        self.strash.remove(&kids);
                    }
                    self.live_gates -= 1;
                    for k in kids {
                        let c = k.node();
                        self.refs[c] -= 1;
                        if c < len_before {
                            self.fanouts[c].retain(|&p| p as usize != idx);
                        }
                    }
                }
            }
            assert_eq!(self.refs[idx], 0, "undo_tail on a referenced node");
        }
        self.nodes.truncate(len_before);
        self.levels.truncate(len_before);
        self.refs.truncate(len_before);
        for mut v in self.fanouts.drain(len_before..) {
            if v.capacity() > 0 {
                v.clear();
                self.spare_fanouts.push(v);
            }
        }
        self.sigs.truncate(len_before);
        self.dead.truncate(len_before);
        self.changed.retain(|&i| (i as usize) < len_before);
    }

    /// Size of the maximum fanout-free cone of `root` with respect to
    /// `leaves`, against the **live** reference counts: the number of
    /// gates (including `root`) that die if `root` is re-expressed over
    /// the leaves.
    pub fn mffc_size(&mut self, root: usize, leaves: &[u32]) -> u32 {
        let mut count = 1u32;
        self.mffc_deref(root, leaves, &mut count);
        self.mffc_reref(root, leaves);
        count
    }

    fn is_boundary(&self, node: usize, leaves: &[u32]) -> bool {
        leaves.contains(&(node as u32)) || self.maj_children(node).is_none()
    }

    fn mffc_deref(&mut self, node: usize, leaves: &[u32], count: &mut u32) {
        let Some(kids) = self.maj_children(node) else {
            return;
        };
        for k in kids {
            let c = k.node();
            if self.is_boundary(c, leaves) {
                continue;
            }
            self.refs[c] -= 1;
            if self.refs[c] == 0 {
                *count += 1;
                self.mffc_deref(c, leaves, count);
            }
        }
    }

    fn mffc_reref(&mut self, node: usize, leaves: &[u32]) {
        let Some(kids) = self.maj_children(node) else {
            return;
        };
        for k in kids {
            let c = k.node();
            if self.is_boundary(c, leaves) {
                continue;
            }
            if self.refs[c] == 0 {
                self.mffc_reref(c, leaves);
            }
            self.refs[c] += 1;
        }
    }

    /// The live graph in topological order (children before parents),
    /// restricted to nodes reachable from the outputs. Deterministic:
    /// depth-first from the outputs in declaration order.
    pub fn topo_order(&self) -> Vec<u32> {
        let mut order = Vec::with_capacity(self.live_gates);
        let mut state = vec![0u8; self.nodes.len()]; // 0 new, 1 open, 2 done
        let mut stack: Vec<(usize, bool)> = Vec::new();
        for (_, o) in self.outputs.iter().rev() {
            stack.push((o.node(), false));
        }
        while let Some((i, expanded)) = stack.pop() {
            if expanded {
                state[i] = 2;
                order.push(i as u32);
                continue;
            }
            if state[i] != 0 {
                continue;
            }
            state[i] = 1;
            stack.push((i, true));
            if let MigNode::Maj(kids) = self.nodes[i] {
                for k in kids.iter().rev() {
                    if state[k.node()] == 0 {
                        stack.push((k.node(), false));
                    }
                }
            }
        }
        order.retain(|&i| matches!(self.nodes[i as usize], MigNode::Maj(_)));
        order
    }

    /// The fingerprint quantities used by the optimization scripts'
    /// early-exit check: gates, depth, complemented (non-constant) edges,
    /// and levels carrying complemented edges — over the live graph.
    pub fn fingerprint(&self) -> (usize, u32, u64, u64) {
        let depth = self.depth() as usize;
        let mut compl_at = vec![0u64; depth + 2];
        let mut total = 0u64;
        for idx in 0..self.nodes.len() {
            if self.dead[idx] {
                continue;
            }
            if let MigNode::Maj(kids) = self.nodes[idx] {
                if self.refs[idx] == 0 {
                    continue;
                }
                let lvl = (self.levels[idx] as usize).min(depth + 1);
                for k in kids {
                    if k.is_complemented() && !k.is_constant() {
                        compl_at[lvl] += 1;
                        total += 1;
                    }
                }
            }
        }
        for (_, o) in &self.outputs {
            if o.is_complemented() && !o.is_constant() {
                compl_at[depth + 1] += 1;
                total += 1;
            }
        }
        let levels = compl_at.iter().filter(|&&c| c > 0).count() as u64;
        (self.live_gates, self.depth(), total, levels)
    }

    /// Exports the live graph as a plain [`Mig`] (topological order,
    /// structural hashing re-applied). Deterministic.
    pub fn to_mig(&self) -> Mig {
        let mut out = Mig::with_inputs(self.name.clone(), self.num_inputs);
        let mut map: Vec<MigSignal> = vec![MigSignal::FALSE; self.nodes.len()];
        for (k, slot) in map[1..=self.num_inputs].iter_mut().enumerate() {
            *slot = out.input(k);
        }
        for &idx in &self.topo_order() {
            let idx = idx as usize;
            if let MigNode::Maj(kids) = self.nodes[idx] {
                let m = |s: MigSignal| map[s.node()].complement_if(s.is_complemented());
                let (a, b, c) = (m(kids[0]), m(kids[1]), m(kids[2]));
                map[idx] = out.maj(a, b, c);
            }
        }
        for (name, o) in &self.outputs {
            out.add_output(
                name.clone(),
                map[o.node()].complement_if(o.is_complemented()),
            );
        }
        out
    }

    /// Exhaustively validates every maintained structure against a
    /// recomputation — test and debugging support.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn assert_consistent(&self) {
        let mut refs = vec![0u32; self.nodes.len()];
        for idx in 0..self.nodes.len() {
            if self.dead[idx] {
                assert!(self.fanouts[idx].is_empty(), "dead node {idx} has fanouts");
                continue;
            }
            if let MigNode::Maj(kids) = self.nodes[idx] {
                assert_eq!(
                    normalize_maj(kids[0], kids[1], kids[2]),
                    Ok(kids),
                    "node {idx} not normalized"
                );
                assert_eq!(
                    self.strash.get(&kids),
                    Some(&(idx as u32)),
                    "node {idx} missing from strash"
                );
                let lvl = 1 + kids.iter().map(|s| self.levels[s.node()]).max().unwrap();
                assert_eq!(self.levels[idx], lvl, "node {idx} level stale");
                let sig = maj_word(
                    self.sig_of(kids[0]),
                    self.sig_of(kids[1]),
                    self.sig_of(kids[2]),
                );
                assert_eq!(self.sigs[idx], sig, "node {idx} signature stale");
                for k in kids {
                    assert!(!self.dead[k.node()], "node {idx} references dead child");
                    refs[k.node()] += 1;
                    assert!(
                        self.fanouts[k.node()].contains(&(idx as u32)),
                        "fanout list of {} misses parent {idx}",
                        k.node()
                    );
                }
            }
        }
        for (_, o) in &self.outputs {
            assert!(!self.dead[o.node()], "output references dead node");
            refs[o.node()] += 1;
        }
        for idx in 0..self.nodes.len() {
            if !self.dead[idx] {
                assert_eq!(self.refs[idx], refs[idx], "refcount of node {idx} stale");
                let unique: std::collections::BTreeSet<u32> =
                    self.fanouts[idx].iter().copied().collect();
                assert_eq!(
                    unique.len(),
                    self.fanouts[idx].len(),
                    "duplicate fanout entries at {idx}"
                );
                assert_eq!(
                    self.fanouts[idx]
                        .iter()
                        .filter(|&&p| refs[p as usize] != 0
                            || !matches!(self.nodes[p as usize], MigNode::Maj(_)))
                        .count(),
                    self.fanouts[idx].len(),
                    "stale fanout entry at {idx}"
                );
            }
        }
        assert_eq!(
            self.live_gates,
            (0..self.nodes.len())
                .filter(|&i| !self.dead[i] && matches!(self.nodes[i], MigNode::Maj(_)))
                .count(),
            "live gate count stale"
        );
    }
}

impl MajBuilder for IncrementalMig {
    /// Creates (or re-finds) a majority node, maintaining every derived
    /// structure. Identical normalization to [`Mig::maj`].
    fn maj(&mut self, a: MigSignal, b: MigSignal, c: MigSignal) -> MigSignal {
        let n = self.nodes.len();
        assert!(
            a.node() < n && b.node() < n && c.node() < n,
            "child signal out of range"
        );
        debug_assert!(
            !self.dead[a.node()] && !self.dead[b.node()] && !self.dead[c.node()],
            "child signal references a dead node"
        );
        let kids = match normalize_maj(a, b, c) {
            Ok(kids) => kids,
            Err(sig) => return sig,
        };
        if let Some(&idx) = self.strash.get(&kids) {
            return MigSignal::new(idx as usize, false);
        }
        MigSignal::new(self.push_node(kids), false)
    }
}

/// Whether `cand` is (structurally) the node's own default image — the
/// signal [`IncrementalMig::rechild_to`] over `conv` would produce. A
/// pattern whose candidate rebuilds the default image is a no-op and
/// must not count as progress (pass loops use the fire count as their
/// fixpoint signal).
fn rebuilds_default(g: &IncrementalMig, conv: [MigSignal; 3], cand: MigSignal) -> bool {
    match normalize_maj(conv[0], conv[1], conv[2]) {
        Ok(nk) => !cand.is_complemented() && g.maj_children(cand.node()) == Some(nk),
        Err(s) => cand == s,
    }
}

/// The in-place *eliminate* pass (`Ω.M; Ω.D R→L`): merges sibling
/// majority nodes that share two children when both are single-fanout.
/// Decision-identical to the rebuilding [`crate::rewrite::eliminate`]
/// (fanout counts are taken on the pass-start graph, patterns are
/// matched on image structures), but runs the mapped-round protocol on
/// the persistent graph: one topological sweep of
/// [`IncrementalMig::rechild_to`] plus a single linear repair in
/// [`IncrementalMig::finish_mapped_round`] — no per-rewrite fanout
/// walks, which on deep graphs turn the spliced form of this pass
/// quadratic. Returns the number of merges fired.
pub fn eliminate_inplace(g: &mut IncrementalMig) -> usize {
    let order = g.topo_order();
    // Pass-start reference counts (gate edges + outputs), the analogue
    // of the rebuild pass's `fanout_counts` snapshot of its source.
    let old_refs = g.refs.clone();
    g.begin_mapped_round();
    let mut map: Vec<MigSignal> = (0..g.len()).map(|i| MigSignal::new(i, false)).collect();
    let mut fired = 0usize;
    for &idx in &order {
        let idx = idx as usize;
        let MigNode::Maj(kids) = g.nodes[idx] else {
            continue;
        };
        let conv = kids.map(|k| map[k.node()].complement_if(k.is_complemented()));
        let mut image = None;
        for (i, j) in [(0usize, 1usize), (0, 2), (1, 2)] {
            let (a, b) = (conv[i], conv[j]);
            if old_refs[kids[i].node()] != 1 || old_refs[kids[j].node()] != 1 {
                continue;
            }
            let (Some(ca), Some(cb)) = (g.children_through(a), g.children_through(b)) else {
                continue;
            };
            // Shared pair (x, y); leftovers u (from a), v (from b).
            if let Some((x, y, u, v)) = crate::rewrite::shared_pair(ca, cb) {
                let k = 3 - i - j;
                let z = conv[k];
                let len_before = g.len();
                let inner = g.maj(u, v, z);
                let top = g.maj(x, y, inner);
                if rebuilds_default(g, conv, top) {
                    g.undo_tail(len_before); // rebuilt itself: no-op
                } else {
                    fired += 1;
                    image = Some(top);
                }
                break;
            }
        }
        // The default image: the node over its mapped children. A fired
        // pattern supersedes the node without entering it into the
        // strash — exactly as the rebuild pass never constructs the
        // default structure of a node its hook rewrote.
        map[idx] = match image {
            Some(s) => s,
            None => match g.rechild_to(idx, conv) {
                Rechild::Superseded(s) => s,
                _ => MigSignal::new(idx, false),
            },
        };
    }
    g.finish_mapped_round(&map);
    fired
}

/// The in-place *reshape* pass (`Ω.A; Ψ.C`): moves variables between
/// adjacent levels. `deeper` selects the push direction, as
/// [`crate::rewrite::reshape`], whose decision procedure this pass
/// mirrors on the mapped-round protocol (see [`eliminate_inplace`] for
/// the protocol rationale); level comparisons read image levels, which
/// [`IncrementalMig::rechild_to`] keeps current during the sweep.
/// Returns the number of rewrites fired.
pub fn reshape_inplace(g: &mut IncrementalMig, deeper: bool) -> usize {
    let order = g.topo_order();
    let old_refs = g.refs.clone();
    g.begin_mapped_round();
    let mut map: Vec<MigSignal> = (0..g.len()).map(|i| MigSignal::new(i, false)).collect();
    let mut fired = 0usize;
    for &idx in &order {
        let idx = idx as usize;
        let MigNode::Maj(kids) = g.nodes[idx] else {
            continue;
        };
        let conv = kids.map(|k| map[k.node()].complement_if(k.is_complemented()));
        let mut image = None;
        // Once a pattern matched, the node is decided (the rebuild hook
        // returns there) — later families are not tried even when the
        // candidate turned out to rebuild the default image.
        let mut decided = false;
        // Ω.A: M(x, u, M(y, u, z)) = M(z, u, M(y, u, x)).
        'assoc: for g_pos in 0..3 {
            let gg = conv[g_pos];
            if old_refs[kids[g_pos].node()] != 1 {
                continue;
            }
            let Some(inner) = g.children_through(gg) else {
                continue;
            };
            let others = [conv[(g_pos + 1) % 3], conv[(g_pos + 2) % 3]];
            for (u, x) in [(others[0], others[1]), (others[1], others[0])] {
                let Some([y, z]) = crate::rewrite::remove_child(inner, u) else {
                    continue;
                };
                let (lx, lz) = (g.signal_level(x), g.signal_level(z));
                let should = if deeper { lx > lz } else { lx < lz };
                if should {
                    decided = true;
                    let len_before = g.len();
                    let new_inner = g.maj(y, u, x);
                    let cand = g.maj(z, u, new_inner);
                    if rebuilds_default(g, conv, cand) {
                        g.undo_tail(len_before);
                    } else {
                        fired += 1;
                        image = Some(cand);
                    }
                    break 'assoc;
                }
            }
        }
        // Ψ.C: M(x, u, M(y, ū, z)) = M(x, u, M(y, x, z)).
        if !decided {
            'compl: for g_pos in 0..3 {
                let gg = conv[g_pos];
                if old_refs[kids[g_pos].node()] != 1 {
                    continue;
                }
                let Some(inner) = g.children_through(gg) else {
                    continue;
                };
                let others = [conv[(g_pos + 1) % 3], conv[(g_pos + 2) % 3]];
                for (u, x) in [(others[0], others[1]), (others[1], others[0])] {
                    let Some([r0, r1]) = crate::rewrite::remove_child(inner, !u) else {
                        continue;
                    };
                    let len_before = g.len();
                    let new_inner = g.maj(r0, r1, x);
                    let cand = g.maj(x, u, new_inner);
                    if rebuilds_default(g, conv, cand) {
                        g.undo_tail(len_before);
                    } else {
                        fired += 1;
                        image = Some(cand);
                    }
                    break 'compl;
                }
            }
        }
        map[idx] = match image {
            Some(s) => s,
            None => match g.rechild_to(idx, conv) {
                Rechild::Superseded(s) => s,
                _ => MigSignal::new(idx, false),
            },
        };
    }
    g.finish_mapped_round(&map);
    fired
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite;
    use rms_logic::bench_suite;
    use rms_logic::sim::check_equivalence;

    fn bench_mig(name: &str) -> Mig {
        Mig::from_netlist(&bench_suite::build(name).unwrap()).compact()
    }

    fn assert_equiv(a: &Mig, b: &Mig, what: &str) {
        let res = check_equivalence(&a.to_netlist(), &b.to_netlist());
        assert!(res.holds(), "{what}: {res:?}");
    }

    const SAMPLES: &[&str] = &["rd53_f2", "exam3_d", "con1_f1", "9sym_d", "sao2_f4"];

    #[test]
    fn round_trip_is_identity() {
        for name in SAMPLES {
            let m = bench_mig(name);
            let inc = IncrementalMig::from_mig(&m);
            inc.assert_consistent();
            let back = inc.to_mig();
            assert_eq!(back.num_gates(), m.num_gates(), "{name}");
            assert_eq!(back.depth(), m.depth(), "{name}");
            assert_eq!(back.truth_tables(), m.truth_tables(), "{name}");
        }
    }

    #[test]
    fn signatures_match_word_simulation() {
        let m = bench_mig("rd53_f2");
        let inc = IncrementalMig::from_mig(&m);
        let words: Vec<u64> = (0..m.num_inputs()).map(input_word).collect();
        let outs = m.simulate_words(&words);
        for (o, (_, s)) in outs.iter().zip(inc.outputs()) {
            assert_eq!(*o, inc.sig_of(*s));
        }
    }

    #[test]
    fn replace_rewires_and_collects() {
        // f = M(M(a,b,0), c, d); replace the inner AND by just `a`.
        let mut m = Mig::with_inputs("t", 4);
        let (a, b, c, d) = (m.input(0), m.input(1), m.input(2), m.input(3));
        let and = m.and(a, b);
        let top = m.maj(and, c, d);
        m.add_output("f", top);
        let mut inc = IncrementalMig::from_mig(&m);
        // The replacement is functionally different (a mechanics-only
        // test), so patch the cached signature to satisfy the guard.
        inc.sigs[and.node()] = inc.sigs[a.node()];
        inc.replace(and.node(), MigSignal::new(a.node(), false));
        inc.assert_consistent();
        assert_eq!(inc.num_gates(), 1);
        let back = inc.to_mig();
        let mut want = Mig::with_inputs("w", 4);
        let (wa, wc, wd) = (want.input(0), want.input(2), want.input(3));
        let wt = want.maj(wa, wc, wd);
        want.add_output("f", wt);
        assert_eq!(back.truth_tables(), want.truth_tables());
    }

    #[test]
    fn replace_cascades_strash_merges() {
        // Two structures that become identical after a replacement must
        // merge, and the merge must propagate to their parents.
        let mut m = Mig::with_inputs("t", 4);
        let (a, b, c, d) = (m.input(0), m.input(1), m.input(2), m.input(3));
        let g1 = m.maj(a, b, c);
        let g2 = m.maj(a, d, c);
        let p1 = m.maj(g1, c, d);
        let p2 = m.maj(g2, c, d);
        let top = m.and(p1, p2);
        m.add_output("f", top);
        let mut inc = IncrementalMig::from_mig(&m);
        let gates_before = inc.num_gates();
        assert_eq!(gates_before, 5);
        // Declare g2's function equal to g1 (it is not, in general — but
        // for the structural cascade test we only care about mechanics,
        // so pick an input assignment where it holds: replace d by b).
        // Instead: replace g2 with g1 after making them truly equal is
        // impossible without rebuilding; exercise the cascade by
        // replacing input-d references: not supported. So: replace g2 by
        // g1 only in a release-semantics sense is wrong. Build a true
        // merge instead: replace g2 with M(a, b, c) reconstructed.
        let g1_again = inc.maj(inc.input(0), inc.input(1), inc.input(2));
        assert_eq!(g1_again, MigSignal::new(g1.node(), false));
        // p1 and p2 differ only in g1/g2; replacing g2 by g1 merges p2
        // into p1, and the AND collapses to M(p1, p1, 0) = p1.
        // The functions differ, so go through the test-only raw path.
        let sig_g1 = inc.sigs[g1.node()];
        inc.sigs[g2.node()] = sig_g1; // satisfy the debug signature guard
        inc.replace(g2.node(), MigSignal::new(g1.node(), false));
        inc.assert_consistent();
        // g2 and p2 died; the top AND collapsed onto p1.
        assert_eq!(inc.num_gates(), 2);
        assert_eq!(inc.outputs()[0].1.node(), p1.node());
    }

    #[test]
    fn eliminate_inplace_matches_rebuild_quality() {
        for name in SAMPLES {
            let m = bench_mig(name);
            let rebuilt = rewrite::eliminate(&m);
            let mut inc = IncrementalMig::from_mig(&m);
            eliminate_inplace(&mut inc);
            inc.assert_consistent();
            let spliced = inc.to_mig();
            assert_equiv(&m, &spliced, name);
            assert!(
                spliced.num_gates() <= m.num_gates(),
                "{name}: eliminate_inplace grew the graph"
            );
            // Same rule, same traversal: gate counts match the rebuild
            // pass on every bundled benchmark.
            assert_eq!(
                spliced.num_gates(),
                rebuilt.num_gates(),
                "{name}: in-place eliminate diverged from rebuild"
            );
        }
    }

    #[test]
    fn reshape_inplace_preserves_function() {
        for name in SAMPLES {
            let m = bench_mig(name);
            for deeper in [false, true] {
                let mut inc = IncrementalMig::from_mig(&m);
                reshape_inplace(&mut inc, deeper);
                inc.assert_consistent();
                let spliced = inc.to_mig();
                assert_equiv(&m, &spliced, name);
            }
        }
    }

    #[test]
    fn maj_builder_strash_and_axioms() {
        let m = bench_mig("exam3_d");
        let mut inc = IncrementalMig::from_mig(&m);
        let (a, b) = (inc.input(0), inc.input(1));
        assert_eq!(inc.maj(a, a, b), a);
        assert_eq!(inc.maj(a, !a, b), b);
        let before = inc.len();
        let x = inc.maj(a, b, MigSignal::FALSE);
        let y = inc.maj(b, MigSignal::FALSE, a);
        assert_eq!(x, y);
        assert!(inc.len() <= before + 1);
        inc.undo_tail(before);
        inc.assert_consistent();
    }

    #[test]
    fn topo_order_is_topological() {
        let m = bench_mig("9sym_d");
        let inc = IncrementalMig::from_mig(&m);
        let order = inc.topo_order();
        let mut pos = vec![usize::MAX; inc.len()];
        for (i, &n) in order.iter().enumerate() {
            pos[n as usize] = i;
        }
        for &n in &order {
            let kids = inc.maj_children(n as usize).unwrap();
            for k in kids {
                if inc.maj_children(k.node()).is_some() {
                    assert!(pos[k.node()] < pos[n as usize]);
                }
            }
        }
    }

    #[test]
    fn fingerprint_matches_stats() {
        for name in SAMPLES {
            let m = bench_mig(name);
            let inc = IncrementalMig::from_mig(&m);
            let (gates, depth, compl, levels) = inc.fingerprint();
            let s = crate::cost::MigStats::of(&m);
            assert_eq!(gates, m.num_gates(), "{name}");
            assert_eq!(depth, m.depth(), "{name}");
            assert_eq!(compl, s.complemented_edges, "{name}");
            assert_eq!(levels, s.levels_with_compl, "{name}");
        }
    }
}
