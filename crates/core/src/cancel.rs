//! Cooperative cancellation for long-running optimization work.
//!
//! A [`CancelToken`] is a cheap, clonable handle that drivers poll at
//! *deterministic checkpoint boundaries* — optimization-cycle starts,
//! window boundaries of the partition-parallel round, post-pass rounds,
//! and SAT restart boundaries. Because the poll sites are fixed points of
//! the deterministic schedule (never wall-clock driven), two runs that
//! both complete are bit-identical whether or not a token was attached;
//! cancellation only decides *where* a run stops, not *what* it computes.
//!
//! The token is zero-dependency: an `AtomicBool` for explicit
//! cancellation plus an optional absolute [`Instant`] deadline. Once
//! either trips, [`CancelToken::cancelled`] latches `true` forever (the
//! deadline check writes the flag through, so later polls are a single
//! relaxed atomic load even after the clock call).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancellation handle; see the module docs.
///
/// `Default` yields an inert token that never cancels, so APIs can embed
/// one unconditionally without changing behavior for callers that do not
/// use deadlines.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh token with no deadline; cancels only via [`Self::cancel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that auto-cancels once `timeout` has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Instant::now().checked_add(timeout),
            }),
        }
    }

    /// A token whose deadline already lies in the past (cancelled on the
    /// first poll). Used by fault-injection tests to exercise deadline
    /// paths without sleeping.
    pub fn expired() -> Self {
        let t = CancelToken::new();
        t.cancel();
        t
    }

    /// Flags the token; every clone observes the cancellation.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled (explicitly or by deadline).
    /// Latching: once true, stays true.
    pub fn cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(d) = self.inner.deadline {
            if Instant::now() >= d {
                self.inner.flag.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Whether this token can ever cancel (has a deadline or was already
    /// cancelled). Inert tokens let hot paths skip the poll entirely.
    pub fn is_armed(&self) -> bool {
        self.inner.deadline.is_some() || self.inner.flag.load(Ordering::Relaxed)
    }
}

/// Token identity: two tokens are equal when they share the same inner
/// state (clones of one another). This keeps `PartialEq` derivable for
/// option structs that embed a token.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for CancelToken {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_by_default() {
        let t = CancelToken::new();
        assert!(!t.cancelled());
        assert!(!t.is_armed());
    }

    #[test]
    fn cancel_propagates_to_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.cancelled());
        assert!(c.is_armed());
    }

    #[test]
    fn deadline_in_past_cancels() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(t.is_armed());
        assert!(t.cancelled());
        // Latches.
        assert!(t.cancelled());
    }

    #[test]
    fn clone_equality_is_identity() {
        let t = CancelToken::new();
        assert_eq!(t, t.clone());
        assert_ne!(t, CancelToken::new());
    }
}
