//! Simulation-based equivalence checking.
//!
//! Circuits with at most [`crate::tt::MAX_VARS`] inputs are compared
//! exhaustively through truth tables; larger circuits are compared with
//! deterministic bit-parallel random patterns (which is how the original
//! tools validate rewrites on the big ISCAS/LGsynth benchmarks too).

use crate::netlist::Netlist;
use crate::rng::SplitMix64;
use crate::tt::MAX_VARS;

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// Functions proven equal on every minterm.
    Equivalent,
    /// Functions equal on all sampled patterns (not a proof).
    ProbablyEquivalent {
        /// Number of 64-bit pattern words simulated.
        words: usize,
    },
    /// A differing input pattern was found.
    NotEquivalent {
        /// Index of the first differing output.
        output: usize,
        /// A minterm (for exhaustive checks) or pattern index witnessing
        /// the difference.
        witness: u64,
    },
}

impl EquivResult {
    /// Whether no difference was observed.
    pub fn holds(&self) -> bool {
        !matches!(self, EquivResult::NotEquivalent { .. })
    }
}

/// Default number of 64-bit random pattern words for sampled checks.
pub const DEFAULT_SAMPLE_WORDS: usize = 256;

/// Checks two netlists for functional equivalence.
///
/// Exhaustive for up to [`MAX_VARS`] inputs, otherwise sampled with
/// [`DEFAULT_SAMPLE_WORDS`] deterministic random pattern words.
///
/// # Panics
///
/// Panics if the circuits have different input or output counts.
pub fn check_equivalence(a: &Netlist, b: &Netlist) -> EquivResult {
    check_equivalence_sampled(a, b, DEFAULT_SAMPLE_WORDS)
}

/// Like [`check_equivalence`] with an explicit sample budget.
///
/// # Panics
///
/// Panics if the circuits have different input or output counts.
pub fn check_equivalence_sampled(a: &Netlist, b: &Netlist, words: usize) -> EquivResult {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    let n = a.num_inputs();
    if n <= MAX_VARS && (1u128 << n) <= (64 * words) as u128 {
        let ta = a.truth_tables();
        let tb = b.truth_tables();
        for (o, (x, y)) in ta.iter().zip(&tb).enumerate() {
            if x != y {
                let witness = (0..x.num_bits()).find(|&m| x.bit(m) != y.bit(m)).unwrap();
                return EquivResult::NotEquivalent { output: o, witness };
            }
        }
        return EquivResult::Equivalent;
    }
    let mut rng = SplitMix64::from_name(a.name());
    for w in 0..words {
        let inputs: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let oa = a.simulate_words(&inputs);
        let ob = b.simulate_words(&inputs);
        for (o, (&x, &y)) in oa.iter().zip(&ob).enumerate() {
            if x != y {
                return EquivResult::NotEquivalent {
                    output: o,
                    witness: w as u64,
                };
            }
        }
    }
    EquivResult::ProbablyEquivalent { words }
}

/// Deterministic random input pattern words for external simulators.
///
/// Produces `words` pattern vectors, each with one word per input.
pub fn random_patterns(num_inputs: usize, words: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = SplitMix64::new(seed);
    (0..words)
        .map(|_| (0..num_inputs).map(|_| rng.next_u64()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    fn xor_circuit(name: &str, via_muxes: bool) -> Netlist {
        let mut b = NetlistBuilder::new(name);
        let x = b.input("x");
        let y = b.input("y");
        let o = if via_muxes {
            b.mux(x, b.not(y), y)
        } else {
            b.xor(x, y)
        };
        b.output("o", o);
        b.build()
    }

    #[test]
    fn equivalent_structures() {
        let a = xor_circuit("a", false);
        let b = xor_circuit("a", true);
        assert_eq!(check_equivalence(&a, &b), EquivResult::Equivalent);
    }

    #[test]
    fn detects_difference() {
        let a = xor_circuit("a", false);
        let mut bb = NetlistBuilder::new("b");
        let x = bb.input("x");
        let y = bb.input("y");
        let o = bb.or(x, y);
        bb.output("o", o);
        let b = bb.build();
        match check_equivalence(&a, &b) {
            EquivResult::NotEquivalent { output: 0, witness } => {
                assert_eq!(witness, 0b11); // XOR and OR differ only on 11
            }
            other => panic!("expected difference, got {other:?}"),
        }
    }

    #[test]
    fn sampled_path_used_for_wide_circuits() {
        // 30 inputs forces the sampled path.
        let build = |name: &str| {
            let mut b = NetlistBuilder::new(name);
            let ins: Vec<_> = (0..30).map(|i| b.input(format!("i{i}"))).collect();
            let mut acc = ins[0];
            for &w in &ins[1..] {
                acc = b.xor(acc, w);
            }
            b.output("o", acc);
            b.build()
        };
        let a = build("wide");
        let b = build("wide");
        match check_equivalence(&a, &b) {
            EquivResult::ProbablyEquivalent { words } => assert_eq!(words, DEFAULT_SAMPLE_WORDS),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn random_patterns_deterministic() {
        let a = random_patterns(4, 8, 99);
        let b = random_patterns(4, 8, 99);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert_eq!(a[0].len(), 4);
    }
}
