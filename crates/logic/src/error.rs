//! Error types shared across the parsing and I/O modules.

use std::error::Error;
use std::fmt;

/// Error produced when parsing a circuit description (expression, BLIF, or
/// PLA) fails.
///
/// # Example
///
/// ```
/// use rms_logic::expr::Expr;
///
/// let err = Expr::parse("a &").unwrap_err();
/// assert!(err.to_string().contains("unexpected"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCircuitError {
    /// 1-based line of the offending input (0 when not line-oriented).
    pub line: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseCircuitError {
    /// Creates an error not tied to a particular line.
    pub fn new(message: impl Into<String>) -> Self {
        ParseCircuitError {
            line: 0,
            message: message.into(),
        }
    }

    /// Creates an error for the 1-based `line`.
    pub fn at_line(line: usize, message: impl Into<String>) -> Self {
        ParseCircuitError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseCircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_line() {
        assert_eq!(ParseCircuitError::new("bad token").to_string(), "bad token");
        assert_eq!(
            ParseCircuitError::at_line(7, "bad cover").to_string(),
            "line 7: bad cover"
        );
    }
}
