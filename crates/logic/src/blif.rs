//! Reader and writer for the Berkeley Logic Interchange Format (BLIF).
//!
//! The LGsynth91 and ISCAS89 benchmark suites the paper evaluates on are
//! distributed as BLIF; this module lets users of the library run the exact
//! original circuits when they have the files. Only the combinational
//! subset is supported: `.model`, `.inputs`, `.outputs`, `.names` (SOP
//! covers), and `.end`. Latches and hierarchy are rejected.
//!
//! # Example
//!
//! ```
//! use rms_logic::blif;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "\
//! .model mux
//! .inputs s a b
//! .outputs o
//! .names s a b o
//! 11- 1
//! 0-1 1
//! .end
//! ";
//! let nl = blif::parse(src)?;
//! assert_eq!(nl.num_inputs(), 3);
//! assert!(nl.evaluate(0b011)[0]); // s=1,a=1 -> 1
//! # Ok(())
//! # }
//! ```

use crate::error::ParseCircuitError;
use crate::netlist::{Netlist, NetlistBuilder, Wire};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// One `.names` statement: a sum-of-products cover.
#[derive(Debug, Clone)]
struct Cover {
    inputs: Vec<String>,
    output: String,
    /// Cube rows: (input plane chars, output value)
    cubes: Vec<(Vec<u8>, bool)>,
    line: usize,
}

/// Parses a BLIF document into a [`Netlist`].
///
/// # Errors
///
/// Returns [`ParseCircuitError`] on syntax errors, unsupported constructs
/// (latches, subcircuits), undefined signals, or combinational cycles.
pub fn parse(src: &str) -> Result<Netlist, ParseCircuitError> {
    let mut model = String::from("top");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut covers: Vec<Cover> = Vec::new();

    // Join continuation lines ending in '\'.
    let mut logical_lines: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0usize;
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let without_comment = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let trimmed = without_comment.trim_end();
        if let Some(stripped) = trimmed.strip_suffix('\\') {
            if pending.is_empty() {
                pending_line = line_no;
            }
            pending.push_str(stripped);
            pending.push(' ');
            continue;
        }
        if pending.is_empty() {
            logical_lines.push((line_no, trimmed.to_string()));
        } else {
            pending.push_str(trimmed);
            logical_lines.push((pending_line, std::mem::take(&mut pending)));
        }
    }
    // A trailing '\' on the final line must not silently drop the
    // accumulated logical line.
    if !pending.is_empty() {
        logical_lines.push((pending_line, pending));
    }

    let mut i = 0usize;
    while i < logical_lines.len() {
        let (line_no, line) = &logical_lines[i];
        let line_no = *line_no;
        let tokens: Vec<&str> = line.split_whitespace().collect();
        i += 1;
        if tokens.is_empty() {
            continue;
        }
        match tokens[0] {
            ".model" => {
                if let Some(name) = tokens.get(1) {
                    model = (*name).to_string();
                }
            }
            ".inputs" => inputs.extend(tokens[1..].iter().map(|s| s.to_string())),
            ".outputs" => outputs.extend(tokens[1..].iter().map(|s| s.to_string())),
            ".names" => {
                if tokens.len() < 2 {
                    return Err(ParseCircuitError::at_line(line_no, ".names needs a signal"));
                }
                let output = tokens[tokens.len() - 1].to_string();
                let fanins: Vec<String> = tokens[1..tokens.len() - 1]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                let mut cubes = Vec::new();
                while i < logical_lines.len() {
                    let (cl, cline) = &logical_lines[i];
                    let ctoks: Vec<&str> = cline.split_whitespace().collect();
                    if ctoks.is_empty() {
                        i += 1;
                        continue;
                    }
                    if ctoks[0].starts_with('.') {
                        break;
                    }
                    i += 1;
                    let (plane, value) = if fanins.is_empty() {
                        if ctoks.len() != 1 {
                            return Err(ParseCircuitError::at_line(*cl, "bad constant cover"));
                        }
                        (Vec::new(), ctoks[0])
                    } else {
                        if ctoks.len() != 2 {
                            return Err(ParseCircuitError::at_line(
                                *cl,
                                format!("expected `<cube> <value>`, found {cline:?}"),
                            ));
                        }
                        if ctoks[0].len() != fanins.len() {
                            return Err(ParseCircuitError::at_line(
                                *cl,
                                format!(
                                    "cube width {} does not match fanin count {}",
                                    ctoks[0].len(),
                                    fanins.len()
                                ),
                            ));
                        }
                        (ctoks[0].bytes().collect(), ctoks[1])
                    };
                    let value = match value {
                        "1" => true,
                        "0" => false,
                        other => {
                            return Err(ParseCircuitError::at_line(
                                *cl,
                                format!("output plane must be 0 or 1, found {other:?}"),
                            ))
                        }
                    };
                    for &b in &plane {
                        if b != b'0' && b != b'1' && b != b'-' {
                            return Err(ParseCircuitError::at_line(
                                *cl,
                                format!("invalid cube character {:?}", b as char),
                            ));
                        }
                    }
                    cubes.push((plane, value));
                }
                covers.push(Cover {
                    inputs: fanins,
                    output,
                    cubes,
                    line: line_no,
                });
            }
            ".end" => break,
            ".latch" | ".subckt" | ".gate" | ".mlatch" => {
                return Err(ParseCircuitError::at_line(
                    line_no,
                    format!("unsupported construct {}", tokens[0]),
                ))
            }
            ".exdc" => break, // ignore external don't-care networks
            other if other.starts_with('.') => {
                // Unknown dot-directives (e.g. .default_input_arrival) are ignored.
            }
            other => {
                return Err(ParseCircuitError::at_line(
                    line_no,
                    format!("stray token {other:?} outside a cover"),
                ))
            }
        }
    }

    if inputs.is_empty() {
        return Err(ParseCircuitError::new("no .inputs declared"));
    }
    if outputs.is_empty() {
        return Err(ParseCircuitError::new("no .outputs declared"));
    }

    // Map signal -> cover index, detect duplicates.
    let mut producer: BTreeMap<&str, usize> = BTreeMap::new();
    for (ci, c) in covers.iter().enumerate() {
        if producer.insert(c.output.as_str(), ci).is_some() {
            return Err(ParseCircuitError::at_line(
                c.line,
                format!("signal {:?} defined twice", c.output),
            ));
        }
    }

    let mut b = NetlistBuilder::new(model);
    let mut wires: BTreeMap<String, Wire> = BTreeMap::new();
    for name in &inputs {
        let w = b.input(name.clone());
        wires.insert(name.clone(), w);
    }

    // Topological elaboration with cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; covers.len()];

    fn elaborate(
        ci: usize,
        covers: &[Cover],
        producer: &BTreeMap<&str, usize>,
        marks: &mut Vec<Mark>,
        b: &mut NetlistBuilder,
        wires: &mut BTreeMap<String, Wire>,
    ) -> Result<Wire, ParseCircuitError> {
        if let Some(&w) = wires.get(&covers[ci].output) {
            return Ok(w);
        }
        if marks[ci] == Mark::Grey {
            return Err(ParseCircuitError::at_line(
                covers[ci].line,
                format!("combinational cycle through {:?}", covers[ci].output),
            ));
        }
        marks[ci] = Mark::Grey;
        let mut fanin_wires = Vec::with_capacity(covers[ci].inputs.len());
        for name in covers[ci].inputs.clone() {
            let w = if let Some(&w) = wires.get(&name) {
                w
            } else if let Some(&pi) = producer.get(name.as_str()) {
                elaborate(pi, covers, producer, marks, b, wires)?
            } else {
                return Err(ParseCircuitError::at_line(
                    covers[ci].line,
                    format!("undefined signal {name:?}"),
                ));
            };
            fanin_wires.push(w);
        }
        let w = build_cover(&covers[ci], &fanin_wires, b)?;
        marks[ci] = Mark::Black;
        wires.insert(covers[ci].output.clone(), w);
        Ok(w)
    }

    for name in &outputs {
        if wires.contains_key(name) {
            continue;
        }
        let &ci = producer
            .get(name.as_str())
            .ok_or_else(|| ParseCircuitError::new(format!("output {name:?} has no driver")))?;
        elaborate(ci, &covers, &producer, &mut marks, &mut b, &mut wires)?;
    }

    // Elaborate remaining (dangling) covers too, so round-trips preserve them?
    // No: dead logic is dropped, which matches what synthesis tools do.

    for name in &outputs {
        let w = wires[name];
        b.output(name.clone(), w);
    }
    Ok(b.build())
}

/// Builds the gate network for one SOP cover.
fn build_cover(
    cover: &Cover,
    fanins: &[Wire],
    b: &mut NetlistBuilder,
) -> Result<Wire, ParseCircuitError> {
    if cover.cubes.is_empty() {
        // Empty cover is constant 0 by convention.
        return Ok(b.const0());
    }
    let on_value = cover.cubes[0].1;
    if cover.cubes.iter().any(|(_, v)| *v != on_value) {
        return Err(ParseCircuitError::at_line(
            cover.line,
            "mixed 0/1 output plane in one cover",
        ));
    }
    let mut terms: Vec<Wire> = Vec::new();
    for (plane, _) in &cover.cubes {
        let mut lits: Vec<Wire> = Vec::new();
        for (k, &ch) in plane.iter().enumerate() {
            match ch {
                b'1' => lits.push(fanins[k]),
                b'0' => lits.push(fanins[k].complement()),
                _ => {}
            }
        }
        let term = match lits.len() {
            0 => b.const1(),
            _ => {
                let mut acc = lits[0];
                for &l in &lits[1..] {
                    acc = b.and(acc, l);
                }
                acc
            }
        };
        terms.push(term);
    }
    let mut acc = terms[0];
    for &t in &terms[1..] {
        acc = b.or(acc, t);
    }
    // An all-0 output plane describes the OFF-set.
    Ok(if on_value { acc } else { acc.complement() })
}

/// Serializes a netlist to BLIF.
///
/// Gates are emitted as two/three-input `.names` covers; complement marks
/// become explicit rows.
pub fn write(nl: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", nl.name());
    let _ = writeln!(out, ".inputs {}", nl.input_names().join(" "));
    let names: Vec<String> = nl.outputs().iter().map(|(n, _)| n.clone()).collect();
    let _ = writeln!(out, ".outputs {}", names.join(" "));

    let sig = |w: Wire, nl: &Netlist| -> String {
        let node = w.node();
        if node == 0 {
            // Constant node; referenced via helper signals emitted below.
            if w.is_complemented() {
                "__const1".into()
            } else {
                "__const0".into()
            }
        } else if node <= nl.num_inputs() {
            let name = &nl.input_names()[node - 1];
            if w.is_complemented() {
                format!("__not_{name}")
            } else {
                name.clone()
            }
        } else if w.is_complemented() {
            format!("__not_n{node}")
        } else {
            format!("n{node}")
        }
    };

    // Track which complement helpers and constants we must define.
    let mut need: BTreeSet<String> = BTreeSet::new();
    let used_wire = |w: Wire, need: &mut BTreeSet<String>, nl: &Netlist| {
        let s = sig(w, nl);
        if s.starts_with("__") {
            need.insert(s.clone());
        }
        s
    };

    let mut body = String::new();
    for (idx, gate) in nl.gates() {
        let ins: Vec<String> = gate
            .fanins
            .iter()
            .map(|&w| used_wire(w, &mut need, nl))
            .collect();
        let _ = writeln!(body, ".names {} n{idx}", ins.join(" "));
        use crate::netlist::GateKind::*;
        match gate.kind {
            And => {
                let _ = writeln!(body, "11 1");
            }
            Or => {
                let _ = writeln!(body, "1- 1\n-1 1");
            }
            Xor => {
                let _ = writeln!(body, "10 1\n01 1");
            }
            Maj => {
                let _ = writeln!(body, "11- 1\n1-1 1\n-11 1");
            }
            Mux => {
                let _ = writeln!(body, "11- 1\n0-1 1");
            }
        }
    }
    // Output aliases.
    for (name, w) in nl.outputs() {
        let s = used_wire(*w, &mut need, nl);
        if s != *name {
            let _ = writeln!(body, ".names {s} {name}\n1 1");
        }
    }
    // Helper definitions.
    for h in &need {
        if h == "__const0" {
            let _ = writeln!(out, ".names __const0");
        } else if h == "__const1" {
            let _ = writeln!(out, ".names __const1\n1");
        } else if let Some(base) = h.strip_prefix("__not_") {
            let _ = writeln!(out, ".names {base} {h}\n0 1");
        }
    }
    out.push_str(&body);
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use crate::sim::{check_equivalence, EquivResult};

    #[test]
    fn parse_simple_and() {
        let nl = parse(".model t\n.inputs a b\n.outputs o\n.names a b o\n11 1\n.end\n").unwrap();
        assert_eq!(nl.evaluate(0b11), vec![true]);
        assert_eq!(nl.evaluate(0b01), vec![false]);
    }

    #[test]
    fn parse_offset_cover() {
        // All-zero plane: o is 0 exactly on cube 11 -> NAND.
        let nl = parse(".model t\n.inputs a b\n.outputs o\n.names a b o\n11 0\n.end\n").unwrap();
        assert_eq!(nl.evaluate(0b11), vec![false]);
        assert_eq!(nl.evaluate(0b00), vec![true]);
    }

    #[test]
    fn parse_constants() {
        let nl =
            parse(".model t\n.inputs a\n.outputs z one\n.names z\n.names one\n1\n.end\n").unwrap();
        assert_eq!(nl.evaluate(0), vec![false, true]);
    }

    #[test]
    fn parse_out_of_order_definitions() {
        let src = "\
.model t
.inputs a b
.outputs o
.names mid o
0 1
.names a b mid
11 1
.end
";
        let nl = parse(src).unwrap();
        // o = !(a & b)
        assert_eq!(nl.evaluate(0b11), vec![false]);
        assert_eq!(nl.evaluate(0b10), vec![true]);
    }

    #[test]
    fn detects_cycle() {
        let src = "\
.model t
.inputs a
.outputs o
.names a o x
11 1
.names a x o
11 1
.end
";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn rejects_latch() {
        let err =
            parse(".model t\n.inputs a\n.outputs o\n.latch a o re clk 0\n.end\n").unwrap_err();
        assert!(err.to_string().contains("unsupported"));
    }

    #[test]
    fn undefined_signal() {
        let err =
            parse(".model t\n.inputs a\n.outputs o\n.names a ghost o\n11 1\n.end\n").unwrap_err();
        assert!(err.to_string().contains("undefined"));
    }

    #[test]
    fn round_trip_preserves_function() {
        let mut b = NetlistBuilder::new("rt");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let m = b.maj(x, b.not(y), z);
        let s = b.xor(m, x);
        let mx = b.mux(z, s, b.not(m));
        b.output("f", mx);
        b.output("g", b.not(s));
        let nl = b.build();
        let text = write(&nl);
        let back = parse(&text).unwrap();
        assert_eq!(check_equivalence(&nl, &back), EquivResult::Equivalent);
    }

    #[test]
    fn continuation_lines() {
        let src = ".model t\n.inputs a \\\nb\n.outputs o\n.names a b o\n11 1\n.end\n";
        let nl = parse(src).unwrap();
        assert_eq!(nl.num_inputs(), 2);
    }

    #[test]
    fn continuation_spanning_many_physical_lines() {
        // One `.inputs` directive continued across four physical lines,
        // and a `.names` whose cover row is also continued.
        let src = ".model t\n.inputs a \\\nb \\\nc \\\nd\n.outputs o\n\
                   .names a b \\\nc d \\\no\n1111 1\n.end\n";
        let nl = parse(src).unwrap();
        assert_eq!(nl.num_inputs(), 4);
        assert_eq!(nl.evaluate(0b1111), vec![true]);
        assert_eq!(nl.evaluate(0b0111), vec![false]);
    }

    #[test]
    fn continuation_on_final_line_is_not_dropped() {
        // Regression: a trailing '\' on the last physical line used to
        // leave the accumulated logical line unflushed, silently
        // dropping the directive.
        let src = ".model t\n.inputs a b\n.outputs o\n.names a b o\n11 1\n.end \\";
        let nl = parse(src).unwrap();
        assert_eq!(nl.num_inputs(), 2);
        // Harder case: the dropped line used to be the only cover row.
        let src = ".model t\n.inputs a b\n.outputs o\n.names a b o\n11 \\\n1";
        let nl = parse(src).unwrap();
        assert_eq!(nl.evaluate(0b11), vec![true]);
        assert_eq!(nl.evaluate(0b10), vec![false]);
    }

    #[test]
    fn duplicate_names_driver_is_an_error() {
        let src = ".model t\n.inputs a b\n.outputs o\n\
                   .names a o\n1 1\n.names b o\n1 1\n.end\n";
        let err = parse(src).expect_err("duplicate driver must fail");
        assert!(err.to_string().contains("defined twice"), "{err}");
        assert_eq!(err.line, 6, "error should point at the second driver");
    }
}
