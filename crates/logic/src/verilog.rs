//! Structural Verilog writer **and reader** for netlists.
//!
//! [`write()`] emits a synthesizable module using `assign` statements — the
//! export path for taking a synthesized circuit into a conventional EDA
//! flow for comparison against the in-memory implementation.
//!
//! [`parse`] accepts the matching gate-level subset back as an *input*
//! format: one `module` with `input`/`output`/`wire` declarations
//! (non-ANSI or ANSI header style) and `assign` statements over `&`, `|`,
//! `^`, `~`, the ternary mux `?:`, parentheses, the literals
//! `1'b0`/`1'b1`, and escaped identifiers (`\name `). Assignments may
//! appear in any order; nets are resolved lazily from the outputs, so the
//! writer→reader round trip is exact up to gate decomposition (the writer
//! spells a majority gate as its AND/OR sum, which reads back as three
//! ANDs and two ORs computing the same function).
//!
//! Vectors (`[3:0]`), procedural blocks, and instantiations are outside
//! the subset and rejected with a line-numbered error.

use crate::error::ParseCircuitError;
use crate::netlist::{GateKind, Netlist, NetlistBuilder, Wire};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Renders a netlist as a structural Verilog module.
pub fn write(nl: &Netlist) -> String {
    let mut out = String::new();
    let ident = |name: &str| -> String {
        // Escape anything that is not a plain Verilog identifier.
        if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && name.chars().next().is_some_and(|c| !c.is_ascii_digit())
        {
            name.to_string()
        } else {
            format!("\\{name} ")
        }
    };
    let inputs: Vec<String> = nl.input_names().iter().map(|n| ident(n)).collect();
    let outputs: Vec<String> = nl.outputs().iter().map(|(n, _)| ident(n)).collect();
    let _ = writeln!(
        out,
        "module {}({});",
        ident(nl.name()),
        inputs
            .iter()
            .chain(outputs.iter())
            .cloned()
            .collect::<Vec<_>>()
            .join(", ")
    );
    for i in &inputs {
        let _ = writeln!(out, "  input {i};");
    }
    for o in &outputs {
        let _ = writeln!(out, "  output {o};");
    }
    // Internal wire names: `n{idx}`, suffixed with underscores when a
    // port is literally named like one (escaping cannot disambiguate —
    // `\n3 ` and `n3` are the same Verilog identifier).
    let mut used: std::collections::HashSet<&str> =
        nl.input_names().iter().map(|s| s.as_str()).collect();
    used.extend(nl.outputs().iter().map(|(n, _)| n.as_str()));
    let mut wire_names: HashMap<usize, String> = HashMap::new();
    for (idx, _) in nl.gates() {
        let mut name = format!("n{idx}");
        while used.contains(name.as_str()) {
            name.push('_');
        }
        wire_names.insert(idx, name);
    }
    let sig = |w: Wire| -> String {
        let node = w.node();
        let base = if node == 0 {
            "1'b0".to_string()
        } else if node <= nl.num_inputs() {
            ident(&nl.input_names()[node - 1])
        } else {
            wire_names[&node].clone()
        };
        if w.is_complemented() {
            format!("~{base}")
        } else {
            base
        }
    };
    for (idx, _) in nl.gates() {
        let _ = writeln!(out, "  wire {};", wire_names[&idx]);
    }
    for (idx, gate) in nl.gates() {
        let f: Vec<String> = gate.fanins.iter().map(|&w| sig(w)).collect();
        let rhs = match gate.kind {
            GateKind::And => format!("{} & {}", f[0], f[1]),
            GateKind::Or => format!("{} | {}", f[0], f[1]),
            GateKind::Xor => format!("{} ^ {}", f[0], f[1]),
            GateKind::Maj => format!("({0} & {1}) | ({0} & {2}) | ({1} & {2})", f[0], f[1], f[2]),
            GateKind::Mux => format!("{0} ? {1} : {2}", f[0], f[1], f[2]),
        };
        let _ = writeln!(out, "  assign {} = {rhs};", wire_names[&idx]);
    }
    for (name, w) in nl.outputs() {
        let _ = writeln!(out, "  assign {} = {};", ident(name), sig(*w));
    }
    out.push_str("endmodule\n");
    out
}

/// One lexical token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    /// Identifier or keyword (escaped identifiers arrive unescaped).
    Ident(String),
    /// `1'b0` / `1'b1`.
    Lit(bool),
    /// Single-character symbol: `( ) , ; = ? : ~ & | ^`.
    Sym(char),
}

/// Tokenizes Verilog source, stripping `//` and `/* */` comments.
fn lex(text: &str) -> Result<Vec<(Tok, usize)>, ParseCircuitError> {
    let mut toks = Vec::new();
    let mut chars = text.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                match chars.peek() {
                    Some('/') => {
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                                break;
                            }
                        }
                    }
                    Some('*') => {
                        chars.next();
                        let mut prev = ' ';
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                            }
                            if prev == '*' && c == '/' {
                                break;
                            }
                            prev = c;
                        }
                    }
                    _ => {
                        return Err(ParseCircuitError::at_line(line, "stray '/'"));
                    }
                }
            }
            '\\' => {
                chars.next();
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() {
                        break;
                    }
                    name.push(c);
                    chars.next();
                }
                if name.is_empty() {
                    return Err(ParseCircuitError::at_line(line, "empty escaped identifier"));
                }
                toks.push((Tok::Ident(name), line));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Ident(name), line));
            }
            c if c.is_ascii_digit() => {
                let mut lit = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '\'' {
                        lit.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                match lit.as_str() {
                    "1'b0" | "1'd0" | "1'h0" => toks.push((Tok::Lit(false), line)),
                    "1'b1" | "1'd1" | "1'h1" => toks.push((Tok::Lit(true), line)),
                    other => {
                        return Err(ParseCircuitError::at_line(
                            line,
                            format!("unsupported literal {other:?} (only 1'b0 / 1'b1)"),
                        ));
                    }
                }
            }
            '(' | ')' | ',' | ';' | '=' | '?' | ':' | '~' | '&' | '|' | '^' => {
                toks.push((Tok::Sym(c), line));
                chars.next();
            }
            '[' => {
                return Err(ParseCircuitError::at_line(
                    line,
                    "vector ranges ([msb:lsb]) are not supported",
                ));
            }
            other => {
                return Err(ParseCircuitError::at_line(
                    line,
                    format!("unexpected character {other:?}"),
                ));
            }
        }
    }
    Ok(toks)
}

/// Expression tree of the right-hand side of an `assign`.
#[derive(Debug, Clone)]
enum VExpr {
    Const(bool),
    Ref(String),
    Not(Box<VExpr>),
    And(Box<VExpr>, Box<VExpr>),
    Or(Box<VExpr>, Box<VExpr>),
    Xor(Box<VExpr>, Box<VExpr>),
    Mux(Box<VExpr>, Box<VExpr>, Box<VExpr>),
}

/// Token-stream parser for the structural subset.
struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |(_, l)| *l)
    }

    fn err(&self, msg: impl Into<String>) -> ParseCircuitError {
        ParseCircuitError::at_line(self.line(), msg)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Sym(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<(), ParseCircuitError> {
        if self.eat_sym(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected {c:?}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseCircuitError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(self.err("expected an identifier")),
        }
    }

    fn ternary(&mut self) -> Result<VExpr, ParseCircuitError> {
        let cond = self.or_expr()?;
        if self.eat_sym('?') {
            let t = self.ternary()?;
            self.expect_sym(':')?;
            let e = self.ternary()?;
            Ok(VExpr::Mux(Box::new(cond), Box::new(t), Box::new(e)))
        } else {
            Ok(cond)
        }
    }

    fn or_expr(&mut self) -> Result<VExpr, ParseCircuitError> {
        let mut a = self.xor_expr()?;
        while self.eat_sym('|') {
            let b = self.xor_expr()?;
            a = VExpr::Or(Box::new(a), Box::new(b));
        }
        Ok(a)
    }

    fn xor_expr(&mut self) -> Result<VExpr, ParseCircuitError> {
        let mut a = self.and_expr()?;
        while self.eat_sym('^') {
            let b = self.and_expr()?;
            a = VExpr::Xor(Box::new(a), Box::new(b));
        }
        Ok(a)
    }

    fn and_expr(&mut self) -> Result<VExpr, ParseCircuitError> {
        let mut a = self.unary()?;
        while self.eat_sym('&') {
            let b = self.unary()?;
            a = VExpr::And(Box::new(a), Box::new(b));
        }
        Ok(a)
    }

    fn unary(&mut self) -> Result<VExpr, ParseCircuitError> {
        if self.eat_sym('~') {
            return Ok(VExpr::Not(Box::new(self.unary()?)));
        }
        match self.next() {
            Some(Tok::Sym('(')) => {
                let e = self.ternary()?;
                self.expect_sym(')')?;
                Ok(e)
            }
            Some(Tok::Lit(v)) => Ok(VExpr::Const(v)),
            Some(Tok::Ident(n)) => Ok(VExpr::Ref(n)),
            _ => Err(self.err("expected an operand")),
        }
    }
}

/// Declarations collected from one module body.
#[derive(Default)]
struct Module {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    /// Plain (non-ANSI) header port names, validated against the body.
    ports: Vec<String>,
    assigns: HashMap<String, VExpr>,
}

/// Parses the structural gate-level subset into a [`Netlist`].
///
/// # Errors
///
/// Returns a line-numbered [`ParseCircuitError`] for syntax outside the
/// subset, references to undeclared nets, combinational cycles, multiply
/// driven or undriven nets.
pub fn parse(text: &str) -> Result<Netlist, ParseCircuitError> {
    let mut p = Parser {
        toks: lex(text)?,
        pos: 0,
    };
    let mut m = Module::default();

    match p.next() {
        Some(Tok::Ident(k)) if k == "module" => {}
        _ => return Err(ParseCircuitError::new("expected `module`")),
    }
    m.name = p.expect_ident()?;
    // Header port list; ANSI-style `input`/`output` markers are honoured,
    // plain port names are validated against the body declarations.
    if p.eat_sym('(') {
        let mut dir: Option<bool> = None; // Some(true) = input
        while !p.eat_sym(')') {
            match p.next() {
                Some(Tok::Ident(w)) if w == "input" => dir = Some(true),
                Some(Tok::Ident(w)) if w == "output" => dir = Some(false),
                Some(Tok::Ident(w)) if w == "wire" => {}
                Some(Tok::Ident(name)) => {
                    match dir {
                        Some(true) => m.inputs.push(name),
                        Some(false) => m.outputs.push(name),
                        None => m.ports.push(name), // non-ANSI: declared in the body
                    }
                    if !p.eat_sym(',') && p.peek() != Some(&Tok::Sym(')')) {
                        return Err(p.err("expected ',' or ')' in port list"));
                    }
                }
                _ => return Err(p.err("malformed port list")),
            }
        }
    }
    p.expect_sym(';')?;

    loop {
        match p.next() {
            Some(Tok::Ident(k)) if k == "endmodule" => break,
            Some(Tok::Ident(k)) if k == "input" || k == "output" || k == "wire" => loop {
                let mut name = p.expect_ident()?;
                // `input wire a;` / `output wire f;` — skip the net type.
                if name == "wire" && k != "wire" {
                    name = p.expect_ident()?;
                }
                if k == "input" {
                    m.inputs.push(name);
                } else if k == "output" {
                    m.outputs.push(name);
                }
                if p.eat_sym(';') {
                    break;
                }
                p.expect_sym(',')?;
            },
            Some(Tok::Ident(k)) if k == "assign" => {
                let target = p.expect_ident()?;
                p.expect_sym('=')?;
                let expr = p.ternary()?;
                p.expect_sym(';')?;
                if m.assigns.insert(target.clone(), expr).is_some() {
                    return Err(p.err(format!("net {target:?} is driven twice")));
                }
            }
            Some(other) => {
                return Err(p.err(format!(
                    "unsupported construct {other:?} (structural subset only)"
                )));
            }
            None => return Err(ParseCircuitError::new("missing `endmodule`")),
        }
    }
    if p.peek().is_some() {
        return Err(p.err("unexpected tokens after `endmodule` (one module per file)"));
    }

    lower_module(m)
}

/// Builds the netlist: declares inputs in order, then resolves each
/// output net recursively through the assignments.
fn lower_module(m: Module) -> Result<Netlist, ParseCircuitError> {
    if m.outputs.is_empty() {
        return Err(ParseCircuitError::new(format!(
            "module {:?} declares no outputs",
            m.name
        )));
    }
    // Non-ANSI header ports must be declared in the body.
    for port in &m.ports {
        if !m.inputs.contains(port) && !m.outputs.contains(port) {
            return Err(ParseCircuitError::new(format!(
                "port {port:?} is not declared `input` or `output` in the module body"
            )));
        }
    }
    // An `assign` driving a declared input is a short, not a definition.
    for name in &m.inputs {
        if m.assigns.contains_key(name) {
            return Err(ParseCircuitError::new(format!(
                "net {name:?} is declared `input` but also driven by an assign"
            )));
        }
    }
    for (i, name) in m.outputs.iter().enumerate() {
        if m.outputs[..i].contains(name) {
            return Err(ParseCircuitError::new(format!(
                "output {name:?} declared twice"
            )));
        }
    }
    let mut b = NetlistBuilder::new(m.name);
    let mut env: HashMap<String, Wire> = HashMap::new();
    for name in &m.inputs {
        let w = b.input(name.clone());
        if env.insert(name.clone(), w).is_some() {
            return Err(ParseCircuitError::new(format!(
                "input {name:?} declared twice"
            )));
        }
    }
    let mut resolving: Vec<String> = Vec::new();
    let mut outs: Vec<(String, Wire)> = Vec::new();
    for name in &m.outputs {
        let w = resolve(name, &m.assigns, &mut b, &mut env, &mut resolving)?;
        outs.push((name.clone(), w));
    }
    for (name, w) in outs {
        b.output(name, w);
    }
    Ok(b.build())
}

/// Resolves a net by name, lowering its driving expression on demand.
fn resolve(
    name: &str,
    assigns: &HashMap<String, VExpr>,
    b: &mut NetlistBuilder,
    env: &mut HashMap<String, Wire>,
    resolving: &mut Vec<String>,
) -> Result<Wire, ParseCircuitError> {
    if let Some(&w) = env.get(name) {
        return Ok(w);
    }
    if resolving.iter().any(|n| n == name) {
        return Err(ParseCircuitError::new(format!(
            "combinational cycle through net {name:?}"
        )));
    }
    let Some(expr) = assigns.get(name) else {
        return Err(ParseCircuitError::new(format!(
            "net {name:?} is never driven"
        )));
    };
    resolving.push(name.to_string());
    let w = lower_expr(expr, assigns, b, env, resolving)?;
    resolving.pop();
    env.insert(name.to_string(), w);
    Ok(w)
}

fn lower_expr(
    expr: &VExpr,
    assigns: &HashMap<String, VExpr>,
    b: &mut NetlistBuilder,
    env: &mut HashMap<String, Wire>,
    resolving: &mut Vec<String>,
) -> Result<Wire, ParseCircuitError> {
    Ok(match expr {
        VExpr::Const(false) => b.const0(),
        VExpr::Const(true) => b.const1(),
        VExpr::Ref(n) => resolve(n, assigns, b, env, resolving)?,
        VExpr::Not(a) => {
            let w = lower_expr(a, assigns, b, env, resolving)?;
            b.not(w)
        }
        VExpr::And(x, y) => {
            let (x, y) = (
                lower_expr(x, assigns, b, env, resolving)?,
                lower_expr(y, assigns, b, env, resolving)?,
            );
            b.and(x, y)
        }
        VExpr::Or(x, y) => {
            let (x, y) = (
                lower_expr(x, assigns, b, env, resolving)?,
                lower_expr(y, assigns, b, env, resolving)?,
            );
            b.or(x, y)
        }
        VExpr::Xor(x, y) => {
            let (x, y) = (
                lower_expr(x, assigns, b, env, resolving)?,
                lower_expr(y, assigns, b, env, resolving)?,
            );
            b.xor(x, y)
        }
        VExpr::Mux(s, t, e) => {
            let (s, t, e) = (
                lower_expr(s, assigns, b, env, resolving)?,
                lower_expr(t, assigns, b, env, resolving)?,
                lower_expr(e, assigns, b, env, resolving)?,
            );
            b.mux(s, t, e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    #[test]
    fn emits_all_gate_kinds() {
        let mut b = NetlistBuilder::new("all_kinds");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let a = b.and(x, y);
        let o = b.or(a, z);
        let e = b.xor(o, b.not(x));
        let m = b.maj(a, o, e);
        let mx = b.mux(z, m, a);
        b.output("f", mx);
        let v = write(&b.build());
        assert!(v.starts_with("module all_kinds("));
        assert!(v.contains("assign"));
        assert!(v.contains(" ? "), "mux: {v}");
        assert!(v.contains(" ^ "), "xor: {v}");
        assert!(v.contains(") | ("), "maj: {v}");
        assert!(v.ends_with("endmodule\n"));
    }

    #[test]
    fn complemented_edges_become_bitwise_not() {
        let mut b = NetlistBuilder::new("m");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.and(b.not(x), y);
        b.output("f", b.not(g));
        let v = write(&b.build());
        assert!(v.contains("~x"), "{v}");
        assert!(v.contains("assign f = ~n"), "{v}");
    }

    #[test]
    fn awkward_names_are_escaped() {
        let mut b = NetlistBuilder::new("5xp1");
        let x = b.input("a[0]");
        b.output("f.out", x);
        let v = write(&b.build());
        assert!(v.contains("\\5xp1 "), "{v}");
        assert!(v.contains("\\a[0] "), "{v}");
        assert!(v.contains("\\f.out "), "{v}");
    }

    #[test]
    fn constants_render() {
        let mut b = NetlistBuilder::new("c");
        b.input("x");
        b.output("zero", b.const0());
        b.output("one", b.const1());
        let v = write(&b.build());
        assert!(v.contains("assign zero = 1'b0"), "{v}");
        assert!(v.contains("assign one = ~1'b0"), "{v}");
    }

    #[test]
    fn parse_simple_module() {
        let src = "
            // a full adder bit
            module fa(a, b, cin, s, cout);
              input a; input b, cin;
              output s, cout;
              wire t;
              assign t = a ^ b;
              assign s = t ^ cin;
              assign cout = (a & b) | (t & cin);
            endmodule
        ";
        let nl = parse(src).unwrap();
        assert_eq!(nl.name(), "fa");
        assert_eq!(nl.num_inputs(), 3);
        assert_eq!(nl.num_outputs(), 2);
        for m in 0..8u64 {
            let bits = m.count_ones() as u64;
            let got = nl.evaluate(m);
            assert_eq!(got[0], bits & 1 == 1, "sum, minterm {m}");
            assert_eq!(got[1], bits >= 2, "carry, minterm {m}");
        }
    }

    #[test]
    fn parse_ansi_header_ternary_and_literals() {
        let src = "
            module m(input s, input t, input e, output f, output g);
              assign f = s ? ~t : e;
              assign g = 1'b1 & ~1'b0;
            endmodule
        ";
        let nl = parse(src).unwrap();
        assert_eq!(nl.num_inputs(), 3);
        for m in 0..8u64 {
            let s = m & 1 == 1;
            let t = m & 2 != 0;
            let e = m & 4 != 0;
            let got = nl.evaluate(m);
            assert_eq!(got[0], if s { !t } else { e }, "minterm {m}");
            assert!(got[1]);
        }
    }

    #[test]
    fn parse_out_of_order_assigns_and_precedence() {
        let src = "
            module p(a, b, c, f);
              input a, b, c;
              output f;
              wire u; wire v;
              assign f = u | v;   /* u, v defined below */
              assign v = a & b ^ c;  // == (a & b) ^ c
              assign u = ~a & ~b;
            endmodule
        ";
        let nl = parse(src).unwrap();
        for m in 0..8u64 {
            let (a, b, c) = (m & 1 == 1, m & 2 != 0, m & 4 != 0);
            let want = (!a && !b) | ((a && b) ^ c);
            assert_eq!(nl.evaluate(m)[0], want, "minterm {m}");
        }
    }

    #[test]
    fn round_trip_through_the_writer() {
        use crate::bench_suite;
        use crate::sim::check_equivalence;
        for name in ["rd53_f2", "exam3_d", "newtag_d", "misex1"] {
            let nl = bench_suite::build(name).unwrap();
            let text = write(&nl);
            let back = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back.num_inputs(), nl.num_inputs(), "{name}");
            assert_eq!(back.num_outputs(), nl.num_outputs(), "{name}");
            let res = check_equivalence(&nl, &back);
            assert!(res.holds(), "{name}: {res:?}");
        }
    }

    #[test]
    fn round_trip_escaped_identifiers() {
        use crate::sim::check_equivalence;
        let mut b = NetlistBuilder::new("5xp1");
        let x = b.input("a[0]");
        let y = b.input("in.2");
        let g = b.and(x, b.not(y));
        b.output("f$out", g);
        let nl = b.build();
        let back = parse(&write(&nl)).unwrap();
        assert_eq!(back.input_names(), nl.input_names());
        assert!(check_equivalence(&nl, &back).holds());
    }

    #[test]
    fn round_trip_with_port_named_like_a_wire() {
        use crate::sim::check_equivalence;
        // An input literally named `n3` would collide with the first
        // gate's internal wire name; the writer must rename the wire and
        // the round trip must stay functionally exact.
        let mut b = NetlistBuilder::new("clash");
        let x = b.input("n3");
        let y = b.input("b");
        let g = b.and(x, y);
        b.output("f", g);
        let nl = b.build();
        let text = write(&nl);
        let back = parse(&text).unwrap();
        assert_eq!(
            check_equivalence(&nl, &back),
            crate::sim::EquivResult::Equivalent,
            "{text}"
        );
    }

    #[test]
    fn driving_an_input_is_rejected() {
        let src = "module m(a, f);\n input a;\n output f;\n assign a = 1'b1;\n assign f = a;\nendmodule\n";
        let err = parse(src).unwrap_err().to_string();
        assert!(err.contains("declared `input`"), "{err}");
    }

    #[test]
    fn second_module_is_rejected() {
        let src = "module a(x, f);\n input x;\n output f;\n assign f = x;\nendmodule\nmodule b(y, g);\n input y;\n output g;\n assign g = y;\nendmodule\n";
        let err = parse(src).unwrap_err().to_string();
        assert!(err.contains("one module per file"), "{err}");
    }

    #[test]
    fn undeclared_header_port_is_rejected() {
        let src = "module m(a, f, ghost);\n input a;\n output f;\n assign f = a;\nendmodule\n";
        let err = parse(src).unwrap_err().to_string();
        assert!(err.contains("ghost"), "{err}");
    }

    #[test]
    fn parse_errors_are_line_numbered_and_specific() {
        let cycle =
            "module m(a, f);\n input a;\n output f;\n assign f = g;\n assign g = f;\nendmodule\n";
        let err = parse(cycle).unwrap_err().to_string();
        assert!(err.contains("cycle"), "{err}");

        let undriven = "module m(a, f);\n input a;\n output f;\nendmodule\n";
        let err = parse(undriven).unwrap_err().to_string();
        assert!(err.contains("never driven"), "{err}");

        let double =
            "module m(a, f);\n input a;\n output f;\n assign f = a;\n assign f = ~a;\nendmodule\n";
        let err = parse(double).unwrap_err().to_string();
        assert!(err.contains("driven twice"), "{err}");

        let vector = "module m(a, f);\n input [3:0] a;\n output f;\nendmodule\n";
        let err = parse(vector).unwrap_err().to_string();
        assert!(err.contains("vector"), "{err}");
        assert!(err.contains("line 2"), "{err}");

        let wide = "module m(a, f);\n input a;\n output f;\n assign f = 2'b10;\nendmodule\n";
        let err = parse(wide).unwrap_err().to_string();
        assert!(err.contains("literal"), "{err}");
    }
}
