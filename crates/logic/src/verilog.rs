//! Structural Verilog writer for netlists.
//!
//! Emits a synthesizable module using `assign` statements — the export
//! path for taking a synthesized circuit into a conventional EDA flow for
//! comparison against the in-memory implementation.

use crate::netlist::{GateKind, Netlist, Wire};
use std::fmt::Write as _;

/// Renders a netlist as a structural Verilog module.
pub fn write(nl: &Netlist) -> String {
    let mut out = String::new();
    let ident = |name: &str| -> String {
        // Escape anything that is not a plain Verilog identifier.
        if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && name.chars().next().is_some_and(|c| !c.is_ascii_digit())
        {
            name.to_string()
        } else {
            format!("\\{name} ")
        }
    };
    let inputs: Vec<String> = nl.input_names().iter().map(|n| ident(n)).collect();
    let outputs: Vec<String> = nl.outputs().iter().map(|(n, _)| ident(n)).collect();
    let _ = writeln!(
        out,
        "module {}({});",
        ident(nl.name()),
        inputs
            .iter()
            .chain(outputs.iter())
            .cloned()
            .collect::<Vec<_>>()
            .join(", ")
    );
    for i in &inputs {
        let _ = writeln!(out, "  input {i};");
    }
    for o in &outputs {
        let _ = writeln!(out, "  output {o};");
    }
    let sig = |w: Wire| -> String {
        let node = w.node();
        let base = if node == 0 {
            "1'b0".to_string()
        } else if node <= nl.num_inputs() {
            ident(&nl.input_names()[node - 1])
        } else {
            format!("n{node}")
        };
        if w.is_complemented() {
            format!("~{base}")
        } else {
            base
        }
    };
    for (idx, _) in nl.gates() {
        let _ = writeln!(out, "  wire n{idx};");
    }
    for (idx, gate) in nl.gates() {
        let f: Vec<String> = gate.fanins.iter().map(|&w| sig(w)).collect();
        let rhs = match gate.kind {
            GateKind::And => format!("{} & {}", f[0], f[1]),
            GateKind::Or => format!("{} | {}", f[0], f[1]),
            GateKind::Xor => format!("{} ^ {}", f[0], f[1]),
            GateKind::Maj => format!("({0} & {1}) | ({0} & {2}) | ({1} & {2})", f[0], f[1], f[2]),
            GateKind::Mux => format!("{0} ? {1} : {2}", f[0], f[1], f[2]),
        };
        let _ = writeln!(out, "  assign n{idx} = {rhs};");
    }
    for (name, w) in nl.outputs() {
        let _ = writeln!(out, "  assign {} = {};", ident(name), sig(*w));
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    #[test]
    fn emits_all_gate_kinds() {
        let mut b = NetlistBuilder::new("all_kinds");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let a = b.and(x, y);
        let o = b.or(a, z);
        let e = b.xor(o, b.not(x));
        let m = b.maj(a, o, e);
        let mx = b.mux(z, m, a);
        b.output("f", mx);
        let v = write(&b.build());
        assert!(v.starts_with("module all_kinds("));
        assert!(v.contains("assign"));
        assert!(v.contains(" ? "), "mux: {v}");
        assert!(v.contains(" ^ "), "xor: {v}");
        assert!(v.contains(") | ("), "maj: {v}");
        assert!(v.ends_with("endmodule\n"));
    }

    #[test]
    fn complemented_edges_become_bitwise_not() {
        let mut b = NetlistBuilder::new("m");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.and(b.not(x), y);
        b.output("f", b.not(g));
        let v = write(&b.build());
        assert!(v.contains("~x"), "{v}");
        assert!(v.contains("assign f = ~n"), "{v}");
    }

    #[test]
    fn awkward_names_are_escaped() {
        let mut b = NetlistBuilder::new("5xp1");
        let x = b.input("a[0]");
        b.output("f.out", x);
        let v = write(&b.build());
        assert!(v.contains("\\5xp1 "), "{v}");
        assert!(v.contains("\\a[0] "), "{v}");
        assert!(v.contains("\\f.out "), "{v}");
    }

    #[test]
    fn constants_render() {
        let mut b = NetlistBuilder::new("c");
        b.input("x");
        b.output("zero", b.const0());
        b.output("one", b.const1());
        let v = write(&b.build());
        assert!(v.contains("assign zero = 1'b0"), "{v}");
        assert!(v.contains("assign one = ~1'b0"), "{v}");
    }
}
