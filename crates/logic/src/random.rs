//! Seeded random netlist generation for differential testing.
//!
//! [`random_netlist`] builds a random combinational DAG over **all** gate
//! kinds the IR supports (AND, OR, XOR, MAJ, MUX) with random complement
//! marks on fanins and outputs — deliberately richer than the two-level
//! SOP shape of [`crate::bench_suite::synthetic`], so it exercises the
//! majority-specific rewrite rules, the mux lowering paths, and the
//! complement canonicalizations of every engine in the workspace.
//!
//! Generation is fully determined by the seed (via [`SplitMix64`]), so a
//! failing seed reproduces everywhere and parallel differential sweeps
//! are bit-identical to sequential ones.
//!
//! # Example
//!
//! ```
//! use rms_logic::random::random_netlist;
//!
//! let a = random_netlist("r", 7, 6, 2, 25);
//! let b = random_netlist("r", 7, 6, 2, 25);
//! assert_eq!(a.truth_tables(), b.truth_tables()); // same seed, same circuit
//! assert_eq!(a.num_inputs(), 6);
//! assert_eq!(a.num_outputs(), 2);
//! ```

use crate::netlist::{Netlist, NetlistBuilder, Wire};
use crate::rng::SplitMix64;

/// Builds a seeded random gate-level netlist.
///
/// `gates` random gates are layered over `inputs` primary inputs; fanins
/// are drawn from all earlier nodes with a bias towards recent ones (so
/// the DAG grows deep as well as wide) and complemented with probability
/// 1/4. Outputs tap random gates, again with random complements. Every
/// output is driven by a gate (never a bare input), so optimizers always
/// have something to chew on.
///
/// # Panics
///
/// Panics if `inputs < 2`, `outputs < 1`, or `gates < 1`.
pub fn random_netlist(
    name: &str,
    seed: u64,
    inputs: usize,
    outputs: usize,
    gates: usize,
) -> Netlist {
    assert!(inputs >= 2, "random circuits need at least 2 inputs");
    assert!(outputs >= 1, "random circuits need at least 1 output");
    assert!(gates >= 1, "random circuits need at least 1 gate");
    let mut rng = SplitMix64::new(seed ^ SplitMix64::from_name(name).next_u64());
    let mut b = NetlistBuilder::new(name);
    let mut wires: Vec<Wire> = (0..inputs).map(|i| b.input(format!("x{i}"))).collect();

    let pick = |rng: &mut SplitMix64, wires: &[Wire]| -> Wire {
        // Bias towards recent wires: half the draws come from the last
        // `inputs` wires, producing deep, reconvergent structure.
        let w = if rng.next_bool() && wires.len() > inputs {
            let lo = wires.len() - inputs;
            wires[lo + rng.next_index(inputs)]
        } else {
            wires[rng.next_index(wires.len())]
        };
        if rng.chance(1, 4) {
            w.complement()
        } else {
            w
        }
    };

    let mut gate_wires: Vec<Wire> = Vec::with_capacity(gates);
    for _ in 0..gates {
        let a = pick(&mut rng, &wires);
        let c = pick(&mut rng, &wires);
        let w = match rng.next_index(6) {
            0 => b.and(a, c),
            1 => b.or(a, c),
            2 => b.xor(a, c),
            3 | 4 => {
                // MAJ gets double weight: it is the representation the
                // paper's engines are about.
                let d = pick(&mut rng, &wires);
                b.maj(a, c, d)
            }
            _ => {
                let d = pick(&mut rng, &wires);
                b.mux(a, c, d)
            }
        };
        wires.push(w);
        gate_wires.push(w);
    }
    for o in 0..outputs {
        let w = gate_wires[rng.next_index(gate_wires.len())];
        let w = if rng.chance(1, 4) { w.complement() } else { w };
        b.output(format!("f{o}"), w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = random_netlist("t", 1, 5, 2, 20);
        let b = random_netlist("t", 1, 5, 2, 20);
        assert_eq!(a, b);
        let c = random_netlist("t", 2, 5, 2, 20);
        assert_ne!(a.truth_tables(), c.truth_tables(), "seeds should differ");
    }

    #[test]
    fn respects_requested_shape() {
        let nl = random_netlist("shape", 9, 7, 3, 33);
        assert_eq!(nl.num_inputs(), 7);
        assert_eq!(nl.num_outputs(), 3);
        assert_eq!(nl.num_gates(), 33);
    }

    #[test]
    fn covers_all_gate_kinds_across_seeds() {
        use crate::netlist::GateKind;
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..10 {
            let nl = random_netlist("kinds", seed, 6, 1, 30);
            for (_, g) in nl.gates() {
                seen.insert(match g.kind {
                    GateKind::And => 0,
                    GateKind::Or => 1,
                    GateKind::Xor => 2,
                    GateKind::Maj => 3,
                    GateKind::Mux => 4,
                });
            }
        }
        assert_eq!(seen.len(), 5, "all five gate kinds should appear");
    }

    #[test]
    fn outputs_are_gate_driven() {
        for seed in 0..5 {
            let nl = random_netlist("od", seed, 4, 3, 12);
            for (_, w) in nl.outputs() {
                assert!(nl.gate(w.node()).is_some(), "output taps a gate");
            }
        }
    }
}
