//! Boolean-function substrate for the RRAM/MIG synthesis reproduction.
//!
//! This crate provides everything the synthesis engines need to talk about
//! Boolean functions independently of any particular graph representation:
//!
//! - [`tt::TruthTable`]: bit-parallel truth tables (the ground truth for
//!   every equivalence check in the workspace),
//! - [`expr`]: a small Boolean expression language and parser,
//! - [`netlist`]: a multi-output gate-level intermediate representation,
//! - [`blif`] and [`pla`]: readers/writers for the interchange formats the
//!   original benchmark suites (ISCAS89 / LGsynth91) are distributed in,
//! - [`aiger`]: the AIGER and-inverter-graph interchange format (binary
//!   and ASCII) used by the large benchmark suites,
//! - [`verilog`]: a structural gate-level Verilog writer and reader,
//! - [`sim`]: bit-parallel simulation and equivalence checking,
//! - [`random`]: seeded random netlist generation for differential
//!   testing,
//! - [`bench_suite`]: the embedded benchmark circuits used by the
//!   evaluation harness,
//! - [`large_suite`]: generated EPFL-style arithmetic/control circuits
//!   in the 4k–70k-gate range for scale testing, and
//! - [`paper_data`]: the numbers reported in the paper's Tables II and III
//!   so experiments can print paper-vs-measured comparisons.
//!
//! # Example
//!
//! ```
//! use rms_logic::expr::Expr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let e = Expr::parse("maj(a, b, c) ^ !a")?;
//! let tt = e.to_truth_table()?;
//! assert_eq!(tt.num_vars(), 3);
//! # Ok(())
//! # }
//! ```

//!
//! This crate is the bottom layer of the workspace — every other crate
//! builds on its [`Netlist`] IR and [`TruthTable`] ground truth; see
//! `ARCHITECTURE.md` at the repository root for how the layers compose
//! into the synthesis pipeline.

pub mod aiger;
pub mod bench_suite;
pub mod blif;
pub mod error;
pub mod expr;
pub mod large_suite;
pub mod netlist;
pub mod paper_data;
pub mod pla;
pub mod random;
pub mod rng;
pub mod sim;
pub mod synth;
pub mod tt;
pub mod verilog;

pub use error::ParseCircuitError;
pub use netlist::{Gate, GateKind, Netlist, NetlistBuilder, Wire};
pub use tt::TruthTable;
