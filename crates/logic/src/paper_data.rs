//! The numbers reported in the paper's evaluation (Tables II and III).
//!
//! The reproduction harness prints paper-reported values next to measured
//! ones so the *shape* of every comparison (who wins, by roughly what
//! factor) can be verified even though our substrate circuits are not the
//! authors' exact benchmark files. All values are transcribed from
//! Shirinzadeh et al., DATE 2016, Tables II and III.

/// (RRAM count, step count) pair as reported by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rs {
    /// Number of RRAM devices (`R` in Table I).
    pub rrams: u64,
    /// Number of computational steps (`S` in Table I).
    pub steps: u64,
}

/// One row of Table II: six optimizer/realization configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Row {
    /// Benchmark name (ISCAS89 / LGsynth91).
    pub name: &'static str,
    /// Number of primary inputs.
    pub inputs: u32,
    /// Conventional area optimization, IMP realization (Alg. 1).
    pub area_imp: Rs,
    /// Conventional depth optimization, IMP realization (Alg. 2).
    pub depth_imp: Rs,
    /// Multi-objective RRAM-cost optimization, IMP realization (Alg. 3).
    pub rram_imp: Rs,
    /// Multi-objective RRAM-cost optimization, MAJ realization (Alg. 3).
    pub rram_maj: Rs,
    /// Step optimization, IMP realization (Alg. 4).
    pub step_imp: Rs,
    /// Step optimization, MAJ realization (Alg. 4).
    pub step_maj: Rs,
}

const fn rs(rrams: u64, steps: u64) -> Rs {
    Rs { rrams, steps }
}

/// Table II of the paper: R and S per benchmark for all six configurations
/// (effort = 40 cycles).
pub const TABLE2: &[Table2Row] = &[
    Table2Row {
        name: "5xp1",
        inputs: 7,
        area_imp: rs(170, 110),
        depth_imp: rs(213, 110),
        rram_imp: rs(199, 99),
        rram_maj: rs(149, 36),
        step_imp: rs(264, 77),
        step_maj: rs(182, 28),
    },
    Table2Row {
        name: "alu4",
        inputs: 14,
        area_imp: rs(1542, 286),
        depth_imp: rs(1858, 242),
        rram_imp: rs(2160, 176),
        rram_maj: rs(1370, 72),
        step_imp: rs(2461, 165),
        step_maj: rs(1717, 56),
    },
    Table2Row {
        name: "apex1",
        inputs: 45,
        area_imp: rs(2647, 241),
        depth_imp: rs(3399, 187),
        rram_imp: rs(3676, 165),
        rram_maj: rs(2343, 56),
        step_imp: rs(4335, 121),
        step_maj: rs(2972, 44),
    },
    Table2Row {
        name: "apex2",
        inputs: 39,
        area_imp: rs(355, 275),
        depth_imp: rs(583, 231),
        rram_imp: rs(531, 143),
        rram_maj: rs(358, 56),
        step_imp: rs(653, 132),
        step_maj: rs(435, 47),
    },
    Table2Row {
        name: "apex4",
        inputs: 9,
        area_imp: rs(3854, 198),
        depth_imp: rs(4122, 176),
        rram_imp: rs(4728, 143),
        rram_maj: rs(2820, 64),
        step_imp: rs(5340, 132),
        step_maj: rs(3602, 48),
    },
    Table2Row {
        name: "apex5",
        inputs: 117,
        area_imp: rs(1240, 275),
        depth_imp: rs(1757, 143),
        rram_imp: rs(1482, 141),
        rram_maj: rs(1053, 47),
        step_imp: rs(1975, 98),
        step_maj: rs(1286, 35),
    },
    Table2Row {
        name: "apex6",
        inputs: 135,
        area_imp: rs(1097, 198),
        depth_imp: rs(1277, 143),
        rram_imp: rs(1652, 121),
        rram_maj: rs(1018, 44),
        step_imp: rs(1742, 99),
        step_maj: rs(1191, 36),
    },
    Table2Row {
        name: "apex7",
        inputs: 49,
        area_imp: rs(300, 176),
        depth_imp: rs(389, 143),
        rram_imp: rs(408, 132),
        rram_maj: rs(277, 48),
        step_imp: rs(526, 121),
        step_maj: rs(348, 44),
    },
    Table2Row {
        name: "b9",
        inputs: 41,
        area_imp: rs(252, 99),
        depth_imp: rs(252, 88),
        rram_imp: rs(252, 87),
        rram_maj: rs(168, 32),
        step_imp: rs(252, 66),
        step_maj: rs(168, 28),
    },
    Table2Row {
        name: "clip",
        inputs: 9,
        area_imp: rs(256, 132),
        depth_imp: rs(276, 121),
        rram_imp: rs(312, 110),
        rram_maj: rs(217, 40),
        step_imp: rs(380, 99),
        step_maj: rs(275, 36),
    },
    Table2Row {
        name: "cm150a",
        inputs: 21,
        area_imp: rs(132, 99),
        depth_imp: rs(132, 99),
        rram_imp: rs(147, 77),
        rram_maj: rs(95, 32),
        step_imp: rs(132, 88),
        step_maj: rs(90, 32),
    },
    Table2Row {
        name: "cm162a",
        inputs: 14,
        area_imp: rs(90, 99),
        depth_imp: rs(90, 77),
        rram_imp: rs(90, 86),
        rram_maj: rs(60, 30),
        step_imp: rs(90, 66),
        step_maj: rs(65, 24),
    },
    Table2Row {
        name: "cm163a",
        inputs: 16,
        area_imp: rs(102, 77),
        depth_imp: rs(102, 77),
        rram_imp: rs(102, 76),
        rram_maj: rs(68, 27),
        step_imp: rs(102, 66),
        step_maj: rs(68, 24),
    },
    Table2Row {
        name: "cordic",
        inputs: 23,
        area_imp: rs(199, 164),
        depth_imp: rs(242, 132),
        rram_imp: rs(189, 121),
        rram_maj: rs(134, 48),
        step_imp: rs(229, 99),
        step_maj: rs(162, 39),
    },
    Table2Row {
        name: "misex1",
        inputs: 8,
        area_imp: rs(101, 77),
        depth_imp: rs(128, 66),
        rram_imp: rs(111, 66),
        rram_maj: rs(76, 24),
        step_imp: rs(130, 55),
        step_maj: rs(94, 20),
    },
    Table2Row {
        name: "misex3",
        inputs: 14,
        area_imp: rs(1547, 253),
        depth_imp: rs(2118, 231),
        rram_imp: rs(2207, 165),
        rram_maj: rs(1444, 67),
        step_imp: rs(2621, 143),
        step_maj: rs(1762, 52),
    },
    Table2Row {
        name: "parity",
        inputs: 16,
        area_imp: rs(224, 176),
        depth_imp: rs(224, 176),
        rram_imp: rs(216, 132),
        rram_maj: rs(152, 53),
        step_imp: rs(216, 154),
        step_maj: rs(152, 48),
    },
    Table2Row {
        name: "seq",
        inputs: 41,
        area_imp: rs(2032, 308),
        depth_imp: rs(2566, 242),
        rram_imp: rs(3189, 153),
        rram_maj: rs(1970, 64),
        step_imp: rs(3551, 132),
        step_maj: rs(2498, 60),
    },
    Table2Row {
        name: "t481",
        inputs: 16,
        area_imp: rs(102, 209),
        depth_imp: rs(168, 132),
        rram_imp: rs(148, 142),
        rram_maj: rs(90, 52),
        step_imp: rs(188, 110),
        step_maj: rs(123, 40),
    },
    Table2Row {
        name: "table5",
        inputs: 17,
        area_imp: rs(1598, 286),
        depth_imp: rs(2719, 231),
        rram_imp: rs(2630, 154),
        rram_maj: rs(1723, 64),
        step_imp: rs(3393, 142),
        step_maj: rs(2252, 52),
    },
    Table2Row {
        name: "too_large",
        inputs: 38,
        area_imp: rs(315, 341),
        depth_imp: rs(512, 264),
        rram_imp: rs(510, 164),
        rram_maj: rs(322, 64),
        step_imp: rs(587, 121),
        step_maj: rs(392, 48),
    },
    Table2Row {
        name: "x1",
        inputs: 51,
        area_imp: rs(442, 164),
        depth_imp: rs(736, 110),
        rram_imp: rs(569, 99),
        rram_maj: rs(435, 36),
        step_imp: rs(711, 77),
        step_maj: rs(509, 28),
    },
    Table2Row {
        name: "x2",
        inputs: 10,
        area_imp: rs(66, 88),
        depth_imp: rs(92, 77),
        rram_imp: rs(66, 76),
        rram_maj: rs(46, 26),
        step_imp: rs(94, 66),
        step_maj: rs(68, 24),
    },
    Table2Row {
        name: "x3",
        inputs: 135,
        area_imp: rs(1075, 198),
        depth_imp: rs(1363, 143),
        rram_imp: rs(1729, 99),
        rram_maj: rs(1008, 44),
        step_imp: rs(1787, 99),
        step_maj: rs(1201, 36),
    },
    Table2Row {
        name: "x4",
        inputs: 94,
        area_imp: rs(570, 121),
        depth_imp: rs(591, 88),
        rram_imp: rs(599, 77),
        rram_maj: rs(391, 28),
        step_imp: rs(694, 66),
        step_maj: rs(563, 24),
    },
];

/// Σ row of Table II as printed in the paper.
pub const TABLE2_SUM: Table2Row = Table2Row {
    name: "SUM",
    inputs: 979,
    area_imp: rs(20308, 4650),
    depth_imp: rs(25909, 3729),
    rram_imp: rs(27902, 3004),
    rram_maj: rs(17787, 1154),
    step_imp: rs(32453, 2594),
    step_maj: rs(22175, 953),
};

/// One row of Table III (left half): comparison with the BDD-based
/// synthesis of Chakraborti et al. \[11\].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table3BddRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Number of primary inputs.
    pub inputs: u32,
    /// BDD-based synthesis result from \[11\].
    pub bdd: Rs,
    /// MIG multi-objective result, IMP realization.
    pub mig_imp: Rs,
    /// MIG multi-objective result, MAJ realization.
    pub mig_maj: Rs,
}

/// Table III, left half: BDD \[11\] vs. the proposed MIG flow.
pub const TABLE3_BDD: &[Table3BddRow] = &[
    Table3BddRow {
        name: "5xp1",
        inputs: 7,
        bdd: rs(84, 73),
        mig_imp: rs(199, 99),
        mig_maj: rs(149, 36),
    },
    Table3BddRow {
        name: "alu4",
        inputs: 14,
        bdd: rs(642, 334),
        mig_imp: rs(2160, 176),
        mig_maj: rs(1370, 72),
    },
    Table3BddRow {
        name: "apex1",
        inputs: 45,
        bdd: rs(1626, 705),
        mig_imp: rs(3676, 165),
        mig_maj: rs(2343, 56),
    },
    Table3BddRow {
        name: "apex2",
        inputs: 39,
        bdd: rs(122, 237),
        mig_imp: rs(531, 143),
        mig_maj: rs(358, 56),
    },
    Table3BddRow {
        name: "apex4",
        inputs: 9,
        bdd: rs(2073, 447),
        mig_imp: rs(4728, 143),
        mig_maj: rs(2820, 64),
    },
    Table3BddRow {
        name: "apex5",
        inputs: 117,
        bdd: rs(806, 888),
        mig_imp: rs(1482, 141),
        mig_maj: rs(1053, 47),
    },
    Table3BddRow {
        name: "apex6",
        inputs: 135,
        bdd: rs(770, 1169),
        mig_imp: rs(1652, 121),
        mig_maj: rs(1018, 44),
    },
    Table3BddRow {
        name: "apex7",
        inputs: 49,
        bdd: rs(290, 437),
        mig_imp: rs(408, 132),
        mig_maj: rs(277, 48),
    },
    Table3BddRow {
        name: "b9",
        inputs: 41,
        bdd: rs(125, 298),
        mig_imp: rs(252, 87),
        mig_maj: rs(168, 32),
    },
    Table3BddRow {
        name: "clip",
        inputs: 9,
        bdd: rs(120, 89),
        mig_imp: rs(312, 110),
        mig_maj: rs(217, 40),
    },
    Table3BddRow {
        name: "cm150a",
        inputs: 21,
        bdd: rs(56, 127),
        mig_imp: rs(147, 77),
        mig_maj: rs(95, 32),
    },
    Table3BddRow {
        name: "cm162a",
        inputs: 14,
        bdd: rs(46, 102),
        mig_imp: rs(90, 86),
        mig_maj: rs(60, 30),
    },
    Table3BddRow {
        name: "cm163a",
        inputs: 16,
        bdd: rs(42, 116),
        mig_imp: rs(102, 76),
        mig_maj: rs(68, 27),
    },
    Table3BddRow {
        name: "cordic",
        inputs: 23,
        bdd: rs(32, 149),
        mig_imp: rs(189, 121),
        mig_maj: rs(134, 48),
    },
    Table3BddRow {
        name: "misex1",
        inputs: 8,
        bdd: rs(83, 69),
        mig_imp: rs(111, 66),
        mig_maj: rs(76, 24),
    },
    Table3BddRow {
        name: "misex3",
        inputs: 14,
        bdd: rs(444, 185),
        mig_imp: rs(2207, 165),
        mig_maj: rs(1444, 67),
    },
    Table3BddRow {
        name: "parity",
        inputs: 16,
        bdd: rs(23, 113),
        mig_imp: rs(216, 132),
        mig_maj: rs(152, 53),
    },
    Table3BddRow {
        name: "seq",
        inputs: 41,
        bdd: rs(1566, 692),
        mig_imp: rs(3189, 153),
        mig_maj: rs(1970, 64),
    },
    Table3BddRow {
        name: "t481",
        inputs: 16,
        bdd: rs(26, 107),
        mig_imp: rs(148, 142),
        mig_maj: rs(90, 52),
    },
    Table3BddRow {
        name: "table5",
        inputs: 17,
        bdd: rs(580, 168),
        mig_imp: rs(2630, 154),
        mig_maj: rs(1723, 64),
    },
    Table3BddRow {
        name: "too_large",
        inputs: 38,
        bdd: rs(282, 232),
        mig_imp: rs(510, 164),
        mig_maj: rs(322, 64),
    },
    Table3BddRow {
        name: "x1",
        inputs: 51,
        bdd: rs(230, 398),
        mig_imp: rs(569, 99),
        mig_maj: rs(435, 36),
    },
    Table3BddRow {
        name: "x2",
        inputs: 10,
        bdd: rs(60, 80),
        mig_imp: rs(66, 76),
        mig_maj: rs(46, 26),
    },
    Table3BddRow {
        name: "x3",
        inputs: 135,
        bdd: rs(770, 1169),
        mig_imp: rs(1729, 99),
        mig_maj: rs(1008, 44),
    },
    Table3BddRow {
        name: "x4",
        inputs: 94,
        bdd: rs(401, 642),
        mig_imp: rs(599, 77),
        mig_maj: rs(391, 28),
    },
];

/// Σ row of Table III's left half.
pub const TABLE3_BDD_SUM: Table3BddRow = Table3BddRow {
    name: "SUM",
    inputs: 979,
    bdd: rs(11299, 9026),
    mig_imp: rs(27902, 3004),
    mig_maj: rs(17787, 1154),
};

/// One row of Table III (right half): comparison with the AIG-based
/// synthesis of Bürger et al. \[12\]. Only step counts were reported for the
/// AIG flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table3AigRow {
    /// Benchmark name (single-output cofactor functions, `_d` suffix in
    /// the paper rendered as `_d`).
    pub name: &'static str,
    /// Number of primary inputs.
    pub inputs: u32,
    /// Steps of the AIG-based synthesis \[12\] (RRAM counts not reported).
    pub aig_steps: u64,
    /// MIG multi-objective result, IMP realization.
    pub mig_imp: Rs,
    /// MIG multi-objective result, MAJ realization.
    pub mig_maj: Rs,
}

const fn a3(
    name: &'static str,
    inputs: u32,
    aig_steps: u64,
    ir: u64,
    is: u64,
    mr: u64,
    ms: u64,
) -> Table3AigRow {
    Table3AigRow {
        name,
        inputs,
        aig_steps,
        mig_imp: rs(ir, is),
        mig_maj: rs(mr, ms),
    }
}

/// Table III, right half: AIG \[12\] vs. the proposed MIG flow.
pub const TABLE3_AIG: &[Table3AigRow] = &[
    a3("9sym_d", 9, 1418, 923, 175, 398, 60),
    a3("con1_f1", 7, 18, 70, 75, 28, 26),
    a3("con2_f2", 7, 19, 60, 76, 24, 24),
    a3("exam1_d", 3, 12, 43, 44, 19, 16),
    a3("exam3_d", 4, 12, 50, 55, 20, 23),
    a3("max46_d", 9, 427, 408, 131, 193, 48),
    a3("newill_d", 8, 50, 129, 109, 57, 40),
    a3("newtag_d", 8, 21, 90, 96, 36, 33),
    a3("rd53_f1", 5, 27, 60, 64, 24, 25),
    a3("rd53_f2", 5, 57, 77, 77, 35, 28),
    a3("rd53_f3", 5, 32, 86, 66, 38, 24),
    a3("rd73_f1", 7, 238, 291, 121, 140, 44),
    a3("rd73_f2", 7, 46, 129, 88, 57, 32),
    a3("rd73_f3", 7, 104, 193, 107, 84, 39),
    a3("rd84_f1", 8, 351, 430, 153, 187, 52),
    a3("rd84_f2", 8, 47, 172, 88, 76, 31),
    a3("rd84_f3", 8, 23, 90, 50, 36, 15),
    a3("rd84_f4", 8, 345, 473, 141, 214, 47),
    a3("sao2_f1", 10, 102, 110, 108, 72, 35),
    a3("sao2_f2", 10, 112, 234, 119, 98, 42),
    a3("sao2_f3", 10, 380, 325, 143, 143, 55),
    a3("sao2_f4", 10, 252, 326, 143, 163, 59),
    a3("sym10_d", 10, 1172, 1475, 187, 643, 72),
    a3("t481_d", 16, 1564, 1285, 187, 567, 72),
    a3("xor5_d", 5, 32, 86, 66, 38, 24),
];

/// Σ row of Table III's right half.
pub const TABLE3_AIG_SUM: Table3AigRow = Table3AigRow {
    name: "SUM",
    inputs: 194,
    aig_steps: 6861,
    mig_imp: rs(7615, 2669),
    mig_maj: rs(3390, 966),
};

/// Looks up a Table II row by benchmark name.
pub fn table2_row(name: &str) -> Option<&'static Table2Row> {
    TABLE2.iter().find(|r| r.name == name)
}

/// Looks up a Table III BDD-comparison row by benchmark name.
pub fn table3_bdd_row(name: &str) -> Option<&'static Table3BddRow> {
    TABLE3_BDD.iter().find(|r| r.name == name)
}

/// Looks up a Table III AIG-comparison row by benchmark name.
pub fn table3_aig_row(name: &str) -> Option<&'static Table3AigRow> {
    TABLE3_AIG.iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_25_rows() {
        assert_eq!(TABLE2.len(), 25);
    }

    #[test]
    fn table2_sums_match_paper_sigma_row() {
        let inputs: u32 = TABLE2.iter().map(|r| r.inputs).sum();
        assert_eq!(inputs, TABLE2_SUM.inputs);
        let sum = |f: fn(&Table2Row) -> Rs| -> (u64, u64) {
            TABLE2
                .iter()
                .fold((0, 0), |(r, s), row| (r + f(row).rrams, s + f(row).steps))
        };
        assert_eq!(
            sum(|r| r.area_imp),
            (TABLE2_SUM.area_imp.rrams, TABLE2_SUM.area_imp.steps)
        );
        assert_eq!(
            sum(|r| r.depth_imp),
            (TABLE2_SUM.depth_imp.rrams, TABLE2_SUM.depth_imp.steps)
        );
        assert_eq!(
            sum(|r| r.rram_imp),
            (TABLE2_SUM.rram_imp.rrams, TABLE2_SUM.rram_imp.steps)
        );
        assert_eq!(
            sum(|r| r.rram_maj),
            (TABLE2_SUM.rram_maj.rrams, TABLE2_SUM.rram_maj.steps)
        );
        assert_eq!(
            sum(|r| r.step_imp),
            (TABLE2_SUM.step_imp.rrams, TABLE2_SUM.step_imp.steps)
        );
        assert_eq!(
            sum(|r| r.step_maj),
            (TABLE2_SUM.step_maj.rrams, TABLE2_SUM.step_maj.steps)
        );
    }

    #[test]
    fn table3_bdd_sums_match() {
        let r: u64 = TABLE3_BDD.iter().map(|x| x.bdd.rrams).sum();
        let s: u64 = TABLE3_BDD.iter().map(|x| x.bdd.steps).sum();
        assert_eq!((r, s), (TABLE3_BDD_SUM.bdd.rrams, TABLE3_BDD_SUM.bdd.steps));
        let ms: u64 = TABLE3_BDD.iter().map(|x| x.mig_maj.steps).sum();
        assert_eq!(ms, TABLE3_BDD_SUM.mig_maj.steps);
    }

    #[test]
    fn table3_aig_sums_match() {
        let s: u64 = TABLE3_AIG.iter().map(|x| x.aig_steps).sum();
        assert_eq!(s, TABLE3_AIG_SUM.aig_steps);
        let (ir, is) = TABLE3_AIG.iter().fold((0u64, 0u64), |(r, s), x| {
            (r + x.mig_imp.rrams, s + x.mig_imp.steps)
        });
        assert_eq!(
            (ir, is),
            (TABLE3_AIG_SUM.mig_imp.rrams, TABLE3_AIG_SUM.mig_imp.steps)
        );
        let (mr, ms) = TABLE3_AIG.iter().fold((0u64, 0u64), |(r, s), x| {
            (r + x.mig_maj.rrams, s + x.mig_maj.steps)
        });
        assert_eq!(
            (mr, ms),
            (TABLE3_AIG_SUM.mig_maj.rrams, TABLE3_AIG_SUM.mig_maj.steps)
        );
    }

    #[test]
    fn headline_ratios_hold_in_paper_data() {
        // "~8x fewer steps than BDD for the MAJ realization"
        let ratio = TABLE3_BDD_SUM.bdd.steps as f64 / TABLE3_BDD_SUM.mig_maj.steps as f64;
        assert!(ratio > 7.5 && ratio < 8.5, "ratio {ratio}");
        // "26.5x on apex6/x3"
        for name in ["apex6", "x3"] {
            let row = table3_bdd_row(name).unwrap();
            let r = row.bdd.steps as f64 / row.mig_maj.steps as f64;
            assert!(r > 25.0 && r < 28.0, "{name}: {r}");
        }
        // "7.1x / 2.57x fewer steps than AIG"
        let maj = TABLE3_AIG_SUM.aig_steps as f64 / TABLE3_AIG_SUM.mig_maj.steps as f64;
        assert!(maj > 7.0 && maj < 7.2, "{maj}");
        let imp = TABLE3_AIG_SUM.aig_steps as f64 / TABLE3_AIG_SUM.mig_imp.steps as f64;
        assert!(imp > 2.5 && imp < 2.65, "{imp}");
        // "35.39% step reduction of Alg.3 vs Alg.1 (IMP)"
        let red = 1.0 - TABLE2_SUM.rram_imp.steps as f64 / TABLE2_SUM.area_imp.steps as f64;
        assert!((red - 0.3539).abs() < 0.01, "{red}");
        // "30.43% fewer steps than conventional depth optimization". The
        // prose attributes this to the multi-objective algorithm, but the
        // sigma row only yields 30.43% for Step-IMP vs Depth-IMP
        // (1 - 2594/3729); RRAM-IMP vs Depth-IMP gives 19.44%.
        let red = 1.0 - TABLE2_SUM.step_imp.steps as f64 / TABLE2_SUM.depth_imp.steps as f64;
        assert!((red - 0.3043).abs() < 0.01, "{red}");
        // "19.78% fewer RRAMs than step optimization (MAJ) at ~21% more steps"
        let red = 1.0 - TABLE2_SUM.rram_maj.rrams as f64 / TABLE2_SUM.step_maj.rrams as f64;
        assert!((red - 0.1978).abs() < 0.01, "{red}");
        let inc = TABLE2_SUM.rram_maj.steps as f64 / TABLE2_SUM.step_maj.steps as f64 - 1.0;
        assert!((inc - 0.2109).abs() < 0.01, "{inc}");
    }

    #[test]
    fn lookup_helpers() {
        assert_eq!(table2_row("apex6").unwrap().inputs, 135);
        assert_eq!(table3_bdd_row("parity").unwrap().bdd.steps, 113);
        assert_eq!(table3_aig_row("sym10_d").unwrap().aig_steps, 1172);
        assert!(table2_row("nope").is_none());
    }
}
