//! Reader and writer for the Espresso PLA format.
//!
//! Many of the small LGsynth91 functions the paper's Table III uses
//! (`rd53`, `9sym`, `con1`, ...) are distributed as two-level PLA files.
//! This module parses the common subset: `.i`, `.o`, `.ilb`, `.ob`, `.p`,
//! cube rows, and `.e`.
//!
//! In the input plane, `0`/`1` are literals and `-` is a don't care. In the
//! output plane, `1` adds the cube to that output's ON-set; `0`, `-` and
//! `~` leave the output untouched (type *fd* semantics, the Espresso
//! default).
//!
//! # Example
//!
//! ```
//! use rms_logic::pla;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "\
//! .i 2
//! .o 1
//! .p 2
//! 10 1
//! 01 1
//! .e
//! ";
//! let nl = pla::parse(src)?;
//! assert!(nl.evaluate(0b01)[0]); // XOR
//! assert!(!nl.evaluate(0b11)[0]);
//! # Ok(())
//! # }
//! ```

use crate::error::ParseCircuitError;
use crate::netlist::{Netlist, NetlistBuilder, Wire};
use std::fmt::Write as _;

/// Parses a PLA document into a [`Netlist`].
///
/// # Errors
///
/// Returns [`ParseCircuitError`] on malformed input or inconsistent plane
/// widths.
pub fn parse(src: &str) -> Result<Netlist, ParseCircuitError> {
    let mut num_inputs: Option<usize> = None;
    let mut num_outputs: Option<usize> = None;
    let mut input_names: Option<Vec<String>> = None;
    let mut output_names: Option<Vec<String>> = None;
    let mut cubes: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();

    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = match raw.find('#') {
            Some(p) => raw[..p].trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            ".i" => {
                num_inputs = Some(
                    tokens
                        .get(1)
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| ParseCircuitError::at_line(line_no, "bad .i count"))?,
                )
            }
            ".o" => {
                num_outputs = Some(
                    tokens
                        .get(1)
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| ParseCircuitError::at_line(line_no, "bad .o count"))?,
                )
            }
            ".ilb" => input_names = Some(tokens[1..].iter().map(|s| s.to_string()).collect()),
            ".ob" => output_names = Some(tokens[1..].iter().map(|s| s.to_string()).collect()),
            ".p" | ".type" | ".phase" | ".pair" | ".symbolic" => { /* informational */ }
            ".e" | ".end" => break,
            t if t.starts_with('.') => {
                return Err(ParseCircuitError::at_line(
                    line_no,
                    format!("unsupported directive {t}"),
                ))
            }
            _ => {
                let (ni, no) = match (num_inputs, num_outputs) {
                    (Some(a), Some(b)) => (a, b),
                    _ => {
                        return Err(ParseCircuitError::at_line(
                            line_no,
                            "cube before .i/.o declarations",
                        ))
                    }
                };
                let (ip, op) = if tokens.len() == 2 {
                    (tokens[0], tokens[1])
                } else if tokens.len() == 1 && tokens[0].len() == ni + no {
                    (&tokens[0][..ni], &tokens[0][ni..])
                } else {
                    return Err(ParseCircuitError::at_line(
                        line_no,
                        format!("expected `<inputs> <outputs>` cube, found {line:?}"),
                    ));
                };
                if ip.len() != ni || op.len() != no {
                    return Err(ParseCircuitError::at_line(
                        line_no,
                        format!(
                            "cube planes {}x{} do not match .i {} .o {}",
                            ip.len(),
                            op.len(),
                            ni,
                            no
                        ),
                    ));
                }
                for c in ip.bytes() {
                    if !matches!(c, b'0' | b'1' | b'-') {
                        return Err(ParseCircuitError::at_line(
                            line_no,
                            format!("bad input plane char {:?}", c as char),
                        ));
                    }
                }
                for c in op.bytes() {
                    if !matches!(c, b'0' | b'1' | b'-' | b'~' | b'4') {
                        return Err(ParseCircuitError::at_line(
                            line_no,
                            format!("bad output plane char {:?}", c as char),
                        ));
                    }
                }
                cubes.push((ip.bytes().collect(), op.bytes().collect()));
            }
        }
    }

    let ni = num_inputs.ok_or_else(|| ParseCircuitError::new("missing .i"))?;
    let no = num_outputs.ok_or_else(|| ParseCircuitError::new("missing .o"))?;
    let input_names = input_names.unwrap_or_else(|| (0..ni).map(|i| format!("x{i}")).collect());
    let output_names = output_names.unwrap_or_else(|| (0..no).map(|i| format!("f{i}")).collect());
    if input_names.len() != ni {
        return Err(ParseCircuitError::new(".ilb arity does not match .i"));
    }
    if output_names.len() != no {
        return Err(ParseCircuitError::new(".ob arity does not match .o"));
    }

    let mut b = NetlistBuilder::new("pla");
    let ins: Vec<Wire> = input_names.iter().map(|n| b.input(n.clone())).collect();

    // Build each product term once, share across outputs.
    let mut terms: Vec<Wire> = Vec::with_capacity(cubes.len());
    for (ip, _) in &cubes {
        let mut lits: Vec<Wire> = Vec::new();
        for (k, &c) in ip.iter().enumerate() {
            match c {
                b'1' => lits.push(ins[k]),
                b'0' => lits.push(ins[k].complement()),
                _ => {}
            }
        }
        let term = if lits.is_empty() {
            b.const1()
        } else {
            let mut acc = lits[0];
            for &l in &lits[1..] {
                acc = b.and(acc, l);
            }
            acc
        };
        terms.push(term);
    }

    for (o, name) in output_names.iter().enumerate() {
        let mut acc: Option<Wire> = None;
        for (ci, (_, op)) in cubes.iter().enumerate() {
            if op[o] == b'1' {
                acc = Some(match acc {
                    None => terms[ci],
                    Some(a) => b.or(a, terms[ci]),
                });
            }
        }
        let w = acc.unwrap_or(b.const0());
        b.output(name.clone(), w);
    }
    Ok(b.build())
}

/// Serializes a netlist's truth tables to a canonical minterm PLA.
///
/// Each true minterm becomes one cube; this is exact but not minimized, and
/// therefore only sensible for small circuits.
///
/// # Panics
///
/// Panics if the netlist has more than [`crate::tt::MAX_VARS`] inputs.
pub fn write(nl: &Netlist) -> String {
    let tts = nl.truth_tables();
    let ni = nl.num_inputs();
    let mut out = String::new();
    let _ = writeln!(out, ".i {ni}");
    let _ = writeln!(out, ".o {}", nl.num_outputs());
    let _ = writeln!(out, ".ilb {}", nl.input_names().join(" "));
    let names: Vec<&str> = nl.outputs().iter().map(|(n, _)| n.as_str()).collect();
    let _ = writeln!(out, ".ob {}", names.join(" "));
    let mut rows = Vec::new();
    for m in 0..(1u64 << ni) {
        let mut op = String::new();
        let mut any = false;
        for t in &tts {
            if t.bit(m) {
                op.push('1');
                any = true;
            } else {
                op.push('-');
            }
        }
        if any {
            let mut ip = String::new();
            for i in 0..ni {
                ip.push(if (m >> i) & 1 == 1 { '1' } else { '0' });
            }
            rows.push(format!("{ip} {op}"));
        }
    }
    let _ = writeln!(out, ".p {}", rows.len());
    for r in rows {
        let _ = writeln!(out, "{r}");
    }
    out.push_str(".e\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use crate::sim::{check_equivalence, EquivResult};

    #[test]
    fn parse_multi_output() {
        let src = "\
.i 3
.o 2
.ilb a b c
.ob x y
.p 3
11- 10
--1 01
000 11
.e
";
        let nl = parse(src).unwrap();
        assert_eq!(nl.num_inputs(), 3);
        assert_eq!(nl.num_outputs(), 2);
        // x = ab + !a!b!c ; y = c + !a!b!c
        assert_eq!(nl.evaluate(0b011), vec![true, false]);
        assert_eq!(nl.evaluate(0b100), vec![false, true]);
        assert_eq!(nl.evaluate(0b000), vec![true, true]);
    }

    #[test]
    fn dont_cares_in_input_plane() {
        let nl = parse(".i 2\n.o 1\n.p 1\n-1 1\n.e\n").unwrap();
        assert!(nl.evaluate(0b10)[0]);
        assert!(nl.evaluate(0b11)[0]);
        assert!(!nl.evaluate(0b01)[0]);
    }

    #[test]
    fn merged_cube_form() {
        // Single-token cubes (no space between planes) also occur in the wild.
        let nl = parse(".i 2\n.o 1\n111\n.e\n").unwrap();
        assert!(nl.evaluate(0b11)[0]);
    }

    #[test]
    fn empty_output_is_constant_zero() {
        let nl = parse(".i 2\n.o 2\n.p 1\n11 1-\n.e\n").unwrap();
        assert_eq!(nl.evaluate(0b11), vec![true, false]);
    }

    #[test]
    fn errors() {
        assert!(parse(".o 1\n.p 1\n1 1\n.e\n").is_err());
        assert!(parse(".i 2\n.o 1\n.p 1\n1 1\n.e\n").is_err()); // width mismatch
        assert!(parse(".i 1\n.o 1\n.p 1\n2 1\n.e\n").is_err()); // bad char
    }

    #[test]
    fn round_trip() {
        let mut b = NetlistBuilder::new("rt");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let f = b.maj(x, y, z);
        let g = b.xor(x, z);
        b.output("f", f);
        b.output("g", g);
        let nl = b.build();
        let text = write(&nl);
        let back = parse(&text).unwrap();
        assert_eq!(check_equivalence(&nl, &back), EquivResult::Equivalent);
    }
}
