//! Netlist synthesis from truth tables.
//!
//! Two classic constructions are provided, both used as front ends for the
//! graph-based flows:
//!
//! - [`sop_netlist`] — canonical sum-of-products over the true minterms
//!   (the shape a two-level PLA front end produces), and
//! - [`shannon_netlist`] — a multiplexer tree by recursive Shannon
//!   expansion with sub-function sharing (the shape a BDD front end
//!   produces).

use crate::netlist::{Netlist, NetlistBuilder, Wire};
use crate::tt::TruthTable;
use std::collections::HashMap;

/// Builds a canonical sum-of-products netlist for multi-output function
/// `tts` (all tables over the same variable count).
///
/// Product terms are shared between outputs. The result is deliberately
/// unoptimized two-level logic — the raw material the paper's algorithms
/// restructure.
///
/// # Panics
///
/// Panics if `tts` is empty or the tables disagree on the variable count.
pub fn sop_netlist(name: &str, tts: &[TruthTable]) -> Netlist {
    assert!(!tts.is_empty(), "need at least one output");
    let n = tts[0].num_vars();
    assert!(
        tts.iter().all(|t| t.num_vars() == n),
        "variable counts differ"
    );
    let mut b = NetlistBuilder::new(name);
    let ins: Vec<Wire> = (0..n).map(|i| b.input(format!("x{i}"))).collect();
    let mut minterm_wire: HashMap<u64, Wire> = HashMap::new();
    let mut outputs = Vec::new();
    for (o, tt) in tts.iter().enumerate() {
        let mut acc: Option<Wire> = None;
        for m in 0..tt.num_bits() {
            if !tt.bit(m) {
                continue;
            }
            let term = *minterm_wire.entry(m).or_insert_with(|| {
                let mut t = if m & 1 == 1 {
                    ins[0]
                } else {
                    ins[0].complement()
                };
                for (i, &w) in ins.iter().enumerate().skip(1) {
                    let lit = if (m >> i) & 1 == 1 { w } else { w.complement() };
                    t = b.and(t, lit);
                }
                t
            });
            acc = Some(match acc {
                None => term,
                Some(a) => b.or(a, term),
            });
        }
        outputs.push((format!("f{o}"), acc.unwrap_or(b.const0())));
    }
    for (name, w) in outputs {
        b.output(name, w);
    }
    b.build()
}

/// Builds a shared multiplexer tree by Shannon expansion.
///
/// Identical sub-functions are built once (hash-consing on the cofactor
/// tables), so the result is essentially a BDD rendered as MUX gates.
///
/// # Panics
///
/// Panics if `tts` is empty or the tables disagree on the variable count.
pub fn shannon_netlist(name: &str, tts: &[TruthTable]) -> Netlist {
    assert!(!tts.is_empty(), "need at least one output");
    let n = tts[0].num_vars();
    assert!(
        tts.iter().all(|t| t.num_vars() == n),
        "variable counts differ"
    );
    let mut b = NetlistBuilder::new(name);
    let ins: Vec<Wire> = (0..n).map(|i| b.input(format!("x{i}"))).collect();
    let mut cache: HashMap<TruthTable, Wire> = HashMap::new();

    fn expand(
        tt: &TruthTable,
        var: usize,
        b: &mut NetlistBuilder,
        ins: &[Wire],
        cache: &mut HashMap<TruthTable, Wire>,
    ) -> Wire {
        if tt.is_zero() {
            return b.const0();
        }
        if tt.is_one() {
            return b.const1();
        }
        if let Some(&w) = cache.get(tt) {
            return w;
        }
        // Find the next variable the function depends on.
        let mut v = var;
        while !tt.depends_on(v) {
            v += 1;
        }
        let hi = tt.cofactor1(v);
        let lo = tt.cofactor0(v);
        let hw = expand(&hi, v + 1, b, ins, cache);
        let lw = expand(&lo, v + 1, b, ins, cache);
        let w = if hw == lw { hw } else { b.mux(ins[v], hw, lw) };
        cache.insert(tt.clone(), w);
        w
    }

    let wires: Vec<Wire> = tts
        .iter()
        .map(|t| expand(t, 0, &mut b, &ins, &mut cache))
        .collect();
    for (o, w) in wires.into_iter().enumerate() {
        b.output(format!("f{o}"), w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tt::TruthTable;

    fn check(tts: &[TruthTable], nl: &Netlist) {
        assert_eq!(nl.truth_tables(), tts);
    }

    #[test]
    fn sop_reproduces_functions() {
        let n = 4;
        let f = TruthTable::from_fn(n, |m| m.count_ones() == 2);
        let g = TruthTable::from_fn(n, |m| m % 3 == 0);
        let nl = sop_netlist("t", &[f.clone(), g.clone()]);
        check(&[f, g], &nl);
    }

    #[test]
    fn sop_shares_minterms_between_outputs() {
        let n = 3;
        let f = TruthTable::from_fn(n, |m| m == 5 || m == 3);
        let g = TruthTable::from_fn(n, |m| m == 5);
        let shared = sop_netlist("t", &[f.clone(), g.clone()]);
        let solo_f = sop_netlist("t", &[f]);
        let solo_g = sop_netlist("t", &[g]);
        assert!(shared.num_gates() < solo_f.num_gates() + solo_g.num_gates());
    }

    #[test]
    fn sop_constant_outputs() {
        let z = TruthTable::zero(3);
        let o = TruthTable::one(3);
        let nl = sop_netlist("t", &[z.clone(), o.clone()]);
        check(&[z, o], &nl);
    }

    #[test]
    fn shannon_reproduces_functions() {
        let n = 5;
        let f = TruthTable::from_fn(n, |m| (m * m) % 7 < 3);
        let g = TruthTable::from_fn(n, |m| m.count_ones() % 2 == 1);
        let nl = shannon_netlist("t", &[f.clone(), g.clone()]);
        check(&[f, g], &nl);
    }

    #[test]
    fn shannon_shares_cofactors() {
        // Parity has maximal sharing: 2 muxes per variable after the first.
        let n = 6;
        let f = TruthTable::from_fn(n, |m| m.count_ones() % 2 == 1);
        let nl = shannon_netlist("t", &[f]);
        assert!(
            nl.num_gates() <= 2 * n,
            "parity mux tree should be linear, got {}",
            nl.num_gates()
        );
    }

    #[test]
    fn shannon_skips_irrelevant_variables() {
        let n = 5;
        let f = TruthTable::var(n, 3); // only depends on x3
        let nl = shannon_netlist("t", std::slice::from_ref(&f));
        assert_eq!(nl.num_gates(), 1); // a single mux(x3, 1, 0)
        check(&[f], &nl);
    }
}
