//! A multi-output gate-level netlist IR.
//!
//! [`Netlist`] is the neutral circuit representation every front end
//! (expression, BLIF, PLA, benchmark generators) lowers into, and every
//! synthesis engine (MIG, BDD, AIG) consumes. Nodes are stored in
//! topological order by construction; inverters are free complement marks
//! on [`Wire`]s, matching the edge-complement convention of the graph
//! representations used throughout the paper.
//!
//! # Example
//!
//! ```
//! use rms_logic::netlist::NetlistBuilder;
//!
//! let mut b = NetlistBuilder::new("half_adder");
//! let x = b.input("x");
//! let y = b.input("y");
//! let sum = b.xor(x, y);
//! let carry = b.and(x, y);
//! b.output("sum", sum);
//! b.output("carry", carry);
//! let nl = b.build();
//! assert_eq!(nl.num_gates(), 2);
//! let tts = nl.truth_tables();
//! assert_eq!(tts[0].count_ones(), 2); // XOR
//! assert_eq!(tts[1].count_ones(), 1); // AND
//! ```

use crate::tt::{TruthTable, MAX_VARS};
use std::fmt;

/// A reference to a netlist node, with a complement flag.
///
/// The low bit is the complement flag; the remaining bits index the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Wire(u32);

impl Wire {
    /// Wire to node `node`, complemented iff `complement`.
    pub fn new(node: usize, complement: bool) -> Self {
        Wire(((node as u32) << 1) | complement as u32)
    }

    /// Index of the referenced node.
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the wire is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// The same wire with the complement flag toggled.
    #[must_use]
    pub fn complement(self) -> Self {
        Wire(self.0 ^ 1)
    }

    /// The same wire with the complement flag cleared.
    #[must_use]
    pub fn regular(self) -> Self {
        Wire(self.0 & !1)
    }
}

impl fmt::Display for Wire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

/// The logic function of a gate node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Two-input AND.
    And,
    /// Two-input OR.
    Or,
    /// Two-input XOR.
    Xor,
    /// Three-input majority.
    Maj,
    /// If-then-else: fanins are (selector, then, else).
    Mux,
}

impl GateKind {
    /// Number of fanins this kind requires.
    pub fn arity(self) -> usize {
        match self {
            GateKind::And | GateKind::Or | GateKind::Xor => 2,
            GateKind::Maj | GateKind::Mux => 3,
        }
    }
}

/// A gate instance inside a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Logic function.
    pub kind: GateKind,
    /// Fanin wires; length equals `kind.arity()`.
    pub fanins: Vec<Wire>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    Const0,
    Input(usize),
    Gate(Gate),
}

/// A multi-output combinational circuit.
///
/// Node 0 is the constant-false node; nodes `1..=num_inputs` are the primary
/// inputs; all further nodes are gates in topological order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    input_names: Vec<String>,
    nodes: Vec<Node>,
    outputs: Vec<(String, Wire)>,
}

impl Netlist {
    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.input_names.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of gate nodes (constants and inputs excluded).
    pub fn num_gates(&self) -> usize {
        self.nodes.len() - 1 - self.num_inputs()
    }

    /// Total node count, including the constant and the inputs.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Primary input names, in variable order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Primary outputs as (name, wire) pairs.
    pub fn outputs(&self) -> &[(String, Wire)] {
        &self.outputs
    }

    /// The wire referring (uncomplemented) to primary input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs()`.
    pub fn input_wire(&self, i: usize) -> Wire {
        assert!(i < self.num_inputs());
        Wire::new(1 + i, false)
    }

    /// The gate stored at node index `node`, if that node is a gate.
    pub fn gate(&self, node: usize) -> Option<&Gate> {
        match self.nodes.get(node) {
            Some(Node::Gate(g)) => Some(g),
            _ => None,
        }
    }

    /// Iterates over `(node_index, gate)` pairs in topological order.
    pub fn gates(&self) -> impl Iterator<Item = (usize, &Gate)> {
        self.nodes.iter().enumerate().filter_map(|(i, n)| match n {
            Node::Gate(g) => Some((i, g)),
            _ => None,
        })
    }

    /// Bit-parallel simulation: given one word per input, returns one word
    /// per output (64 parallel evaluations).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs()`.
    pub fn simulate_words(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.num_inputs(), "input count mismatch");
        let mut values = vec![0u64; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match node {
                Node::Const0 => 0,
                Node::Input(k) => inputs[*k],
                Node::Gate(g) => {
                    let v = |w: Wire| -> u64 {
                        let raw = values[w.node()];
                        if w.is_complemented() {
                            !raw
                        } else {
                            raw
                        }
                    };
                    match g.kind {
                        GateKind::And => v(g.fanins[0]) & v(g.fanins[1]),
                        GateKind::Or => v(g.fanins[0]) | v(g.fanins[1]),
                        GateKind::Xor => v(g.fanins[0]) ^ v(g.fanins[1]),
                        GateKind::Maj => {
                            let (a, b, c) = (v(g.fanins[0]), v(g.fanins[1]), v(g.fanins[2]));
                            (a & b) | (a & c) | (b & c)
                        }
                        GateKind::Mux => {
                            let (s, t, e) = (v(g.fanins[0]), v(g.fanins[1]), v(g.fanins[2]));
                            (s & t) | (!s & e)
                        }
                    }
                }
            };
        }
        self.outputs
            .iter()
            .map(|(_, w)| {
                let raw = values[w.node()];
                if w.is_complemented() {
                    !raw
                } else {
                    raw
                }
            })
            .collect()
    }

    /// Evaluates the circuit on a single input minterm (bit `i` of `m` is
    /// input `i`); returns one bool per output.
    pub fn evaluate(&self, m: u64) -> Vec<bool> {
        let inputs: Vec<u64> = (0..self.num_inputs())
            .map(|i| if (m >> i) & 1 == 1 { u64::MAX } else { 0 })
            .collect();
        self.simulate_words(&inputs)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }

    /// Exhaustive truth tables of every output.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more than [`MAX_VARS`] inputs; use
    /// [`Netlist::simulate_words`] with sampled patterns instead.
    pub fn truth_tables(&self) -> Vec<TruthTable> {
        let n = self.num_inputs();
        assert!(
            n <= MAX_VARS,
            "{n}-input circuit too large for exhaustive truth tables"
        );
        let mut tts: Vec<TruthTable> = self.outputs.iter().map(|_| TruthTable::zero(n)).collect();
        let total: u64 = 1u64 << n;
        let mut base = 0u64;
        while base < total {
            let chunk = 64.min(total - base);
            let inputs: Vec<u64> = (0..n)
                .map(|i| {
                    let mut w = 0u64;
                    for b in 0..chunk {
                        if ((base + b) >> i) & 1 == 1 {
                            w |= 1 << b;
                        }
                    }
                    w
                })
                .collect();
            let outs = self.simulate_words(&inputs);
            for (t, &w) in tts.iter_mut().zip(&outs) {
                for b in 0..chunk {
                    if (w >> b) & 1 == 1 {
                        t.set_bit(base + b);
                    }
                }
            }
            base += chunk;
        }
        tts
    }

    /// Depth of the circuit: the longest input-to-output path in gates.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.nodes.len()];
        let mut best = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Gate(g) = node {
                level[i] = 1 + g.fanins.iter().map(|w| level[w.node()]).max().unwrap_or(0);
            }
        }
        for (_, w) in &self.outputs {
            best = best.max(level[w.node()]);
        }
        best
    }
}

/// Incremental constructor for [`Netlist`].
///
/// All gate methods return the [`Wire`] of the created node; `not` is free
/// (it only flips the complement flag). See the [module documentation]
/// (self) for a complete example.
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    input_names: Vec<String>,
    nodes: Vec<Node>,
    outputs: Vec<(String, Wire)>,
}

impl NetlistBuilder {
    /// Starts a new netlist with the given circuit name.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            input_names: Vec::new(),
            nodes: vec![Node::Const0],
            outputs: Vec::new(),
        }
    }

    /// The constant-false wire.
    pub fn const0(&self) -> Wire {
        Wire::new(0, false)
    }

    /// The constant-true wire.
    pub fn const1(&self) -> Wire {
        Wire::new(0, true)
    }

    /// Declares a new primary input and returns its wire.
    pub fn input(&mut self, name: impl Into<String>) -> Wire {
        let idx = self.input_names.len();
        assert_eq!(
            self.nodes.len(),
            1 + idx,
            "all inputs must be declared before the first gate"
        );
        self.input_names.push(name.into());
        self.nodes.push(Node::Input(idx));
        Wire::new(1 + idx, false)
    }

    fn check(&self, w: Wire) {
        assert!(
            w.node() < self.nodes.len(),
            "wire {w} references a future node"
        );
    }

    fn gate(&mut self, kind: GateKind, fanins: Vec<Wire>) -> Wire {
        debug_assert_eq!(fanins.len(), kind.arity());
        for &w in &fanins {
            self.check(w);
        }
        let idx = self.nodes.len();
        self.nodes.push(Node::Gate(Gate { kind, fanins }));
        Wire::new(idx, false)
    }

    /// Adds a two-input AND gate.
    pub fn and(&mut self, a: Wire, b: Wire) -> Wire {
        self.gate(GateKind::And, vec![a, b])
    }

    /// Adds a two-input OR gate.
    pub fn or(&mut self, a: Wire, b: Wire) -> Wire {
        self.gate(GateKind::Or, vec![a, b])
    }

    /// Adds a two-input XOR gate.
    pub fn xor(&mut self, a: Wire, b: Wire) -> Wire {
        self.gate(GateKind::Xor, vec![a, b])
    }

    /// Adds a three-input majority gate.
    pub fn maj(&mut self, a: Wire, b: Wire, c: Wire) -> Wire {
        self.gate(GateKind::Maj, vec![a, b, c])
    }

    /// Adds a multiplexer `s ? t : e`.
    pub fn mux(&mut self, s: Wire, t: Wire, e: Wire) -> Wire {
        self.gate(GateKind::Mux, vec![s, t, e])
    }

    /// Complements a wire (free; no gate is created).
    pub fn not(&self, a: Wire) -> Wire {
        a.complement()
    }

    /// Declares a primary output.
    pub fn output(&mut self, name: impl Into<String>, wire: Wire) {
        self.check(wire);
        self.outputs.push((name.into(), wire));
    }

    /// Number of nodes created so far (constant + inputs + gates).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if no output was declared.
    pub fn build(self) -> Netlist {
        assert!(!self.outputs.is_empty(), "netlist has no outputs");
        Netlist {
            name: self.name,
            input_names: self.input_names,
            nodes: self.nodes,
            outputs: self.outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Netlist {
        let mut b = NetlistBuilder::new("full_adder");
        let x = b.input("x");
        let y = b.input("y");
        let cin = b.input("cin");
        let s1 = b.xor(x, y);
        let sum = b.xor(s1, cin);
        let carry = b.maj(x, y, cin);
        b.output("sum", sum);
        b.output("cout", carry);
        b.build()
    }

    #[test]
    fn wire_packing() {
        let w = Wire::new(5, true);
        assert_eq!(w.node(), 5);
        assert!(w.is_complemented());
        assert_eq!(w.complement().node(), 5);
        assert!(!w.complement().is_complemented());
        assert_eq!(w.regular(), Wire::new(5, false));
        assert_eq!(w.to_string(), "!n5");
    }

    #[test]
    fn full_adder_truth() {
        let nl = full_adder();
        assert_eq!(nl.num_gates(), 3);
        for m in 0..8u64 {
            let outs = nl.evaluate(m);
            let total = m.count_ones();
            assert_eq!(outs[0], total & 1 == 1, "sum at {m}");
            assert_eq!(outs[1], total >= 2, "carry at {m}");
        }
    }

    #[test]
    fn truth_tables_match_evaluate() {
        let nl = full_adder();
        let tts = nl.truth_tables();
        for m in 0..8u64 {
            let outs = nl.evaluate(m);
            assert_eq!(tts[0].bit(m), outs[0]);
            assert_eq!(tts[1].bit(m), outs[1]);
        }
    }

    #[test]
    fn complemented_outputs_and_constants() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let nand = b.and(x, b.const1());
        b.output("not_x", b.not(nand));
        b.output("zero", b.const0());
        b.output("one", b.const1());
        let nl = b.build();
        assert_eq!(nl.evaluate(0), vec![true, false, true]);
        assert_eq!(nl.evaluate(1), vec![false, false, true]);
    }

    #[test]
    fn mux_gate() {
        let mut b = NetlistBuilder::new("m");
        let s = b.input("s");
        let t = b.input("t");
        let e = b.input("e");
        let m = b.mux(s, t, e);
        b.output("o", m);
        let nl = b.build();
        for mt in 0..8u64 {
            let s = mt & 1 == 1;
            let t = mt & 2 != 0;
            let e = mt & 4 != 0;
            assert_eq!(nl.evaluate(mt)[0], if s { t } else { e });
        }
    }

    #[test]
    fn depth_of_chain() {
        let mut b = NetlistBuilder::new("chain");
        let x = b.input("x");
        let y = b.input("y");
        let mut w = b.and(x, y);
        for _ in 0..9 {
            w = b.xor(w, y);
        }
        b.output("o", w);
        assert_eq!(b.build().depth(), 10);
    }

    #[test]
    fn simulate_words_parallel() {
        let nl = full_adder();
        // Pattern words enumerate all 8 minterm combos in the low bits.
        let x = 0b10101010u64;
        let y = 0b11001100u64;
        let c = 0b11110000u64;
        let outs = nl.simulate_words(&[x, y, c]);
        for bit in 0..8 {
            let m = ((x >> bit) & 1) | (((y >> bit) & 1) << 1) | (((c >> bit) & 1) << 2);
            let expect = nl.evaluate(m);
            assert_eq!((outs[0] >> bit) & 1 == 1, expect[0]);
            assert_eq!((outs[1] >> bit) & 1 == 1, expect[1]);
        }
    }

    #[test]
    #[should_panic(expected = "no outputs")]
    fn build_requires_outputs() {
        let mut b = NetlistBuilder::new("empty");
        b.input("x");
        let _ = b.build();
    }
}
