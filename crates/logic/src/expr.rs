//! A small Boolean expression language.
//!
//! Expressions are convenient for tests, examples, and documentation: they
//! parse from a familiar infix syntax and can be lowered to truth tables or
//! netlists.
//!
//! # Grammar
//!
//! ```text
//! expr    := xor ( '|' xor )*
//! xor     := and ( '^' and )*
//! and     := unary ( '&' unary )*
//! unary   := '!' unary | atom
//! atom    := '0' | '1' | ident | call | '(' expr ')'
//! call    := ('maj' | 'mux') '(' expr ',' expr ',' expr ')'
//! ident   := [A-Za-z_][A-Za-z0-9_]*        (not 'maj'/'mux')
//! ```
//!
//! `maj(a,b,c)` is three-input majority; `mux(s,t,e)` is if-then-else.
//! Variables are indexed in order of first appearance.

use crate::error::ParseCircuitError;
use crate::tt::{TruthTable, MAX_VARS};
use std::collections::BTreeMap;
use std::fmt;

/// A parsed Boolean expression.
///
/// # Example
///
/// ```
/// use rms_logic::expr::Expr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let e = Expr::parse("mux(s, a, b)")?;
/// assert_eq!(e.variables(), &["s", "a", "b"]);
/// let tt = e.to_truth_table()?;
/// assert!(tt.bit(0b011)); // s=1, a=1, b=0 -> a
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    node: ExprNode,
    /// Variable names in index order.
    vars: Vec<String>,
}

/// Expression tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprNode {
    /// Constant false / true.
    Const(bool),
    /// Variable by index into [`Expr::variables`].
    Var(usize),
    /// Negation.
    Not(Box<ExprNode>),
    /// Conjunction.
    And(Box<ExprNode>, Box<ExprNode>),
    /// Disjunction.
    Or(Box<ExprNode>, Box<ExprNode>),
    /// Exclusive or.
    Xor(Box<ExprNode>, Box<ExprNode>),
    /// Three-input majority.
    Maj(Box<ExprNode>, Box<ExprNode>, Box<ExprNode>),
    /// If-then-else (selector, then, else).
    Mux(Box<ExprNode>, Box<ExprNode>, Box<ExprNode>),
}

impl Expr {
    /// Parses an expression from its textual form.
    ///
    /// # Errors
    ///
    /// Returns [`ParseCircuitError`] on malformed input.
    pub fn parse(input: &str) -> Result<Self, ParseCircuitError> {
        let tokens = tokenize(input)?;
        let mut p = Parser {
            tokens: &tokens,
            pos: 0,
            vars: Vec::new(),
            index: BTreeMap::new(),
        };
        let node = p.expr()?;
        if p.pos != p.tokens.len() {
            return Err(ParseCircuitError::new(format!(
                "unexpected trailing token {:?}",
                p.tokens[p.pos]
            )));
        }
        Ok(Expr { node, vars: p.vars })
    }

    /// The variable names, in index order (order of first appearance).
    pub fn variables(&self) -> &[String] {
        &self.vars
    }

    /// The root of the expression tree.
    pub fn root(&self) -> &ExprNode {
        &self.node
    }

    /// Evaluates the expression under an assignment (`assignment[i]` is the
    /// value of variable `i`).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than the variable count.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.vars.len());
        eval_node(&self.node, assignment)
    }

    /// Lowers the expression to a [`TruthTable`].
    ///
    /// # Errors
    ///
    /// Fails if the expression has more than [`MAX_VARS`] variables.
    pub fn to_truth_table(&self) -> Result<TruthTable, ParseCircuitError> {
        let n = self.vars.len();
        if n > MAX_VARS {
            return Err(ParseCircuitError::new(format!(
                "expression has {n} variables, truth tables support at most {MAX_VARS}"
            )));
        }
        Ok(tt_node(&self.node, n))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(node: &ExprNode, vars: &[String], f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match node {
                ExprNode::Const(false) => write!(f, "0"),
                ExprNode::Const(true) => write!(f, "1"),
                ExprNode::Var(i) => write!(f, "{}", vars[*i]),
                ExprNode::Not(a) => {
                    write!(f, "!")?;
                    go_paren(a, vars, f)
                }
                ExprNode::And(a, b) => {
                    go_paren(a, vars, f)?;
                    write!(f, " & ")?;
                    go_paren(b, vars, f)
                }
                ExprNode::Or(a, b) => {
                    go_paren(a, vars, f)?;
                    write!(f, " | ")?;
                    go_paren(b, vars, f)
                }
                ExprNode::Xor(a, b) => {
                    go_paren(a, vars, f)?;
                    write!(f, " ^ ")?;
                    go_paren(b, vars, f)
                }
                ExprNode::Maj(a, b, c) => {
                    write!(f, "maj(")?;
                    go(a, vars, f)?;
                    write!(f, ", ")?;
                    go(b, vars, f)?;
                    write!(f, ", ")?;
                    go(c, vars, f)?;
                    write!(f, ")")
                }
                ExprNode::Mux(s, t, e) => {
                    write!(f, "mux(")?;
                    go(s, vars, f)?;
                    write!(f, ", ")?;
                    go(t, vars, f)?;
                    write!(f, ", ")?;
                    go(e, vars, f)?;
                    write!(f, ")")
                }
            }
        }
        fn go_paren(node: &ExprNode, vars: &[String], f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match node {
                ExprNode::Const(_) | ExprNode::Var(_) | ExprNode::Maj(..) | ExprNode::Mux(..) => {
                    go(node, vars, f)
                }
                _ => {
                    write!(f, "(")?;
                    go(node, vars, f)?;
                    write!(f, ")")
                }
            }
        }
        go(&self.node, &self.vars, f)
    }
}

fn eval_node(node: &ExprNode, a: &[bool]) -> bool {
    match node {
        ExprNode::Const(v) => *v,
        ExprNode::Var(i) => a[*i],
        ExprNode::Not(x) => !eval_node(x, a),
        ExprNode::And(x, y) => eval_node(x, a) && eval_node(y, a),
        ExprNode::Or(x, y) => eval_node(x, a) || eval_node(y, a),
        ExprNode::Xor(x, y) => eval_node(x, a) ^ eval_node(y, a),
        ExprNode::Maj(x, y, z) => {
            let (x, y, z) = (eval_node(x, a), eval_node(y, a), eval_node(z, a));
            #[allow(clippy::nonminimal_bool)] // canonical majority form
            {
                (x && y) || (x && z) || (y && z)
            }
        }
        ExprNode::Mux(s, t, e) => {
            if eval_node(s, a) {
                eval_node(t, a)
            } else {
                eval_node(e, a)
            }
        }
    }
}

fn tt_node(node: &ExprNode, n: usize) -> TruthTable {
    match node {
        ExprNode::Const(false) => TruthTable::zero(n),
        ExprNode::Const(true) => TruthTable::one(n),
        ExprNode::Var(i) => TruthTable::var(n, *i),
        ExprNode::Not(x) => !&tt_node(x, n),
        ExprNode::And(x, y) => &tt_node(x, n) & &tt_node(y, n),
        ExprNode::Or(x, y) => &tt_node(x, n) | &tt_node(y, n),
        ExprNode::Xor(x, y) => &tt_node(x, n) ^ &tt_node(y, n),
        ExprNode::Maj(x, y, z) => TruthTable::maj(&tt_node(x, n), &tt_node(y, n), &tt_node(z, n)),
        ExprNode::Mux(s, t, e) => TruthTable::ite(&tt_node(s, n), &tt_node(t, n), &tt_node(e, n)),
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Const(bool),
    Not,
    And,
    Or,
    Xor,
    LParen,
    RParen,
    Comma,
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseCircuitError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '!' | '~' => {
                chars.next();
                out.push(Token::Not);
            }
            '&' => {
                chars.next();
                if chars.peek() == Some(&'&') {
                    chars.next();
                }
                out.push(Token::And);
            }
            '|' => {
                chars.next();
                if chars.peek() == Some(&'|') {
                    chars.next();
                }
                out.push(Token::Or);
            }
            '^' => {
                chars.next();
                out.push(Token::Xor);
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '0' => {
                chars.next();
                out.push(Token::Const(false));
            }
            '1' => {
                chars.next();
                out.push(Token::Const(true));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(s));
            }
            other => {
                return Err(ParseCircuitError::new(format!(
                    "unexpected character {other:?}"
                )))
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    vars: Vec<String>,
    index: BTreeMap<String, usize>,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Token) -> Result<(), ParseCircuitError> {
        match self.bump() {
            Some(got) if *got == t => Ok(()),
            Some(got) => Err(ParseCircuitError::new(format!(
                "expected {t:?}, found {got:?}"
            ))),
            None => Err(ParseCircuitError::new(format!(
                "expected {t:?}, found end of input (unexpected end)"
            ))),
        }
    }

    fn expr(&mut self) -> Result<ExprNode, ParseCircuitError> {
        let mut lhs = self.xor()?;
        while self.peek() == Some(&Token::Or) {
            self.pos += 1;
            let rhs = self.xor()?;
            lhs = ExprNode::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn xor(&mut self) -> Result<ExprNode, ParseCircuitError> {
        let mut lhs = self.and()?;
        while self.peek() == Some(&Token::Xor) {
            self.pos += 1;
            let rhs = self.and()?;
            lhs = ExprNode::Xor(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<ExprNode, ParseCircuitError> {
        let mut lhs = self.unary()?;
        while self.peek() == Some(&Token::And) {
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = ExprNode::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<ExprNode, ParseCircuitError> {
        if self.peek() == Some(&Token::Not) {
            self.pos += 1;
            let inner = self.unary()?;
            return Ok(ExprNode::Not(Box::new(inner)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<ExprNode, ParseCircuitError> {
        match self.bump().cloned() {
            Some(Token::Const(v)) => Ok(ExprNode::Const(v)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) if name == "maj" || name == "mux" => {
                self.expect(Token::LParen)?;
                let a = self.expr()?;
                self.expect(Token::Comma)?;
                let b = self.expr()?;
                self.expect(Token::Comma)?;
                let c = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(if name == "maj" {
                    ExprNode::Maj(Box::new(a), Box::new(b), Box::new(c))
                } else {
                    ExprNode::Mux(Box::new(a), Box::new(b), Box::new(c))
                })
            }
            Some(Token::Ident(name)) => {
                let next = self.vars.len();
                let idx = *self.index.entry(name.clone()).or_insert_with(|| {
                    self.vars.push(name.clone());
                    next
                });
                Ok(ExprNode::Var(idx))
            }
            Some(t) => Err(ParseCircuitError::new(format!("unexpected token {t:?}"))),
            None => Err(ParseCircuitError::new("unexpected end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let e = Expr::parse("a & b | !c").unwrap();
        assert_eq!(e.variables(), &["a", "b", "c"]);
        assert!(e.eval(&[true, true, true]));
        assert!(e.eval(&[false, false, false]));
        assert!(!e.eval(&[true, false, true]));
    }

    #[test]
    fn precedence_and_over_xor_over_or() {
        // a | b ^ c & d == a | (b ^ (c & d))
        let e = Expr::parse("a | b ^ c & d").unwrap();
        for m in 0..16u32 {
            let a = m & 1 == 1;
            let b = m & 2 != 0;
            let c = m & 4 != 0;
            let d = m & 8 != 0;
            assert_eq!(e.eval(&[a, b, c, d]), a | (b ^ (c & d)));
        }
    }

    #[test]
    fn maj_and_mux_calls() {
        let m = Expr::parse("maj(x, y, z)").unwrap();
        let tt = m.to_truth_table().unwrap();
        for i in 0..8u64 {
            assert_eq!(tt.bit(i), i.count_ones() >= 2);
        }
        let x = Expr::parse("mux(s, t, e)").unwrap();
        assert!(x.eval(&[true, true, false]));
        assert!(!x.eval(&[false, true, false]));
    }

    #[test]
    fn constants_and_double_negation() {
        let e = Expr::parse("!!1 & !0").unwrap();
        assert!(e.eval(&[]));
        assert!(e.variables().is_empty());
    }

    #[test]
    fn c_style_operators() {
        let e = Expr::parse("a && b || ~c").unwrap();
        assert!(e.eval(&[true, true, true]));
    }

    #[test]
    fn display_round_trip() {
        for src in ["a & b | !c", "maj(a, !b, c ^ d)", "mux(s, a, b)"] {
            let e = Expr::parse(src).unwrap();
            let printed = e.to_string();
            let e2 = Expr::parse(&printed).unwrap();
            assert_eq!(
                e.to_truth_table().unwrap(),
                e2.to_truth_table().unwrap(),
                "source {src:?} printed {printed:?}"
            );
        }
    }

    #[test]
    fn errors() {
        assert!(Expr::parse("a &").is_err());
        assert!(Expr::parse("maj(a, b)").is_err());
        assert!(Expr::parse("a @ b").is_err());
        assert!(Expr::parse("(a").is_err());
        assert!(Expr::parse("a b").is_err());
    }

    #[test]
    fn truth_table_matches_eval() {
        let e = Expr::parse("maj(a, b, c) ^ mux(a, c, b)").unwrap();
        let tt = e.to_truth_table().unwrap();
        for m in 0..8u64 {
            let bits = [m & 1 == 1, m & 2 != 0, m & 4 != 0];
            assert_eq!(tt.bit(m), e.eval(&bits), "minterm {m}");
        }
    }
}
