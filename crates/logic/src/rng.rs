//! A tiny deterministic PRNG for reproducible workload generation.
//!
//! The benchmark suite must generate the *same* synthetic circuits on every
//! machine and every run, so it cannot depend on a crate whose stream might
//! change across versions. [`SplitMix64`] is the standard 64-bit mixer of
//! Steele et al.; it is tiny, fast, and has a fixed, well-known output
//! stream.

/// SplitMix64 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use rms_logic::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Creates a generator seeded from a string (FNV-1a hash), so each
    /// benchmark name owns a stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SplitMix64::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection-free multiply-shift; bias is negligible for our bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// A uniformly random boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_value() {
        // Reference value of SplitMix64 seeded with 0.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn name_seeding_distinguishes() {
        let a = SplitMix64::from_name("apex1").next_u64();
        let b = SplitMix64::from_name("apex2").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
            assert!(r.next_index(3) < 3);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(9);
        for _ in 0..100 {
            assert!(r.chance(1, 1));
            assert!(!r.chance(0, 5));
        }
    }
}
