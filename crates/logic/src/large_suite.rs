//! The generated large benchmark suite: EPFL-style arithmetic and
//! control circuits in the 4k–70k-gate range (100k+ MIG nodes after
//! XOR/MUX decomposition).
//!
//! The paper's tables stop at a few hundred gates, but MIG rewriting —
//! like the ABC and mockturtle flows it mirrors — is judged on
//! 10k–1M-node graphs. This module synthesizes that scale
//! deterministically instead of vendoring megabytes of benchmark files:
//! ripple-carry adders and array multipliers (the arithmetic half of
//! the EPFL suite) are built structurally, and the control half comes
//! from [`crate::random::random_netlist`] with fixed seeds, so every
//! checkout reproduces bit-identical circuits.
//!
//! Every name carries an `xl_` prefix to keep the namespace disjoint
//! from [`crate::bench_suite`]; `rms bench --suite large` profiles the
//! whole list and `--bench xl_mul64` (or any other name) feeds one
//! circuit into the normal flow.
//!
//! # Example
//!
//! ```
//! use rms_logic::large_suite;
//!
//! let nl = large_suite::build("xl_mul32").unwrap();
//! assert_eq!(nl.num_inputs(), 64);
//! assert_eq!(nl.num_outputs(), 64);
//! assert!(nl.num_gates() > 3_900);
//! ```

use crate::netlist::{Netlist, NetlistBuilder, Wire};
use crate::random::random_netlist;

/// Construction recipe for one large benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LargeKind {
    /// `bits`-bit ripple-carry adder (`2·bits` inputs, `bits + 1` sum
    /// outputs).
    Adder {
        /// Operand width in bits.
        bits: usize,
    },
    /// `bits × bits` ripple-carry array multiplier (`2·bits` inputs,
    /// `2·bits` product outputs).
    Multiplier {
        /// Operand width in bits.
        bits: usize,
    },
    /// Seeded random control-logic DAG over all gate kinds.
    Control {
        /// RNG seed (fixed per benchmark for reproducibility).
        seed: u64,
        /// Primary inputs.
        inputs: usize,
        /// Primary outputs.
        outputs: usize,
        /// Exact gate count.
        gates: usize,
    },
}

/// One entry of the large suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LargeBenchmarkInfo {
    /// Benchmark name (always `xl_`-prefixed).
    pub name: &'static str,
    /// Construction recipe.
    pub kind: LargeKind,
    /// Approximate netlist gate count, for listings.
    pub approx_gates: usize,
    /// One-line description.
    pub description: &'static str,
}

/// The large suite, ordered by size. `xl_ctrl50k` is the ≥50k-gate
/// anchor circuit the scale acceptance bar is measured on; `xl_mul128`
/// is the stress ceiling (~65k netlist gates, 100k+ MIG nodes).
pub const SUITE: &[LargeBenchmarkInfo] = &[
    LargeBenchmarkInfo {
        name: "xl_mul32",
        kind: LargeKind::Multiplier { bits: 32 },
        approx_gates: 4_000,
        description: "32x32 ripple-carry array multiplier",
    },
    LargeBenchmarkInfo {
        name: "xl_add2048",
        kind: LargeKind::Adder { bits: 2048 },
        approx_gates: 6_100,
        description: "2048-bit ripple-carry adder",
    },
    LargeBenchmarkInfo {
        name: "xl_ctrl10k",
        kind: LargeKind::Control {
            seed: 0xC0DE_0010,
            inputs: 48,
            outputs: 32,
            gates: 10_000,
        },
        approx_gates: 10_000,
        description: "seeded random control DAG, 10k gates",
    },
    LargeBenchmarkInfo {
        name: "xl_mul64",
        kind: LargeKind::Multiplier { bits: 64 },
        approx_gates: 16_900,
        description: "64x64 ripple-carry array multiplier",
    },
    LargeBenchmarkInfo {
        name: "xl_ctrl50k",
        kind: LargeKind::Control {
            seed: 0xC0DE_0050,
            inputs: 64,
            outputs: 32,
            gates: 50_000,
        },
        approx_gates: 50_000,
        description: "seeded random control DAG, 50k gates",
    },
    LargeBenchmarkInfo {
        name: "xl_mul128",
        kind: LargeKind::Multiplier { bits: 128 },
        approx_gates: 68_000,
        description: "128x128 ripple-carry array multiplier",
    },
];

/// Looks up a suite entry by name.
pub fn info(name: &str) -> Option<&'static LargeBenchmarkInfo> {
    SUITE.iter().find(|b| b.name == name)
}

/// Builds a suite circuit by name; `None` for unknown names.
pub fn build(name: &str) -> Option<Netlist> {
    info(name).map(build_info)
}

/// Builds the circuit described by `info`.
pub fn build_info(info: &LargeBenchmarkInfo) -> Netlist {
    match info.kind {
        LargeKind::Adder { bits } => ripple_adder(info.name, bits),
        LargeKind::Multiplier { bits } => array_multiplier(info.name, bits),
        LargeKind::Control {
            seed,
            inputs,
            outputs,
            gates,
        } => random_netlist(info.name, seed, inputs, outputs, gates),
    }
}

/// One full adder: returns `(sum, carry)` of `a + b + c`.
fn full_adder(b: &mut NetlistBuilder, a: Wire, x: Wire, c: Wire) -> (Wire, Wire) {
    let ax = b.xor(a, x);
    let sum = b.xor(ax, c);
    let carry = b.maj(a, x, c);
    (sum, carry)
}

/// `bits`-bit ripple-carry adder: `a + b` with a carry-out output.
fn ripple_adder(name: &str, bits: usize) -> Netlist {
    let mut b = NetlistBuilder::new(name);
    let a_in: Vec<Wire> = (0..bits).map(|i| b.input(format!("a{i}"))).collect();
    let b_in: Vec<Wire> = (0..bits).map(|i| b.input(format!("b{i}"))).collect();
    let mut carry = b.const0();
    let mut sums = Vec::with_capacity(bits + 1);
    for i in 0..bits {
        let (s, c) = full_adder(&mut b, a_in[i], b_in[i], carry);
        sums.push(s);
        carry = c;
    }
    sums.push(carry);
    for (i, s) in sums.into_iter().enumerate() {
        b.output(format!("s{i}"), s);
    }
    b.build()
}

/// `bits × bits` array multiplier: partial products ANDed, rows folded
/// in with ripple-carry adders (LSB-first accumulator).
fn array_multiplier(name: &str, bits: usize) -> Netlist {
    let mut b = NetlistBuilder::new(name);
    let a_in: Vec<Wire> = (0..bits).map(|i| b.input(format!("a{i}"))).collect();
    let b_in: Vec<Wire> = (0..bits).map(|i| b.input(format!("b{i}"))).collect();
    // acc[k] is product bit k of the rows folded in so far.
    let mut acc: Vec<Wire> = (0..bits).map(|j| b.and(a_in[0], b_in[j])).collect();
    for (i, &a_bit) in a_in.iter().enumerate().skip(1) {
        let row: Vec<Wire> = (0..bits).map(|j| b.and(a_bit, b_in[j])).collect();
        // Add `row << i` into the accumulator; bits below i are final.
        let mut carry = b.const0();
        for (j, &r) in row.iter().enumerate() {
            let k = i + j;
            if k < acc.len() {
                let (s, c) = full_adder(&mut b, acc[k], r, carry);
                acc[k] = s;
                carry = c;
            } else {
                // Accumulator grows: no existing bit at this position.
                let s = b.xor(r, carry);
                let c = b.and(r, carry);
                acc.push(s);
                carry = c;
            }
        }
        acc.push(carry);
    }
    acc.truncate(2 * bits);
    while acc.len() < 2 * bits {
        let zero = b.const0();
        acc.push(zero);
    }
    for (k, p) in acc.into_iter().enumerate() {
        b.output(format!("p{k}"), p);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Multiplies via the netlist simulator: drive operand words onto
    /// the inputs and read the product back from one 64-way simulation.
    fn simulate_product(nl: &Netlist, bits: usize, a: u64, b: u64) -> u64 {
        let mut inputs = vec![0u64; 2 * bits];
        for i in 0..bits {
            inputs[i] = if (a >> i) & 1 == 1 { u64::MAX } else { 0 };
            inputs[bits + i] = if (b >> i) & 1 == 1 { u64::MAX } else { 0 };
        }
        let outs = nl.simulate_words(&inputs);
        outs.iter()
            .enumerate()
            .take(64)
            .fold(0u64, |acc, (k, &w)| acc | ((w & 1) << k))
    }

    #[test]
    fn adder_adds() {
        let nl = ripple_adder("add8", 8);
        assert_eq!(nl.num_inputs(), 16);
        assert_eq!(nl.num_outputs(), 9);
        for (a, b) in [(0u64, 0u64), (1, 1), (200, 100), (255, 255), (170, 85)] {
            let mut inputs = vec![0u64; 16];
            for i in 0..8 {
                inputs[i] = if (a >> i) & 1 == 1 { u64::MAX } else { 0 };
                inputs[8 + i] = if (b >> i) & 1 == 1 { u64::MAX } else { 0 };
            }
            let outs = nl.simulate_words(&inputs);
            let got = outs
                .iter()
                .enumerate()
                .fold(0u64, |acc, (k, &w)| acc | ((w & 1) << k));
            assert_eq!(got, a + b, "{a} + {b}");
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let nl = array_multiplier("mul8", 8);
        assert_eq!(nl.num_inputs(), 16);
        assert_eq!(nl.num_outputs(), 16);
        for (a, b) in [(0u64, 7u64), (1, 255), (13, 17), (255, 255), (100, 200)] {
            assert_eq!(simulate_product(&nl, 8, a, b), a * b, "{a} * {b}");
        }
    }

    #[test]
    fn suite_sizes_are_in_range() {
        for info in SUITE {
            let nl = build_info(info);
            let gates = nl.num_gates();
            assert!(
                (3_900..=100_000).contains(&gates),
                "{}: {gates} gates out of range",
                info.name
            );
            // The listed approximation is within 15% of reality.
            let err = gates.abs_diff(info.approx_gates) as f64 / gates as f64;
            assert!(
                err < 0.15,
                "{}: approx {} vs real {gates}",
                info.name,
                info.approx_gates
            );
        }
    }

    #[test]
    fn anchor_circuit_is_at_least_50k_gates() {
        let nl = build("xl_ctrl50k").unwrap();
        assert!(nl.num_gates() >= 50_000, "{}", nl.num_gates());
    }

    #[test]
    fn builds_are_deterministic() {
        let a = build("xl_ctrl10k").unwrap();
        let b = build("xl_ctrl10k").unwrap();
        assert_eq!(a, b);
        assert!(build("xl_nope").is_none());
        assert!(info("xl_mul64").is_some());
    }
}
