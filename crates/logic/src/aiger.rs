//! AIGER reader/writer: the standard interchange format for And-Inverter
//! Graphs, in both its ASCII (`aag`) and binary (`aig`) forms.
//!
//! AIGER is the lingua franca of large benchmark suites (EPFL, HWMCC,
//! ISCAS re-releases), so this module is what lets the engine ingest the
//! 10k–1M-node circuits the MIG rewriting flow is judged on. Both forms
//! share the header `aag|aig M I L O A` (max variable index, inputs,
//! latches, outputs, AND gates); only combinational circuits (`L = 0`)
//! are accepted.
//!
//! A literal is `2·var + complement`; literal 0 is constant false and
//! literal 1 constant true. The ASCII form lists each AND as
//! `lhs rhs0 rhs1` on its own line, in any acyclic order. The binary
//! form omits the input definitions (inputs are implicitly variables
//! `1..=I`), requires ANDs in topological order with
//! `lhs > rhs0 ≥ rhs1`, and stores each AND as two LEB128-style deltas
//! (`lhs − rhs0`, then `rhs0 − rhs1`) in 7-bit groups with a
//! continuation bit — which is why binary AIGER is not valid UTF-8 and
//! the whole input layer works on bytes. Both forms may carry a symbol
//! table (`i0 name`, `o3 name`) and a comment section introduced by a
//! lone `c`.
//!
//! Reading produces a [`Netlist`] of pure [`GateKind::And`] gates with
//! complement marks on wires; writing lowers the richer netlist gate
//! set (OR/XOR/MAJ/MUX) into structurally hashed AND-inverter logic
//! first.
//!
//! # Example
//!
//! ```
//! use rms_logic::aiger;
//! use rms_logic::netlist::NetlistBuilder;
//!
//! let mut b = NetlistBuilder::new("half_adder");
//! let x = b.input("x");
//! let y = b.input("y");
//! let s = b.xor(x, y);
//! let c = b.and(x, y);
//! b.output("sum", s);
//! b.output("carry", c);
//! let nl = b.build();
//!
//! let ascii = aiger::write_ascii(&nl);
//! let binary = aiger::write_binary(&nl);
//! let back = aiger::parse_bytes(ascii.as_bytes()).unwrap();
//! assert_eq!(back.truth_tables(), nl.truth_tables());
//! let back = aiger::parse_bytes(&binary).unwrap();
//! assert_eq!(back.truth_tables(), nl.truth_tables());
//! ```

use crate::error::ParseCircuitError;
use crate::netlist::{GateKind, Netlist, NetlistBuilder, Wire};
use std::collections::HashMap;

/// Refuse headers claiming more than this many variables — a corrupt or
/// hostile header should fail fast, not reserve gigabytes.
const MAX_VARS: u64 = 1 << 28;

/// Returns true when `src` starts with a binary AIGER header (`aig `).
///
/// This is the one format whose payload is not text, so the sniffing
/// layer asks this question before attempting UTF-8 decoding.
pub fn looks_binary(src: &[u8]) -> bool {
    src.starts_with(b"aig ") || src.starts_with(b"aig\t")
}

/// Returns true when `src` starts with an ASCII AIGER header (`aag `).
pub fn looks_ascii(src: &[u8]) -> bool {
    src.starts_with(b"aag ") || src.starts_with(b"aag\t")
}

struct Header {
    max_var: u64,
    inputs: u64,
    latches: u64,
    outputs: u64,
    ands: u64,
}

/// Parses either AIGER form, dispatching on the magic word.
///
/// # Errors
///
/// Returns a [`ParseCircuitError`] for malformed headers, sequential
/// elements (latches), out-of-range or cyclic literals, and truncated
/// binary delta streams.
pub fn parse_bytes(src: &[u8]) -> Result<Netlist, ParseCircuitError> {
    if looks_binary(src) {
        parse_binary(src)
    } else if looks_ascii(src) {
        parse_ascii(src)
    } else {
        Err(ParseCircuitError::new(
            "not an AIGER file: expected 'aag' or 'aig' header",
        ))
    }
}

fn parse_header(line: &str, lineno: usize) -> Result<Header, ParseCircuitError> {
    let mut it = line.split_whitespace();
    let magic = it.next().unwrap_or("");
    if magic != "aag" && magic != "aig" {
        return Err(ParseCircuitError::at_line(lineno, "expected AIGER header"));
    }
    let mut field = |name: &str| -> Result<u64, ParseCircuitError> {
        it.next()
            .and_then(|t| t.parse::<u64>().ok())
            .ok_or_else(|| {
                ParseCircuitError::at_line(lineno, format!("bad AIGER header field '{name}'"))
            })
    };
    let header = Header {
        max_var: field("M")?,
        inputs: field("I")?,
        latches: field("L")?,
        outputs: field("O")?,
        ands: field("A")?,
    };
    if it.next().is_some() {
        return Err(ParseCircuitError::at_line(
            lineno,
            "trailing tokens after AIGER header",
        ));
    }
    if header.max_var > MAX_VARS {
        return Err(ParseCircuitError::at_line(
            lineno,
            format!(
                "AIGER header claims {} variables (limit {MAX_VARS})",
                header.max_var
            ),
        ));
    }
    if header.latches != 0 {
        return Err(ParseCircuitError::at_line(
            lineno,
            "sequential AIGER (latches) is not supported; run a combinational export",
        ));
    }
    if header.inputs + header.latches + header.ands > header.max_var {
        return Err(ParseCircuitError::at_line(
            lineno,
            "AIGER header inconsistent: I + L + A exceeds M",
        ));
    }
    Ok(header)
}

/// Per-variable definition collected before elaboration.
#[derive(Clone, Copy)]
enum VarDef {
    /// Primary input with its 0-based position.
    Input(u32),
    /// AND gate with its two fanin literals.
    And(u64, u64),
}

/// Shared elaboration: turns variable definitions plus output literals
/// into a [`Netlist`], topologically ordering ASCII AND definitions and
/// rejecting cycles and dangling literals.
struct Elaborator {
    defs: Vec<Option<VarDef>>,
    input_names: Vec<Option<String>>,
    output_names: Vec<Option<String>>,
}

impl Elaborator {
    fn new(header: &Header) -> Elaborator {
        Elaborator {
            defs: vec![None; header.max_var as usize + 1],
            input_names: vec![None; header.inputs as usize],
            output_names: vec![None; header.outputs as usize],
        }
    }

    fn define(&mut self, var: u64, def: VarDef, lineno: usize) -> Result<(), ParseCircuitError> {
        if var == 0 || var as usize >= self.defs.len() {
            return Err(ParseCircuitError::at_line(
                lineno,
                format!("variable {var} out of range"),
            ));
        }
        let slot = &mut self.defs[var as usize];
        if slot.is_some() {
            return Err(ParseCircuitError::at_line(
                lineno,
                format!("variable {var} defined twice"),
            ));
        }
        *slot = Some(def);
        Ok(())
    }

    fn symbol(&mut self, line: &str, lineno: usize) -> Result<(), ParseCircuitError> {
        let (kind, rest) = line.split_at(1);
        let Some((pos, name)) = rest.split_once(char::is_whitespace) else {
            return Err(ParseCircuitError::at_line(lineno, "malformed symbol entry"));
        };
        let pos: usize = pos
            .parse()
            .map_err(|_| ParseCircuitError::at_line(lineno, "bad symbol position"))?;
        let table = match kind {
            "i" => &mut self.input_names,
            "o" => &mut self.output_names,
            "l" => {
                return Err(ParseCircuitError::at_line(
                    lineno,
                    "latch symbol in combinational file",
                ))
            }
            _ => return Err(ParseCircuitError::at_line(lineno, "unknown symbol kind")),
        };
        if pos >= table.len() {
            return Err(ParseCircuitError::at_line(
                lineno,
                "symbol position out of range",
            ));
        }
        table[pos] = Some(name.trim().to_string());
        Ok(())
    }

    /// Builds the netlist: inputs in position order, then every defined
    /// AND in dependency order (iterative DFS, cycle-checked).
    fn build(self, name: &str, output_lits: &[u64]) -> Result<Netlist, ParseCircuitError> {
        let mut b = NetlistBuilder::new(name);
        let mut wires: Vec<Option<Wire>> = vec![None; self.defs.len()];
        // Inputs must be declared before any gate; collect them in
        // position order regardless of variable numbering.
        let mut input_vars: Vec<(u32, usize)> = Vec::new();
        for (var, def) in self.defs.iter().enumerate() {
            if let Some(VarDef::Input(pos)) = def {
                input_vars.push((*pos, var));
            }
        }
        input_vars.sort_unstable();
        for (pos, var) in &input_vars {
            let name = self.input_names[*pos as usize]
                .clone()
                .unwrap_or_else(|| format!("x{pos}"));
            wires[*var] = Some(b.input(name));
        }
        // Elaborate ANDs with an explicit DFS stack: ASCII files may list
        // gates in any order, so follow dependencies and reject cycles.
        let mut on_path = vec![false; self.defs.len()];
        for root in 0..self.defs.len() {
            if !matches!(self.defs[root], Some(VarDef::And(..))) || wires[root].is_some() {
                continue;
            }
            let mut stack: Vec<(usize, bool)> = vec![(root, false)];
            while let Some((var, expanded)) = stack.pop() {
                if wires[var].is_some() {
                    continue;
                }
                let Some(VarDef::And(l0, l1)) = self.defs[var] else {
                    return Err(ParseCircuitError::new(format!(
                        "literal {} references undefined variable {var}",
                        2 * var
                    )));
                };
                if expanded {
                    on_path[var] = false;
                    let a = lit_wire(&b, &wires, l0)?;
                    let c = lit_wire(&b, &wires, l1)?;
                    wires[var] = Some(b.and(a, c));
                    continue;
                }
                if on_path[var] {
                    return Err(ParseCircuitError::new(format!(
                        "cyclic AND definition at variable {var}"
                    )));
                }
                on_path[var] = true;
                stack.push((var, true));
                for lit in [l0, l1] {
                    let v = (lit >> 1) as usize;
                    if v != 0 && v < wires.len() && wires[v].is_none() {
                        stack.push((v, false));
                    }
                }
            }
        }
        for (pos, &lit) in output_lits.iter().enumerate() {
            let w = lit_wire(&b, &wires, lit)?;
            let name = self.output_names[pos]
                .clone()
                .unwrap_or_else(|| format!("f{pos}"));
            b.output(name, w);
        }
        Ok(b.build())
    }
}

fn lit_wire(
    b: &NetlistBuilder,
    wires: &[Option<Wire>],
    lit: u64,
) -> Result<Wire, ParseCircuitError> {
    let var = (lit >> 1) as usize;
    let base = if var == 0 {
        b.const0()
    } else {
        *wires.get(var).and_then(|w| w.as_ref()).ok_or_else(|| {
            ParseCircuitError::new(format!("literal {lit} references undefined variable {var}"))
        })?
    };
    Ok(if lit & 1 == 1 {
        base.complement()
    } else {
        base
    })
}

fn parse_ascii(src: &[u8]) -> Result<Netlist, ParseCircuitError> {
    let text = std::str::from_utf8(src)
        .map_err(|_| ParseCircuitError::new("ASCII AIGER file is not valid UTF-8"))?;
    let mut lines = text.lines().enumerate();
    let (lineno, header_line) = lines
        .next()
        .ok_or_else(|| ParseCircuitError::new("empty AIGER file"))?;
    let header = parse_header(header_line, lineno + 1)?;
    let mut elab = Elaborator::new(&header);

    let mut next = |what: &str| -> Result<(usize, &str), ParseCircuitError> {
        lines.next().map(|(n, l)| (n + 1, l)).ok_or_else(|| {
            ParseCircuitError::new(format!("unexpected end of file: missing {what}"))
        })
    };
    for pos in 0..header.inputs {
        let (n, line) = next("input definition")?;
        let lit = parse_lit(line.trim(), n)?;
        if lit & 1 == 1 || lit == 0 {
            return Err(ParseCircuitError::at_line(
                n,
                "input literal must be a positive even number",
            ));
        }
        elab.define(lit >> 1, VarDef::Input(pos as u32), n)?;
    }
    let mut output_lits = Vec::with_capacity(header.outputs as usize);
    for _ in 0..header.outputs {
        let (n, line) = next("output definition")?;
        let lit = parse_lit(line.trim(), n)?;
        check_lit_range(lit, header.max_var, n)?;
        output_lits.push(lit);
    }
    for _ in 0..header.ands {
        let (n, line) = next("AND definition")?;
        let mut it = line.split_whitespace();
        let (Some(lhs), Some(r0), Some(r1), None) = (it.next(), it.next(), it.next(), it.next())
        else {
            return Err(ParseCircuitError::at_line(
                n,
                "AND definition must be 'lhs rhs0 rhs1'",
            ));
        };
        let (lhs, r0, r1) = (parse_lit(lhs, n)?, parse_lit(r0, n)?, parse_lit(r1, n)?);
        if lhs & 1 == 1 || lhs == 0 {
            return Err(ParseCircuitError::at_line(
                n,
                "AND left-hand side must be a positive even literal",
            ));
        }
        check_lit_range(r0, header.max_var, n)?;
        check_lit_range(r1, header.max_var, n)?;
        elab.define(lhs >> 1, VarDef::And(r0, r1), n)?;
    }
    // Symbol table and comment section.
    let mut model_name = None;
    let mut in_comments = false;
    for (n, line) in lines {
        let line = line.trim_end_matches('\r');
        if in_comments {
            // The first comment line carries the model name (that is
            // where `write_ascii`/`write_binary` put it).
            if !line.is_empty() {
                model_name = Some(line.to_string());
                break;
            }
            continue;
        }
        if line == "c" {
            in_comments = true;
            continue;
        }
        if line.is_empty() {
            continue;
        }
        elab.symbol(line, n + 1)?;
    }
    elab.build(model_name.as_deref().unwrap_or("aiger"), &output_lits)
}

fn parse_lit(token: &str, lineno: usize) -> Result<u64, ParseCircuitError> {
    token
        .parse::<u64>()
        .map_err(|_| ParseCircuitError::at_line(lineno, format!("bad literal '{token}'")))
}

fn check_lit_range(lit: u64, max_var: u64, lineno: usize) -> Result<(), ParseCircuitError> {
    if lit >> 1 > max_var {
        return Err(ParseCircuitError::at_line(
            lineno,
            format!("literal {lit} exceeds declared maximum variable {max_var}"),
        ));
    }
    Ok(())
}

fn parse_binary(src: &[u8]) -> Result<Netlist, ParseCircuitError> {
    let newline = src
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| ParseCircuitError::new("binary AIGER: missing header newline"))?;
    let header_line = std::str::from_utf8(&src[..newline])
        .map_err(|_| ParseCircuitError::new("binary AIGER: header is not ASCII"))?
        .trim_end_matches('\r');
    let header = parse_header(header_line, 1)?;
    let mut elab = Elaborator::new(&header);
    for pos in 0..header.inputs {
        // Binary form: input `pos` is implicitly variable `pos + 1`.
        elab.define(pos + 1, VarDef::Input(pos as u32), 1)?;
    }
    let mut offset = newline + 1;
    let mut output_lits = Vec::with_capacity(header.outputs as usize);
    for i in 0..header.outputs {
        let end = src[offset..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| offset + p)
            .ok_or_else(|| {
                ParseCircuitError::new(format!("binary AIGER: missing output literal {i}"))
            })?;
        let token = std::str::from_utf8(&src[offset..end])
            .map_err(|_| ParseCircuitError::new("binary AIGER: output line is not ASCII"))?
            .trim();
        let lit = parse_lit(token, 0)?;
        check_lit_range(lit, header.max_var, 0)?;
        output_lits.push(lit);
        offset = end + 1;
    }
    // AND section: for gate i, lhs = 2·(I + L + i + 1); the stream stores
    // delta0 = lhs − rhs0 and delta1 = rhs0 − rhs1 as 7-bit groups with a
    // continuation bit (LEB128 without the sign handling).
    for i in 0..header.ands {
        let lhs = 2 * (header.inputs + header.latches + i + 1);
        let (delta0, next) = decode_delta(src, offset, lhs)?;
        let (delta1, next) = decode_delta(src, next, lhs)?;
        let rhs0 = lhs.checked_sub(delta0).ok_or_else(|| {
            ParseCircuitError::new(format!("binary AIGER: delta underflow at AND {i}"))
        })?;
        let rhs1 = rhs0.checked_sub(delta1).ok_or_else(|| {
            ParseCircuitError::new(format!("binary AIGER: delta underflow at AND {i}"))
        })?;
        if delta0 == 0 {
            return Err(ParseCircuitError::new(format!(
                "binary AIGER: AND {i} must satisfy lhs > rhs0"
            )));
        }
        elab.define(lhs >> 1, VarDef::And(rhs0, rhs1), 0)?;
        offset = next;
    }
    // Optional symbol table and comments, line-oriented text again.
    let mut model_name = None;
    if offset < src.len() {
        let tail = std::str::from_utf8(&src[offset..])
            .map_err(|_| ParseCircuitError::new("binary AIGER: symbol section is not UTF-8"))?;
        let mut in_comments = false;
        for (n, line) in tail.lines().enumerate() {
            let line = line.trim_end_matches('\r');
            if in_comments {
                // The first comment line carries the model name (that is
                // where `write_ascii`/`write_binary` put it).
                if !line.is_empty() {
                    model_name = Some(line.to_string());
                    break;
                }
                continue;
            }
            if line == "c" {
                in_comments = true;
                continue;
            }
            if line.is_empty() {
                continue;
            }
            elab.symbol(line, n + 1)?;
        }
    }
    elab.build(model_name.as_deref().unwrap_or("aiger"), &output_lits)
}

/// Decodes one LEB128-style delta starting at `offset`; returns the
/// value and the offset one past its last byte.
fn decode_delta(
    src: &[u8],
    mut offset: usize,
    lhs: u64,
) -> Result<(u64, usize), ParseCircuitError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = src.get(offset).ok_or_else(|| {
            ParseCircuitError::new("binary AIGER: truncated delta stream in AND section")
        })?;
        offset += 1;
        if shift >= 63 {
            return Err(ParseCircuitError::new(
                "binary AIGER: delta encoding longer than 63 bits",
            ));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    if value > lhs {
        return Err(ParseCircuitError::new(format!(
            "binary AIGER: delta {value} exceeds left-hand literal {lhs}"
        )));
    }
    Ok((value, offset))
}

/// Encodes one delta in the 7-bit-group format used by binary AIGER.
fn encode_delta(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// The netlist lowered to and-inverter form: literals per node, the AND
/// definitions in topological order, and the output literals.
struct Lowered {
    num_inputs: u64,
    /// `(rhs0, rhs1)` per AND; gate `i` defines literal `2·(I + i + 1)`.
    ands: Vec<(u64, u64)>,
    outputs: Vec<u64>,
}

/// Lowers every netlist gate to AND-inverter logic with structural
/// hashing and constant folding, producing binary-AIGER-ready
/// (topologically numbered) gates.
fn lower(nl: &Netlist) -> Lowered {
    let num_inputs = nl.num_inputs() as u64;
    let mut ands: Vec<(u64, u64)> = Vec::new();
    let mut strash: HashMap<(u64, u64), u64> = HashMap::new();
    // Literal per netlist node (uncomplemented reference).
    let mut lit_of: Vec<u64> = vec![0; nl.num_nodes()];
    for i in 0..nl.num_inputs() {
        lit_of[1 + i] = 2 * (i as u64 + 1);
    }
    let mk_and = |ands: &mut Vec<(u64, u64)>,
                  strash: &mut HashMap<(u64, u64), u64>,
                  a: u64,
                  b: u64|
     -> u64 {
        let (a, b) = if a >= b { (a, b) } else { (b, a) };
        if b == 0 {
            return 0; // x & false
        }
        if b == 1 || a == b {
            return a; // x & true, x & x
        }
        if a == b ^ 1 {
            return 0; // x & !x
        }
        if let Some(&lit) = strash.get(&(a, b)) {
            return lit;
        }
        let lit = 2 * (num_inputs + ands.len() as u64 + 1);
        ands.push((a, b));
        strash.insert((a, b), lit);
        lit
    };
    for (idx, gate) in nl.gates() {
        let lit = |w: Wire| lit_of[w.node()] ^ u64::from(w.is_complemented());
        let f: Vec<u64> = gate.fanins.iter().map(|&w| lit(w)).collect();
        lit_of[idx] = match gate.kind {
            GateKind::And => mk_and(&mut ands, &mut strash, f[0], f[1]),
            GateKind::Or => mk_and(&mut ands, &mut strash, f[0] ^ 1, f[1] ^ 1) ^ 1,
            GateKind::Xor => {
                let p = mk_and(&mut ands, &mut strash, f[0], f[1] ^ 1);
                let q = mk_and(&mut ands, &mut strash, f[0] ^ 1, f[1]);
                mk_and(&mut ands, &mut strash, p ^ 1, q ^ 1) ^ 1
            }
            GateKind::Maj => {
                let ab = mk_and(&mut ands, &mut strash, f[0], f[1]);
                let ac = mk_and(&mut ands, &mut strash, f[0], f[2]);
                let bc = mk_and(&mut ands, &mut strash, f[1], f[2]);
                let t = mk_and(&mut ands, &mut strash, ab ^ 1, ac ^ 1);
                mk_and(&mut ands, &mut strash, t, bc ^ 1) ^ 1
            }
            GateKind::Mux => {
                let st = mk_and(&mut ands, &mut strash, f[0], f[1]);
                let se = mk_and(&mut ands, &mut strash, f[0] ^ 1, f[2]);
                mk_and(&mut ands, &mut strash, st ^ 1, se ^ 1) ^ 1
            }
        };
    }
    let outputs = nl
        .outputs()
        .iter()
        .map(|(_, w)| lit_of[w.node()] ^ u64::from(w.is_complemented()))
        .collect();
    Lowered {
        num_inputs,
        ands,
        outputs,
    }
}

fn push_symbols(out: &mut String, nl: &Netlist) {
    use std::fmt::Write as _;
    for (pos, name) in nl.input_names().iter().enumerate() {
        let _ = writeln!(out, "i{pos} {name}");
    }
    for (pos, (name, _)) in nl.outputs().iter().enumerate() {
        let _ = writeln!(out, "o{pos} {name}");
    }
    let _ = writeln!(out, "c");
    let _ = writeln!(out, "{}", nl.name());
}

/// Serializes `nl` as ASCII AIGER (`aag`), lowering non-AND gates.
pub fn write_ascii(nl: &Netlist) -> String {
    use std::fmt::Write as _;
    let low = lower(nl);
    let max_var = low.num_inputs + low.ands.len() as u64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "aag {max_var} {} 0 {} {}",
        low.num_inputs,
        low.outputs.len(),
        low.ands.len()
    );
    for i in 0..low.num_inputs {
        let _ = writeln!(out, "{}", 2 * (i + 1));
    }
    for &lit in &low.outputs {
        let _ = writeln!(out, "{lit}");
    }
    for (i, &(r0, r1)) in low.ands.iter().enumerate() {
        let lhs = 2 * (low.num_inputs + i as u64 + 1);
        let _ = writeln!(out, "{lhs} {r0} {r1}");
    }
    push_symbols(&mut out, nl);
    out
}

/// Serializes `nl` as binary AIGER (`aig`), lowering non-AND gates.
pub fn write_binary(nl: &Netlist) -> Vec<u8> {
    let low = lower(nl);
    let max_var = low.num_inputs + low.ands.len() as u64;
    let mut out = Vec::new();
    out.extend_from_slice(
        format!(
            "aig {max_var} {} 0 {} {}\n",
            low.num_inputs,
            low.outputs.len(),
            low.ands.len()
        )
        .as_bytes(),
    );
    for &lit in &low.outputs {
        out.extend_from_slice(format!("{lit}\n").as_bytes());
    }
    for (i, &(r0, r1)) in low.ands.iter().enumerate() {
        let lhs = 2 * (low.num_inputs + i as u64 + 1);
        // Structural hashing orders fanins rhs0 ≥ rhs1, as required.
        encode_delta(&mut out, lhs - r0);
        encode_delta(&mut out, r0 - r1);
    }
    let mut symbols = String::new();
    push_symbols(&mut symbols, nl);
    out.extend_from_slice(symbols.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_netlist;

    fn check_round_trip(nl: &Netlist) {
        let want = nl.truth_tables();
        let ascii = write_ascii(nl);
        let from_ascii = parse_bytes(ascii.as_bytes()).expect("parse ascii");
        assert_eq!(from_ascii.truth_tables(), want, "ascii round trip");
        let binary = write_binary(nl);
        let from_binary = parse_bytes(&binary).expect("parse binary");
        assert_eq!(from_binary.truth_tables(), want, "binary round trip");
        // Re-serializing the parsed netlist must be a fixpoint.
        assert_eq!(write_ascii(&from_binary), write_ascii(&from_ascii));
    }

    #[test]
    fn round_trips_all_gate_kinds() {
        let mut b = NetlistBuilder::new("kinds");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let a = b.and(x, y);
        let o = b.or(a, z.complement());
        let e = b.xor(o, x);
        let m = b.maj(a, o, e);
        let u = b.mux(z, m, e.complement());
        b.output("f0", u);
        b.output("f1", m.complement());
        b.output("f2", b.const1());
        check_round_trip(&b.build());
    }

    #[test]
    fn round_trips_random_netlists() {
        for seed in 0..8u64 {
            let nl = random_netlist("rt", seed, 6, 3, 40);
            check_round_trip(&nl);
        }
    }

    #[test]
    fn parses_reference_ascii_file() {
        // Half adder from the AIGER format documentation.
        let src = "aag 7 2 0 2 3\n2\n4\n6\n12\n6 13 15\n12 2 4\n14 3 5\ni0 x\ni1 y\no0 s\no1 c\n";
        let nl = parse_bytes(src.as_bytes()).expect("parse");
        assert_eq!(nl.num_inputs(), 2);
        assert_eq!(nl.num_outputs(), 2);
        assert_eq!(nl.input_names()[0], "x");
        assert_eq!(nl.outputs()[0].0, "s");
        let tts = nl.truth_tables();
        assert_eq!(tts[0].count_ones(), 2, "sum is XOR");
        assert_eq!(tts[1].count_ones(), 1, "carry is AND");
    }

    #[test]
    fn ascii_accepts_out_of_order_ands() {
        // Same half adder with the AND list permuted.
        let src = "aag 7 2 0 2 3\n2\n4\n6\n12\n12 2 4\n14 3 5\n6 13 15\n";
        let nl = parse_bytes(src.as_bytes()).expect("parse");
        assert_eq!(nl.truth_tables()[0].count_ones(), 2);
    }

    #[test]
    fn binary_delta_encoding_round_trips() {
        for value in [0u64, 1, 127, 128, 255, 16383, 16384, 1 << 40] {
            let mut buf = Vec::new();
            encode_delta(&mut buf, value);
            let (decoded, next) = decode_delta(&buf, 0, u64::MAX).expect("decode");
            assert_eq!(decoded, value);
            assert_eq!(next, buf.len());
        }
    }

    #[test]
    fn rejects_malformed_inputs() {
        let cases: &[(&[u8], &str)] = &[
            (b"vag 1 1 0 1 0\n", "header"),
            (b"aag 1 1 1 1 0\n2\n2 2\n2\n", "latches"),
            (b"aag 1 1 0 1 0\n3\n2\n", "even"),
            (b"aag 2 1 0 1 1\n2\n4\n4 9 2\n", "exceeds"),
            (b"aag 2 1 0 1 1\n2\n4\n4 5 2\n", "cyclic"),
            (b"aag 99999999999 1 0 1 0\n", "variables"),
            (b"aig 2 1 0 1 1\n4\n", "truncated"),
            (b"", "AIGER"),
        ];
        for (src, needle) in cases {
            let err = parse_bytes(src).expect_err("must fail").to_string();
            assert!(err.contains(needle), "error '{err}' lacks '{needle}'");
        }
    }

    #[test]
    fn binary_rejects_zero_delta0() {
        // delta0 = 0 would make lhs == rhs0 (self-reference).
        let mut src = b"aig 2 1 0 1 1\n4\n".to_vec();
        src.push(0); // delta0 = 0
        src.push(2); // delta1 = 2
        let err = parse_bytes(&src).expect_err("must fail").to_string();
        assert!(err.contains("lhs > rhs0"), "{err}");
    }

    #[test]
    fn constant_outputs_and_folding() {
        let mut b = NetlistBuilder::new("c");
        let x = b.input("x");
        let dead = b.and(x, x.complement()); // folds to const0
        b.output("zero", dead);
        b.output("one", b.const1());
        let nl = b.build();
        let ascii = write_ascii(&nl);
        assert!(ascii.starts_with("aag 1 1 0 2 0\n"), "{ascii}");
        check_round_trip(&nl);
    }
}
