//! The embedded benchmark suite.
//!
//! The paper evaluates on 25 ISCAS89/LGsynth91 circuits (Table II, also the
//! left half of Table III) and 25 small single-output functions (right half
//! of Table III). Those suites are distributed as BLIF/PLA files we cannot
//! ship, so this module substitutes:
//!
//! - **exact re-implementations** for every function with a public
//!   definition (`parity`, `xor5`, the `rd53/73/84` rank decoders, the
//!   symmetric functions `9sym`/`sym10`, the `cm150a` multiplexer, and a
//!   family of documented arithmetic circuits for `5xp1`, `alu4`, `clip`,
//!   `t481`, `con1`, `max46`, `sao2`), and
//! - **deterministic synthetic circuits** (seeded by benchmark name, layered
//!   random DAGs) with the original input/output counts and comparable size
//!   for the remaining names.
//!
//! The evaluation claims the harness must reproduce are structural — which
//! realization/algorithm wins and by roughly what factor — and hold for any
//! circuit population of this scale; the harness prints the paper-reported
//! numbers (see [`crate::paper_data`]) next to the measured ones. Users
//! with the original files can load them through [`crate::blif`] /
//! [`crate::pla`] instead.

use crate::netlist::{Netlist, NetlistBuilder, Wire};
use crate::rng::SplitMix64;

/// How a benchmark circuit is constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchKind {
    /// Functionally defined circuit (documented definition).
    Exact,
    /// Seeded synthetic circuit with approximately this many gates.
    Synthetic {
        /// Target gate count of the generator.
        gates: usize,
    },
}

/// Static description of one suite entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkInfo {
    /// Benchmark name as used in the paper's tables.
    pub name: &'static str,
    /// Number of primary inputs (matches the paper).
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Construction recipe.
    pub kind: BenchKind,
    /// One-line description of what we build for this name.
    pub description: &'static str,
}

const fn exact(
    name: &'static str,
    inputs: usize,
    outputs: usize,
    description: &'static str,
) -> BenchmarkInfo {
    BenchmarkInfo {
        name,
        inputs,
        outputs,
        kind: BenchKind::Exact,
        description,
    }
}

const fn synth(name: &'static str, inputs: usize, outputs: usize, gates: usize) -> BenchmarkInfo {
    BenchmarkInfo {
        name,
        inputs,
        outputs,
        kind: BenchKind::Synthetic { gates },
        description: "seeded synthetic layered DAG with the original I/O counts",
    }
}

/// The 25 circuits of Table II (and Table III, left half).
pub const LARGE_SUITE: &[BenchmarkInfo] = &[
    exact("5xp1", 7, 10, "3x4-bit multiply plus low bits of the sum"),
    exact("alu4", 14, 8, "4-bit ALU: add/and/or/xor with flags"),
    synth("apex1", 45, 45, 1000),
    synth("apex2", 39, 3, 150),
    synth("apex4", 9, 19, 1500),
    synth("apex5", 117, 88, 500),
    synth("apex6", 135, 99, 450),
    synth("apex7", 49, 37, 120),
    synth("b9", 41, 21, 100),
    exact("clip", 9, 5, "saturating 5-bit minus 4-bit subtractor"),
    exact("cm150a", 21, 1, "16:1 multiplexer with enable"),
    synth("cm162a", 14, 5, 40),
    synth("cm163a", 16, 5, 40),
    synth("cordic", 23, 2, 80),
    synth("misex1", 8, 7, 45),
    synth("misex3", 14, 14, 600),
    exact("parity", 16, 1, "16-input odd parity"),
    synth("seq", 41, 35, 800),
    exact("t481", 16, 1, "equal-popcount test of the two 8-bit halves"),
    synth("table5", 17, 15, 650),
    synth("too_large", 38, 3, 130),
    synth("x1", 51, 35, 180),
    synth("x2", 10, 7, 30),
    synth("x3", 135, 99, 430),
    synth("x4", 94, 71, 230),
];

/// The 25 single-output functions of Table III (right half).
pub const SMALL_SUITE: &[BenchmarkInfo] = &[
    exact("9sym_d", 9, 1, "1 iff input weight is in 3..=6"),
    exact(
        "con1_f1",
        7,
        1,
        "3-bit value strictly less than 4-bit value",
    ),
    exact("con2_f2", 7, 1, "input weight is a multiple of 3"),
    exact("exam1_d", 3, 1, "maj(a, b, !c)"),
    exact("exam3_d", 4, 1, "(a^b)&(c|d) | (a&d)"),
    exact("max46_d", 9, 1, "4x5-bit product mod 64 is at least 46"),
    exact("newill_d", 8, 1, "majority of three nibble predicates"),
    exact(
        "newtag_d",
        8,
        1,
        "low nibble equals bit-reversed high nibble",
    ),
    exact("rd53_f1", 5, 1, "bit 0 (parity) of the 5-input weight"),
    exact("rd53_f2", 5, 1, "bit 1 of the 5-input weight"),
    exact("rd53_f3", 5, 1, "bit 2 of the 5-input weight"),
    exact("rd73_f1", 7, 1, "bit 0 (parity) of the 7-input weight"),
    exact("rd73_f2", 7, 1, "bit 1 of the 7-input weight"),
    exact("rd73_f3", 7, 1, "bit 2 of the 7-input weight"),
    exact("rd84_f1", 8, 1, "bit 0 (parity) of the 8-input weight"),
    exact("rd84_f2", 8, 1, "bit 1 of the 8-input weight"),
    exact("rd84_f3", 8, 1, "bit 2 of the 8-input weight"),
    exact("rd84_f4", 8, 1, "bit 3 of the 8-input weight"),
    exact("sao2_f1", 10, 1, "5-bit a strictly greater than 5-bit b"),
    exact("sao2_f2", 10, 1, "5-bit a equal to 5-bit b"),
    exact("sao2_f3", 10, 1, "parity of bitwise a&b"),
    exact("sao2_f4", 10, 1, "carry-out of a+b"),
    exact("sym10_d", 10, 1, "1 iff input weight is in 3..=6"),
    exact(
        "t481_d",
        16,
        1,
        "equal-popcount test of the two 8-bit halves",
    ),
    exact("xor5_d", 5, 1, "5-input odd parity"),
];

/// Looks up a suite entry by name in both suites.
pub fn info(name: &str) -> Option<&'static BenchmarkInfo> {
    LARGE_SUITE
        .iter()
        .chain(SMALL_SUITE.iter())
        .find(|b| b.name == name)
}

/// Builds a benchmark circuit by name.
///
/// Returns `None` for unknown names. The same name always produces the
/// identical netlist (generators are deterministic).
pub fn build(name: &str) -> Option<Netlist> {
    let info = info(name)?;
    Some(build_info(info))
}

/// Builds the circuit described by `info`.
pub fn build_info(info: &BenchmarkInfo) -> Netlist {
    let nl = match info.kind {
        BenchKind::Synthetic { gates } => synthetic(info.name, info.inputs, info.outputs, gates),
        BenchKind::Exact => build_exact(info.name),
    };
    debug_assert_eq!(nl.num_inputs(), info.inputs, "{}", info.name);
    debug_assert_eq!(nl.num_outputs(), info.outputs, "{}", info.name);
    nl
}

/// Builds every circuit of the large (Table II) suite.
pub fn large_suite() -> Vec<Netlist> {
    LARGE_SUITE.iter().map(build_info).collect()
}

/// Builds every circuit of the small (Table III right) suite.
pub fn small_suite() -> Vec<Netlist> {
    SMALL_SUITE.iter().map(build_info).collect()
}

fn build_exact(name: &str) -> Netlist {
    match name {
        "5xp1" => five_xp1(),
        "alu4" => alu4(),
        "clip" => clip(),
        "cm150a" => cm150a(),
        "parity" => parity("parity", 16),
        "t481" | "t481_d" => t481(name),
        "9sym_d" => symmetric(name, 9, 3, 6),
        "sym10_d" => symmetric(name, 10, 3, 6),
        "con1_f1" => con1_f1(),
        "con2_f2" => con2_f2(),
        "exam1_d" => exam1(),
        "exam3_d" => exam3(),
        "max46_d" => max46(),
        "newill_d" => newill(),
        "newtag_d" => newtag(),
        "rd53_f1" => rd_bit(name, 5, 0),
        "rd53_f2" => rd_bit(name, 5, 1),
        "rd53_f3" => rd_bit(name, 5, 2),
        "rd73_f1" => rd_bit(name, 7, 0),
        "rd73_f2" => rd_bit(name, 7, 1),
        "rd73_f3" => rd_bit(name, 7, 2),
        "rd84_f1" => rd_bit(name, 8, 0),
        "rd84_f2" => rd_bit(name, 8, 1),
        "rd84_f3" => rd_bit(name, 8, 2),
        "rd84_f4" => rd_bit(name, 8, 3),
        "sao2_f1" => sao2(name, 0),
        "sao2_f2" => sao2(name, 1),
        "sao2_f3" => sao2(name, 2),
        "sao2_f4" => sao2(name, 3),
        "xor5_d" => parity(name, 5),
        other => unreachable!("exact benchmark {other} has no generator"),
    }
}

// ---------------------------------------------------------------------------
// Arithmetic building blocks
// ---------------------------------------------------------------------------

/// Full adder; returns (sum, carry).
fn full_add(b: &mut NetlistBuilder, x: Wire, y: Wire, c: Wire) -> (Wire, Wire) {
    let t = b.xor(x, y);
    let sum = b.xor(t, c);
    let carry = b.maj(x, y, c);
    (sum, carry)
}

/// Half adder; returns (sum, carry).
fn half_add(b: &mut NetlistBuilder, x: Wire, y: Wire) -> (Wire, Wire) {
    (b.xor(x, y), b.and(x, y))
}

/// Ripple-carry addition of two little-endian vectors (widths may differ);
/// result is one bit wider than the longer operand.
fn add_vec(b: &mut NetlistBuilder, xs: &[Wire], ys: &[Wire]) -> Vec<Wire> {
    let width = xs.len().max(ys.len());
    let mut out = Vec::with_capacity(width + 1);
    let mut carry = b.const0();
    for i in 0..width {
        match (xs.get(i), ys.get(i)) {
            (Some(&x), Some(&y)) => {
                let (s, c) = full_add(b, x, y, carry);
                out.push(s);
                carry = c;
            }
            (Some(&x), None) | (None, Some(&x)) => {
                let (s, c) = half_add(b, x, carry);
                out.push(s);
                carry = c;
            }
            (None, None) => unreachable!(),
        }
    }
    out.push(carry);
    out
}

/// Two's-complement subtraction `xs - ys` of equal-width vectors; returns
/// (difference bits, borrow) where borrow is 1 iff `xs < ys`.
fn sub_vec(b: &mut NetlistBuilder, xs: &[Wire], ys: &[Wire]) -> (Vec<Wire>, Wire) {
    assert_eq!(xs.len(), ys.len());
    let mut out = Vec::with_capacity(xs.len());
    // xs + !ys + 1
    let mut carry = b.const1();
    for (&x, &y) in xs.iter().zip(ys) {
        let (s, c) = full_add(b, x, y.complement(), carry);
        out.push(s);
        carry = c;
    }
    (out, carry.complement())
}

/// Population count of the given bits as a little-endian vector.
fn popcount(b: &mut NetlistBuilder, xs: &[Wire]) -> Vec<Wire> {
    let width = usize::BITS as usize - xs.len().leading_zeros() as usize; // ceil(log2(n+1))
    let mut acc: Vec<Wire> = Vec::new();
    for &x in xs {
        // acc += x (ripple a single carry through).
        let mut carry = x;
        for bit in acc.iter_mut() {
            let (s, c) = half_add(b, *bit, carry);
            *bit = s;
            carry = c;
        }
        if acc.len() < width {
            acc.push(carry);
        }
    }
    while acc.len() < width {
        acc.push(b.const0());
    }
    acc
}

/// Unsigned comparison `value(xs) >= k`.
fn ge_const(b: &mut NetlistBuilder, xs: &[Wire], k: u64) -> Wire {
    if k == 0 {
        return b.const1();
    }
    if k >= (1u64 << xs.len()) {
        return b.const0();
    }
    let mut gt = b.const0();
    let mut eq = b.const1();
    for i in (0..xs.len()).rev() {
        let kb = (k >> i) & 1 == 1;
        if kb {
            // x_i must be 1 to stay equal; cannot become greater here.
            eq = b.and(eq, xs[i]);
        } else {
            // x_i = 1 while still equal makes the value greater.
            let g = b.and(eq, xs[i]);
            gt = b.or(gt, g);
            eq = b.and(eq, xs[i].complement());
        }
    }
    b.or(gt, eq)
}

/// Equality of two equal-width vectors.
fn eq_vec(b: &mut NetlistBuilder, xs: &[Wire], ys: &[Wire]) -> Wire {
    assert_eq!(xs.len(), ys.len());
    let mut acc = b.const1();
    for (&x, &y) in xs.iter().zip(ys) {
        let d = b.xor(x, y);
        acc = b.and(acc, d.complement());
    }
    acc
}

/// Shift-and-add multiplier; result width is `xs.len() + ys.len()`.
fn mul_vec(b: &mut NetlistBuilder, xs: &[Wire], ys: &[Wire]) -> Vec<Wire> {
    let width = xs.len() + ys.len();
    let mut acc: Vec<Wire> = vec![b.const0(); width];
    for (i, &y) in ys.iter().enumerate() {
        // partial = (xs & y) << i ; acc += partial
        let mut carry = b.const0();
        for (j, &x) in xs.iter().enumerate() {
            let p = b.and(x, y);
            let (s, c) = full_add(b, acc[i + j], p, carry);
            acc[i + j] = s;
            carry = c;
        }
        let mut k = i + xs.len();
        while k < width {
            let (s, c) = half_add(b, acc[k], carry);
            acc[k] = s;
            carry = c;
            k += 1;
        }
    }
    acc
}

/// XOR-reduce.
fn xor_reduce(b: &mut NetlistBuilder, xs: &[Wire]) -> Wire {
    let mut acc = xs[0];
    for &x in &xs[1..] {
        acc = b.xor(acc, x);
    }
    acc
}

// ---------------------------------------------------------------------------
// Exact benchmark generators
// ---------------------------------------------------------------------------

fn parity(name: &str, n: usize) -> Netlist {
    let mut b = NetlistBuilder::new(name);
    let ins: Vec<Wire> = (0..n).map(|i| b.input(format!("x{i}"))).collect();
    let p = xor_reduce(&mut b, &ins);
    b.output("f", p);
    b.build()
}

/// Bit `bit` of the input weight (the `rdXX` rank-decoder outputs).
fn rd_bit(name: &str, n: usize, bit: usize) -> Netlist {
    let mut b = NetlistBuilder::new(name);
    let ins: Vec<Wire> = (0..n).map(|i| b.input(format!("x{i}"))).collect();
    let cnt = popcount(&mut b, &ins);
    b.output("f", cnt[bit]);
    b.build()
}

/// 1 iff the input weight lies in `lo..=hi`.
fn symmetric(name: &str, n: usize, lo: u64, hi: u64) -> Netlist {
    let mut b = NetlistBuilder::new(name);
    let ins: Vec<Wire> = (0..n).map(|i| b.input(format!("x{i}"))).collect();
    let cnt = popcount(&mut b, &ins);
    let ge_lo = ge_const(&mut b, &cnt, lo);
    let gt_hi = ge_const(&mut b, &cnt, hi + 1);
    let f = b.and(ge_lo, gt_hi.complement());
    b.output("f", f);
    b.build()
}

/// `5xp1`: 3x4-bit product (7 bits) plus the low 3 bits of the sum.
fn five_xp1() -> Netlist {
    let mut b = NetlistBuilder::new("5xp1");
    let xs: Vec<Wire> = (0..3).map(|i| b.input(format!("x{i}"))).collect();
    let ys: Vec<Wire> = (0..4).map(|i| b.input(format!("y{i}"))).collect();
    let prod = mul_vec(&mut b, &xs, &ys);
    let sum = add_vec(&mut b, &xs, &ys);
    for (i, &w) in prod.iter().enumerate() {
        b.output(format!("p{i}"), w);
    }
    for (i, &w) in sum.iter().take(3).enumerate() {
        b.output(format!("s{i}"), w);
    }
    b.build()
}

/// `alu4`: 4-bit ALU. Inputs a[4], b[4], op[4], cin, inv; outputs r[4],
/// cout, zero, neg, parity. op[1:0] selects add/and/or/xor; `inv`
/// complements b first; op[3:2] are folded into the flags so every input
/// matters.
fn alu4() -> Netlist {
    let mut b = NetlistBuilder::new("alu4");
    let a: Vec<Wire> = (0..4).map(|i| b.input(format!("a{i}"))).collect();
    let bb: Vec<Wire> = (0..4).map(|i| b.input(format!("b{i}"))).collect();
    let op: Vec<Wire> = (0..4).map(|i| b.input(format!("op{i}"))).collect();
    let cin = b.input("cin");
    let inv = b.input("inv");

    // b XOR inv (conditional complement)
    let bx: Vec<Wire> = bb.iter().map(|&w| b.xor(w, inv)).collect();

    // Adder with carry-in.
    let mut sum = Vec::new();
    let mut carry = cin;
    for (&x, &y) in a.iter().zip(&bx) {
        let (s, c) = full_add(&mut b, x, y, carry);
        sum.push(s);
        carry = c;
    }
    let cout = carry;

    let and: Vec<Wire> = a.iter().zip(&bx).map(|(&x, &y)| b.and(x, y)).collect();
    let or: Vec<Wire> = a.iter().zip(&bx).map(|(&x, &y)| b.or(x, y)).collect();
    let xor: Vec<Wire> = a.iter().zip(&bx).map(|(&x, &y)| b.xor(x, y)).collect();

    // 4:1 select by op0/op1: r = op1 ? (op0 ? xor : or) : (op0 ? and : sum)
    let mut r = Vec::new();
    for i in 0..4 {
        let hi = b.mux(op[0], xor[i], or[i]);
        let lo = b.mux(op[0], and[i], sum[i]);
        r.push(b.mux(op[1], hi, lo));
    }

    let nz = b.or(r[0], r[1]);
    let nz2 = b.or(r[2], r[3]);
    let any = b.or(nz, nz2);
    let zero = b.xor(any.complement(), op[2]);
    let neg = b.xor(r[3], op[3]);
    let par = xor_reduce(&mut b, &r);

    for (i, &w) in r.iter().enumerate() {
        b.output(format!("r{i}"), w);
    }
    b.output("cout", cout);
    b.output("zero", zero);
    b.output("neg", neg);
    b.output("parity", par);
    b.build()
}

/// `clip`: a (5 bits) minus b (4 bits), clamped at zero.
fn clip() -> Netlist {
    let mut b = NetlistBuilder::new("clip");
    let a: Vec<Wire> = (0..5).map(|i| b.input(format!("a{i}"))).collect();
    let y4: Vec<Wire> = (0..4).map(|i| b.input(format!("b{i}"))).collect();
    let mut y = y4.clone();
    y.push(b.const0());
    let (diff, borrow) = sub_vec(&mut b, &a, &y);
    for (i, &d) in diff.iter().enumerate() {
        let clipped = b.and(d, borrow.complement());
        b.output(format!("f{i}"), clipped);
    }
    b.build()
}

/// `cm150a`: 16:1 multiplexer with enable (21 inputs).
fn cm150a() -> Netlist {
    let mut b = NetlistBuilder::new("cm150a");
    let data: Vec<Wire> = (0..16).map(|i| b.input(format!("d{i}"))).collect();
    let sel: Vec<Wire> = (0..4).map(|i| b.input(format!("s{i}"))).collect();
    let en = b.input("en");
    let mut layer = data;
    for s in &sel {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            next.push(b.mux(*s, pair[1], pair[0]));
        }
        layer = next;
    }
    let out = b.and(layer[0], en);
    b.output("f", out);
    b.build()
}

/// `t481`: 1 iff the two 8-bit halves have equal weight.
fn t481(name: &str) -> Netlist {
    let mut b = NetlistBuilder::new(name);
    let lo: Vec<Wire> = (0..8).map(|i| b.input(format!("x{i}"))).collect();
    let hi: Vec<Wire> = (8..16).map(|i| b.input(format!("x{i}"))).collect();
    let cl = popcount(&mut b, &lo);
    let ch = popcount(&mut b, &hi);
    let f = eq_vec(&mut b, &cl, &ch);
    b.output("f", f);
    b.build()
}

/// `con1_f1`: 3-bit value `a` strictly less than 4-bit value `b`.
fn con1_f1() -> Netlist {
    let mut b = NetlistBuilder::new("con1_f1");
    let a3: Vec<Wire> = (0..3).map(|i| b.input(format!("a{i}"))).collect();
    let y: Vec<Wire> = (0..4).map(|i| b.input(format!("b{i}"))).collect();
    let mut a = a3;
    a.push(b.const0());
    let (_, borrow) = sub_vec(&mut b, &a, &y);
    b.output("f", borrow);
    b.build()
}

/// `con2_f2`: input weight is a multiple of 3.
fn con2_f2() -> Netlist {
    let mut b = NetlistBuilder::new("con2_f2");
    let ins: Vec<Wire> = (0..7).map(|i| b.input(format!("x{i}"))).collect();
    let cnt = popcount(&mut b, &ins);
    // weight in {0,3,6} among 0..=7
    let e0 = {
        let ge1 = ge_const(&mut b, &cnt, 1);
        ge1.complement()
    };
    let e3 = {
        let ge3 = ge_const(&mut b, &cnt, 3);
        let ge4 = ge_const(&mut b, &cnt, 4);
        b.and(ge3, ge4.complement())
    };
    let e6 = {
        let ge6 = ge_const(&mut b, &cnt, 6);
        let ge7 = ge_const(&mut b, &cnt, 7);
        b.and(ge6, ge7.complement())
    };
    let t = b.or(e0, e3);
    let f = b.or(t, e6);
    b.output("f", f);
    b.build()
}

fn exam1() -> Netlist {
    let mut b = NetlistBuilder::new("exam1_d");
    let x = b.input("a");
    let y = b.input("b");
    let z = b.input("c");
    let f = b.maj(x, y, z.complement());
    b.output("f", f);
    b.build()
}

fn exam3() -> Netlist {
    let mut b = NetlistBuilder::new("exam3_d");
    let a = b.input("a");
    let y = b.input("b");
    let c = b.input("c");
    let d = b.input("d");
    let x1 = b.xor(a, y);
    let o1 = b.or(c, d);
    let t1 = b.and(x1, o1);
    let t2 = b.and(a, d);
    let f = b.or(t1, t2);
    b.output("f", f);
    b.build()
}

/// `max46_d`: 4x5-bit product, low 6 bits at least 46.
fn max46() -> Netlist {
    let mut b = NetlistBuilder::new("max46_d");
    let a: Vec<Wire> = (0..4).map(|i| b.input(format!("a{i}"))).collect();
    let y: Vec<Wire> = (0..5).map(|i| b.input(format!("b{i}"))).collect();
    let prod = mul_vec(&mut b, &a, &y);
    let f = ge_const(&mut b, &prod[..6], 46);
    b.output("f", f);
    b.build()
}

fn newill() -> Netlist {
    let mut b = NetlistBuilder::new("newill_d");
    let x: Vec<Wire> = (0..8).map(|i| b.input(format!("x{i}"))).collect();
    let p = xor_reduce(&mut b, &x[0..4]);
    let q = b.and(x[4], x[5]);
    let r = b.or(x[6], x[7]);
    let f = b.maj(p, q, r);
    b.output("f", f);
    b.build()
}

fn newtag() -> Netlist {
    let mut b = NetlistBuilder::new("newtag_d");
    let x: Vec<Wire> = (0..8).map(|i| b.input(format!("x{i}"))).collect();
    let lo = &x[0..4];
    let hi_rev = [x[7], x[6], x[5], x[4]];
    let f = eq_vec(&mut b, lo, &hi_rev);
    b.output("f", f);
    b.build()
}

/// One output of the `sao2` comparator family over two 5-bit operands.
fn sao2(name: &str, which: usize) -> Netlist {
    let mut b = NetlistBuilder::new(name);
    let a: Vec<Wire> = (0..5).map(|i| b.input(format!("a{i}"))).collect();
    let y: Vec<Wire> = (0..5).map(|i| b.input(format!("b{i}"))).collect();
    let f = match which {
        0 => {
            // a > b  <=>  b - a borrows
            let (_, borrow) = sub_vec(&mut b, &y, &a);
            borrow
        }
        1 => eq_vec(&mut b, &a, &y),
        2 => {
            let ands: Vec<Wire> = a.iter().zip(&y).map(|(&p, &q)| b.and(p, q)).collect();
            xor_reduce(&mut b, &ands)
        }
        3 => {
            let sum = add_vec(&mut b, &a, &y);
            sum[5]
        }
        _ => unreachable!(),
    };
    b.output("f", f);
    b.build()
}

// ---------------------------------------------------------------------------
// Synthetic generator
// ---------------------------------------------------------------------------

/// Builds a deterministic two-level (SOP-style) circuit, as a naive PLA
/// front end would emit it.
///
/// The names this generator substitutes for (`apex*`, `misex*`, `seq`,
/// `table5`, ...) are LGsynth91 *PLA* functions: sums of products. The
/// generated netlist mirrors that structure faithfully — AND chains over
/// random literals (negative literals become complemented edges), OR chains
/// summing shared products per output, and an occasional XOR pair — which
/// is exactly the kind of unbalanced, complement-heavy input the paper's
/// optimization algorithms are designed to restructure.
pub fn synthetic(name: &str, inputs: usize, outputs: usize, gates: usize) -> Netlist {
    assert!(inputs >= 2, "synthetic circuits need at least 2 inputs");
    assert!(outputs >= 1);
    let mut rng = SplitMix64::from_name(name);
    let mut b = NetlistBuilder::new(name);
    let ins: Vec<Wire> = (0..inputs).map(|i| b.input(format!("x{i}"))).collect();

    // ~70% of the gate budget goes into product terms, the rest into the
    // per-output OR planes.
    let product_budget = gates * 7 / 10;
    let mut products: Vec<Wire> = Vec::new();
    let mut used = 0usize;
    while used < product_budget {
        let k = (2 + rng.next_index(5)).min(inputs);
        // k distinct literals, chained as a naive front end would.
        let mut picked: Vec<usize> = Vec::with_capacity(k);
        while picked.len() < k {
            let v = rng.next_index(inputs);
            if !picked.contains(&v) {
                picked.push(v);
            }
        }
        let lit = |rng: &mut SplitMix64, v: usize| -> Wire {
            if rng.chance(1, 2) {
                ins[v].complement()
            } else {
                ins[v]
            }
        };
        let mut acc = lit(&mut rng, picked[0]);
        for &v in &picked[1..] {
            let l = lit(&mut rng, v);
            acc = b.and(acc, l);
            used += 1;
        }
        products.push(acc);
    }
    if products.is_empty() {
        products.push(b.and(ins[0], ins[1]));
    }

    // OR planes: each output sums a random subset of shared products.
    let remaining = gates.saturating_sub(used);
    let per_output = (remaining / outputs).max(1);
    for o in 0..outputs {
        let m = (1 + per_output + rng.next_index(per_output + 1)).min(products.len());
        let mut acc = products[rng.next_index(products.len())];
        for _ in 1..m {
            let p = products[rng.next_index(products.len())];
            // An occasional XOR pair models the arithmetic-flavoured
            // outputs in the suites.
            acc = if rng.chance(1, 12) {
                b.xor(acc, p)
            } else {
                b.or(acc, p)
            };
        }
        let w = if rng.chance(1, 5) {
            acc.complement()
        } else {
            acc
        };
        b.output(format!("f{o}"), w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_25_entries_each() {
        assert_eq!(LARGE_SUITE.len(), 25);
        assert_eq!(SMALL_SUITE.len(), 25);
    }

    #[test]
    fn all_benchmarks_build_with_declared_shapes() {
        for info in LARGE_SUITE.iter().chain(SMALL_SUITE) {
            let nl = build_info(info);
            assert_eq!(nl.num_inputs(), info.inputs, "{}", info.name);
            assert_eq!(nl.num_outputs(), info.outputs, "{}", info.name);
            assert!(nl.num_gates() > 0, "{} has no gates", info.name);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for name in ["apex1", "seq", "x4", "misex3"] {
            let a = build(name).unwrap();
            let b = build(name).unwrap();
            assert_eq!(a, b, "{name} not deterministic");
        }
    }

    #[test]
    fn parity_is_odd_weight() {
        let nl = build("xor5_d").unwrap();
        for m in 0..32u64 {
            assert_eq!(nl.evaluate(m)[0], m.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn rd_bits_are_weight_bits() {
        for (name, n, bit) in [
            ("rd53_f1", 5u32, 0u32),
            ("rd53_f2", 5, 1),
            ("rd53_f3", 5, 2),
            ("rd84_f4", 8, 3),
        ] {
            let nl = build(name).unwrap();
            for m in 0..(1u64 << n) {
                let w = m.count_ones();
                assert_eq!(nl.evaluate(m)[0], (w >> bit) & 1 == 1, "{name} at {m}");
            }
        }
    }

    #[test]
    fn nine_sym_matches_definition() {
        let nl = build("9sym_d").unwrap();
        for m in 0..512u64 {
            let w = m.count_ones();
            assert_eq!(nl.evaluate(m)[0], (3..=6).contains(&w), "minterm {m}");
        }
    }

    #[test]
    fn t481_equal_popcounts() {
        let nl = build("t481").unwrap();
        for m in [0u64, 0xFF00, 0x00FF, 0xFFFF, 0x0F0F, 0x1234, 0x8001] {
            let lo = (m & 0xFF).count_ones();
            let hi = ((m >> 8) & 0xFF).count_ones();
            assert_eq!(nl.evaluate(m)[0], lo == hi, "minterm {m:#x}");
        }
    }

    #[test]
    fn cm150a_selects_data() {
        let nl = build("cm150a").unwrap();
        // inputs: d0..d15 (bits 0..16), s0..s3 (bits 16..20), en (bit 20)
        for sel in 0..16u64 {
            let data = 1u64 << sel; // only the selected line is 1
            let m = data | (sel << 16) | (1 << 20);
            assert!(nl.evaluate(m)[0], "sel {sel}");
            let m_noen = data | (sel << 16);
            assert!(!nl.evaluate(m_noen)[0], "enable ignored");
            let m_other = (!data & 0xFFFF) | (sel << 16) | (1 << 20);
            assert!(!nl.evaluate(m_other)[0], "wrong line selected for {sel}");
        }
    }

    #[test]
    fn con1_is_less_than() {
        let nl = build("con1_f1").unwrap();
        for m in 0..128u64 {
            let a = m & 0b111;
            let b = (m >> 3) & 0b1111;
            assert_eq!(nl.evaluate(m)[0], a < b, "a={a} b={b}");
        }
    }

    #[test]
    fn con2_weight_multiple_of_three() {
        let nl = build("con2_f2").unwrap();
        for m in 0..128u64 {
            assert_eq!(nl.evaluate(m)[0], m.count_ones() % 3 == 0, "m={m}");
        }
    }

    #[test]
    fn sao2_outputs() {
        let gt = build("sao2_f1").unwrap();
        let eq = build("sao2_f2").unwrap();
        let par = build("sao2_f3").unwrap();
        let carry = build("sao2_f4").unwrap();
        for m in (0..1024u64).step_by(7) {
            let a = m & 0x1F;
            let b = (m >> 5) & 0x1F;
            assert_eq!(gt.evaluate(m)[0], a > b);
            assert_eq!(eq.evaluate(m)[0], a == b);
            assert_eq!(par.evaluate(m)[0], (a & b).count_ones() % 2 == 1);
            assert_eq!(carry.evaluate(m)[0], a + b >= 32);
        }
    }

    #[test]
    fn max46_matches_definition() {
        let nl = build("max46_d").unwrap();
        for m in 0..512u64 {
            let a = m & 0xF;
            let b = (m >> 4) & 0x1F;
            let expect = (a * b) % 64 >= 46;
            assert_eq!(nl.evaluate(m)[0], expect, "a={a} b={b}");
        }
    }

    #[test]
    fn clip_saturating_subtract() {
        let nl = build("clip").unwrap();
        for m in 0..512u64 {
            let a = m & 0x1F;
            let b = (m >> 5) & 0xF;
            let expect = a.saturating_sub(b);
            let bits: u64 = nl
                .evaluate(m)
                .iter()
                .enumerate()
                .map(|(i, &v)| (v as u64) << i)
                .sum();
            assert_eq!(bits, expect, "a={a} b={b}");
        }
    }

    #[test]
    fn five_xp1_product_and_sum() {
        let nl = build("5xp1").unwrap();
        for m in 0..128u64 {
            let x = m & 0b111;
            let y = (m >> 3) & 0b1111;
            let outs = nl.evaluate(m);
            let p: u64 = outs[..7]
                .iter()
                .enumerate()
                .map(|(i, &v)| (v as u64) << i)
                .sum();
            let s: u64 = outs[7..]
                .iter()
                .enumerate()
                .map(|(i, &v)| (v as u64) << i)
                .sum();
            assert_eq!(p, x * y, "product x={x} y={y}");
            assert_eq!(s, (x + y) & 0b111, "sum x={x} y={y}");
        }
    }

    #[test]
    fn alu4_add_mode() {
        let nl = build("alu4").unwrap();
        // op=0000, inv=0, cin=0 -> addition
        for (a, b) in [(3u64, 5u64), (15, 15), (0, 0), (9, 7)] {
            let m = a | (b << 4);
            let outs = nl.evaluate(m);
            let r: u64 = outs[..4]
                .iter()
                .enumerate()
                .map(|(i, &v)| (v as u64) << i)
                .sum();
            let cout = outs[4];
            assert_eq!(r, (a + b) & 0xF, "a={a} b={b}");
            assert_eq!(cout, a + b >= 16, "a={a} b={b}");
        }
    }

    #[test]
    fn synthetic_respects_requested_shape() {
        let nl = synthetic("shape_test", 12, 4, 100);
        assert_eq!(nl.num_inputs(), 12);
        assert_eq!(nl.num_outputs(), 4);
        assert!((90..=110).contains(&nl.num_gates()), "{}", nl.num_gates());
        assert!(nl.depth() >= 3, "too shallow: {}", nl.depth());
    }

    #[test]
    fn synthetic_different_names_differ() {
        let a = synthetic("a", 8, 2, 50);
        let b = synthetic("b", 8, 2, 50);
        assert_ne!(a, b);
    }

    #[test]
    fn info_lookup() {
        assert_eq!(info("apex6").unwrap().inputs, 135);
        assert_eq!(info("xor5_d").unwrap().outputs, 1);
        assert!(info("missing").is_none());
    }
}
